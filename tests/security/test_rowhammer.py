"""Rowhammer detection tests: the 2^-w escape law."""

import math
import random

from repro.security.hashing import LineHasher
from repro.security.rowhammer import (
    HashedLine,
    RowhammerAttacker,
    deployed_detection_probability,
    escape_rate_sweep,
    measure_escape_rate,
)


class TestHashedLine:
    def test_fresh_line_verifies(self):
        line = HashedLine(LineHasher(), data=0xDEADBEEF)
        assert line.verify()

    def test_corruption_breaks_verification(self):
        line = HashedLine(LineHasher(), data=0xDEADBEEF)
        line.data ^= 1 << 100
        assert not line.verify()


class TestAttacker:
    def test_attack_flips_requested_bits(self):
        rng = random.Random(5)
        line = HashedLine(LineHasher(), data=rng.getrandbits(512))
        original = line.data
        outcome = RowhammerAttacker(line_flips=4).attack(line, rng)
        assert bin(original ^ line.data).count("1") == 4
        assert len(outcome.flipped_line_bits) == 4
        assert outcome.corrupted

    def test_typical_attack_is_detected(self):
        """With a 40-bit hash, 200 attacks should all be caught."""
        rng = random.Random(6)
        attacker = RowhammerAttacker()
        for _ in range(200):
            line = HashedLine(LineHasher(width_bits=40), rng.getrandbits(512))
            outcome = attacker.attack(line, rng)
            assert outcome.detected


class TestEscapeLaw:
    def test_escape_rate_tracks_2_pow_minus_w(self):
        """Measured escape rates must track the 2^-w law within noise."""
        for point in escape_rate_sweep(widths=(4, 6, 8), attempts_per_width=60_000):
            expected = point.expected_rate
            # Binomial noise: allow a generous multiplicative band.
            assert 0.4 * expected < point.escape_rate < 2.5 * expected, (
                f"width {point.width_bits}: measured {point.escape_rate}, "
                f"expected {expected}"
            )

    def test_escape_rate_monotone_in_width(self):
        small = measure_escape_rate(4, attempts=40_000)
        large = measure_escape_rate(10, attempts=40_000)
        assert small.escape_rate > large.escape_rate

    def test_deployed_probability_is_paper_value(self):
        p = deployed_detection_probability(40)
        assert math.isclose(1.0 - p, 2.0**-40)
