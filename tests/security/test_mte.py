"""MTE tagging semantics tests, incl. ECC protection of the tags."""

import pytest

from repro.security.mte import (
    MuseTaggedMemory,
    TagMismatchError,
    pointer_address,
    pointer_tag,
    tag_pointer,
)


class TestPointerTags:
    def test_roundtrip(self):
        pointer = tag_pointer(0x1000, 0xA)
        assert pointer_tag(pointer) == 0xA
        assert pointer_address(pointer) == 0x1000

    def test_retag_clears_previous(self):
        pointer = tag_pointer(tag_pointer(0x1000, 0xF), 0x3)
        assert pointer_tag(pointer) == 0x3

    def test_tag_width_validation(self):
        with pytest.raises(ValueError):
            tag_pointer(0, 16)


class TestTaggedMemory:
    def test_allocate_store_load(self):
        memory = MuseTaggedMemory()
        pointer = memory.allocate(0x2000, words=4)
        memory.store(pointer, 0xFEEDFACE)
        assert memory.load(pointer) == 0xFEEDFACE

    def test_wrong_tag_faults(self):
        memory = MuseTaggedMemory()
        pointer = memory.allocate(0x2000, words=1)
        bad = tag_pointer(pointer, (pointer_tag(pointer) + 1) % 16)
        with pytest.raises(TagMismatchError):
            memory.load(bad)
        with pytest.raises(TagMismatchError):
            memory.store(bad, 1)

    def test_use_after_free_detected(self):
        memory = MuseTaggedMemory()
        pointer = memory.allocate(0x3000, words=2)
        memory.store(pointer, 42)
        memory.free(pointer, words=2)
        with pytest.raises(TagMismatchError):
            memory.load(pointer)

    def test_chip_failure_corrects_data_and_tag(self):
        """The co-design payoff: a DRAM device failure corrupts data and
        tag together, and the MUSE decode restores both — no spurious
        tag fault, no data loss."""
        memory = MuseTaggedMemory()
        pointer = memory.allocate(0x4000, words=1)
        memory.store(pointer, 0x0123456789ABCDEF)
        stored = memory._store[0x4000]
        original_symbol = memory.code.layout.extract_symbol(stored, 7)
        memory.corrupt_device(0x4000, device=7, value=original_symbol ^ 0x9)
        assert memory.load(pointer) == 0x0123456789ABCDEF

    def test_tags_random_per_allocation(self):
        memory = MuseTaggedMemory()
        tags = {
            pointer_tag(memory.allocate(0x1000 * i, words=1)) for i in range(32)
        }
        assert len(tags) > 1
