"""Keyed line-hash tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.security.hashing import LineHasher


class TestDigest:
    def test_width_respected(self):
        hasher = LineHasher(width_bits=40)
        for value in (0, 1, (1 << 512) - 1):
            assert hasher.digest(value) < (1 << 40)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            LineHasher(width_bits=0)
        with pytest.raises(ValueError):
            LineHasher(width_bits=65)

    def test_negative_line_rejected(self):
        with pytest.raises(ValueError):
            LineHasher().digest(-1)

    def test_deterministic(self):
        hasher = LineHasher()
        line = random.Random(1).getrandbits(512)
        assert hasher.digest(line) == hasher.digest(line)

    def test_key_changes_digest(self):
        line = random.Random(2).getrandbits(512)
        a = LineHasher(key=1).digest(line)
        b = LineHasher(key=2).digest(line)
        assert a != b  # 2^-40 chance of false failure

    @given(line=st.integers(min_value=0, max_value=(1 << 512) - 1),
           bit=st.integers(min_value=0, max_value=511))
    @settings(max_examples=200)
    def test_single_bit_avalanche(self, line, bit):
        """Any single-bit change must (overwhelmingly) change the digest."""
        hasher = LineHasher(width_bits=40)
        assert hasher.digest(line) != hasher.digest(line ^ (1 << bit))

    def test_wide_lines_supported(self):
        hasher = LineHasher()
        wide = (1 << 1024) - 1
        assert hasher.digest(wide) != hasher.digest(wide >> 1)

    def test_matches(self):
        hasher = LineHasher()
        line = 0xABCDEF
        digest = hasher.digest(line)
        assert hasher.matches(line, digest)
        assert not hasher.matches(line + 1, digest)


class TestUniformity:
    def test_digest_bits_are_balanced(self):
        """Each digest bit should be ~50% over random lines."""
        hasher = LineHasher(width_bits=16)
        rng = random.Random(3)
        counts = [0] * 16
        trials = 4000
        for _ in range(trials):
            digest = hasher.digest(rng.getrandbits(512))
            for bit in range(16):
                counts[bit] += (digest >> bit) & 1
        for bit, count in enumerate(counts):
            assert 0.44 < count / trials < 0.56, f"bit {bit} biased"
