"""The numba and native Reed-Solomon backends.

Numba kernels run pure-Python through the :mod:`repro.engine._jit`
shim on hosts without numba, so the parity half of this file always
executes; native tests skip cleanly when no C compiler is present.
Every assertion pins the JIT/C kernels against the numpy engine, which
the seed suite already pins against the scalar reference — the chain
keeps all four rungs byte-identical.
"""

import numpy as np
import pytest

from repro.engine import available_backends, numpy_available
from repro.orchestrate.corruption import rs_corruption_chunk
from repro.orchestrate.plan import Chunk
from repro.orchestrate.rng import derive_key
from repro.rs.engine import get_rs_engine, rs_msed_corruption_batch
from repro.rs.engine_numba import NumbaRsEngine
from repro.rs.reed_solomon import rs_for_channel

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable"
)
# Gate on the registry (not the raw compiler probe) so the suite also
# skips when REPRO_DISABLE_BACKENDS hides the backend from `auto`.
requires_native = pytest.mark.skipif(
    not (numpy_available() and "native" in available_backends()),
    reason="native backend unavailable (no C compiler, or disabled)",
)

#: All four Table-IV RS design points; b=7 and b=5 shorten mid-symbol.
TABLE_IV_B = (8, 7, 6, 5)


def make_code(b):
    return rs_for_channel(b, 144)


def assert_batches_identical(ref, got):
    assert np.array_equal(ref.statuses, got.statuses)
    assert ref.counts() == got.counts()
    assert ref.results() == got.results()


@requires_numpy
class TestNumbaRsParity:
    @pytest.mark.parametrize("b", TABLE_IV_B)
    @pytest.mark.parametrize("device_bits", [4, None], ids=["x4", "nopolicy"])
    def test_corrupted_stream_matches_numpy(self, b, device_bits):
        code = make_code(b)
        words = rs_msed_corruption_batch(code, 800, seed=2022, k_symbols=2)
        ref = get_rs_engine(code, "numpy", device_bits).decode_batch(words)
        jit = NumbaRsEngine(code, device_bits).decode_batch(words)
        assert_batches_identical(ref, jit)

    @pytest.mark.parametrize("b", TABLE_IV_B)
    @pytest.mark.parametrize("k_symbols", [1, 2])
    def test_fused_counts_match_generate_then_decode(self, b, k_symbols):
        code = make_code(b)
        engine = NumbaRsEngine(code)
        key = derive_key(17)
        for chunk in (Chunk(0, 400), Chunk(211, 250)):
            words = rs_corruption_chunk(code, chunk, key, k_symbols)
            expect = get_rs_engine(code, "numpy").decode_batch(words).counts()
            assert engine.fused_chunk_counts(chunk, key, k_symbols) == expect

    def test_fused_declines_beyond_two_symbols(self):
        engine = NumbaRsEngine(make_code(8))
        assert engine.fused_chunk_counts(Chunk(0, 10), derive_key(1), 3) is None

    def test_fused_respects_device_policy(self):
        """Policy on/off changes the corrected/confinement split, and
        the fused tally must track the batch decode in both modes."""
        code = make_code(8)
        key = derive_key(23)
        chunk = Chunk(0, 600)
        words = rs_corruption_chunk(code, chunk, key, 2)
        for device_bits in (4, None):
            engine = NumbaRsEngine(code, device_bits)
            expect = (
                get_rs_engine(code, "numpy", device_bits)
                .decode_batch(words)
                .counts()
            )
            assert engine.fused_chunk_counts(chunk, key, 2) == expect

    def test_chunk_splits_compose(self):
        code = make_code(7)
        engine = NumbaRsEngine(code)
        key = derive_key(29)
        whole = engine.fused_chunk_counts(Chunk(0, 500), key, 2)
        parts = [
            engine.fused_chunk_counts(Chunk(0, 123), key, 2),
            engine.fused_chunk_counts(Chunk(123, 177), key, 2),
            engine.fused_chunk_counts(Chunk(300, 200), key, 2),
        ]
        assert tuple(sum(c) for c in zip(*parts)) == whole

    def test_engine_cached_per_code_and_policy(self):
        code = make_code(8)
        from repro.engine import available_backends

        if "numba" not in available_backends():
            pytest.skip("numba not selectable on this host")
        assert get_rs_engine(code, "numba") is get_rs_engine(code, "numba")
        assert get_rs_engine(code, "numba") is not get_rs_engine(
            code, "numba", device_bits=None
        )


@requires_native
class TestNativeRsParity:
    @pytest.mark.parametrize("b", TABLE_IV_B)
    @pytest.mark.parametrize("device_bits", [4, None], ids=["x4", "nopolicy"])
    def test_corrupted_stream_matches_numpy(self, b, device_bits):
        code = make_code(b)
        words = rs_msed_corruption_batch(code, 800, seed=2022, k_symbols=2)
        ref = get_rs_engine(code, "numpy", device_bits).decode_batch(words)
        nat = get_rs_engine(code, "native", device_bits).decode_batch(words)
        assert_batches_identical(ref, nat)

    @pytest.mark.parametrize("b", TABLE_IV_B)
    @pytest.mark.parametrize("k_symbols", [1, 2])
    def test_fused_counts_match_generate_then_decode(self, b, k_symbols):
        code = make_code(b)
        engine = get_rs_engine(code, "native")
        key = derive_key(17)
        for chunk in (Chunk(0, 400), Chunk(211, 250)):
            words = rs_corruption_chunk(code, chunk, key, k_symbols)
            expect = get_rs_engine(code, "numpy").decode_batch(words).counts()
            assert engine.fused_chunk_counts(chunk, key, k_symbols) == expect

    def test_matches_numba_kernel_exactly(self):
        code = make_code(5)
        native = get_rs_engine(code, "native")
        jit = NumbaRsEngine(code)
        key = derive_key(99)
        for chunk in (Chunk(0, 300), Chunk(777, 123)):
            assert native.fused_chunk_counts(
                chunk, key, 2
            ) == jit.fused_chunk_counts(chunk, key, 2)
