"""Galois-field arithmetic tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rs.gf import PRIMITIVE_POLYNOMIALS, GaloisField, get_field


@pytest.fixture(scope="module")
def gf16():
    return get_field(4)


@pytest.fixture(scope="module")
def gf256():
    return get_field(8)


class TestTables:
    @pytest.mark.parametrize("m", sorted(PRIMITIVE_POLYNOMIALS))
    def test_exp_table_is_a_permutation_of_nonzero(self, m):
        field = get_field(m)
        assert sorted(field.exp) == list(range(1, field.size))

    def test_log_exp_inverse(self, gf256):
        for i in range(gf256.order):
            assert gf256.log[gf256.exp[i]] == i

    def test_unsupported_size_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            GaloisField(17)


class TestOperations:
    def test_add_is_xor(self, gf16):
        assert gf16.add(0b1010, 0b0110) == 0b1100

    def test_mul_identities(self, gf256):
        for a in (0, 1, 2, 37, 255):
            assert gf256.mul(a, 0) == 0
            assert gf256.mul(a, 1) == a

    def test_gf16_known_product(self, gf16):
        # In GF(16) with x^4+x+1: x * x^3 = x^4 = x + 1 -> 2 * 8 = 3.
        assert gf16.mul(2, 8) == 3

    @given(a=st.integers(1, 255), b=st.integers(1, 255))
    @settings(max_examples=200)
    def test_div_inverts_mul(self, a, b):
        field = get_field(8)
        assert field.div(field.mul(a, b), b) == a

    @given(a=st.integers(1, 255))
    @settings(max_examples=100)
    def test_inverse(self, a):
        field = get_field(8)
        assert field.mul(a, field.inv(a)) == 1

    def test_div_by_zero(self, gf256):
        with pytest.raises(ZeroDivisionError):
            gf256.div(5, 0)
        with pytest.raises(ZeroDivisionError):
            gf256.inv(0)

    def test_log_of_zero(self, gf256):
        with pytest.raises(ValueError):
            gf256.log_alpha(0)

    @given(a=st.integers(1, 15), b=st.integers(1, 15), c=st.integers(1, 15))
    @settings(max_examples=200)
    def test_mul_associative_and_distributive(self, a, b, c):
        field = get_field(4)
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))
        assert field.mul(a, b ^ c) == field.mul(a, b) ^ field.mul(a, c)

    def test_pow_alpha_wraps(self, gf16):
        assert gf16.pow_alpha(0) == 1
        assert gf16.pow_alpha(gf16.order) == 1
        assert gf16.pow_alpha(-1) == gf16.exp[gf16.order - 1]

    def test_poly_eval_horner(self, gf16):
        # p(x) = x^2 + 3 at x=2: 4 ^ 3 = 7
        assert gf16.poly_eval([1, 0, 3], 2) == 7


class TestCaching:
    def test_get_field_is_shared(self):
        assert get_field(8) is get_field(8)
