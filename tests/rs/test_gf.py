"""Galois-field arithmetic tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rs.gf import PRIMITIVE_POLYNOMIALS, GaloisField, get_field


@pytest.fixture(scope="module")
def gf16():
    return get_field(4)


@pytest.fixture(scope="module")
def gf256():
    return get_field(8)


class TestTables:
    @pytest.mark.parametrize("m", sorted(PRIMITIVE_POLYNOMIALS))
    def test_exp_table_is_a_permutation_of_nonzero(self, m):
        field = get_field(m)
        assert sorted(field.exp) == list(range(1, field.size))

    def test_log_exp_inverse(self, gf256):
        for i in range(gf256.order):
            assert gf256.log[gf256.exp[i]] == i

    def test_unsupported_size_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            GaloisField(17)


class TestOperations:
    def test_add_is_xor(self, gf16):
        assert gf16.add(0b1010, 0b0110) == 0b1100

    def test_mul_identities(self, gf256):
        for a in (0, 1, 2, 37, 255):
            assert gf256.mul(a, 0) == 0
            assert gf256.mul(a, 1) == a

    def test_gf16_known_product(self, gf16):
        # In GF(16) with x^4+x+1: x * x^3 = x^4 = x + 1 -> 2 * 8 = 3.
        assert gf16.mul(2, 8) == 3

    @given(a=st.integers(1, 255), b=st.integers(1, 255))
    @settings(max_examples=200)
    def test_div_inverts_mul(self, a, b):
        field = get_field(8)
        assert field.div(field.mul(a, b), b) == a

    @given(a=st.integers(1, 255))
    @settings(max_examples=100)
    def test_inverse(self, a):
        field = get_field(8)
        assert field.mul(a, field.inv(a)) == 1

    def test_div_by_zero(self, gf256):
        with pytest.raises(ZeroDivisionError):
            gf256.div(5, 0)
        with pytest.raises(ZeroDivisionError):
            gf256.inv(0)

    def test_log_of_zero(self, gf256):
        with pytest.raises(ValueError):
            gf256.log_alpha(0)

    @given(a=st.integers(1, 15), b=st.integers(1, 15), c=st.integers(1, 15))
    @settings(max_examples=200)
    def test_mul_associative_and_distributive(self, a, b, c):
        field = get_field(4)
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))
        assert field.mul(a, b ^ c) == field.mul(a, b) ^ field.mul(a, c)

    def test_pow_alpha_wraps(self, gf16):
        assert gf16.pow_alpha(0) == 1
        assert gf16.pow_alpha(gf16.order) == 1
        assert gf16.pow_alpha(-1) == gf16.exp[gf16.order - 1]

    def test_poly_eval_horner(self, gf16):
        # p(x) = x^2 + 3 at x=2: 4 ^ 3 = 7
        assert gf16.poly_eval([1, 0, 3], 2) == 7


class TestDoubledExpTable:
    @pytest.mark.parametrize("m", (4, 5, 8))
    def test_exp2_is_exp_wrapped(self, m):
        field = get_field(m)
        assert len(field._exp2) == 2 * field.order
        for i in range(2 * field.order):
            assert field._exp2[i] == field.exp[i % field.order]

    @given(a=st.integers(1, 255), b=st.integers(1, 255))
    @settings(max_examples=200)
    def test_mul_div_match_modular_formula(self, a, b):
        """The doubled-table fast path equals the % order reference."""
        field = get_field(8)
        assert field.mul(a, b) == field.exp[
            (field.log[a] + field.log[b]) % field.order
        ]
        assert field.div(a, b) == field.exp[
            (field.log[a] - field.log[b]) % field.order
        ]


class TestVectorisedOps:
    """GF ndarray arithmetic must mirror the scalar tables exactly."""

    numpy = pytest.importorskip("numpy")

    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 255), st.integers(0, 255)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=100)
    def test_mul_batch_matches_scalar(self, pairs):
        np = self.numpy
        field = get_field(8)
        a = np.array([p[0] for p in pairs])
        b = np.array([p[1] for p in pairs])
        assert field.mul_batch(a, b).tolist() == [
            field.mul(x, y) for x, y in pairs
        ]

    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 31), st.integers(1, 31)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=100)
    def test_div_batch_matches_scalar(self, pairs):
        np = self.numpy
        field = get_field(5)
        a = np.array([p[0] for p in pairs])
        b = np.array([p[1] for p in pairs])
        assert field.div_batch(a, b).tolist() == [
            field.div(x, y) for x, y in pairs
        ]

    def test_div_batch_rejects_zero_divisor(self):
        np = self.numpy
        field = get_field(4)
        with pytest.raises(ZeroDivisionError):
            field.div_batch(np.array([1, 2]), np.array([3, 0]))

    def test_pow_alpha_batch_handles_negative_exponents(self):
        np = self.numpy
        field = get_field(6)
        exponents = np.array([-130, -1, 0, 1, 62, 63, 200])
        assert field.pow_alpha_batch(exponents).tolist() == [
            field.pow_alpha(int(i)) for i in exponents
        ]

    def test_mul_batch_broadcasts_scalars(self):
        field = get_field(8)
        values = self.numpy.arange(256)
        assert field.mul_batch(values, 1).tolist() == list(range(256))
        assert field.mul_batch(values, 0).tolist() == [0] * 256

    def test_nd_tables_cached(self):
        field = get_field(7)
        assert field.exp_nd is field.exp_nd
        assert field.log_nd is field.log_nd


class TestCaching:
    def test_get_field_is_shared(self):
        assert get_field(8) is get_field(8)
