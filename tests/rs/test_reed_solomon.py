"""Reed-Solomon codec tests: encode, correct, detect, shorten."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.rs.reed_solomon import (
    RSCode,
    RSDecodeStatus,
    rs_80_64,
    rs_144_128,
    rs_for_channel,
)


class TestGeometry:
    def test_rs_144_128_shape(self):
        code = rs_144_128()
        assert code.n_bits == 144
        assert code.k_bits == 128
        assert code.n_symbols == 18
        assert code.check_bits == 16

    def test_rs_80_64_shape(self):
        code = rs_80_64()
        assert code.n_bits == 80
        assert code.k_bits == 64
        assert code.n_symbols == 10

    def test_table_iv_channel_codes(self):
        """Section VII-A design points over the 144-bit channel."""
        expected = {8: 128, 7: 130, 6: 132, 5: 134}
        for b, k_bits in expected.items():
            code = rs_for_channel(b, 144)
            assert code.n_bits == 144, f"b={b}"
            assert code.k_bits == k_bits, f"b={b}"

    def test_code_length_limit(self):
        with pytest.raises(ValueError, match="exceed"):
            RSCode(symbol_bits=4, data_symbols=14)  # 16 symbols > 15

    def test_partial_bits_validation(self):
        with pytest.raises(ValueError):
            RSCode(symbol_bits=8, data_symbols=4, partial_bits=8)


class TestEncode:
    def test_codeword_has_zero_syndromes(self):
        code = rs_144_128()
        rng = random.Random(3)
        for _ in range(20):
            data = [rng.randrange(256) for _ in range(16)]
            codeword = code.encode(data)
            assert code.syndromes(codeword) == (0, 0)

    def test_systematic_prefix(self):
        code = rs_80_64()
        data = list(range(8))
        assert code.encode(data)[:8] == tuple(data)

    def test_data_width_validation(self):
        code = rs_80_64()
        with pytest.raises(ValueError, match="expected 8"):
            code.encode([0] * 7)
        with pytest.raises(ValueError, match="out of range"):
            code.encode([256] + [0] * 7)

    def test_partial_symbol_padding_enforced(self):
        code = rs_for_channel(5, 144)
        data = [0] * code.data_symbols
        data[-1] = 0b10000  # uses the 5th (virtual) bit of a 4-bit symbol
        with pytest.raises(ValueError, match="virtual padding"):
            code.encode(data)


class TestCorrection:
    @given(
        data=st.lists(st.integers(0, 255), min_size=16, max_size=16),
        position=st.integers(0, 17),
        magnitude=st.integers(1, 255),
    )
    @settings(max_examples=200)
    def test_corrects_any_single_symbol_error(self, data, position, magnitude):
        code = rs_144_128()
        codeword = list(code.encode(data))
        codeword[position] ^= magnitude
        result = code.decode(codeword)
        assert result.status is RSDecodeStatus.CORRECTED
        assert result.symbols[:16] == tuple(data)
        assert result.error_position == position
        assert result.error_magnitude == magnitude

    def test_clean_decode(self):
        code = rs_80_64()
        codeword = code.encode(list(range(8)))
        result = code.decode(codeword)
        assert result.status is RSDecodeStatus.CLEAN
        assert result.symbols == codeword

    def test_decode_length_validation(self):
        code = rs_80_64()
        with pytest.raises(ValueError, match="expected 10"):
            code.decode([0] * 9)


class TestDetection:
    def test_two_symbol_errors_with_equal_magnitude_detected(self):
        """e1 == e2 makes S1-pattern degenerate (S1 may be 0): detected."""
        code = rs_144_128()
        codeword = list(code.encode([7] * 16))
        # Same magnitude in two positions i, j where alpha^i + alpha^j != 0
        codeword[0] ^= 0x55
        codeword[5] ^= 0x55
        result = code.decode(codeword)
        # Never a silent CLEAN; may be DETECTED or (rarely) miscorrected,
        # but for this magnitude/position pair detection is expected
        # because S1 = 0x55*(a^0 + a^5) != 0 and locator lands outside.
        assert result.status is not RSDecodeStatus.CLEAN

    def test_shortened_locator_detected(self):
        """An error syndrome pointing beyond 18 symbols is detected."""
        code = rs_144_128()
        field = code.field
        codeword = list(code.encode([0] * 16))
        # Construct syndrome for a phantom error at position 100:
        # add e*alpha^100 to S1 and e*alpha^200 to S2 by corrupting two
        # real symbols with crafted values is complex; instead check the
        # decoder path directly by corrupting with a multi-symbol error
        # known (by construction) to produce an out-of-range locator.
        rng = random.Random(9)
        detected_out_of_range = 0
        for _ in range(300):
            bad = list(codeword)
            for position in rng.sample(range(18), 2):
                bad[position] ^= rng.randrange(1, 256)
            s1, s2 = code.syndromes(bad)
            if s1 and s2:
                locator = field.div(s2, s1)
                if field.log_alpha(locator) >= 18:
                    result = code.decode(bad)
                    assert result.status is RSDecodeStatus.DETECTED
                    detected_out_of_range += 1
        assert detected_out_of_range > 0

    def test_partial_symbol_correction_on_padding_detected(self):
        """Corrections touching virtual bits must be declared detected."""
        code = rs_for_channel(5, 144)
        data = [0] * code.data_symbols
        codeword = list(code.encode(data))
        # Corrupt the partial (last data) symbol with a virtual-bit error:
        # flip a padding bit directly in the symbol-domain representation.
        codeword[code.data_symbols - 1] ^= 0b10000
        result = code.decode(codeword)
        # A real device could never produce this; decoder may correct it
        # back (magnitude on the same symbol) -- but the corrected value
        # must not retain padding bits. Either CORRECTED back to zero or
        # DETECTED is acceptable; silent CLEAN is not.
        assert result.status is not RSDecodeStatus.CLEAN
        if result.status is RSDecodeStatus.CORRECTED:
            assert result.symbols[code.data_symbols - 1] >> 4 == 0


class TestBitLevel:
    @given(data=st.integers(0, (1 << 128) - 1))
    @settings(max_examples=100)
    def test_bit_roundtrip(self, data):
        code = rs_144_128()
        codeword = code.encode_bits(data)
        assert codeword < 1 << 144
        status, decoded = code.decode_bits(codeword)
        assert status is RSDecodeStatus.CLEAN
        assert decoded == data

    @given(
        data=st.integers(0, (1 << 128) - 1),
        symbol=st.integers(0, 17),
        magnitude=st.integers(1, 255),
    )
    @settings(max_examples=100)
    def test_bit_level_single_symbol_correction(self, data, symbol, magnitude):
        code = rs_144_128()
        codeword = code.encode_bits(data)
        bad = codeword ^ (magnitude << (8 * symbol))
        status, decoded = code.decode_bits(bad)
        assert status is RSDecodeStatus.CORRECTED
        assert decoded == data

    def test_pack_unpack_roundtrip_partial(self):
        code = rs_for_channel(5, 144)
        rng = random.Random(17)
        data = [rng.randrange(32) for _ in range(code.data_symbols)]
        data[-1] &= 0b1111  # respect partial width
        codeword_syms = code.encode(data)
        packed = code.pack(codeword_syms)
        assert packed < 1 << 144
        assert code.unpack(packed) == codeword_syms

    def test_pack_rejects_padding_overflow(self):
        code = rs_for_channel(5, 144)
        symbols = [0] * code.n_symbols
        symbols[code.data_symbols - 1] = 0b10000
        with pytest.raises(ValueError, match="exceeds"):
            code.pack(symbols)

    def test_encode_bits_width_check(self):
        code = rs_80_64()
        with pytest.raises(ValueError):
            code.encode_bits(1 << 64)
