"""ChipKill alignment analysis tests (Table IV's 'not practical' rows)."""

import pytest

from repro.rs.chipkill import assess, device_symbol_span, practical_for_dram


class TestSpan:
    def test_aligned_device_in_one_symbol(self):
        # 8-bit symbols, 4-bit devices: device 1 is bits 4..7 -> symbol 0.
        assert device_symbol_span(1, 4, 8) == {0}
        assert device_symbol_span(2, 4, 8) == {1}

    def test_misaligned_device_straddles(self):
        # 5-bit symbols, x4 devices: device 1 is bits 4..7 -> symbols 0, 1.
        assert device_symbol_span(1, 4, 5) == {0, 1}


class TestAssess:
    def test_paper_example_5bit_symbols_not_chipkill(self):
        """Section VII-A: 5-bit-symbol RS over x4 devices loses ChipKill."""
        verdict = assess(symbol_bits=5, device_bits=4, channel_bits=144)
        assert not verdict.chipkill
        assert verdict.symbols_touched == 2
        assert "multi-symbol" in verdict.explain()

    def test_8bit_symbols_are_chipkill_over_x4(self):
        verdict = assess(symbol_bits=8, device_bits=4, channel_bits=144)
        assert verdict.chipkill
        assert "ChipKill holds" in verdict.explain()

    @pytest.mark.parametrize("b,expected", [(8, True), (7, False), (6, False), (5, False), (4, True)])
    def test_table_iv_practicality_column(self, b, expected):
        """Only device-width-multiple symbols keep ChipKill on x4 DIMMs."""
        verdict = assess(symbol_bits=b, device_bits=4, channel_bits=144)
        assert verdict.chipkill is expected
        assert practical_for_dram(b) is expected

    def test_channel_must_be_whole_devices(self):
        with pytest.raises(ValueError):
            assess(symbol_bits=8, device_bits=4, channel_bits=142)

    def test_x8_devices(self):
        # x8 devices with 8-bit symbols: fine; 4-bit symbols: a device
        # spans two symbols.
        assert assess(8, 8, 144).chipkill
        assert not assess(4, 8, 144).chipkill
