"""Cross-backend equivalence for the Reed-Solomon batch engine.

The numpy PGZ path must be bit-exact with the scalar reference on every
Table-IV design point — b = 8, 7, 6 and 5 over the 144-bit channel,
including both partial-last-symbol codes — with and without the x4
device-confinement policy.
"""

import random

import pytest

from repro.engine import available_backends, numpy_available
from repro.engine.base import BackendUnavailableError
from repro.reliability.monte_carlo import RsMsedSimulator
from repro.rs.engine import (
    STATUS_CLEAN,
    STATUS_CORRECTED,
    STATUS_DETECTED_CONFINEMENT,
    STATUS_DETECTED_NO_MATCH,
    NumpyRsEngine,
    ScalarRsEngine,
    device_confined,
    get_rs_engine,
    rs_msed_corruption_batch,
)
from repro.rs.reed_solomon import RSDecodeStatus, rs_for_channel

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable"
)

#: All four Table-IV RS design points; b=7 and b=5 shorten mid-symbol.
TABLE_IV_B = (8, 7, 6, 5)


def make_code(b):
    return rs_for_channel(b, 144)


class TestRegistry:
    def test_scalar_always_available(self):
        code = make_code(8)
        assert isinstance(get_rs_engine(code, "scalar"), ScalarRsEngine)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            get_rs_engine(make_code(8), "cuda")

    def test_engines_cached_per_code_and_policy(self):
        code = make_code(8)
        assert get_rs_engine(code, "scalar") is get_rs_engine(code, "scalar")
        assert get_rs_engine(code, "scalar") is not get_rs_engine(
            code, "scalar", device_bits=None
        )

    @requires_numpy
    def test_auto_prefers_fastest_available(self):
        """auto lands on the registry's top rung; every vector backend
        subclasses the numpy engine, so the tables are shared."""
        engine = get_rs_engine(make_code(8), "auto")
        assert isinstance(engine, NumpyRsEngine)
        assert engine.name == available_backends()[-1]

    def test_explicit_numpy_raises_without_numpy(self, monkeypatch):
        """Shared registry semantics: explicit numpy must not degrade."""
        import repro.engine as engine_pkg

        monkeypatch.setattr(engine_pkg, "numpy_available", lambda: False)
        with pytest.raises(BackendUnavailableError):
            get_rs_engine(make_code(8), "numpy")
        # auto degrades instead of raising
        assert get_rs_engine(make_code(8), "auto").name == "scalar"


class TestDeviceConfined:
    def test_single_nibble_confined(self):
        code = make_code(8)
        # symbol 0 spans channel bits 0..7 == devices 0 and 1
        assert device_confined(code, 0, 0b1010, 4)       # bits 1,3: device 0
        assert device_confined(code, 0, 0b1010 << 4, 4)  # bits 5,7: device 1
        assert not device_confined(code, 0, 0b10001, 4)  # bits 0,4: both

    def test_offsets_honour_partial_symbols(self):
        code = make_code(5)  # partial last data symbol (4 bits)
        offsets = code.symbol_bit_offsets
        assert offsets[code.data_symbols] - offsets[code.data_symbols - 1] == 4
        assert sum(code.symbol_widths) == code.n_bits

    def test_matches_bit_loop_reference(self):
        """lsb/msb shortcut == the original per-bit device walk."""
        code = make_code(6)
        rng = random.Random(4)
        for _ in range(500):
            position = rng.randrange(code.n_symbols)
            magnitude = rng.randrange(1, 1 << 6)
            offset = sum(code.symbol_widths[:position])
            devices = {
                (offset + bit) // 4
                for bit in range(6)
                if magnitude >> bit & 1
            }
            assert device_confined(code, position, magnitude, 4) == (
                len(devices) == 1
            )


@requires_numpy
class TestEncodeEquivalence:
    @pytest.mark.parametrize("b", TABLE_IV_B)
    def test_encode_batch_matches_scalar(self, b):
        code = make_code(b)
        rng = random.Random(42)
        rows = []
        for _ in range(100):
            rows.append(
                [
                    rng.randrange(1 << code.symbol_widths[i])
                    for i in range(code.data_symbols)
                ]
            )
        assert get_rs_engine(code, "numpy").encode_batch(rows) == [
            code.encode(row) for row in rows
        ]

    def test_encode_batch_rejects_padding_overflow(self):
        code = make_code(5)
        row = [0] * code.data_symbols
        row[-1] = 1 << code.partial_bits
        with pytest.raises(ValueError):
            get_rs_engine(code, "numpy").encode_batch([row])


#: Every non-reference backend this host can run gets the full matrix.
VECTOR_BACKENDS = [b for b in available_backends() if b != "scalar"]


@requires_numpy
class TestDecodeEquivalence:
    @pytest.mark.parametrize("backend", VECTOR_BACKENDS)
    @pytest.mark.parametrize("b", TABLE_IV_B)
    @pytest.mark.parametrize("device_bits", [4, None], ids=["x4", "nopolicy"])
    def test_multi_symbol_stream_full_parity(self, b, device_bits, backend):
        """Same corrupted words -> identical per-word statuses/results."""
        code = make_code(b)
        words = rs_msed_corruption_batch(code, 1500, seed=2022, k_symbols=2)
        scalar = get_rs_engine(code, "scalar", device_bits).decode_batch(words)
        vector = get_rs_engine(code, backend, device_bits).decode_batch(words)
        assert list(scalar.statuses) == list(vector.statuses)
        assert scalar.counts() == vector.counts()
        assert scalar.results() == vector.results()

    @pytest.mark.parametrize("b", TABLE_IV_B)
    def test_results_match_single_word_decode(self, b):
        """results() reconstructs exactly what RSCode.decode returns."""
        code = make_code(b)
        words = rs_msed_corruption_batch(code, 400, seed=7, k_symbols=2)
        batch = get_rs_engine(code, "numpy").decode_batch(words)
        assert batch.results() == [code.decode(list(row)) for row in words.tolist()]

    def test_single_symbol_corruptions_all_corrected(self):
        """The single-symbol correction guarantee survives vectorisation."""
        code = make_code(8)
        rng = random.Random(3)
        rows, expected = [], []
        for _ in range(300):
            data = [rng.randrange(256) for _ in range(code.data_symbols)]
            word = list(code.encode(data))
            position = rng.randrange(code.n_symbols)
            word[position] ^= rng.randrange(1, 256)
            rows.append(word)
            expected.append(tuple(data))
        batch = get_rs_engine(code, "numpy", device_bits=None).decode_batch(rows)
        results = batch.results()
        assert all(r.status is RSDecodeStatus.CORRECTED for r in results)
        assert [r.symbols[: code.data_symbols] for r in results] == expected

    def test_device_confined_nibble_errors_accepted(self):
        """A real x4 device failure is never vetoed by the policy."""
        code = make_code(8)
        rng = random.Random(8)
        rows = []
        for _ in range(200):
            data = [rng.randrange(256) for _ in range(code.data_symbols)]
            word = list(code.encode(data))
            position = rng.randrange(code.n_symbols)
            nibble = rng.randrange(2)  # which half of the 8-bit symbol
            word[position] ^= rng.randrange(1, 16) << (4 * nibble)
            rows.append(word)
        statuses = get_rs_engine(code, "numpy", device_bits=4).decode_batch(
            rows
        ).statuses
        assert all(s == STATUS_CORRECTED for s in statuses.tolist())

    def test_clean_words_decode_clean(self):
        code = make_code(6)
        rng = random.Random(11)
        rows = [
            list(
                code.encode(
                    [rng.randrange(64) for _ in range(code.data_symbols)]
                )
            )
            for _ in range(60)
        ]
        for backend in available_backends():
            statuses = get_rs_engine(code, backend).decode_batch(rows).statuses
            assert all(s == STATUS_CLEAN for s in list(statuses))

    def test_shortened_locator_detected_in_batch(self):
        """Out-of-range locators land in the detected bucket, both paths."""
        code = make_code(8)
        words = rs_msed_corruption_batch(code, 2000, seed=5, k_symbols=2)
        vector = get_rs_engine(code, "numpy").decode_batch(words)
        counts = vector.counts()
        assert counts[STATUS_DETECTED_NO_MATCH] > 0
        assert counts[STATUS_DETECTED_CONFINEMENT] > 0

    def test_batch_shape_validated(self):
        code = make_code(8)
        with pytest.raises(ValueError, match="symbol array"):
            get_rs_engine(code, "numpy").decode_batch([[0, 1, 2]])

    def test_batch_symbol_range_validated(self):
        code = make_code(8)
        row = [0] * code.n_symbols
        row[0] = 256
        with pytest.raises(ValueError, match="fit in GF"):
            get_rs_engine(code, "numpy").decode_batch([row])


class TestSimulatorParity:
    @requires_numpy
    @pytest.mark.parametrize("backend", VECTOR_BACKENDS)
    @pytest.mark.parametrize("b", TABLE_IV_B)
    def test_fixed_seed_tallies_identical(self, b, backend):
        """The Table-IV contract: byte-identical MsedResult per backend
        (the JIT/native rungs take the fused chunk path here)."""
        code = make_code(b)
        scalar = RsMsedSimulator(code, backend="scalar").run(1200, seed=2022)
        vector = RsMsedSimulator(code, backend=backend).run(1200, seed=2022)
        assert scalar == vector

    @requires_numpy
    def test_policy_off_tallies_identical(self):
        code = make_code(8)
        scalar = RsMsedSimulator(
            code, device_bits=None, backend="scalar"
        ).run(1000, seed=5)
        vector = RsMsedSimulator(
            code, device_bits=None, backend="numpy"
        ).run(1000, seed=5)
        assert scalar == vector
        assert scalar.detected_confinement == 0

    def test_explicit_numpy_raises_when_generator_unavailable(self, monkeypatch):
        import repro.rs.engine as rs_engine

        monkeypatch.setattr(rs_engine, "np", None)
        simulator = RsMsedSimulator(make_code(8), backend="numpy")
        with pytest.raises(BackendUnavailableError):
            simulator.run(50, seed=1)

    def test_auto_falls_back_to_sequential(self, monkeypatch):
        """Without numpy, auto degrades to the original scalar loop."""
        import repro.rs.engine as rs_engine

        monkeypatch.setattr(rs_engine, "np", None)
        result = RsMsedSimulator(make_code(8), backend="auto").run(200, seed=1)
        assert (
            result.detected + result.miscorrected + result.silent
            == result.trials
            == 200
        )


class TestCorruptionGeneration:
    @requires_numpy
    def test_deterministic_under_seed(self):
        import numpy as np

        code = make_code(7)
        first = rs_msed_corruption_batch(code, 500, seed=11)
        second = rs_msed_corruption_batch(code, 500, seed=11)
        assert np.array_equal(first, second)

    @requires_numpy
    @pytest.mark.parametrize("k", (1, 2, 3))
    def test_every_word_has_exactly_k_corrupted_symbols(self, k):
        """Recover the clean words from the shared counter-hashed data
        stream, then diff against the corrupted batch."""
        from repro.orchestrate import Chunk, derive_key
        from repro.orchestrate.corruption import rs_clean_chunk

        code = make_code(5)
        seed = 40 + k
        clean = rs_clean_chunk(code, Chunk(0, 200), derive_key(seed))
        corrupted = rs_msed_corruption_batch(code, 200, seed=seed, k_symbols=k)
        assert ((clean != corrupted).sum(axis=1) == k).all()

    @requires_numpy
    def test_corrupted_symbols_respect_physical_widths(self):
        code = make_code(5)  # 4-bit partial last data symbol
        words = rs_msed_corruption_batch(code, 3000, seed=2, k_symbols=2)
        for index in range(code.n_symbols):
            width = code.symbol_widths[index]
            assert int(words[:, index].max()) < (1 << width)

    @requires_numpy
    def test_k_symbols_bounds_checked(self):
        code = make_code(8)
        with pytest.raises(ValueError):
            rs_msed_corruption_batch(code, 10, seed=1, k_symbols=0)
        with pytest.raises(ValueError):
            rs_msed_corruption_batch(
                code, 10, seed=1, k_symbols=code.n_symbols + 1
            )
