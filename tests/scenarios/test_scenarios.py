"""Fault-scenario registry and its determinism contract.

The acceptance contract this file pins:

* every registered scenario's scalar reference (``corrupt_word``) and
  numpy batch (``corrupt_batch``) produce **byte-identical** corrupted
  words, for both code families, on chunks with non-zero start;
* per scenario, the folded tally is invariant across chunk splits,
  ``jobs=2`` process pools, every available decode backend, and a
  2-worker distributed loopback session — at a fixed seed;
* the campaign scheduler escalates zero-event cells of a
  non-splittable scenario to a Clopper-Pearson tail bound instead of
  importance splitting.
"""

from pathlib import Path

import pytest

from repro.core.codes import muse_80_69
from repro.distribute import DistributedSession
from repro.engine import available_backends
from repro.orchestrate import CodeRef, derive_key
from repro.orchestrate.plan import Chunk
from repro.reliability.monte_carlo import MuseMsedSimulator, RsMsedSimulator
from repro.reliability.sampling.scheduler import (
    CampaignPolicy,
    CampaignRunner,
)
from repro.reliability.sampling.sequential import AdaptivePolicy
from repro.rs.reed_solomon import rs_144_128
from repro.scenarios import (
    Scenario,
    register_scenario,
    resolve_scenario,
    scenario_names,
    scenario_stream_key,
    scenario_summaries,
)

SEED = 99
BUILTINS = ("msed", "mbu", "stuck", "rowfail", "scrub", "wear")
FAULTS = tuple(n for n in BUILTINS if n != "msed")


def muse_simulator(scenario, **kwargs):
    return MuseMsedSimulator(
        muse_80_69(),
        scenario=scenario,
        code_ref=CodeRef("repro.core.codes:muse_80_69"),
        **kwargs,
    )


def rs_simulator(scenario, **kwargs):
    return RsMsedSimulator(
        rs_144_128(),
        scenario=scenario,
        code_ref=CodeRef("repro.rs.reed_solomon:rs_144_128"),
        **kwargs,
    )


class TestRegistry:
    def test_builtins_registered_msed_first(self):
        names = scenario_names()
        assert names[0] == "msed"
        assert set(BUILTINS) <= set(names)
        assert len(names) >= 6

    def test_msed_is_the_splitting_scenario(self):
        assert resolve_scenario("msed").supports_splitting
        for name in FAULTS:
            assert not resolve_scenario(name).supports_splitting

    def test_fault_scenarios_ship_both_implementations(self):
        for name in FAULTS:
            scenario = resolve_scenario(name)
            assert scenario.corrupt_batch is not None
            assert scenario.corrupt_word is not None

    def test_summaries_cover_every_name(self):
        summaries = scenario_summaries()
        assert set(summaries) == set(scenario_names())
        assert all(summaries.values())

    def test_duplicate_registration_refused(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("mbu", lambda: Scenario("mbu", "dup"))

    def test_bad_slug_refused(self):
        with pytest.raises(ValueError, match="slug"):
            register_scenario("no spaces!", lambda: Scenario("x", "y"))

    def test_unknown_scenario_lists_registered_names(self):
        with pytest.raises(ValueError, match="mbu"):
            resolve_scenario("definitely-not-registered")

    def test_factory_name_mismatch_refused(self):
        from repro import scenarios as registry

        register_scenario(
            "tmp-mismatch", lambda: Scenario("other", "wrong name")
        )
        try:
            with pytest.raises(ValueError, match="named"):
                resolve_scenario("tmp-mismatch")
        finally:
            registry._FACTORIES.pop("tmp-mismatch", None)
            registry._RESOLVED.pop("tmp-mismatch", None)

    def test_stream_keys_differ_by_name(self):
        key = derive_key(SEED)
        keys = {scenario_stream_key(key, name) for name in BUILTINS}
        assert len(keys) == len(BUILTINS)


class TestScalarBatchParity:
    """corrupt_word is the reference; corrupt_batch must match it bit
    for bit — on a chunk that does not start at trial 0, so the trial
    indexing (not just the draw function) is exercised."""

    CHUNK = Chunk(start=7, size=48)
    KEY = 0xDEAD_BEEF

    @pytest.mark.parametrize("name", FAULTS)
    def test_muse_words_identical(self, name):
        pytest.importorskip("numpy")
        from repro.engine.limbs import limbs_to_ints
        from repro.orchestrate.corruption import (
            muse_scenario_chunk,
            muse_scenario_word,
        )

        code = muse_80_69()
        scenario = resolve_scenario(name)
        batch = muse_scenario_chunk(scenario, code, self.CHUNK, self.KEY)
        for i in range(self.CHUNK.size):
            scalar = muse_scenario_word(
                scenario, code, self.CHUNK.start + i, self.KEY
            )
            assert limbs_to_ints(batch[i : i + 1])[0] == scalar

    @pytest.mark.parametrize("name", FAULTS)
    def test_rs_words_identical(self, name):
        pytest.importorskip("numpy")
        from repro.orchestrate.corruption import (
            rs_scenario_chunk,
            rs_scenario_word,
        )

        code = rs_144_128()
        scenario = resolve_scenario(name)
        batch = rs_scenario_chunk(scenario, code, self.CHUNK, self.KEY)
        for i in range(self.CHUNK.size):
            scalar = rs_scenario_word(
                scenario, code, self.CHUNK.start + i, self.KEY
            )
            assert list(batch[i]) == list(scalar)

    def test_msed_has_no_word_reference(self):
        from repro.orchestrate.corruption import muse_scenario_word

        with pytest.raises(ValueError, match="msed"):
            muse_scenario_word(resolve_scenario("msed"), muse_80_69(), 0, 1)


class TestTallyInvariance:
    """The (chunk_size, jobs, backend, workers)-invariance contract,
    per scenario."""

    @pytest.mark.parametrize("name", FAULTS)
    def test_chunk_split_and_jobs(self, name):
        simulator = muse_simulator(name)
        whole = simulator.run(trials=400, seed=SEED)
        split = simulator.run(trials=400, seed=SEED, chunk_size=61)
        pooled = simulator.run(trials=400, seed=SEED, chunk_size=61, jobs=2)
        assert whole == split == pooled

    @pytest.mark.parametrize("name", FAULTS)
    def test_rs_chunk_split(self, name):
        simulator = rs_simulator(name)
        whole = simulator.run(trials=240, seed=SEED)
        split = simulator.run(trials=240, seed=SEED, chunk_size=53)
        assert whole == split

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("name", ("mbu", "scrub", "wear"))
    def test_backends_fold_identically(self, name, backend):
        reference = muse_simulator(name, backend="scalar").run(
            trials=120, seed=SEED
        )
        assert (
            muse_simulator(name, backend=backend).run(trials=120, seed=SEED)
            == reference
        )

    @pytest.mark.parametrize("name", FAULTS)
    def test_scalar_sequential_matches_batch(self, name):
        """The numpy-free reference loop is the *same* stream (unlike
        msed, whose sequential fallback deliberately is not)."""
        simulator = muse_simulator(name)
        batch = simulator.run(trials=150, seed=SEED)
        sequential = (
            muse_simulator(name, backend="scalar")
            ._scenario_sequential(
                resolve_scenario(name), Chunk(0, 150), derive_key(SEED)
            )
            .freeze()
        )
        assert sequential == batch

    @pytest.mark.parametrize("name", FAULTS)
    def test_rs_scalar_sequential_matches_batch(self, name):
        simulator = rs_simulator(name)
        batch = simulator.run(trials=120, seed=SEED)
        sequential = (
            rs_simulator(name, backend="scalar")
            ._scenario_sequential(
                resolve_scenario(name), Chunk(0, 120), derive_key(SEED)
            )
            .freeze()
        )
        assert sequential == batch

    def test_two_worker_loopback_identical(self):
        """One session, every fault scenario: the distributed fold must
        be byte-identical to the serial tally."""
        serial = {
            name: muse_simulator(name).run(trials=200, seed=SEED, chunk_size=64)
            for name in FAULTS
        }
        with DistributedSession(local_workers=2) as session:
            for name in FAULTS:
                distributed = muse_simulator(name).run(
                    trials=200, seed=SEED, chunk_size=64, executor=session
                )
                assert distributed == serial[name], name

    def test_scenarios_differ_from_each_other(self):
        """Sanity: distinct scenarios at one seed are distinct streams
        (otherwise every invariance test above is vacuous)."""
        tallies = {
            name: muse_simulator(name).run(trials=300, seed=SEED)
            for name in FAULTS
        }
        assert len({repr(t) for t in tallies.values()}) == len(FAULTS)

    def test_no_numpy_host_falls_back_to_the_same_stream(self):
        """With numpy blocked, auto degrades to the scalar-reference
        sequential loop — which for scenarios is the *same* stream, so
        the tally must match the batch path exactly (regression: the
        scalar path once imported engine.limbs, which needs numpy)."""
        import subprocess
        import sys

        probe = (
            "import sys\n"
            "sys.modules['numpy'] = None\n"
            "from repro.core.codes import muse_80_69\n"
            "from repro.reliability.monte_carlo import MuseMsedSimulator\n"
            "r = MuseMsedSimulator(muse_80_69(), scenario='scrub')"
            ".run(trials=120, seed=99)\n"
            "print(repr(r))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src"},
            cwd=Path(__file__).resolve().parents[2],
        )
        assert result.returncode == 0, result.stderr
        batch = muse_simulator("scrub").run(trials=120, seed=99)
        assert result.stdout.strip() == repr(batch)

    def test_unknown_scenario_fails_at_run(self):
        simulator = muse_simulator("not-a-scenario")
        with pytest.raises(ValueError, match="registered"):
            simulator.run(trials=10, seed=1)


class TestCampaignEscalation:
    def test_zero_event_scenario_cell_gets_clopper_pearson_bound(self):
        """mbu on MUSE(80,69) yields zero silent events at this seed
        (pinned); the campaign must escalate — but to an exact CP tail
        bound, not the msed-stream importance splitter."""
        simulator = muse_simulator("mbu")
        policy = CampaignPolicy(
            base=AdaptivePolicy(
                metric="silent", initial_trials=256, max_trials=2000
            ),
            escalate_after=500,
        )
        [outcome] = CampaignRunner(policy).run([simulator], seed=7)
        assert outcome.escalated
        assert outcome.escalation == "Clopper-Pearson tail bound"
        assert outcome.tail_bound is not None
        assert outcome.tail_bound.lo == 0.0
        assert outcome.tail_bound.hi > 0.0
        assert "Clopper-Pearson" in outcome.describe()

    def test_msed_still_escalates_to_importance_splitting(self):
        simulator = muse_simulator("msed")
        policy = CampaignPolicy(
            base=AdaptivePolicy(
                metric="silent", initial_trials=256, max_trials=2000
            ),
            escalate_after=500,
        )
        [outcome] = CampaignRunner(policy).run([simulator], seed=7)
        if outcome.escalated:
            assert outcome.escalation == "importance splitting"
