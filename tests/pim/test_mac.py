"""Residue-checked MAC tests: homomorphism, fault coverage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pim.mac import (
    CheckedValue,
    ComputeFaultError,
    MacFaultSite,
    ResidueCheckedMac,
    dot_product_with_faults,
    fault_coverage,
)

M = 3621  # the paper's MUSE(268,256) multiplier


class TestHomomorphism:
    """e(f(x, y)) == f(e(x), e(y)) — the paper's Section I property."""

    @given(x=st.integers(0, (1 << 64) - 1), y=st.integers(0, (1 << 64) - 1))
    @settings(max_examples=200)
    def test_addition_commutes_with_residue(self, x, y):
        assert (x + y) % M == ((x % M) + (y % M)) % M

    @given(x=st.integers(0, (1 << 64) - 1), y=st.integers(0, (1 << 64) - 1))
    @settings(max_examples=200)
    def test_multiplication_commutes_with_residue(self, x, y):
        assert (x * y) % M == ((x % M) * (y % M)) % M

    @given(values=st.lists(
        st.tuples(st.integers(0, 65535), st.integers(0, 65535)),
        min_size=1, max_size=16,
    ))
    @settings(max_examples=100)
    def test_mac_shadow_tracks_true_residue(self, values):
        mac = ResidueCheckedMac(M)
        for a, b in values:
            mac.accumulate(CheckedValue.of(a, M), CheckedValue.of(b, M))
        expected = sum(a * b for a, b in values)
        assert mac.verify_and_read() == expected
        assert mac.accumulator.residue == expected % M


class TestFaultDetection:
    def test_multiplier_fault_caught(self):
        result, detected = dot_product_with_faults(
            M, [3, 5, 7], [11, 13, 17], fault_at=1,
            fault_site=MacFaultSite.MULTIPLIER, fault_bit=4,
        )
        assert detected
        assert result is None

    def test_accumulator_fault_caught(self):
        result, detected = dot_product_with_faults(
            M, [3, 5, 7], [11, 13, 17], fault_at=2,
            fault_site=MacFaultSite.ACCUMULATOR, fault_bit=9,
        )
        assert detected

    def test_clean_run_passes(self):
        result, detected = dot_product_with_faults(M, [1, 2], [3, 4])
        assert not detected
        assert result == 11

    def test_single_bit_fault_coverage_is_total(self):
        """A single-bit flip changes the accumulator by +-2^k, never a
        multiple of the odd m, so coverage must be 100%."""
        assert fault_coverage(M, trials=500) == 1.0

    def test_counters(self):
        mac = ResidueCheckedMac(M)
        mac.accumulate(CheckedValue.of(2, M), CheckedValue.of(3, M))
        assert mac.check()
        mac.inject_fault(MacFaultSite.ACCUMULATOR, 5)
        mac.accumulate(CheckedValue.of(1, M), CheckedValue.of(1, M))
        assert not mac.check()
        assert mac.checks_passed == 1
        assert mac.faults_caught == 1

    def test_verify_raises_on_fault(self):
        mac = ResidueCheckedMac(M)
        mac.inject_fault(MacFaultSite.MULTIPLIER, 2)
        mac.accumulate(CheckedValue.of(5, M), CheckedValue.of(5, M))
        with pytest.raises(ComputeFaultError):
            mac.verify_and_read()

    def test_reset(self):
        mac = ResidueCheckedMac(M)
        mac.accumulate(CheckedValue.of(2, M), CheckedValue.of(3, M))
        mac.reset()
        assert mac.verify_and_read() == 0

    def test_modulus_validation(self):
        with pytest.raises(ValueError):
            ResidueCheckedMac(2)

    def test_vector_length_validation(self):
        with pytest.raises(ValueError):
            dot_product_with_faults(M, [1], [1, 2])
