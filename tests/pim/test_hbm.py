"""HBM2-PIM device and redundancy-budget tests."""

import pytest

from repro.pim.hbm import PimRedundancyBudget, ReliablePimDevice


class TestBudget:
    def test_paper_reduction_factor(self):
        """Section VI-B: '2.6x fewer redundancy bits than provisioned'."""
        budget = PimRedundancyBudget()
        assert budget.provisioned_bits == 32
        assert budget.muse_bits == 12
        assert 2.6 <= budget.reduction_factor <= 2.7

    def test_saved_bits_hold_authentication_codes(self):
        """'The saved 20 bits ... provide enough space to store
        cryptographic authentication codes.'"""
        assert PimRedundancyBudget().saved_bits_per_word == 20


class TestReliablePim:
    def test_storage_roundtrip(self):
        device = ReliablePimDevice()
        value = (1 << 256) - 12345
        device.write_word(0, value)
        assert device.read_word(0) == value

    def test_word_width_enforced(self):
        device = ReliablePimDevice()
        with pytest.raises(ValueError):
            device.write_word(0, 1 << 256)

    def test_chip_failure_inside_bank_is_corrected(self):
        device = ReliablePimDevice()
        device.write_word(0, 0xABCDEF << 128)
        original = device.code.layout.extract_symbol(device._store[0], 33)
        device.corrupt_device(0, symbol=33, value=original ^ 0xF)
        assert device.read_word(0) == 0xABCDEF << 128

    def test_dot_product_over_stored_words(self):
        device = ReliablePimDevice()
        a = [3, 5, 7]
        b = [11, 13, 17]
        for i, (x, y) in enumerate(zip(a, b)):
            device.write_word(i, x)
            device.write_word(100 + i, y)
        assert device.dot_product([0, 1, 2], [100, 101, 102]) == (
            3 * 11 + 5 * 13 + 7 * 17
        )

    def test_dot_product_after_storage_fault(self):
        """Storage correction and compute checking compose: the dot
        product over a corrupted-then-corrected word is still right."""
        device = ReliablePimDevice()
        device.write_word(0, 1000)
        device.write_word(1, 2000)
        original = device.code.layout.extract_symbol(device._store[0], 5)
        device.corrupt_device(0, symbol=5, value=original ^ 0x3)
        assert device.dot_product([0], [1]) == 2_000_000

    def test_operand_length_check(self):
        device = ReliablePimDevice()
        device.write_word(0, 1)
        with pytest.raises(ValueError):
            device.dot_product([0], [0, 0])
