"""Cost-model calibration tests against the paper's Table V.

Absolute synthesis numbers cannot be matched by an analytic model;
these tests pin the *relations* the paper's argument depends on, plus
tolerance bands for the primary quantities.
"""

import pytest

from repro.core.codes import muse_80_67, muse_80_69, muse_80_70, muse_144_132
from repro.rs.reed_solomon import rs_80_64, rs_144_128
from repro.vlsi.cost_model import (
    PAPER_GEM5_CYCLES,
    PAPER_TABLE_V,
    ConstantMultiplierCost,
    FastModuloCost,
    muse_code_cost,
)
from repro.vlsi.rs_cost import rs_corrector_cost, rs_encoder_cost

MUSE_CODES = {
    "MUSE(144,132)": muse_144_132,
    "MUSE(80,69)": muse_80_69,
    "MUSE(80,67)": muse_80_67,
    "MUSE(80,70)": muse_80_70,
}


class TestGem5Cycles:
    """The latency column that actually feeds the perf simulation."""

    @pytest.mark.parametrize("name", sorted(MUSE_CODES))
    def test_muse_cycles_match_paper(self, name):
        cost = muse_code_cost(MUSE_CODES[name]())
        enc_cycles, dec_cycles = PAPER_GEM5_CYCLES[name]
        assert cost.gem5_encode_cycles == enc_cycles == 3
        assert cost.gem5_decode_cycles == dec_cycles == 0
        assert cost.correction_cycles == 3

    def test_rs_cycles_match_paper(self):
        for code, name in ((rs_144_128(), "RS(144,128)"), (rs_80_64(), "RS(80,64)")):
            assert rs_encoder_cost(code).cycles == PAPER_GEM5_CYCLES[name][0] == 1
            assert rs_corrector_cost(code).cycles == 1


class TestLatencyBands:
    @pytest.mark.parametrize("name", sorted(MUSE_CODES))
    def test_muse_encoder_latency_within_band(self, name):
        cost = muse_code_cost(MUSE_CODES[name]())
        paper = PAPER_TABLE_V[name]["encoder"][0]
        assert abs(cost.encoder.latency_ns - paper) / paper < 0.25

    @pytest.mark.parametrize("name", sorted(MUSE_CODES))
    def test_muse_corrector_latency_within_band(self, name):
        cost = muse_code_cost(MUSE_CODES[name]())
        paper = PAPER_TABLE_V[name]["corrector"][0]
        assert abs(cost.corrector.latency_ns - paper) / paper < 0.30

    def test_rs_latencies_within_band(self):
        for code, name in ((rs_144_128(), "RS(144,128)"), (rs_80_64(), "RS(80,64)")):
            enc = rs_encoder_cost(code).latency_ns
            cor = rs_corrector_cost(code).latency_ns
            assert abs(enc - PAPER_TABLE_V[name]["encoder"][0]) < 0.1
            assert abs(cor - PAPER_TABLE_V[name]["corrector"][0]) < 0.1


class TestAreaBands:
    @pytest.mark.parametrize("name", sorted(MUSE_CODES))
    def test_muse_encoder_cells_close(self, name):
        cost = muse_code_cost(MUSE_CODES[name]())
        paper = PAPER_TABLE_V[name]["encoder"][1]
        assert abs(cost.encoder.cells - paper) / paper < 0.15

    def test_muse_corrector_cells_reasonable(self):
        """The bidirectional correctors land within 10%; the asymmetric
        MUSE(80,67) ELC synthesizes ~2x smaller than the linear model
        (documented deviation)."""
        for name in ("MUSE(144,132)", "MUSE(80,69)", "MUSE(80,70)"):
            cost = muse_code_cost(MUSE_CODES[name]())
            paper = PAPER_TABLE_V[name]["corrector"][1]
            assert abs(cost.corrector.cells - paper) / paper < 0.10
        loose = muse_code_cost(muse_80_67())
        paper = PAPER_TABLE_V["MUSE(80,67)"]["corrector"][1]
        assert cost_ratio(loose.corrector.cells, paper) < 2.2

    def test_rs_cells_close(self):
        for code, name in ((rs_144_128(), "RS(144,128)"), (rs_80_64(), "RS(80,64)")):
            enc = rs_encoder_cost(code)
            paper = PAPER_TABLE_V[name]["encoder"][1]
            assert abs(enc.cells - paper) / paper < 0.25


class TestStructuralRelations:
    """The claims Section VII-B makes in prose."""

    def test_muse_uses_an_order_of_magnitude_more_area_than_rs(self):
        """'MUSE(80,67) code uses 12x more silicon area than RS(80,64)'."""
        muse = muse_code_cost(muse_80_67())
        rs = rs_encoder_cost(rs_80_64())
        ratio = muse.encoder.area_um2 / rs.area_um2
        assert 5.0 < ratio < 25.0

    def test_muse_encoder_two_cycles_slower_than_rs(self):
        """'...adding two more clock cycles of latency.'"""
        muse = muse_code_cost(muse_80_67())
        rs = rs_encoder_cost(rs_80_64())
        assert muse.encoder.cycles - rs.cycles == 2

    def test_corrector_never_faster_than_half_encoder(self):
        for builder in MUSE_CODES.values():
            cost = muse_code_cost(builder())
            assert cost.corrector.latency_ns > 0.5 * cost.encoder.latency_ns

    def test_big_multiplier_dominates_modulo_latency(self):
        modulo = FastModuloCost(muse_144_132())
        assert (
            modulo.first_multiplier.latency_ns
            > modulo.second_multiplier.latency_ns
        )

    def test_specialization_reduces_cells(self):
        """Zero partial products must not be priced.

        0x5555...5 is Booth-dense (every radix-4 digit is nonzero) while
        an isolated power of two recodes to two digits; note the
        all-ones constant is *sparse* under Booth (it is 2^64 - 1).
        """
        alternating = int("55" * 8, 16)
        dense = ConstantMultiplierCost(constant=alternating, input_bits=64,
                                       output_bits=128)
        sparse = ConstantMultiplierCost(constant=1 << 63, input_bits=64,
                                        output_bits=128)
        assert sparse.booth.nonzero_partial_products < (
            dense.booth.nonzero_partial_products
        )
        assert sparse.cells < dense.cells
        assert sparse.latency_ns < dense.latency_ns


def cost_ratio(measured: float, paper: float) -> float:
    big, small = max(measured, paper), min(measured, paper)
    return big / small


class TestBlockCostApi:
    def test_describe_mentions_cycles(self):
        cost = muse_code_cost(muse_144_132())
        assert "3 cycles" in cost.encoder.describe()
