"""Cell-library and clock-cycle computation tests."""

from repro.vlsi.cells import CLOCK_PERIOD_NS, NANGATE15, cycles_for


class TestClock:
    def test_clock_period_is_2400mhz(self):
        assert abs(CLOCK_PERIOD_NS - 0.41667) < 1e-3

    def test_cycles_for_paper_latencies(self):
        """Table V gem5 columns: 1.129ns -> 3 cycles; 0.219ns -> 1."""
        assert cycles_for(1.129) == 3
        assert cycles_for(1.048) == 3
        assert cycles_for(0.219) == 1
        assert cycles_for(0.376) == 1

    def test_cycle_boundaries(self):
        assert cycles_for(0.0) == 0
        assert cycles_for(CLOCK_PERIOD_NS) == 1
        assert cycles_for(CLOCK_PERIOD_NS + 1e-6) == 2


class TestLibrary:
    def test_fa_is_two_xor(self):
        assert NANGATE15.fa_delay() == 2 * NANGATE15.xor2_delay

    def test_cpa_grows_logarithmically(self):
        lib = NANGATE15
        assert lib.cpa_delay(1) == lib.xor2_delay
        assert lib.cpa_delay(64) < lib.cpa_delay(256)
        # doubling width adds exactly one prefix level
        assert (
            lib.cpa_delay(256) - lib.cpa_delay(128)
            == lib.cpa_level_factor * lib.xor2_delay
        )
