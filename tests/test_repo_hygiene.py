"""Repo hygiene: build artifacts can never be committed again.

A stray ``src/repro/orchestrate/__pycache__`` once rode into a commit;
``.gitignore`` now blocks the whole class and this test keeps the git
index honest even if an ignore rule is bypassed with ``git add -f``.
"""

import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def tracked_files() -> list[str]:
    try:
        output = subprocess.run(
            ["git", "ls-files"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        pytest.skip("git unavailable or not a work tree")
    if not output.strip():
        pytest.skip("empty git index (exported tree?)")
    return output.splitlines()


def test_no_bytecode_or_pycache_tracked():
    offenders = [
        path
        for path in tracked_files()
        if "__pycache__" in path or path.endswith((".pyc", ".pyo"))
    ]
    assert not offenders, (
        f"compiled python artifacts are tracked: {offenders}; "
        f"git rm -r --cached them (they are .gitignore'd)"
    )


def test_gitignore_blocks_pycache_everywhere():
    text = (REPO_ROOT / ".gitignore").read_text()
    assert "__pycache__/" in text
    assert "src/**/__pycache__/" in text  # belt and braces for src
