"""Session lifecycle, manifest schema, spans, and the zero-cost gate.

The two properties everything else rides on:

* ``telemetry_session(None)`` and "no session at all" are true no-ops
  — the module helpers do nothing, allocate nothing, and a forked
  child (different PID) sees no session even though it inherited the
  module global;
* a closed session leaves a self-consistent run directory: the event
  log's parsed count equals the manifest's ``events_written``, and the
  manifest's stage breakdown matches the spans that were recorded.
"""

import json

import pytest

from repro import telemetry
from repro.telemetry import (
    EVENT_LOG_NAME,
    MANIFEST_NAME,
    PROM_NAME,
    Telemetry,
    read_events,
    set_current,
    telemetry_session,
)
from repro.telemetry.log import ENV_VAR, log_enabled, log_level, log_line
from repro.telemetry.manifest import MANIFEST_FORMAT, stage_breakdown


class TestDisabledGate:
    def test_none_run_dir_yields_none_and_installs_nothing(self):
        with telemetry_session(None, experiment="x") as tel:
            assert tel is None
            assert telemetry.current() is None

    def test_helpers_are_noops_without_a_session(self):
        assert telemetry.current() is None
        telemetry.counter("c")
        telemetry.gauge("g", 1)
        telemetry.histogram("h", 0.5)
        telemetry.event("e", field=1)
        telemetry.record_spec("g", "fp")
        telemetry.attach_summary({"x": 1})
        telemetry.merge_worker_counters({"c": 1}, worker="w")
        with telemetry.span("decode_chunk", point="x"):
            pass  # nullcontext

    def test_forked_child_sees_no_session(self, tmp_path):
        """A pool child inherits ``_CURRENT`` on fork; the owner-PID
        guard must make it inert there (simulated by faking the pid)."""
        tel = Telemetry(tmp_path / "run")
        previous = set_current(tel)
        try:
            assert telemetry.current() is tel
            tel._pid += 1  # pretend we are the forked child
            assert telemetry.current() is None
            telemetry.counter("c")  # must not touch the parent registry
            assert tel.registry.counter_value("c") == 0
        finally:
            set_current(previous)


class TestSessionLifecycle:
    def test_run_dir_contents_and_event_bracketing(self, tmp_path):
        run_dir = tmp_path / "run"
        with telemetry_session(
            run_dir, experiment="table4", seed=7, backend="numpy",
            distribute=None,
        ) as tel:
            tel.counter("chunks.computed", group="muse+2")
            with tel.span("decode_chunk", point="muse+2", trials=100):
                pass
        events = list(read_events(run_dir / EVENT_LOG_NAME))
        assert events[0]["type"] == "run.start"
        assert events[0]["experiment"] == "table4"
        assert "distribute" not in events[0]  # None meta keys dropped
        assert events[-1]["type"] == "run.close"
        assert (run_dir / PROM_NAME).exists()
        assert (run_dir / MANIFEST_NAME).exists()

    def test_manifest_is_consistent_with_the_event_log(self, tmp_path):
        run_dir = tmp_path / "run"
        with telemetry_session(run_dir, experiment="t", seed=1) as tel:
            with tel.span("decode_chunk", point="a"):
                pass
            with tel.span("engine_build", backend="scalar"):
                pass
            tel.record_spec("a", "fp-a")
            tel.attach_summary({"total_trials": 100})
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        events = list(read_events(run_dir / EVENT_LOG_NAME))
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["experiment"] == "t"
        assert manifest["seed"] == 1
        assert manifest["events_written"] == len(events)
        assert manifest["spec_fingerprints"] == {"a": "fp-a"}
        assert manifest["summary"] == {"total_trials": 100}
        assert set(manifest["stages"]) == {"decode_chunk", "engine_build"}
        assert manifest["stages"]["decode_chunk"]["count"] == 1
        assert manifest["wall_seconds"] >= 0

    def test_session_restores_previous_on_exit(self, tmp_path):
        with telemetry_session(tmp_path / "outer") as outer:
            with telemetry_session(tmp_path / "inner") as inner:
                assert telemetry.current() is inner
            assert telemetry.current() is outer
        assert telemetry.current() is None

    def test_manifest_written_even_when_the_body_raises(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(RuntimeError, match="boom"):
            with telemetry_session(run_dir, experiment="t"):
                raise RuntimeError("boom")
        assert (run_dir / MANIFEST_NAME).exists()
        assert telemetry.current() is None

    def test_close_is_idempotent(self, tmp_path):
        tel = Telemetry(tmp_path / "run")
        tel.close()
        written = tel.events_written
        tel.close()
        assert tel.events_written == written


class TestSpans:
    def test_metric_labels_are_a_subset_attrs_are_not(self, tmp_path):
        tel = Telemetry(tmp_path / "run")
        with tel.span("decode_chunk", point="muse+2", trials=512):
            pass
        tel.close()
        hist = [
            h for h in json.loads(
                (tel.run_dir / MANIFEST_NAME).read_text()
            )["metrics"]["histograms"]
            if h["name"] == "span.decode_chunk"
        ]
        assert hist[0]["labels"] == {"point": "muse+2"}  # trials: event only
        span = [
            e for e in read_events(tel.run_dir / EVENT_LOG_NAME)
            if e.get("type") == "span"
        ][0]
        assert span["attrs"] == {"point": "muse+2", "trials": 512}
        assert span["seconds"] >= 0
        assert span["start"] >= 0

    def test_raising_block_still_records_with_error_flag(self, tmp_path):
        tel = Telemetry(tmp_path / "run")
        with pytest.raises(ValueError):
            with tel.span("decode_chunk", point="x"):
                raise ValueError("sim failed")
        tel.close()
        span = [
            e for e in read_events(tel.run_dir / EVENT_LOG_NAME)
            if e.get("type") == "span"
        ][0]
        assert span["error"] is True


class TestStageBreakdown:
    def test_folds_span_histograms_across_labels(self):
        snapshot = {
            "histograms": [
                {"name": "span.decode_chunk", "labels": {"point": "a"},
                 "count": 2, "sum": 1.0, "max": 0.75, "buckets": []},
                {"name": "span.decode_chunk", "labels": {"point": "b"},
                 "count": 1, "sum": 0.5, "max": 0.5, "buckets": []},
                {"name": "other", "labels": {},
                 "count": 9, "sum": 9.0, "max": 9.0, "buckets": []},
            ]
        }
        stages = stage_breakdown(snapshot)
        assert stages == {
            "decode_chunk": {"count": 3, "seconds": 1.5, "max_seconds": 0.75}
        }


class TestLogGate:
    def test_levels(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert log_level() == 1  # default: normal
        assert log_enabled("normal") and not log_enabled("debug")
        monkeypatch.setenv(ENV_VAR, "silent")
        assert not log_enabled("normal")
        monkeypatch.setenv(ENV_VAR, "DEBUG")  # case-insensitive
        assert log_enabled("debug")
        monkeypatch.setenv(ENV_VAR, "bogus")  # unknown -> normal
        assert log_level() == 1

    def test_log_line_honours_gate_and_stream(self, monkeypatch):
        import io

        stream = io.StringIO()
        monkeypatch.setenv(ENV_VAR, "silent")
        log_line("muted", stream=stream)
        assert stream.getvalue() == ""
        monkeypatch.setenv(ENV_VAR, "normal")
        log_line("spoken", stream=stream)
        log_line("debug chatter", level="debug", stream=stream)
        assert stream.getvalue() == "spoken\n"
