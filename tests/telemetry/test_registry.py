"""Metrics registry units: counters, gauges, histograms, Prometheus.

The contracts the rest of the telemetry stack leans on:

* metrics are keyed by ``(name, sorted labels)`` — label order never
  splits a series, distinct label values always do;
* histogram buckets are the **fixed** shared edges, so merging two
  histograms (worker → coordinator) is element-wise addition and the
  exposition format's cumulative ``le`` counts are consistent;
* ``render_prometheus`` emits the conventional text format with
  sanitised names, so a node_exporter textfile collector can scrape
  ``metrics.prom`` unmodified.
"""

import json

import pytest

from repro.telemetry.registry import (
    BUCKET_EDGES,
    Histogram,
    MetricsRegistry,
)


class TestBucketEdges:
    def test_three_per_decade_sorted_and_fixed(self):
        assert len(BUCKET_EDGES) == 33  # 11 decades x (1, 2, 5)
        assert list(BUCKET_EDGES) == sorted(BUCKET_EDGES)
        assert BUCKET_EDGES[0] == pytest.approx(1e-6)
        assert BUCKET_EDGES[-1] == pytest.approx(5e4)


class TestCounters:
    def test_increment_and_default_zero(self):
        registry = MetricsRegistry()
        assert registry.counter_value("chunks.computed") == 0
        registry.counter_inc("chunks.computed")
        registry.counter_inc("chunks.computed", 2)
        assert registry.counter_value("chunks.computed") == 3

    def test_label_order_is_one_series_values_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter_inc("c", backend="numpy", point="muse+2")
        registry.counter_inc("c", point="muse+2", backend="numpy")
        registry.counter_inc("c", point="muse+4", backend="numpy")
        assert registry.counter_value("c", backend="numpy", point="muse+2") == 2
        assert registry.counter_value("c", backend="numpy", point="muse+4") == 1

    def test_merge_worker_counters_lands_under_labels(self):
        registry = MetricsRegistry()
        registry.merge_counters(
            {"worker.chunks_executed": 4, "worker.chaos.reset": 0},
            worker="local-0",
        )
        assert (
            registry.counter_value("worker.chunks_executed", worker="local-0")
            == 4
        )
        # zero deltas never materialise a series
        assert not any(
            entry["name"] == "worker.chaos.reset"
            for entry in registry.snapshot()["counters"]
        )


class TestGauges:
    def test_set_to_latest(self):
        registry = MetricsRegistry()
        registry.gauge_set("workers.connected", 2)
        registry.gauge_set("workers.connected", 1)
        snap = registry.snapshot()["gauges"]
        assert snap == [
            {"name": "workers.connected", "labels": {}, "value": 1}
        ]


class TestHistogram:
    def test_le_bucketing_and_overflow(self):
        hist = Histogram()
        hist.observe(1e-6)  # exactly the first edge -> bucket 0 (le)
        hist.observe(1.5e-6)  # between edges -> bucket 1 (le 2e-6)
        hist.observe(1e9)  # beyond the last edge -> overflow slot
        assert hist.buckets[0] == 1
        assert hist.buckets[1] == 1
        assert hist.buckets[-1] == 1
        assert hist.count == 3
        assert hist.sum == pytest.approx(1e9 + 2.5e-6)
        assert hist.max == pytest.approx(1e9)

    def test_merge_is_elementwise_addition(self):
        """The shared-edges property the worker->coordinator fold uses."""
        a, b = Histogram(), Histogram()
        for value in (0.001, 0.5, 3.0):
            a.observe(value)
        for value in (0.002, 7.0):
            b.observe(value)
        merged = [x + y for x, y in zip(a.buckets, b.buckets)]
        c = Histogram()
        for value in (0.001, 0.5, 3.0, 0.002, 7.0):
            c.observe(value)
        assert merged == c.buckets


class TestSnapshot:
    def test_snapshot_is_json_roundtrippable_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter_inc("b.second")
        registry.counter_inc("a.first")
        registry.histogram_observe("span.decode_chunk", 0.01, point="x")
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert [c["name"] for c in snap["counters"]] == ["a.first", "b.second"]
        hist = snap["histograms"][0]
        assert hist["count"] == 1
        assert len(hist["buckets"]) == len(BUCKET_EDGES) + 1


class TestPrometheusRender:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter_inc("chunks.computed", 3, group="muse+2")
        registry.gauge_set("workers.connected", 2)
        text = registry.render_prometheus()
        assert "# TYPE chunks_computed counter" in text
        assert 'chunks_computed{group="muse+2"} 3' in text
        assert "# TYPE workers_connected gauge" in text
        assert "workers_connected 2" in text
        assert text.endswith("\n")

    def test_histogram_expansion_is_cumulative(self):
        registry = MetricsRegistry()
        registry.histogram_observe("span.decode_chunk", 1.5e-6)
        registry.histogram_observe("span.decode_chunk", 1e9)
        text = registry.render_prometheus()
        assert "# TYPE span_decode_chunk histogram" in text
        # the 2e-6 bucket holds the small observation; every later
        # finite bucket repeats the cumulative 1; +Inf holds the count
        assert 'span_decode_chunk_bucket{le="2e-06"} 1' in text
        assert 'span_decode_chunk_bucket{le="50000"} 1' in text
        assert 'span_decode_chunk_bucket{le="+Inf"} 2' in text
        assert "span_decode_chunk_count 2" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter_inc("c", point='say "hi"\nback\\slash')
        text = registry.render_prometheus()
        assert r'point="say \"hi\"\nback\\slash"' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
