"""Post-hoc reports: the event log as independent witness.

Unit half: :func:`summarize_events` folds a synthetic stream into the
report's numbers (stages, slowest points, fleet health, chaos, cache).

Acceptance half (the ISSUE's criterion): a chaos-cocktail 2-worker
loopback run under telemetry produces an event log from which
``repro-muse report`` reconstructs fault / rejoin / requeue counts
**matching the coordinator's own totals** — while the tally stays
byte-identical to the serial run.
"""

import json

from repro.core.codes import muse_80_69
from repro.distribute import DistributedSession
from repro.distribute.cache import ResultCache
from repro.distribute.chaos import FaultPlan, parse_chaos
from repro.orchestrate import CodeRef
from repro.reliability.monte_carlo import MuseMsedSimulator, build_table_iv
from repro.telemetry import (
    EVENT_LOG_NAME,
    MANIFEST_NAME,
    read_events,
    render_report,
    telemetry_session,
)
from repro.telemetry.report import load_manifest, summarize_events

SEED = 5


class TestSummarizeEvents:
    def test_spans_fold_into_stages_and_points(self):
        events = [
            {"type": "span", "name": "decode_chunk", "seconds": 0.5,
             "attrs": {"point": "muse+2"}},
            {"type": "span", "name": "decode_chunk", "seconds": 1.5,
             "attrs": {"point": "muse+2"}},
            {"type": "span", "name": "engine_build", "seconds": 0.25,
             "attrs": {"backend": "numba"}},
        ]
        summary = summarize_events(events)
        assert summary["total_events"] == 3
        assert summary["stages"]["decode_chunk"] == {
            "count": 2, "seconds": 2.0, "max": 1.5,
        }
        assert summary["points"] == {
            "muse+2": {"count": 2, "seconds": 2.0, "max": 1.5}
        }

    def test_fleet_health_and_requeues(self):
        events = [
            {"type": "worker.join", "worker": "a"},
            {"type": "worker.rejoin", "worker": "a"},
            {"type": "worker.leave", "worker": "a", "requeued": 2},
            {"type": "lease.expired", "requeued": 1},
            {"type": "chunk.failed", "task": 3, "requeued": 1},
            {"type": "protocol.error", "worker": "a", "error": "torn"},
        ]
        fleet = summarize_events(events)["fleet"]
        assert fleet["worker.join"] == 1
        assert fleet["worker.rejoin"] == 1
        assert fleet["worker.leave"] == 1
        assert fleet["lease.expired"] == 1
        assert fleet["chunk.failed"] == 1
        assert fleet["protocol.error"] == 1
        assert fleet["chunks_requeued"] == 4

    def test_chaos_from_events_and_worker_counters(self):
        events = [
            {"type": "chaos.fault", "kind": "journal", "scope": "run"},
            {"type": "telemetry.worker", "worker": "local-0",
             "counters": {"worker.chaos.reset": 2,
                          "worker.chunks_executed": 5}},
            {"type": "telemetry.worker", "worker": "local-1",
             "counters": {"worker.chaos.reset": 1,
                          "worker.chaos.dup": 1}},
        ]
        chaos = summarize_events(events)["chaos"]
        assert chaos == {"journal": 1, "reset": 3, "dup": 1}

    def test_cache_traffic(self):
        events = [
            {"type": "cache.lookup", "hit": True, "trials": 100},
            {"type": "cache.lookup", "hit": True, "trials": 50},
            {"type": "cache.lookup", "hit": False},
        ]
        fleet = summarize_events(events)["fleet"]
        assert fleet["cache_hits"] == 2
        assert fleet["cache_misses"] == 1


class TestRenderReport:
    def test_empty_run_dir_says_so(self, tmp_path):
        text = render_report(tmp_path)
        assert "no event log or manifest found" in text

    def test_report_reads_events_without_a_manifest(self, tmp_path):
        """A crashed run leaves no manifest; the report still works."""
        with telemetry_session(tmp_path, experiment="t") as tel:
            with tel.span("decode_chunk", point="muse+2"):
                pass
            tel._event_log.flush()
            (tmp_path / MANIFEST_NAME).unlink(missing_ok=True)
            text = render_report(tmp_path)
        assert "time in stage:" in text
        assert "decode_chunk" in text
        assert "slowest points" in text
        assert load_manifest("/nonexistent") is None


class TestCacheIntrospection:
    def test_second_run_shows_cache_hits(self, tmp_path):
        from repro.reliability.sampling.sequential import AdaptivePolicy

        # the result cache only rides the adaptive (campaign) path
        cache_dir = str(tmp_path / "cache")
        kwargs = dict(
            seed=3,
            cache_dir=cache_dir,
            adaptive=AdaptivePolicy(initial_trials=50, max_trials=100),
        )
        with telemetry_session(tmp_path / "cold"):
            cold = build_table_iv(**kwargs)
        with telemetry_session(tmp_path / "warm"):
            warm = build_table_iv(**kwargs)
        assert [p.result for p in warm.points] == [
            p.result for p in cold.points
        ]
        summary = summarize_events(
            read_events(tmp_path / "warm" / EVENT_LOG_NAME)
        )
        hits = summary["fleet"].get("cache_hits", 0)
        assert hits >= 1
        manifest = json.loads(
            (tmp_path / "warm" / MANIFEST_NAME).read_text()
        )
        counters = {
            (c["name"],): c["value"] for c in manifest["metrics"]["counters"]
            if not c["labels"]
        }
        assert counters[("cache.hits",)] == hits  # log and registry agree


def _probe_cocktail() -> str:
    """A chaos spec whose ``reset`` rule provably fires for local-0
    within its first 6 events (per-(scope, kind) schedules are pure
    functions of the seed, so this probe is exact, not statistical)."""
    for seed in range(300):
        spec = f"seed={seed},reset=0.3,dup=0.2"
        plan = FaultPlan(parse_chaos(spec), "local-0")
        if any(plan.should("reset") for _ in range(6)):
            return spec
    raise AssertionError("no early-reset cocktail seed found")


class TestChaosCocktailAcceptance:
    def test_report_matches_coordinator_totals(self, tmp_path):
        """The ISSUE's acceptance criterion, end to end."""
        spec = _probe_cocktail()
        sim = MuseMsedSimulator(
            muse_80_69(),
            backend="auto",
            code_ref=CodeRef("repro.core.codes:muse_80_69"),
        )
        serial = sim.run(900, seed=SEED, chunk_size=50)
        run_dir = tmp_path / "run"
        with telemetry_session(run_dir, experiment="loopback",
                               chaos=spec) as tel:
            with DistributedSession(local_workers=2, chaos=spec) as session:
                chaotic = sim.run(
                    900, seed=SEED, chunk_size=50, executor=session
                )
            totals = {
                "rejoins": session.rejoins,
                "protocol_errors": session.protocol_errors,
                "requeues": session._queue.requeues,
            }
            registry_chaos = sum(
                entry["value"]
                for entry in tel.registry.snapshot()["counters"]
                if entry["name"].startswith("worker.chaos.")
            )
        assert chaotic == serial  # chaos moved work around, never results

        summary = summarize_events(read_events(run_dir / EVENT_LOG_NAME))
        fleet = summary["fleet"]
        assert fleet["worker.join"] == 2
        assert fleet.get("worker.rejoin", 0) == totals["rejoins"]
        assert fleet.get("protocol.error", 0) == totals["protocol_errors"]
        assert fleet.get("chunks_requeued", 0) == totals["requeues"]
        assert totals["rejoins"] >= 1  # the probed reset actually fired
        assert sum(summary["chaos"].values()) == registry_chaos
        assert summary["chaos"].get("reset", 0) >= 1

        # the manifest of a distributed run names every spec it folded
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        assert manifest["spec_fingerprints"]

        # ... and the rendered report surfaces all of it
        text = render_report(run_dir)
        assert "fleet health:" in text
        assert "chaos faults:" in text
        assert "worker.rejoin" in text
