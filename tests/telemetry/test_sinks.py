"""Durable sinks: CRC'd event log and Prometheus textfile.

The event log inherits the checkpoint journal's torn-tail discipline
(CRC per line, longest-valid-prefix loads) but, being advisory, buffers
:data:`FLUSH_EVERY` events per fsync'd append — these tests pin both
halves: nothing is lost silently, nothing is trusted past a bad CRC.
"""

from repro.orchestrate.persist import decode_crc_line, encode_crc_line
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sinks import (
    FLUSH_EVERY,
    EventLogSink,
    PrometheusTextfileSink,
    read_events,
)


class TestCrcLines:
    def test_round_trip(self):
        record = {"type": "span", "seconds": 0.25, "attrs": {"point": "x"}}
        assert decode_crc_line(encode_crc_line(record)) == record

    def test_key_order_does_not_change_the_line(self):
        a = encode_crc_line({"x": 1, "y": 2})
        b = encode_crc_line({"y": 2, "x": 1})
        assert a == b

    def test_tampered_payload_rejected(self):
        line = encode_crc_line({"type": "run.start", "seed": 7})
        assert decode_crc_line(line.replace(b"7", b"8")) is None

    def test_torn_line_rejected(self):
        line = encode_crc_line({"type": "run.start"})
        assert decode_crc_line(line[: len(line) // 2]) is None
        assert decode_crc_line(b"not json at all\n") is None


class TestEventLogSink:
    def test_buffers_until_flush(self, tmp_path):
        sink = EventLogSink(tmp_path / "events.jsonl")
        sink.emit({"type": "a"})
        sink.emit({"type": "b"})
        assert not sink.path.exists()  # advisory: batched, not per-event
        assert sink.events_written == 2  # buffered events still count
        sink.flush()
        assert [e["type"] for e in read_events(sink.path)] == ["a", "b"]
        assert sink.events_written == 2

    def test_auto_flush_at_batch_size(self, tmp_path):
        sink = EventLogSink(tmp_path / "events.jsonl")
        for index in range(FLUSH_EVERY):
            sink.emit({"type": "tick", "i": index})
        assert sink.path.exists()
        assert len(list(read_events(sink.path))) == FLUSH_EVERY

    def test_close_flushes_the_tail(self, tmp_path):
        sink = EventLogSink(tmp_path / "events.jsonl")
        sink.emit({"type": "only"})
        sink.close()
        assert [e["type"] for e in read_events(sink.path)] == ["only"]


class TestReadEvents:
    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(read_events(tmp_path / "absent.jsonl")) == []

    def test_torn_tail_keeps_valid_prefix(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = EventLogSink(path)
        for index in range(3):
            sink.emit({"type": "tick", "i": index})
        sink.flush()
        with open(path, "ab") as handle:
            handle.write(b'{"type": "torn", "crc"')  # crash mid-append
        kept = list(read_events(path))
        assert [e["i"] for e in kept] == [0, 1, 2]

    def test_corruption_stops_the_parse_there(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = encode_crc_line({"type": "a"})
        bad = encode_crc_line({"type": "b"}).replace(b'"b"', b'"c"')
        path.write_bytes(good + bad + encode_crc_line({"type": "d"}))
        assert [e["type"] for e in read_events(path)] == ["a"]


class TestPrometheusTextfileSink:
    def test_throttles_then_force_writes(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter_inc("c")
        sink = PrometheusTextfileSink(tmp_path / "metrics.prom",
                                      min_interval=3600.0)
        assert sink.write(registry) is True
        registry.counter_inc("c")
        assert sink.write(registry) is False  # inside the interval
        assert "c 1" in sink.path.read_text()
        assert sink.write(registry, force=True) is True
        assert "c 2" in sink.path.read_text()

    def test_zero_interval_always_writes(self, tmp_path):
        registry = MetricsRegistry()
        sink = PrometheusTextfileSink(tmp_path / "m.prom", min_interval=0.0)
        assert sink.write(registry) is True
        assert sink.write(registry) is True
