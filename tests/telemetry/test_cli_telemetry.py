"""CLI surface of the telemetry subsystem.

Pins the same contracts the other observability flags carry:
``--telemetry-dir`` is threaded (never silently dropped), the
``report`` subcommand renders from a run directory on stdout, and a
CLI run with the flag leaves a complete run directory behind.
"""

import pytest

from repro.cli import TELEMETRY_EXPERIMENTS, build_parser, run
from repro.telemetry import EVENT_LOG_NAME, MANIFEST_NAME, PROM_NAME


class TestTelemetryDirThreading:
    def _capture(self, monkeypatch, module, argv):
        captured = {}

        def fake_main(**kwargs):
            captured.update(kwargs)
            return ""

        monkeypatch.setattr(module, "main", fake_main)
        assert run(build_parser().parse_args(argv)) == 0
        return captured

    @pytest.mark.parametrize("experiment", TELEMETRY_EXPERIMENTS)
    def test_flag_threaded_to_every_telemetry_experiment(
        self, monkeypatch, experiment
    ):
        from repro import cli

        module = {
            "table4": cli.table4,
            "ablation-shuffle": cli.ablation_shuffle,
            "ablation-frontier": cli.ablation_frontier,
        }[experiment]
        captured = self._capture(
            monkeypatch, module, [experiment, "--telemetry-dir", "/tmp/tel"]
        )
        assert captured["telemetry_dir"] == "/tmp/tel"

    def test_flag_rejected_where_it_would_be_dropped(self, capsys):
        args = build_parser().parse_args(
            ["table3", "--telemetry-dir", "/tmp/tel"]
        )
        assert run(args) == 2
        assert "--telemetry-dir" in capsys.readouterr().err

    def test_all_gets_per_experiment_subdirs(self, monkeypatch, tmp_path):
        """The sweep mirrors --checkpoint-dir: one subdir per
        experiment, so two event logs can never interleave."""
        import os

        import repro.cli as cli

        captured = []
        monkeypatch.setattr(
            cli, "run_all", lambda tasks, **_: captured.extend(tasks)
        )
        tel = str(tmp_path / "tel")
        assert run(build_parser().parse_args(["all", "--telemetry-dir", tel])) == 0
        dirs = {
            task.name: dict(task.kwargs).get("telemetry_dir")
            for task in captured
            if task.name in TELEMETRY_EXPERIMENTS
        }
        assert dirs == {
            name: os.path.join(tel, name) for name in TELEMETRY_EXPERIMENTS
        }


class TestReportSubcommand:
    def test_report_without_rundir_is_a_usage_error(self, capsys):
        args = build_parser().parse_args(["report"])
        assert run(args) == 2
        assert "RUNDIR" in capsys.readouterr().err

    def test_rundir_without_report_is_a_usage_error(self, capsys):
        args = build_parser().parse_args(["table3", "/tmp/somewhere"])
        assert run(args) == 2
        assert "report" in capsys.readouterr().err

    def test_end_to_end_run_then_report(self, tmp_path, capsys):
        """A real (tiny) table4 run with --telemetry-dir leaves a full
        run directory, and ``repro-muse report`` summarises it."""
        run_dir = tmp_path / "tel"
        args = build_parser().parse_args(
            ["table4", "--trials", "40", "--telemetry-dir", str(run_dir)]
        )
        assert run(args) == 0
        capsys.readouterr()  # drop the table itself
        for name in (EVENT_LOG_NAME, PROM_NAME, MANIFEST_NAME):
            assert (run_dir / name).exists()
        assert run(build_parser().parse_args(["report", str(run_dir)])) == 0
        out = capsys.readouterr().out
        assert f"telemetry report: {run_dir}" in out
        assert "run: experiment=table4" in out
        assert "time in stage:" in out
        assert "decode_chunk" in out
