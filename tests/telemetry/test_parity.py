"""The non-perturbation invariant: telemetry never changes a tally.

Instrumentation reads clocks and counts events — it must never touch
an RNG stream, a chunk plan, or a fold.  These tests pin the
acceptance criterion directly: results are **byte-identical** with
telemetry enabled vs disabled, across every registered backend, across
chunk splits, through the process pool (whose forked children must
stay silently inert), and through a 2-worker loopback fleet.
"""

import json

import pytest

from repro.core.codes import muse_80_69
from repro.distribute import DistributedSession
from repro.engine import available_backends
from repro.experiments import table4
from repro.orchestrate import CodeRef
from repro.reliability.monte_carlo import MuseMsedSimulator
from repro.telemetry import MANIFEST_NAME, telemetry_session

SEED = 5


def simulator(backend="auto"):
    return MuseMsedSimulator(
        muse_80_69(),
        backend=backend,
        code_ref=CodeRef("repro.core.codes:muse_80_69"),
    )


class TestTallyParity:
    @pytest.mark.parametrize("backend", available_backends())
    def test_every_backend_unchanged_under_telemetry(self, tmp_path, backend):
        sim = simulator(backend)
        baseline = sim.run(300, seed=SEED, chunk_size=64)
        with telemetry_session(tmp_path / "run", backend=backend):
            observed = sim.run(300, seed=SEED, chunk_size=64)
        assert observed == baseline

    @pytest.mark.parametrize("chunk_size", (None, 50, 128))
    def test_every_chunk_split_unchanged_under_telemetry(
        self, tmp_path, chunk_size
    ):
        sim = simulator()
        baseline = sim.run(400, seed=SEED, chunk_size=chunk_size)
        with telemetry_session(tmp_path / "run"):
            observed = sim.run(400, seed=SEED, chunk_size=chunk_size)
        assert observed == baseline

    def test_process_pool_children_stay_inert_and_identical(self, tmp_path):
        """Forked pool workers inherit the session global; the PID
        guard must keep them from logging — and from diverging."""
        sim = simulator()
        baseline = sim.run(400, seed=SEED, jobs=2, chunk_size=100)
        with telemetry_session(tmp_path / "run") as tel:
            observed = sim.run(400, seed=SEED, jobs=2, chunk_size=100)
            events_after_run = tel.events_written
        assert observed == baseline
        # only this process's events (run.start) — nothing from children
        assert events_after_run >= 1

    def test_two_worker_loopback_unchanged_under_telemetry(self, tmp_path):
        sim = simulator()
        baseline = sim.run(600, seed=SEED, chunk_size=50)
        with telemetry_session(tmp_path / "run", distribute="local:2"):
            with DistributedSession(local_workers=2) as session:
                observed = sim.run(
                    600, seed=SEED, chunk_size=50, executor=session
                )
        assert observed == baseline


class TestTable4Parity:
    def test_build_with_telemetry_dir_matches_without(self, tmp_path):
        run_dir = tmp_path / "run"
        plain = table4.build(trials=60, seed=3)
        observed = table4.build(
            trials=60, seed=3, telemetry_dir=str(run_dir)
        )
        assert table4.details(observed) == table4.details(plain)
        # ... and the manifest carries exactly those tallies
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        assert manifest["summary"] == table4.details(plain)
        assert manifest["experiment"] == "table4"
        assert manifest["seed"] == 3
        assert manifest["trials"] == 60
        assert "decode_chunk" in manifest["stages"]
        # spec fingerprints are a distributed-path artefact (specs only
        # exist where work crosses a process boundary) — pinned in
        # tests/telemetry/test_report.py's loopback run instead.
        assert manifest["spec_fingerprints"] == {}
