"""Tests for radix-4 Booth recoding — the paper's 73/23 statistic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.booth import BoothEncoding, booth_digits
from repro.arith.fastdiv import ConstantDivider


class TestRecoding:
    @given(value=st.integers(min_value=0, max_value=(1 << 160) - 1))
    @settings(max_examples=300)
    def test_digits_reconstruct_value(self, value):
        encoding = BoothEncoding(value)
        assert encoding.reconstruct() == value

    @given(value=st.integers(min_value=0, max_value=(1 << 160) - 1))
    @settings(max_examples=300)
    def test_digits_in_radix4_alphabet(self, value):
        for digit in booth_digits(value):
            assert digit in (-2, -1, 0, 1, 2)

    def test_digit_count_is_half_the_bits(self):
        # K-bit constant -> ceil((K+1)/2) digits
        assert len(booth_digits(0b1111)) == 3  # 4 bits (+carry digit)
        assert len(booth_digits(1)) == 1
        assert len(booth_digits(0)) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            booth_digits(-1)


class TestPaperStatistic:
    def test_muse_144_132_inverse_has_73_pp_23_zero(self):
        """Section V-B: 'Booth Encoding of the multiplier's inverse value
        has 73 partial products, of which 23 are equal to 0.'"""
        inverse = ConstantDivider(4065, 144).inverse
        encoding = BoothEncoding(inverse)
        assert encoding.partial_products == 73
        assert encoding.zero_partial_products == 23
        assert encoding.nonzero_partial_products == 50

    def test_zero_constant_all_zero_digits(self):
        encoding = BoothEncoding(0)
        assert encoding.nonzero_partial_products == 0
