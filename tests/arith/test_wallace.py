"""Tests for the Wallace-tree structural model."""

import pytest

from repro.arith.wallace import (
    WallaceTree,
    compressor_count,
    next_layer_rows,
    reduction_depth,
)


class TestReduction:
    def test_layer_arithmetic(self):
        # 3 rows -> 2 rows, 4 -> 3, 6 -> 4, 9 -> 6
        assert next_layer_rows(3) == 2
        assert next_layer_rows(4) == 3
        assert next_layer_rows(6) == 4
        assert next_layer_rows(9) == 6

    def test_depth_of_classic_sequence(self):
        """Dadda/Wallace capacity sequence: depth d handles up to
        2, 3, 4, 6, 9, 13, 19, 28, 42, 63, 94 rows."""
        capacities = [2, 3, 4, 6, 9, 13, 19, 28, 42, 63, 94]
        for depth, cap in enumerate(capacities):
            assert reduction_depth(cap) == depth
            if depth > 0:
                assert reduction_depth(cap + 1) == depth + 1

    def test_trivial_rows_need_no_tree(self):
        assert reduction_depth(0) == 0
        assert reduction_depth(1) == 0
        assert reduction_depth(2) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            next_layer_rows(-1)


class TestPaperOptimization:
    def test_removing_23_zero_rows_saves_one_level(self):
        """Section V-B: dropping 73 -> 50 partial products removes one
        Wallace level (three XOR delays)."""
        assert reduction_depth(73) - reduction_depth(50) == 1


class TestCosts:
    def test_compressor_count_scales_with_width(self):
        narrow = compressor_count(16, 64)
        wide = compressor_count(16, 128)
        assert wide == 2 * narrow

    def test_tree_dataclass(self):
        tree = WallaceTree(rows=50, width=144)
        assert tree.depth == reduction_depth(50)
        assert tree.full_adders == compressor_count(50, 144)
        assert tree.final_adder_width == 144

    def test_no_adders_for_two_rows(self):
        assert compressor_count(2, 64) == 0
