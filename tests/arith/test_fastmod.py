"""Tests for the Lemire direct-remainder circuit model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.fastmod import LemireModulo


class TestRemainder:
    @given(x=st.integers(min_value=0, max_value=(1 << 144) - 1))
    @settings(max_examples=300)
    def test_matches_python_mod_144(self, x):
        unit = LemireModulo(4065, 144)
        assert unit.remainder(x) == x % 4065

    @given(
        x=st.integers(min_value=0, max_value=(1 << 80) - 1),
        m=st.sampled_from([2005, 5621, 821]),
    )
    @settings(max_examples=300)
    def test_matches_python_mod_80(self, x, m):
        unit = LemireModulo(m, 80)
        assert unit.remainder(x) == x % m

    def test_naive_path_agrees(self):
        """Eq. 7 (mul + mul + sub) and Fig. 5b (mul + mul) must agree."""
        unit = LemireModulo(2005, 80)
        for x in (0, 1, 2004, 2005, 123456789, (1 << 80) - 1):
            assert unit.remainder(x) == unit.remainder_naive(x)

    def test_clean_codewords_have_zero_remainder(self):
        from repro.core.codes import muse_144_132

        code = muse_144_132()
        unit = LemireModulo(code.m, code.n)
        codeword = code.encode(0xFEEDFACEFEEDFACE)
        assert unit.remainder(codeword) == 0

    def test_exhaustive_small_case(self):
        unit = LemireModulo(13, 16)
        for x in range(1 << 16):
            assert unit.remainder(x) == x % 13


class TestStructure:
    def test_second_multiplier_is_much_smaller(self):
        """The paper's point: the second multiply is by m itself."""
        unit = LemireModulo(4065, 144)
        assert unit.second_multiplier_constant_bits == 12
        assert unit.first_multiplier_constant_bits > 140

    def test_fractional_width_is_shift(self):
        unit = LemireModulo(2005, 80)
        assert unit.fractional_width == 87
