"""Tests for Granlund-Montgomery constant division — Table III anchors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.fastdiv import (
    PAPER_TABLE_III,
    ConstantDivider,
    inverse_for_shift,
    is_exact_shift,
    minimal_shift,
    table_iii,
)


class TestTableIII:
    """The paper's Table III, regenerated from first principles."""

    def test_all_rows_match_paper(self):
        for row in table_iii():
            inverse, shift = PAPER_TABLE_III[row.m]
            assert row.inverse == inverse, f"inverse mismatch for m={row.m}"
            assert row.shift == shift, f"shift mismatch for m={row.m}"

    @pytest.mark.parametrize(
        "m,width,shift",
        [(4065, 144, 156), (2005, 80, 87), (5621, 80, 93), (821, 80, 89)],
    )
    def test_shift_is_minimal(self, m, width, shift):
        assert minimal_shift(m, width) == shift
        assert not is_exact_shift(m, width, shift - 1)


class TestInverse:
    def test_inverse_is_ceiling(self):
        assert inverse_for_shift(5, 8) == 52  # ceil(256/5) = 52
        assert inverse_for_shift(4, 8) == 64  # exact division

    def test_rejects_trivial_divisor(self):
        with pytest.raises(ValueError):
            inverse_for_shift(1, 8)


class TestConstantDivider:
    @given(x=st.integers(min_value=0, max_value=(1 << 144) - 1))
    @settings(max_examples=300)
    def test_divide_matches_floor_division_144(self, x):
        divider = ConstantDivider(4065, 144)
        assert divider.divide(x) == x // 4065

    @given(
        x=st.integers(min_value=0, max_value=(1 << 80) - 1),
        m=st.sampled_from([2005, 5621, 821]),
    )
    @settings(max_examples=300)
    def test_divide_matches_floor_division_80(self, x, m):
        divider = ConstantDivider(m, 80)
        assert divider.divide(x) == x // m

    def test_boundary_inputs(self):
        divider = ConstantDivider(2005, 80)
        top = (1 << 80) - 1
        for x in (0, 1, 2004, 2005, 2006, top - 1, top):
            assert divider.divide(x) == x // 2005

    def test_input_width_enforced(self):
        divider = ConstantDivider(2005, 80)
        with pytest.raises(ValueError):
            divider.divide(1 << 80)
        with pytest.raises(ValueError):
            divider.divide(-1)

    def test_worst_case_residues_exhaustively_for_small_divisor(self):
        """For a small divisor, check *every* residue near the top."""
        divider = ConstantDivider(11, 16)
        for x in range((1 << 16) - 512, 1 << 16):
            assert divider.divide(x) == x // 11
        for x in range(0, 4096):
            assert divider.divide(x) == x // 11

    def test_inverse_bits_reported(self):
        divider = ConstantDivider(4065, 144)
        assert divider.inverse_bits == divider.inverse.bit_length()
