"""Experiment-runner and CLI integration tests (fast settings)."""

import pytest

from repro.cli import build_parser, run
from repro.experiments import (
    ablation_shuffle,
    figure1b,
    pim,
    table1,
    table3,
)


class TestRunners:
    def test_table1_reports_exact_match(self):
        report = table1.main()
        assert report.count("exact list") == 4
        assert "4065" in report and "821" in report

    def test_figure1b_report(self):
        report = figure1b.main()
        assert "sequential" in report and "shuffled" in report

    def test_table3_all_match(self):
        report = table3.main()
        assert report.count("yes") == 4
        assert "NO" not in report.replace("NO\n", "")  # no mismatches

    def test_pim_report(self):
        report = pim.main(coverage_trials=200)
        assert "2.67x" in report
        assert "100.0%" in report

    def test_ablation_shuffle_reproduces_appendix_g(self):
        rows = ablation_shuffle.sweep()
        r13 = next(r for r in rows if r.label == "C8A/80b" and r.r == 13)
        # sequential finds 0, the Eq.5 shuffle finds exactly m=5621.
        assert r13.sequential_found == 0
        assert r13.shuffled_found == 1

    def test_ablation_shuffle_msed_covers_all_80bit_codes(self):
        rows = ablation_shuffle.msed_sweep(trials=600, seed=2)
        assert [r.code_name for r in rows] == [
            "MUSE(80,69)", "MUSE(80,67)", "MUSE(80,70)",
        ]
        assert [r.layout for r in rows] == ["sequential", "shuffled", "shuffled"]
        assert all(0.0 < r.msed_percent <= 100.0 for r in rows)


class TestCli:
    def test_parser_accepts_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"

    def test_parallel_flags_parse_with_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["table4"])
        assert args.jobs == 1
        assert args.chunk_size is None
        assert args.seed is None
        args = parser.parse_args(
            ["table4", "--jobs", "4", "--chunk-size", "4096", "--seed", "7"]
        )
        assert (args.jobs, args.chunk_size, args.seed) == (4, 4096, 7)

    def test_parser_rejects_unknown(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table99"])

    def test_backend_flag_parses_and_defaults_to_auto(self):
        parser = build_parser()
        assert parser.parse_args(["table4"]).backend == "auto"
        args = parser.parse_args(["table4", "--backend", "scalar"])
        assert args.backend == "scalar"
        with pytest.raises(SystemExit):
            parser.parse_args(["table4", "--backend", "cuda"])

    def test_run_quick_experiment(self, capsys):
        parser = build_parser()
        args = parser.parse_args(["table3"])
        assert run(args) == 0
        assert "4065" in capsys.readouterr().out

    def test_quick_flag_shrinks_settings(self, capsys):
        parser = build_parser()
        args = parser.parse_args(["pim", "--quick"])
        assert run(args) == 0


class TestCliDispatch:
    """The dispatch layer forwards every flag it claims to support."""

    def _capture(self, monkeypatch, module, argv):
        captured = {}

        def fake_main(**kwargs):
            captured.update(kwargs)
            return ""

        monkeypatch.setattr(module, "main", fake_main)
        args = build_parser().parse_args(argv)
        assert run(args) == 0
        return captured

    def test_extension_double_device_receives_trials(self, monkeypatch):
        """Regression: dispatch used to call main(backend=...) only,
        silently dropping --trials and --quick for this experiment."""
        from repro import cli

        captured = self._capture(
            monkeypatch,
            cli.extension_double_device,
            ["extension-double-device", "--trials", "7"],
        )
        assert captured["trials"] == 7

    def test_quick_never_grows_an_experiment(self, monkeypatch):
        """--quick takes min(FAST_SETTINGS, published default): it
        shrinks table4's 10k trials but must not inflate
        extension-double-device's 400 to 2000."""
        from repro import cli

        captured = self._capture(
            monkeypatch,
            cli.extension_double_device,
            ["extension-double-device", "--quick"],
        )
        assert captured["trials"] == cli.extension_double_device.DEFAULT_TRIALS
        captured = self._capture(
            monkeypatch, cli.table4, ["table4", "--quick"]
        )
        assert captured["trials"] == cli.FAST_SETTINGS["trials"]

    @pytest.mark.parametrize(
        "experiment",
        ["table4", "ablation-shuffle", "ablation-frontier",
         "extension-double-device"],
    )
    def test_monte_carlo_flags_threaded(self, monkeypatch, experiment):
        from repro import cli

        module = {
            "table4": cli.table4,
            "ablation-shuffle": cli.ablation_shuffle,
            "ablation-frontier": cli.ablation_frontier,
            "extension-double-device": cli.extension_double_device,
        }[experiment]
        captured = self._capture(
            monkeypatch,
            module,
            [experiment, "--seed", "9", "--jobs", "3",
             "--chunk-size", "128", "--trials", "50"],
        )
        assert captured["seed"] == 9
        assert captured["jobs"] == 3
        assert captured["chunk_size"] == 128
        assert captured["trials"] == 50

    @pytest.mark.parametrize(
        "experiment", ["table4", "ablation-shuffle", "ablation-frontier"]
    )
    def test_adaptive_flags_threaded(self, monkeypatch, experiment):
        from repro import cli

        module = {
            "table4": cli.table4,
            "ablation-shuffle": cli.ablation_shuffle,
            "ablation-frontier": cli.ablation_frontier,
        }[experiment]
        captured = self._capture(
            monkeypatch,
            module,
            [experiment, "--adaptive", "--ci-target", "0.2",
             "--max-trials", "5000"],
        )
        assert captured["adaptive"] is True
        assert captured["ci_target"] == 0.2
        assert captured["max_trials"] == 5000

    def test_adaptive_not_forced_without_flag(self, monkeypatch):
        from repro import cli

        captured = self._capture(monkeypatch, cli.table4, ["table4"])
        assert "adaptive" not in captured

    def test_adaptive_rejected_for_non_msed_experiments(self, capsys):
        args = build_parser().parse_args(
            ["extension-double-device", "--adaptive"]
        )
        assert run(args) == 2
        assert "--adaptive" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [["table4", "--ci-target", "0.2"], ["table4", "--max-trials", "500"]],
    )
    def test_adaptive_tuning_flags_require_adaptive(self, capsys, argv):
        """Regression (same class as the extension --trials bug): the
        tuning flags must refuse, not silently run fixed-budget."""
        assert run(build_parser().parse_args(argv)) == 2
        assert "--adaptive" in capsys.readouterr().err

    def test_trials_rejected_with_adaptive(self, capsys):
        """Mirror guard: --adaptive ignores a fixed budget, so an
        explicit --trials must refuse and point at --max-trials."""
        args = build_parser().parse_args(
            ["table4", "--adaptive", "--trials", "500"]
        )
        assert run(args) == 2
        assert "--max-trials" in capsys.readouterr().err

    def test_quick_adaptive_caps_the_ceiling(self, monkeypatch):
        """--quick must stay a preview in adaptive mode: without an
        explicit --max-trials the ceiling is the quick trial budget,
        not the 10^6 default."""
        from repro import cli

        captured = self._capture(
            monkeypatch, cli.table4, ["table4", "--quick", "--adaptive"]
        )
        assert captured["adaptive"] is True
        assert captured["max_trials"] == cli.FAST_SETTINGS["trials"]
        captured = self._capture(
            monkeypatch,
            cli.table4,
            ["table4", "--quick", "--adaptive", "--max-trials", "9999"],
        )
        assert captured["max_trials"] == 9999  # explicit flag wins

    def test_figure_traces_receive_seed(self, monkeypatch):
        """--seed also reseeds the trace-sampling figures, not just the
        Monte-Carlo experiments (same flag-dropping class as the
        extension --trials regression)."""
        from repro.experiments import figure6

        captured = self._capture(
            monkeypatch, figure6, ["figure6", "--seed", "42"]
        )
        assert captured["seed"] == 42

    def test_defaults_left_to_each_experiment(self, monkeypatch):
        """Without flags, per-experiment published defaults apply (no
        trials/seed/chunk_size kwargs are forced on the experiment)."""
        from repro import cli

        captured = self._capture(
            monkeypatch, cli.extension_double_device,
            ["extension-double-device"],
        )
        assert "trials" not in captured
        assert "seed" not in captured
        assert "chunk_size" not in captured
        assert captured["jobs"] == 1


class TestTable4Report:
    """Regression: reports print 'rate [lo, hi] @ 95%' with trial
    counts, never bare rates, in both fixed and adaptive modes.
    (Backend-agnostic: without numpy the sequential fallback feeds the
    same rendering.)"""

    def test_fixed_budget_report_includes_intervals(self, capsys):
        from repro.experiments import table4

        report, details = table4.main(trials=300, seed=2)
        assert "@95%" in report
        assert "[" in report and "]" in report
        assert "n=300" in report
        assert details["total_trials"] == 3000  # 10 points x 300
        for point in details["points"]:
            assert point["trials_used"] == 300
            lo, hi = point["msed_ci_95"]
            assert 0.0 <= lo <= point["msed_percent"] / 100.0 <= hi <= 1.0
            lo, hi = point["failure_ci_95"]
            assert 0.0 <= lo <= hi <= 1.0

    def test_adaptive_report_shows_trials_spent(self):
        from repro.experiments import table4
        from repro.reliability.sampling.sequential import AdaptivePolicy

        policy = AdaptivePolicy(
            ci_target=0.5, metric="failure", initial_trials=100,
            max_trials=400,
        )
        table = table4.build(seed=2, adaptive=policy)
        report = table4.render(table)
        assert "adaptive sampling" in report
        assert "ceiling 400" in report
        details = table4.details(table)
        assert details["adaptive"]["max_trials"] == 400
        assert {p["converged"] for p in details["points"]} <= {True, False}

    def test_ablation_reports_include_intervals(self):
        from repro.experiments import ablation_shuffle

        rows = ablation_shuffle.msed_sweep(trials=400, seed=2)
        text = ablation_shuffle.render_msed(rows)
        assert "[lo, hi] @95%" in text
        assert all(row.trials == 400 for row in rows)
        assert all(
            row.msed_lo <= row.msed_percent <= row.msed_hi for row in rows
        )
