"""Experiment-runner and CLI integration tests (fast settings)."""

import pytest

from repro.cli import build_parser, run
from repro.experiments import (
    ablation_shuffle,
    figure1b,
    pim,
    table1,
    table3,
)


class TestRunners:
    def test_table1_reports_exact_match(self):
        report = table1.main()
        assert report.count("exact list") == 4
        assert "4065" in report and "821" in report

    def test_figure1b_report(self):
        report = figure1b.main()
        assert "sequential" in report and "shuffled" in report

    def test_table3_all_match(self):
        report = table3.main()
        assert report.count("yes") == 4
        assert "NO" not in report.replace("NO\n", "")  # no mismatches

    def test_pim_report(self):
        report = pim.main(coverage_trials=200)
        assert "2.67x" in report
        assert "100.0%" in report

    def test_ablation_shuffle_reproduces_appendix_g(self):
        rows = ablation_shuffle.sweep()
        r13 = next(r for r in rows if r.label == "C8A/80b" and r.r == 13)
        # sequential finds 0, the Eq.5 shuffle finds exactly m=5621.
        assert r13.sequential_found == 0
        assert r13.shuffled_found == 1

    def test_ablation_shuffle_msed_covers_all_80bit_codes(self):
        rows = ablation_shuffle.msed_sweep(trials=600, seed=2)
        assert [r.code_name for r in rows] == [
            "MUSE(80,69)", "MUSE(80,67)", "MUSE(80,70)",
        ]
        assert [r.layout for r in rows] == ["sequential", "shuffled", "shuffled"]
        assert all(0.0 < r.msed_percent <= 100.0 for r in rows)


class TestCli:
    def test_parser_accepts_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"

    def test_parser_rejects_unknown(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table99"])

    def test_backend_flag_parses_and_defaults_to_auto(self):
        parser = build_parser()
        assert parser.parse_args(["table4"]).backend == "auto"
        args = parser.parse_args(["table4", "--backend", "scalar"])
        assert args.backend == "scalar"
        with pytest.raises(SystemExit):
            parser.parse_args(["table4", "--backend", "cuda"])

    def test_run_quick_experiment(self, capsys):
        parser = build_parser()
        args = parser.parse_args(["table3"])
        assert run(args) == 0
        assert "4065" in capsys.readouterr().out

    def test_quick_flag_shrinks_settings(self, capsys):
        parser = build_parser()
        args = parser.parse_args(["pim", "--quick"])
        assert run(args) == 0
