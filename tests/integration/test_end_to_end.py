"""Cross-module integration tests: the full system flows.

Each test exercises a complete paper scenario through multiple
subsystems (codec + striping + controller + faults + security/PIM),
rather than any single module.
"""

import random

import pytest

from repro.core.codes import muse_80_67, muse_80_69, muse_144_132
from repro.core.symbols import SymbolLayout
from repro.memory import (
    DeviceFailure,
    DeviceStriping,
    MemoryController,
    MuseEcc,
    ReadStatus,
    ReedSolomonEcc,
    RetentionFault,
    ddr4_144bit,
    ddr5_40bit_x8_two_beats,
    ddr5_80bit_x4,
)
from repro.rs.reed_solomon import rs_144_128


class TestChipkillLifecycle:
    """Write -> chip death -> correction -> repair -> scrub -> reprotect."""

    def test_full_lifecycle_muse(self):
        code = muse_144_132()
        controller = MemoryController(
            MuseEcc(code), DeviceStriping(code.layout, ddr4_144bit())
        )
        rng = random.Random(1)
        data = {addr: rng.randrange(1 << code.k) for addr in range(32)}
        for addr, value in data.items():
            controller.write(addr, value)

        controller.fail_device(rng.randrange(36))
        assert all(controller.read(a).data == v for a, v in data.items())

        failed = controller.failed_devices[0]
        controller.repair_device(failed)
        for addr in data:
            controller.scrub(addr)
        controller.fail_device((failed + 7) % 36)
        assert all(controller.read(a).data == v for a, v in data.items())


class TestFamiliesAgreeOnChipkill:
    """MUSE and RS controllers survive the same physical event."""

    def test_same_fault_both_recover(self):
        muse_code = muse_144_132()
        muse_ctrl = MemoryController(
            MuseEcc(muse_code), DeviceStriping(muse_code.layout, ddr4_144bit())
        )
        from repro.memory.dram import ChannelGeometry

        rs_geometry = ChannelGeometry("x8-view", device_bits=8, devices=18)
        rs_ctrl = MemoryController(
            ReedSolomonEcc(rs_144_128()),
            DeviceStriping(SymbolLayout.sequential(144, 8), rs_geometry),
        )
        value = 0xFACE_0FF0_1234_5678
        muse_ctrl.write(0, value)
        rs_ctrl.write(0, value)
        muse_ctrl.fail_device(7, stuck_value=0x3)
        rs_ctrl.fail_device(7, stuck_value=0x33)
        assert muse_ctrl.read(0).data == value
        assert rs_ctrl.read(0).data == value


class TestRetentionErrorFlow:
    """The C8A story: skip refresh, decay bits, still read clean data."""

    def test_muse_80_67_on_ddr5_channel(self):
        code = muse_80_67()
        striping = DeviceStriping(code.layout, ddr5_40bit_x8_two_beats())
        rng = random.Random(3)
        for _ in range(50):
            data = rng.randrange(1 << code.k)
            codeword = code.encode(data)
            # transfer over the 40-bit bus in two beats, reassemble
            beats = striping.beat_slices(codeword)
            received = striping.from_beat_slices(beats)
            assert received == codeword
            # retention decay inside one device
            fault = RetentionFault(code.layout, max_bits=8,
                                   device=rng.randrange(10))
            decayed, record = fault.inject(received, rng)
            result = code.decode(decayed)
            assert result.data == data
            if record.flipped_bits:
                assert result.status.name == "CORRECTED"


class TestMonteCarloAgreesWithController:
    """The Table IV simulator and the controller view the same physics."""

    def test_single_device_faults_are_always_corrected(self):
        code = muse_80_69()
        striping = DeviceStriping(code.layout, ddr5_80bit_x4())
        rng = random.Random(5)
        fault = DeviceFailure(code.layout)
        for _ in range(100):
            data = rng.randrange(1 << code.k)
            codeword = code.encode(data)
            corrupted, record = fault.inject(codeword, rng)
            result = code.decode(corrupted)
            assert result.status.name == "CORRECTED"
            assert result.data == data
            # The striping confirms the fault hit exactly one device.
            changed = codeword ^ corrupted
            assert striping.layout.confined_to_single_symbol(changed)


class TestSparseBitsBudget:
    """Spare-bit arithmetic consistency across the registry."""

    @pytest.mark.parametrize(
        "builder,payload,expected_spare",
        [
            (muse_80_69, 64, 5),
            (muse_80_67, 64, 3),
            (muse_144_132, 128, 4),
        ],
    )
    def test_spare_bits(self, builder, payload, expected_spare):
        code = builder()
        assert code.spare_bits(payload) == expected_spare
        # The spare bits are real: encode a payload with metadata packed
        # above it and get both back.
        metadata = (1 << expected_spare) - 1
        data = (metadata << payload) | (payload * 0x1111 & ((1 << payload) - 1))
        result = code.decode(code.encode(data))
        assert result.data == data
