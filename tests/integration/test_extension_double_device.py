"""Extension-experiment test: the double-device claim resolution."""

from repro.experiments.extension_double_device import (
    build_r15_ssc_code,
    run,
    unknown_location_search,
)


class TestDoubleDeviceExtension:
    def test_unknown_location_is_infeasible_at_r15(self):
        assert unknown_location_search(15) == []

    def test_r15_ssc_code_exists_with_one_spare_bit(self):
        code = build_r15_ssc_code()
        assert code.r == 15
        assert code.k == 65  # 64 data + 1 spare
        assert code.spare_bits(64) == 1

    def test_erasure_recovery_is_total(self):
        result = run(trials=60, seed=3)
        assert result.erasure_recovered == result.erasure_trials
        assert result.r15_unknown_location == []
