"""Atomic writes: a partially-written file is never observed.

Satellite regression for the crash-safety fix: ``summary.json`` (and
the checkpoint journal) go through temp-file + ``os.replace``, so a
killed process leaves either the old complete file or the new complete
file — never a truncated prefix.
"""

import json
import os

import pytest

from repro.orchestrate.persist import atomic_write_json, atomic_write_text


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_crash_before_rename_leaves_target_untouched(
        self, tmp_path, monkeypatch
    ):
        """Simulate dying between temp-file write and rename: the old
        file survives complete, and no temp litter remains."""
        target = tmp_path / "out.txt"
        target.write_text("old complete content")

        def exploding_replace(src, dst):
            raise OSError("simulated crash at rename time")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(target, "half-written replacement")
        assert target.read_text() == "old complete content"
        assert list(tmp_path.iterdir()) == [target]  # temp cleaned up

    def test_temp_file_lives_in_target_directory(self, tmp_path, monkeypatch):
        """Rename is only atomic within a filesystem, so the temp file
        must be a sibling of the target, never /tmp."""
        seen = {}
        real_replace = os.replace

        def spying_replace(src, dst):
            seen["src"] = src
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spying_replace)
        target = tmp_path / "out.txt"
        atomic_write_text(target, "x")
        assert os.path.dirname(seen["src"]) == str(tmp_path)


class TestAtomicWriteJson:
    def test_round_trips(self, tmp_path):
        target = tmp_path / "summary.json"
        atomic_write_json(target, {"jobs": 2, "points": [1, 2]})
        assert json.loads(target.read_text()) == {"jobs": 2, "points": [1, 2]}

    def test_unserialisable_payload_never_touches_target(self, tmp_path):
        """Serialisation happens before any file IO: a bad payload
        cannot even transiently disturb the existing file."""
        target = tmp_path / "summary.json"
        target.write_text('{"ok": true}')
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert json.loads(target.read_text()) == {"ok": True}
        assert list(tmp_path.iterdir()) == [target]


class TestSweepUsesAtomicWrites:
    def test_summary_written_via_atomic_rename(self, tmp_path, monkeypatch):
        """The sweep's summary.json goes through os.replace, not a
        direct open-and-write (the regression this satellite fixes)."""
        from repro.orchestrate.sweep import ExperimentTask, run_all

        renames = []
        real_replace = os.replace

        def spying_replace(src, dst):
            renames.append(str(dst))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spying_replace)
        run_all(
            [ExperimentTask.make("table3", {})],
            jobs=1,
            results_dir=tmp_path / "out",
        )
        assert str(tmp_path / "out" / "summary.json") in renames
        assert str(tmp_path / "out" / "table3.txt") in renames
