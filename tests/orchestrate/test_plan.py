"""Chunk-plan and counter-RNG unit tests."""

import pytest

from repro.orchestrate.plan import (
    Chunk,
    DEFAULT_CHUNK_SIZE,
    plan_chunk_range,
    plan_chunks,
    resolve_chunk_size,
)
from repro.orchestrate.rng import derive_key, mix64, trial_seed

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

requires_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")


class TestPlanChunks:
    def test_exact_split(self):
        chunks = plan_chunks(200, 50)
        assert chunks == (
            Chunk(0, 50), Chunk(50, 50), Chunk(100, 50), Chunk(150, 50),
        )

    def test_remainder_chunk(self):
        chunks = plan_chunks(130, 64)
        assert chunks == (Chunk(0, 64), Chunk(64, 64), Chunk(128, 2))

    def test_one_trial_remainder_edge(self):
        chunks = plan_chunks(193, 64)
        assert chunks[-1] == Chunk(192, 1)

    def test_covers_every_trial_exactly_once(self):
        for trials, size in ((1, 1), (7, 3), (100, 100), (101, 100), (65_537, None)):
            chunks = plan_chunks(trials, size)
            seen = [t for c in chunks for t in range(c.start, c.stop)]
            assert seen == list(range(trials))

    def test_full_run_single_chunk(self):
        assert plan_chunks(500, 500) == (Chunk(0, 500),)
        assert plan_chunks(500, 10_000) == (Chunk(0, 500),)

    def test_default_caps_at_default_chunk_size(self):
        chunks = plan_chunks(DEFAULT_CHUNK_SIZE + 1)
        assert chunks == (
            Chunk(0, DEFAULT_CHUNK_SIZE),
            Chunk(DEFAULT_CHUNK_SIZE, 1),
        )

    def test_zero_trials_plans_nothing(self):
        assert plan_chunks(0) == ()

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_chunks(-1)
        with pytest.raises(ValueError):
            plan_chunks(10, 0)
        with pytest.raises(ValueError):
            resolve_chunk_size(10, -5)


class TestPlanChunkRange:
    def test_offset_range(self):
        assert plan_chunk_range(100, 230, 64) == (
            Chunk(100, 64), Chunk(164, 64), Chunk(228, 2),
        )

    def test_round_extension_tiles_the_stream(self):
        """Adaptive rounds [0,n0), [n0,n1), ... tile exactly the chunks
        a single fixed-trial plan would cover — no trial missed or
        doubled at round boundaries."""
        boundaries = [0, 150, 301, 603, 900]
        tiled = [
            t
            for lo, hi in zip(boundaries, boundaries[1:])
            for c in plan_chunk_range(lo, hi, 64)
            for t in range(c.start, c.stop)
        ]
        assert tiled == list(range(900))

    def test_empty_range_plans_nothing(self):
        assert plan_chunk_range(42, 42, 64) == ()

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            plan_chunk_range(-1, 10)
        with pytest.raises(ValueError):
            plan_chunk_range(10, 5)


class TestCounterRng:
    def test_mix64_is_deterministic_and_64bit(self):
        assert mix64(0) == mix64(0)
        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= mix64(x) < 2**64

    def test_derive_key_separates_paths(self):
        base = derive_key(2022)
        assert derive_key(2022) == base
        keys = {derive_key(2022, s, i) for s in range(3) for i in range(8)}
        assert len(keys) == 24
        assert derive_key(2022, 0, 1) != derive_key(2022, 1, 0)

    def test_trial_seed_is_a_pure_counter_function(self):
        key = derive_key(7)
        assert trial_seed(key, 5) == trial_seed(key, 5)
        assert trial_seed(key, 5) != trial_seed(key, 6)
        assert trial_seed(key, 5) != trial_seed(derive_key(8), 5)

    @requires_numpy
    def test_counter_draws_match_scalar_trial_seed(self):
        """The vectorised and scalar hashes are the same function, so
        the scalar fallback and the numpy generators agree about which
        trial is which."""
        from repro.orchestrate.rng import counter_draws

        key = derive_key(2022, 2, 1)
        for start, stop in ((0, 64), (1_000_000, 1_000_100)):
            draws = counter_draws(key, np.arange(start, stop, dtype=np.uint64))
            expected = [trial_seed(key, t) for t in range(start, stop)]
            assert draws.tolist() == expected

    @requires_numpy
    def test_counter_draws_coerces_default_dtype_counters(self):
        """A plain arange (int64) must work, not TypeError in the
        shift ufuncs — the docstring recommends exactly that input."""
        from repro.orchestrate.rng import counter_draws

        key = derive_key(3)
        plain = counter_draws(key, np.arange(0, 16))
        typed = counter_draws(key, np.arange(0, 16, dtype=np.uint64))
        assert plain.tolist() == typed.tolist()

    @requires_numpy
    def test_counter_draws_split_invariant(self):
        from repro.orchestrate.rng import counter_draws

        key = derive_key(11)
        whole = counter_draws(key, np.arange(0, 100, dtype=np.uint64))
        left = counter_draws(key, np.arange(0, 37, dtype=np.uint64))
        right = counter_draws(key, np.arange(37, 100, dtype=np.uint64))
        assert whole.tolist() == left.tolist() + right.tolist()
