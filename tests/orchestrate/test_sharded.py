"""Sharded-run determinism: the orchestrator's headline invariant.

For a fixed master seed, a simulator's tally must be **byte-identical**
for every ``(chunk_size, jobs)`` combination — chunked vs monolithic,
one process vs a pool — for both code families on both decode backends.
"""

import pytest

from repro.core.codes import muse_80_69
from repro.engine import available_backends
from repro.orchestrate import Chunk, CodeRef, derive_key, plan_chunks
from repro.orchestrate.pool import run_sharded
from repro.orchestrate.worker import ChunkTask, MuseSimSpec
from repro.reliability.metrics import MsedTally
from repro.reliability.monte_carlo import (
    MuseMsedSimulator,
    RsMsedSimulator,
    build_table_iv,
)
from repro.rs.reed_solomon import rs_144_128

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

requires_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")

#: 193 = 3*64 + 1: chunk size 64 is a power of two *and* leaves a
#: one-trial remainder chunk; 100 leaves a 93-trial remainder; 193 is
#: the full run in a single chunk.
TRIALS = 193
CHUNK_SIZES = (64, 100, 193)
JOBS = (1, 2)


def _muse_simulator(backend):
    return MuseMsedSimulator(
        muse_80_69(),
        backend=backend,
        code_ref=CodeRef("repro.core.codes:muse_80_69"),
    )


def _rs_simulator(backend):
    return RsMsedSimulator(
        rs_144_128(),
        backend=backend,
        code_ref=CodeRef("repro.rs.reed_solomon:rs_144_128"),
    )


class TestChunkedDeterminism:
    """Satellite: chunked-vs-monolithic equality, both families x
    backends x chunk sizes x job counts."""

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize(
        "make", (_muse_simulator, _rs_simulator), ids=("muse", "rs")
    )
    def test_tally_invariant_under_chunking_and_jobs(self, make, backend):
        simulator = make(backend)
        monolithic = simulator.run(TRIALS, seed=5)
        for chunk_size in CHUNK_SIZES:
            for jobs in JOBS:
                result = simulator.run(
                    TRIALS, seed=5, jobs=jobs, chunk_size=chunk_size
                )
                assert result == monolithic, (
                    f"tally diverged at chunk_size={chunk_size} jobs={jobs} "
                    f"backend={backend}"
                )

    def test_different_seeds_differ(self):
        simulator = _muse_simulator("auto")
        assert simulator.run(400, seed=1) != simulator.run(400, seed=2)

    def test_chunk_fold_matches_run(self):
        """run() is literally the fold of run_chunk over the plan."""
        simulator = _muse_simulator("auto")
        key = derive_key(9)
        tally = MsedTally()
        for chunk in plan_chunks(300, 77):
            tally.merge(simulator.run_chunk(chunk, key))
        assert tally.freeze() == simulator.run(300, seed=9, chunk_size=77)

    def test_zero_trials(self):
        result = _muse_simulator("auto").run(0, seed=1)
        assert result.trials == 0


class TestSimulatorSpecs:
    def test_jobs_without_code_ref_raises(self):
        simulator = MuseMsedSimulator(muse_80_69())
        with pytest.raises(ValueError, match="code_ref"):
            simulator.run(64, seed=1, jobs=2, chunk_size=32)

    def test_string_code_ref_accepted(self):
        simulator = MuseMsedSimulator(
            muse_80_69(), code_ref="repro.core.codes:muse_80_69"
        )
        serial = simulator.run(96, seed=3)
        assert simulator.run(96, seed=3, jobs=2, chunk_size=32) == serial

    def test_bad_code_ref_target_rejected(self):
        with pytest.raises(ValueError, match="module:callable"):
            CodeRef("repro.core.codes.muse_80_69").build()

    def test_mismatched_code_ref_rejected(self):
        """A ref naming a *different* code must fail fast instead of
        letting workers tally the wrong code."""
        from repro.core.codes import muse_80_67

        simulator = MuseMsedSimulator(
            muse_80_67(), code_ref="repro.core.codes:muse_80_69"
        )
        with pytest.raises(ValueError, match="different code"):
            simulator.run(64, seed=1, jobs=2, chunk_size=32)


class TestRunSharded:
    def test_groups_fold_independently(self):
        spec = MuseSimSpec(code=CodeRef("repro.core.codes:muse_80_69"))
        key = derive_key(4)
        tasks = [
            ChunkTask(group, spec, chunk, key)
            for group in ("a", "b")
            for chunk in plan_chunks(100, 40)
        ]
        folded = run_sharded(tasks, jobs=1)
        assert set(folded) == {"a", "b"}
        assert folded["a"].freeze() == folded["b"].freeze()
        assert folded["a"].trials == 100

    def test_progress_callback_counts_tasks(self):
        spec = MuseSimSpec(code=CodeRef("repro.core.codes:muse_80_69"))
        tasks = [
            ChunkTask(0, spec, chunk, derive_key(4))
            for chunk in plan_chunks(90, 30)
        ]
        seen = []
        run_sharded(tasks, jobs=1, progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_worker_cache_reuses_runner(self):
        from repro.orchestrate import worker

        spec = MuseSimSpec(code=CodeRef("repro.core.codes:muse_80_69"))
        first = worker.runner_for(spec)
        assert worker.runner_for(spec) is first
        assert worker.runner_for(
            MuseSimSpec(code=CodeRef("repro.core.codes:muse_80_69"))
        ) is first  # structural equality, not identity


class TestTableIVSharded:
    """Acceptance: build_table_iv tallies byte-identical across
    (chunk_size, jobs), including jobs=1 vs jobs>1."""

    @requires_numpy
    def test_table_iv_invariant_under_chunking_and_jobs(self):
        trials, seed = 240, 11
        baseline = build_table_iv(trials=trials, seed=seed)
        for jobs, chunk_size in ((1, 64), (2, 64), (2, 100), (2, None)):
            table = build_table_iv(
                trials=trials, seed=seed, jobs=jobs, chunk_size=chunk_size
            )
            assert [p.result for p in table.points] == [
                p.result for p in baseline.points
            ], f"table diverged at jobs={jobs} chunk_size={chunk_size}"
            assert [p.label for p in table.points] == [
                p.label for p in baseline.points
            ]
