"""Concurrent `all` sweep tests (report capture, ordering, results dir)."""

import json

import pytest

from repro.orchestrate.sweep import (
    EXPERIMENT_TARGETS,
    ExperimentTask,
    run_all,
    run_experiment_task,
)

#: Two cheap, deterministic experiments for end-to-end sweep runs.
CHEAP = [
    ExperimentTask.make("table3", {}),
    ExperimentTask.make("figure1b", {}),
]


class TestExperimentTask:
    def test_registry_covers_every_cli_experiment(self):
        from repro.cli import build_parser

        # 'all' is the sweep itself; 'coordinator'/'worker' are the two
        # halves of a distributed run; 'report' reads a telemetry run
        # directory — none of them are experiments.
        choices = set(build_parser()._actions[1].choices) - {
            "all", "coordinator", "worker", "report",
        }
        assert set(EXPERIMENT_TARGETS) == choices

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            ExperimentTask.make("table99", {})

    def test_kwargs_are_frozen_and_ordered(self):
        task = ExperimentTask.make("table4", {"trials": 10, "seed": 1})
        assert task.kwargs == (("seed", 1), ("trials", 10))
        hash(task)  # picklable-spec contract: hashable


class TestRunExperimentTask:
    def test_captures_report_without_printing(self, capsys):
        outcome = run_experiment_task(ExperimentTask.make("table3", {}))
        assert "4065" in outcome.report
        assert outcome.seconds >= 0
        assert capsys.readouterr().out == ""  # stdout stayed captured


class TestRunAll:
    def test_parallel_matches_serial_and_preserves_order(self):
        serial = run_all(list(CHEAP), jobs=1)
        parallel = run_all(list(CHEAP), jobs=2)
        assert list(serial) == [t.name for t in CHEAP]
        assert list(parallel) == list(serial)
        for name in serial:
            assert parallel[name].report == serial[name].report

    def test_results_dir_written(self, tmp_path):
        outcomes = run_all(list(CHEAP), jobs=2, results_dir=tmp_path / "out")
        directory = tmp_path / "out"
        for name, outcome in outcomes.items():
            assert (directory / f"{name}.txt").read_text() == outcome.report + "\n"
        summary = json.loads((directory / "summary.json").read_text())
        assert summary["jobs"] == 2
        assert set(summary["experiments"]) == {t.name for t in CHEAP}
        for entry in summary["experiments"].values():
            assert entry["seconds"] >= 0
            assert (directory / entry["report_file"]).exists()
        # sum_seconds adds the per-experiment spans; wall_seconds is
        # elapsed time, which concurrency can push below the sum.
        assert summary["sum_seconds"] == round(
            sum(o.seconds for o in outcomes.values()), 4
        )
        assert summary["wall_seconds"] > 0

    def test_on_outcome_streams_every_completion(self):
        streamed = []
        outcomes = run_all(
            list(CHEAP), jobs=1, on_outcome=lambda o: streamed.append(o.name)
        )
        assert streamed == list(outcomes)  # serial: completion == task order

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate experiment names"):
            run_all(
                [
                    ExperimentTask.make("table3", {}),
                    ExperimentTask.make("table3", {}),
                ]
            )
