"""Memory-controller integration tests: the Figure-2 loop end to end."""

import pytest

from repro.core.codes import muse_80_69, muse_144_132
from repro.core.symbols import SymbolLayout
from repro.memory.controller import (
    MemoryController,
    MuseEcc,
    NoEcc,
    ReadStatus,
    ReedSolomonEcc,
)
from repro.memory.dram import ddr4_144bit, ddr5_80bit_x4
from repro.memory.striping import DeviceStriping
from repro.rs.reed_solomon import rs_144_128


def muse_controller() -> MemoryController:
    code = muse_144_132()
    striping = DeviceStriping(code.layout, ddr4_144bit())
    return MemoryController(MuseEcc(code), striping)


def ddr4_144bit_8():
    """18 x8 view of the same 144 wires (one symbol per device)."""
    from repro.memory.dram import ChannelGeometry

    return ChannelGeometry(name="DDR4-x8-view", device_bits=8, devices=18)


def rs_controller() -> MemoryController:
    code = rs_144_128()
    striping = DeviceStriping(SymbolLayout.sequential(144, 8), ddr4_144bit_8())
    return MemoryController(ReedSolomonEcc(code), striping)


class TestWriteRead:
    def test_clean_roundtrip(self):
        controller = muse_controller()
        controller.write(0, 0xDEAD_BEEF_CAFE)
        result = controller.read(0)
        assert result.status is ReadStatus.OK
        assert result.data == 0xDEAD_BEEF_CAFE

    def test_unwritten_address_raises(self):
        with pytest.raises(KeyError):
            muse_controller().read(99)

    def test_stats_track_operations(self):
        controller = muse_controller()
        controller.write(0, 1)
        controller.write(1, 2)
        controller.read(0)
        assert controller.stats.writes == 2
        assert controller.stats.reads == 1


class TestChipKill:
    """The headline scenario: a dead chip, transparent recovery."""

    def test_muse_survives_device_failure(self):
        controller = muse_controller()
        for address in range(16):
            controller.write(address, address * 0xABCDEF0123)
        controller.fail_device(11)
        for address in range(16):
            result = controller.read(address)
            assert result.status in (ReadStatus.OK, ReadStatus.CORRECTED)
            assert result.data == address * 0xABCDEF0123
        assert controller.stats.uncorrectable == 0

    def test_rs_survives_device_failure(self):
        controller = rs_controller()
        for address in range(8):
            controller.write(address, address * 0x1111_2222)
        controller.fail_device(3)
        for address in range(8):
            result = controller.read(address)
            assert result.data == address * 0x1111_2222

    def test_two_failed_devices_detected_not_miscorrected_silently(self):
        controller = muse_controller()
        controller.write(0, 0x1234_5678_9ABC)
        controller.fail_device(0, stuck_value=0x5)
        controller.fail_device(20, stuck_value=0xA)
        result = controller.read(0)
        # Double-device errors are beyond the SSC guarantee; they must
        # not be returned as clean data.
        assert result.status is not ReadStatus.OK

    def test_repair_and_scrub_restores_protection(self):
        controller = muse_controller()
        controller.write(0, 0xFEED)
        controller.fail_device(2)
        assert controller.read(0).data == 0xFEED
        controller.repair_device(2)
        controller.scrub(0)
        # A new single-device failure is again correctable.
        controller.fail_device(30)
        result = controller.read(0)
        assert result.data == 0xFEED
        assert result.status in (ReadStatus.OK, ReadStatus.CORRECTED)

    def test_corrected_reads_counted(self):
        controller = muse_controller()
        controller.write(0, 7)
        controller.fail_device(5, stuck_value=0xF)
        before = controller.stats.corrected
        status = controller.read(0).status
        if status is ReadStatus.CORRECTED:
            assert controller.stats.corrected == before + 1


class TestAdapters:
    def test_no_ecc_passthrough(self):
        controller = MemoryController(NoEcc(64))
        controller.write(0, 0xFFFF)
        assert controller.read(0).data == 0xFFFF

    def test_device_fault_requires_striping(self):
        controller = MemoryController(NoEcc(64))
        with pytest.raises(RuntimeError):
            controller.fail_device(0)

    def test_striping_width_mismatch_rejected(self):
        code = muse_80_69()
        striping = DeviceStriping(SymbolLayout.sequential(80, 4), ddr5_80bit_x4())
        MemoryController(MuseEcc(code), striping)  # OK
        bad_striping = DeviceStriping(
            SymbolLayout.sequential(144, 4), ddr4_144bit()
        )
        with pytest.raises(ValueError):
            MemoryController(MuseEcc(code), bad_striping)

    def test_stuck_value_width_check(self):
        controller = muse_controller()
        controller.write(0, 1)
        with pytest.raises(ValueError):
            controller.fail_device(0, stuck_value=16)
