"""Fault-injection model tests."""

import random

import pytest

from repro.core.symbols import SymbolLayout
from repro.memory.faults import (
    DeviceFailure,
    FaultCampaign,
    MultiDeviceFailure,
    RandomBitFlips,
    RetentionFault,
    StuckDevice,
)


LAYOUT = SymbolLayout.sequential(80, 4)


class TestDeviceFailure:
    def test_corruption_confined_to_one_device(self):
        rng = random.Random(1)
        fault = DeviceFailure(LAYOUT)
        for _ in range(50):
            word = rng.randrange(1 << 80)
            corrupted, record = fault.inject(word, rng)
            assert corrupted != word
            assert len(record.devices) == 1
            device = record.devices[0]
            changed = word ^ corrupted
            assert changed & ~LAYOUT.masks[device] == 0

    def test_fixed_device_honored(self):
        rng = random.Random(2)
        fault = DeviceFailure(LAYOUT, device=7)
        _, record = fault.inject(0, rng)
        assert record.devices == (7,)

    def test_record_lists_flipped_bits(self):
        rng = random.Random(3)
        corrupted, record = DeviceFailure(LAYOUT, device=0).inject(0, rng)
        assert corrupted == sum(1 << bit for bit in record.flipped_bits)


class TestStuckDevice:
    def test_stuck_at_zero(self):
        rng = random.Random(4)
        word = (1 << 80) - 1
        corrupted, record = StuckDevice(LAYOUT, device=5).inject(word, rng)
        assert LAYOUT.extract_symbol(corrupted, 5) == 0
        assert record.kind == "stuck_device"

    def test_stuck_at_ones(self):
        rng = random.Random(5)
        corrupted, _ = StuckDevice(LAYOUT, device=5, stuck_to_ones=True).inject(
            0, rng
        )
        assert LAYOUT.extract_symbol(corrupted, 5) == 0xF

    def test_no_change_when_already_stuck(self):
        rng = random.Random(6)
        corrupted, record = StuckDevice(LAYOUT, device=5).inject(0, rng)
        assert corrupted == 0
        assert record.flipped_bits == ()


class TestMultiDevice:
    def test_exactly_k_devices_corrupted(self):
        rng = random.Random(7)
        fault = MultiDeviceFailure(LAYOUT, device_count=3)
        for _ in range(30):
            word = rng.randrange(1 << 80)
            corrupted, record = fault.inject(word, rng)
            assert len(record.devices) == 3
            touched = {LAYOUT.symbol_of_bit(b) for b in record.flipped_bits}
            assert touched == set(record.devices)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            MultiDeviceFailure(LAYOUT, device_count=1)
        with pytest.raises(ValueError):
            MultiDeviceFailure(LAYOUT, device_count=21)


class TestRetention:
    def test_flips_are_one_to_zero_only(self):
        rng = random.Random(8)
        fault = RetentionFault(LAYOUT, max_bits=6)
        for _ in range(50):
            word = rng.randrange(1 << 80)
            corrupted, record = fault.inject(word, rng)
            assert corrupted & ~word == 0  # no new ones
            for bit in record.flipped_bits:
                assert word >> bit & 1 == 1

    def test_device_confined_retention(self):
        rng = random.Random(9)
        fault = RetentionFault(LAYOUT, max_bits=4, device=3)
        word = (1 << 80) - 1
        corrupted, record = fault.inject(word, rng)
        assert record.devices == (3,)
        assert (word ^ corrupted) & ~LAYOUT.masks[3] == 0

    def test_all_zero_word_is_noop(self):
        rng = random.Random(10)
        corrupted, record = RetentionFault(LAYOUT).inject(0, rng)
        assert corrupted == 0
        assert record.flipped_bits == ()


class TestRandomBitFlips:
    def test_exact_flip_count(self):
        rng = random.Random(11)
        fault = RandomBitFlips(LAYOUT, flips=5)
        word = rng.randrange(1 << 80)
        corrupted, record = fault.inject(word, rng)
        assert bin(word ^ corrupted).count("1") == 5
        assert record.bit_count == 5

    def test_flip_count_validation(self):
        with pytest.raises(ValueError):
            RandomBitFlips(LAYOUT, flips=0)
        with pytest.raises(ValueError):
            RandomBitFlips(LAYOUT, flips=81)


class TestCampaign:
    def test_campaign_is_deterministic_under_seed(self):
        words = [i * 0x1234567 for i in range(20)]
        first = FaultCampaign(DeviceFailure(LAYOUT), seed=42).run(list(words))
        second = FaultCampaign(DeviceFailure(LAYOUT), seed=42).run(list(words))
        assert first == second

    def test_campaign_records_every_injection(self):
        campaign = FaultCampaign(RandomBitFlips(LAYOUT, flips=2), seed=1)
        campaign.run([0] * 15)
        assert len(campaign.records) == 15
