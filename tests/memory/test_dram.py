"""DRAM geometry tests."""

import pytest

from repro.memory.dram import (
    ChannelGeometry,
    MemoryConfig,
    ddr4_144bit,
    ddr5_40bit_x8_two_beats,
    ddr5_80bit_x4,
    hbm2_pim_256bit,
)


class TestGeometries:
    def test_ddr4_channel_is_144_bits(self):
        geometry = ddr4_144bit()
        assert geometry.codeword_bits == 144
        assert geometry.devices == 36
        assert geometry.bus_bits == 144

    def test_ddr5_dual_channel_is_80_bits(self):
        geometry = ddr5_80bit_x4()
        assert geometry.codeword_bits == 80
        assert geometry.devices == 20

    def test_ddr5_x8_two_beat_split(self):
        """Section IV: 80-bit codewords over a 40-bit channel, half a
        symbol per transaction."""
        geometry = ddr5_40bit_x8_two_beats()
        assert geometry.codeword_bits == 80
        assert geometry.bus_bits == 40
        assert geometry.beats == 2
        assert geometry.bits_per_device == 8

    def test_hbm2_pim_covers_268_bit_codewords(self):
        geometry = hbm2_pim_256bit()
        assert geometry.codeword_bits == 268

    def test_describe(self):
        assert "36 x4" in ddr4_144bit().describe()


class TestValidation:
    def test_positive_dimensions_required(self):
        with pytest.raises(ValueError):
            ChannelGeometry("bad", device_bits=0, devices=4)
        with pytest.raises(ValueError):
            ChannelGeometry("bad", device_bits=4, devices=-1)

    def test_memory_config_address_check(self):
        config = MemoryConfig(geometry=ddr4_144bit(), codewords=128)
        config.validate_address(0)
        config.validate_address(127)
        with pytest.raises(IndexError):
            config.validate_address(128)
        with pytest.raises(IndexError):
            config.validate_address(-1)
