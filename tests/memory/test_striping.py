"""Striping tests, including the paper's Figure 1(a) worked example."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.symbols import SymbolLayout
from repro.memory.dram import (
    ChannelGeometry,
    ddr4_144bit,
    ddr5_40bit_x8_two_beats,
    ddr5_80bit_x4,
)
from repro.memory.striping import DeviceStriping


class TestBinding:
    def test_symbol_count_must_match_devices(self):
        layout = SymbolLayout.sequential(144, 4)
        with pytest.raises(ValueError, match="devices"):
            DeviceStriping(layout, ddr5_80bit_x4())

    def test_width_must_match(self):
        layout = SymbolLayout.sequential(80, 4)
        geometry = ChannelGeometry("odd", device_bits=5, devices=20)
        with pytest.raises(ValueError, match="bits"):
            DeviceStriping(layout, geometry)

    def test_ddr4_sequential_binding(self):
        striping = DeviceStriping(SymbolLayout.sequential(144, 4), ddr4_144bit())
        assert striping.geometry.devices == 36


class TestFigure1a:
    """The paper's toy example: x2 devices, shuffle b0,b3 / b1,b2.

    'failure of DRAM #1 results in corruption of bits b0 and b3' and the
    error value of pattern 01 (high wire) becomes 8 instead of 2.
    """

    def setup_method(self):
        self.layout = SymbolLayout(4, ((0, 3), (1, 2)))
        self.geometry = ChannelGeometry("toy-x2", device_bits=2, devices=2)
        self.striping = DeviceStriping(self.layout, self.geometry)

    def test_device_1_holds_b0_and_b3(self):
        codeword = 0b1001  # b0 and b3 set
        assert self.striping.device_slice(codeword, 0) == 0b11
        assert self.striping.device_slice(codeword, 1) == 0b00

    def test_error_pattern_01_has_value_8(self):
        # flipping only the device's second wire flips codeword bit b3,
        # an error value of 2^3 = 8 (sequential assignment would give 2).
        clean = 0
        corrupted = self.striping.replace_device_slice(clean, 0, 0b10)
        assert corrupted - clean == 8

    def test_device_failure_is_symbol_confined(self):
        codeword = 0b0110
        corrupted = self.striping.replace_device_slice(codeword, 1, 0b00)
        changed = codeword ^ corrupted
        assert self.layout.confined_to_single_symbol(changed)


class TestSliceRoundtrip:
    @given(codeword=st.integers(0, (1 << 80) - 1))
    @settings(max_examples=100)
    def test_to_from_device_slices(self, codeword):
        striping = DeviceStriping(SymbolLayout.eq5(), ddr5_40bit_x8_two_beats())
        slices = striping.to_device_slices(codeword)
        assert striping.from_device_slices(slices) == codeword

    def test_from_device_slices_length_check(self):
        striping = DeviceStriping(SymbolLayout.sequential(80, 4), ddr5_80bit_x4())
        with pytest.raises(ValueError, match="expected 20"):
            striping.from_device_slices([0] * 19)


class TestBeats:
    @given(codeword=st.integers(0, (1 << 80) - 1))
    @settings(max_examples=100)
    def test_beat_roundtrip(self, codeword):
        """MUSE(80,67) transfer: two beats of 40 wires each."""
        striping = DeviceStriping(SymbolLayout.eq5(), ddr5_40bit_x8_two_beats())
        beats = striping.beat_slices(codeword)
        assert len(beats) == 2
        assert all(len(beat) == 10 for beat in beats)
        assert all(value < 16 for beat in beats for value in beat)
        assert striping.from_beat_slices(beats) == codeword

    def test_single_beat_channel(self):
        striping = DeviceStriping(SymbolLayout.sequential(80, 4), ddr5_80bit_x4())
        beats = striping.beat_slices(0xABCDE)
        assert len(beats) == 1
        assert beats[0] == striping.to_device_slices(0xABCDE)

    def test_each_beat_carries_half_of_each_symbol(self):
        """Section IV: 'every bus transaction carries half of the 8-bit
        symbol to memory (for all symbols)'."""
        striping = DeviceStriping(SymbolLayout.eq5(), ddr5_40bit_x8_two_beats())
        # Set all 8 bits of device 3's slice.
        codeword = striping.replace_device_slice(0, 3, 0xFF)
        first, second = striping.beat_slices(codeword)
        assert first[3] == 0xF and second[3] == 0xF
        assert sum(first) + sum(second) == 0xF + 0xF
