"""Unit tests for repro.core.error_model (error-value enumeration)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.error_model import (
    ErrorDirection,
    HybridErrorModel,
    SingleBitErrorModel,
    SymbolErrorModel,
    hybrid_c4a_u1b,
    positive_error_value_histogram,
    symbol_error_values,
)
from repro.core.symbols import SymbolLayout


class TestSymbolErrorValues:
    def test_sequential_4bit_symbol_has_30_values(self):
        """Section III-A: 2*(2^s - 1) distinct values for contiguous bits."""
        values = symbol_error_values((0, 1, 2, 3))
        assert len(values) == 30
        assert values == frozenset(v for v in range(-15, 16) if v)

    def test_shuffled_symbol_has_3_pow_s_minus_1_values(self):
        """Section III-B: shuffling expands to 3^s - 1 values."""
        # Figure 1a example: bits b0 and b3 -> 8 values +-1, +-7, +-8, +-9.
        values = symbol_error_values((0, 3))
        assert len(values) == 3**2 - 1
        assert values == frozenset({1, -1, 7, -7, 8, -8, 9, -9})

    def test_figure_1a_sequential_symbol_values(self):
        """Figure 1a: bits b0, b1 -> six values +-1, +-2, +-3."""
        values = symbol_error_values((0, 1))
        assert values == frozenset({1, -1, 2, -2, 3, -3})

    def test_asymmetric_values_are_all_negative(self):
        values = symbol_error_values((0, 1, 2, 3), ErrorDirection.ONE_TO_ZERO)
        assert len(values) == 15
        assert all(v < 0 for v in values)
        assert values == frozenset(-v for v in range(1, 16))

    def test_zero_to_one_values_are_all_positive(self):
        values = symbol_error_values((4, 5), ErrorDirection.ZERO_TO_ONE)
        assert values == frozenset({16, 32, 48})

    def test_offset_scales_values(self):
        base = symbol_error_values((0, 1, 2, 3))
        shifted = symbol_error_values((4, 5, 6, 7))
        assert shifted == frozenset(v << 4 for v in base)


class TestSymbolErrorModel:
    def test_muse_144_132_needs_1080_remainders(self):
        """The paper's ELC for MUSE(144,132) has 1080 entries."""
        layout = SymbolLayout.sequential(144, 4)
        model = SymbolErrorModel(layout)
        assert model.required_remainders == 1080

    def test_muse_80_69_needs_600_remainders(self):
        layout = SymbolLayout.sequential(80, 4)
        assert SymbolErrorModel(layout).required_remainders == 600

    def test_eq5_asymmetric_needs_2550_remainders(self):
        model = SymbolErrorModel(SymbolLayout.eq5(), ErrorDirection.ONE_TO_ZERO)
        assert model.required_remainders == 10 * 255 == 2550

    def test_sequential_symbols_have_disjoint_value_ranges(self):
        layout = SymbolLayout.sequential(16, 4)
        model = SymbolErrorModel(layout)
        seen: set[int] = set()
        for values in model.per_symbol_values:
            assert not (seen & values)
            seen |= values

    def test_iter_symbol_errors_covers_all_values(self):
        layout = SymbolLayout.sequential(16, 4)
        model = SymbolErrorModel(layout)
        collected = {value for _, value in model.iter_symbol_errors()}
        assert collected == model.error_values()

    def test_describe_uses_paper_naming(self):
        model = SymbolErrorModel(SymbolLayout.eq5(), ErrorDirection.ONE_TO_ZERO)
        assert model.describe().startswith("C8A")


class TestSingleBitModel:
    def test_bidirectional_has_two_values_per_bit(self):
        model = SingleBitErrorModel(8)
        assert model.required_remainders == 16
        assert model.error_values() == frozenset(
            s << b for b in range(8) for s in (1, -1)
        )

    def test_asymmetric_single_bit(self):
        model = SingleBitErrorModel(4, ErrorDirection.ONE_TO_ZERO)
        assert model.error_values() == frozenset({-1, -2, -4, -8})


class TestHybridModel:
    def test_c4a_u1b_matches_paper_count(self):
        """MUSE(80,70): 20 symbols x 15 asym values + 80 positive bit values.

        The negative single-bit values are already subsets of the
        asymmetric symbol values, so the union has 300 + 80 = 380.
        """
        model = hybrid_c4a_u1b(SymbolLayout.eq6())
        assert model.required_remainders == 380

    def test_mismatched_widths_rejected(self):
        with pytest.raises(ValueError, match="disagree"):
            HybridErrorModel(
                (SingleBitErrorModel(8), SingleBitErrorModel(16))
            )

    def test_union_semantics(self):
        layout = SymbolLayout.sequential(8, 4)
        hybrid = HybridErrorModel(
            (
                SymbolErrorModel(layout, ErrorDirection.ONE_TO_ZERO),
                SingleBitErrorModel(8, ErrorDirection.BIDIRECTIONAL),
            )
        )
        expected = (
            SymbolErrorModel(layout, ErrorDirection.ONE_TO_ZERO).error_values()
            | SingleBitErrorModel(8).error_values()
        )
        assert hybrid.error_values() == expected


class TestHistogram:
    def test_histogram_counts_positive_values_only(self):
        model = SymbolErrorModel(SymbolLayout.sequential(8, 4))
        histogram = positive_error_value_histogram(model)
        total = sum(histogram.values())
        positives = sum(1 for v in model.error_values() if v > 0)
        assert total == positives

    def test_shuffle_spreads_the_histogram(self):
        """Figure 1(b): shuffling yields more values, spread more evenly."""
        sequential = SymbolErrorModel(SymbolLayout.sequential(80, 4))
        shuffled = SymbolErrorModel(SymbolLayout.eq6())
        seq_hist = positive_error_value_histogram(sequential)
        shuf_hist = positive_error_value_histogram(shuffled)
        assert sum(shuf_hist.values()) > sum(seq_hist.values())
        # Shuffled layout populates more distinct log2 bins.
        assert len(shuf_hist) >= len(seq_hist)


class TestValueRealizability:
    """Every enumerated error value must be realizable by actual bit flips."""

    @given(st.data())
    def test_bidirectional_values_realizable(self, data):
        layout = SymbolLayout.sequential(16, 4)
        model = SymbolErrorModel(layout)
        value = data.draw(st.sampled_from(sorted(model.error_values())))
        # Find a word w and symbol value change producing this difference.
        index = data.draw(st.integers(min_value=0, max_value=3))
        values = model.per_symbol_values[index]
        if value not in values:
            # value belongs to some other symbol; locate it
            index = next(
                i for i, vals in enumerate(model.per_symbol_values) if value in vals
            )
        # Realize: pick original symbol bits so each -1 flip has a 1 and
        # each +1 flip has a 0.
        positions = layout.symbols[index]
        shift = positions[0]
        local = value >> shift if value > 0 else -((-value) >> shift)
        assert local << shift == value  # sequential symbols: clean shift
        original = 0b1111 if local < 0 else 0
        corrupted = original + local
        assert 0 <= corrupted <= 15
        word = layout.insert_symbol(0, index, original)
        word_bad = layout.insert_symbol(0, index, corrupted)
        assert word_bad - word == value


class TestHistogramBase:
    """Regression: the ``base`` parameter used to be silently ignored
    (every call binned by log2 regardless)."""

    def test_base_changes_the_binning(self):
        model = SymbolErrorModel(SymbolLayout.sequential(80, 4))
        base2 = positive_error_value_histogram(model, base=2)
        base16 = positive_error_value_histogram(model, base=16)
        assert base2 != base16
        assert sum(base2.values()) == sum(base16.values())
        # log16 compresses: four log2 bins per log16 bin.
        assert max(base16) == max(base2) // 4

    def test_base_bins_by_integer_log(self):
        model = SingleBitErrorModel(12)  # positive values 2^0 .. 2^11
        histogram = positive_error_value_histogram(model, base=10)
        # 1,2,4,8 -> bin 0; 16..64 -> bin 1; 128..512 -> bin 2; 1024,2048 -> 3
        assert histogram == {0: 4, 1: 3, 2: 3, 3: 2}

    def test_base_exact_at_power_boundaries(self):
        """Integer log, not float log: 10^k must land in bin k even
        where ``math.log10`` would round just below it."""

        class _Fixed:
            n = 64

            def error_values(self):
                return frozenset({10**k for k in range(1, 7)})

        assert positive_error_value_histogram(_Fixed(), base=10) == {
            k: 1 for k in range(1, 7)
        }

    def test_default_base_unchanged(self):
        model = SymbolErrorModel(SymbolLayout.sequential(8, 4))
        assert positive_error_value_histogram(
            model
        ) == positive_error_value_histogram(model, base=2)

    def test_invalid_base_refused(self):
        model = SingleBitErrorModel(4)
        with pytest.raises(ValueError, match="base"):
            positive_error_value_histogram(model, base=1)


class TestHybridValidation:
    """Regression: an empty ``parts`` tuple used to raise a misleading
    'parts disagree on codeword width' error (and IndexError on .n)."""

    def test_empty_parts_refused_with_clear_message(self):
        with pytest.raises(ValueError, match="at least one part"):
            HybridErrorModel(())

    def test_single_part_still_fine(self):
        model = HybridErrorModel((SingleBitErrorModel(8),))
        assert model.n == 8
        assert model.error_values() == SingleBitErrorModel(8).error_values()
