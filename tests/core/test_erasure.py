"""Erasure-decoding tests: the double-device recovery path."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import DecodeStatus, MuseCode
from repro.core.codes import muse_80_69, muse_144_132
from repro.core.erasure import (
    ErasureDecoder,
    ErasureWindowError,
    window_for_symbols,
)
from repro.core.symbols import SymbolLayout


class TestWindow:
    def test_adjacent_symbols_form_contiguous_window(self):
        code = muse_80_69()
        window = window_for_symbols(code, (3, 4))
        assert window.offset == 12
        assert window.width == 8

    def test_separated_symbols_rejected(self):
        code = muse_80_69()
        with pytest.raises(ErasureWindowError, match="contiguous"):
            window_for_symbols(code, (3, 5))

    def test_empty_rejected(self):
        with pytest.raises(ErasureWindowError):
            window_for_symbols(muse_80_69(), ())

    def test_shuffled_layout_symbols_are_not_contiguous(self):
        """Eq.5 shuffled symbols interleave: erasure windows don't form."""
        from repro.core.codes import muse_80_67

        with pytest.raises(ErasureWindowError):
            window_for_symbols(muse_80_67(), (0,))


class TestSingleSymbolErasure:
    @given(
        data=st.integers(0, (1 << 69) - 1),
        symbol=st.integers(0, 19),
        value=st.integers(0, 15),
    )
    @settings(max_examples=100)
    def test_recovers_any_known_location_corruption(self, data, symbol, value):
        code = muse_80_69()
        decoder = ErasureDecoder(code)
        codeword = code.encode(data)
        corrupted = code.layout.insert_symbol(codeword, symbol, value)
        result = decoder.decode(corrupted, (symbol,))
        assert result.status in (DecodeStatus.CLEAN, DecodeStatus.CORRECTED)
        assert result.data == data


class TestDoubleDeviceErasure:
    @given(
        data=st.integers(0, (1 << 132) - 1),
        first=st.integers(0, 34),
        v1=st.integers(0, 15),
        v2=st.integers(0, 15),
    )
    @settings(max_examples=100)
    def test_muse_144_132_recovers_adjacent_pair(self, data, first, v1, v2):
        """Two consecutive dead x4 devices, locations known: recovered."""
        code = muse_144_132()
        decoder = ErasureDecoder(code)
        codeword = code.encode(data)
        corrupted = code.layout.insert_symbol(codeword, first, v1)
        corrupted = code.layout.insert_symbol(corrupted, first + 1, v2)
        result = decoder.decode(corrupted, (first, first + 1))
        assert result.data == data

    def test_corruption_outside_window_detected(self):
        code = muse_80_69()
        decoder = ErasureDecoder(code)
        codeword = code.encode(0xABCDEF)
        # corrupt symbol 9 but claim the erasure is at symbols (0, 1)
        corrupted = code.layout.insert_symbol(
            codeword, 9, code.layout.extract_symbol(codeword, 9) ^ 0x5
        )
        result = decoder.decode(corrupted, (0, 1))
        assert result.status is DecodeStatus.DETECTED

    def test_multiplier_floor_enforced(self):
        # A toy code whose multiplier is too small to erase 8-bit windows.
        from repro.core.error_model import SymbolErrorModel
        from repro.core.search import smallest_feasible_redundancy

        layout = SymbolLayout.sequential(16, 4)
        model = SymbolErrorModel(layout)
        found = smallest_feasible_redundancy(model, r_min=8, r_max=12)
        code = MuseCode(layout, found.multipliers[0], model)
        decoder = ErasureDecoder(code)
        if code.m <= 2 * ((1 << 8) - 1):
            with pytest.raises(ErasureWindowError, match="too small"):
                decoder.decode(code.encode(1), (0, 1))

    def test_clean_word_passes_through(self):
        code = muse_144_132()
        decoder = ErasureDecoder(code)
        codeword = code.encode(777)
        result = decoder.decode(codeword, (0, 1))
        assert result.status is DecodeStatus.CLEAN
        assert result.data == 777


class TestBatchDecode:
    """decode_batch groups words by window and must be scalar-identical."""

    def _mixed_batch(self, code, trials, seed):
        rng = random.Random(seed)
        words, pairs = [], []
        for _ in range(trials):
            codeword = code.encode(rng.randrange(1 << code.k))
            first = rng.randrange(code.layout.symbol_count - 1)
            kind = rng.randrange(3)
            if kind == 0:  # corruption inside the erased window
                codeword = code.layout.insert_symbol(
                    codeword, first, rng.randrange(16)
                )
                codeword = code.layout.insert_symbol(
                    codeword, first + 1, rng.randrange(16)
                )
            elif kind == 1:  # corruption outside the window: detected
                other = (first + 3) % code.layout.symbol_count
                codeword = code.layout.insert_symbol(
                    codeword,
                    other,
                    code.layout.extract_symbol(codeword, other) ^ 0x5,
                )
            # kind == 2: clean
            words.append(codeword)
            pairs.append((first, first + 1))
        return words, pairs

    def test_batch_matches_scalar_per_word(self):
        from repro.engine import numpy_available

        code = muse_144_132()
        decoder = ErasureDecoder(code)
        words, pairs = self._mixed_batch(code, 200, seed=23)
        scalar = decoder.decode_batch(words, pairs, backend="scalar")
        assert scalar == [
            decoder.decode(word, pair) for word, pair in zip(words, pairs)
        ]
        if numpy_available():
            assert decoder.decode_batch(words, pairs, backend="numpy") == scalar

    def test_single_shared_window_shorthand(self):
        code = muse_80_69()
        decoder = ErasureDecoder(code)
        rng = random.Random(31)
        datas = [rng.randrange(1 << code.k) for _ in range(40)]
        words = [
            code.layout.insert_symbol(
                code.layout.insert_symbol(code.encode(d), 4, rng.randrange(16)),
                5,
                rng.randrange(16),
            )
            for d in datas
        ]
        results = decoder.decode_batch(words, (4, 5))
        assert [r.data for r in results] == datas

    def test_length_mismatch_rejected(self):
        code = muse_80_69()
        decoder = ErasureDecoder(code)
        with pytest.raises(ValueError, match="erasure tuples"):
            decoder.decode_batch([1, 2, 3], [(0, 1)])

    def test_non_contiguous_window_rejected_in_batch(self):
        code = muse_80_69()
        decoder = ErasureDecoder(code)
        with pytest.raises(ErasureWindowError):
            decoder.decode_batch([code.encode(1)], [(3, 5)])


class TestRandomizedLifecycle:
    def test_identify_then_erase_flow(self):
        """The commercial flow: SSC catches failure #1, then the pair is
        marked and fully erased thereafter."""
        code = muse_144_132()
        decoder = ErasureDecoder(code)
        rng = random.Random(77)
        for _ in range(50):
            data = rng.randrange(1 << code.k)
            codeword = code.encode(data)
            dead = rng.randrange(code.layout.symbol_count - 1)
            # phase 1: one device fails; normal SSC decode identifies it
            bad1 = code.layout.insert_symbol(
                codeword, dead,
                code.layout.extract_symbol(codeword, dead) ^ rng.randrange(1, 16),
            )
            first = code.decode(bad1)
            assert first.status is DecodeStatus.CORRECTED
            # phase 2: the neighbour also dies; erase the known pair
            bad2 = code.layout.insert_symbol(bad1, dead + 1, rng.randrange(16))
            result = decoder.decode(bad2, (dead, dead + 1))
            assert result.data == data
