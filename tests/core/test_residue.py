"""Unit tests for repro.core.residue (Eqs. 1-4, Table II)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.residue import (
    ResidueParameters,
    an_decode,
    an_encode,
    an_is_codeword,
    an_remainder,
    check_bits,
    redundancy_bits,
    systematic_check_field,
    systematic_data,
    systematic_encode,
    systematic_remainder,
)


class TestRedundancyBits:
    def test_paper_multipliers(self):
        """Table II: r = ceil(log2 m) for every Table I / III multiplier."""
        assert redundancy_bits(4065) == 12
        assert redundancy_bits(2005) == 11
        assert redundancy_bits(5621) == 13
        assert redundancy_bits(821) == 10
        assert redundancy_bits(65519) == 16
        assert redundancy_bits(3621) == 12

    def test_rejects_trivial_multiplier(self):
        with pytest.raises(ValueError):
            redundancy_bits(1)


class TestANCode:
    def test_encode_is_multiplication(self):
        assert an_encode(7, 3) == 21

    def test_clean_codeword_has_zero_remainder(self):
        assert an_remainder(an_encode(123456, 4065), 4065) == 0

    def test_decode_roundtrip(self):
        data, remainder = an_decode(an_encode(99, 2005), 2005)
        assert (data, remainder) == (99, 0)

    def test_corrupted_codeword_has_nonzero_remainder(self):
        codeword = an_encode(99, 2005) + 4  # bit-2 flip 0->1
        _, remainder = an_decode(codeword, 2005)
        assert remainder == 4 % 2005

    def test_is_codeword(self):
        assert an_is_codeword(4065 * 5, 4065)
        assert not an_is_codeword(4065 * 5 + 1, 4065)
        assert not an_is_codeword(-4065, 4065)

    def test_negative_data_rejected(self):
        with pytest.raises(ValueError):
            an_encode(-1, 3)

    @given(
        data=st.integers(min_value=0, max_value=(1 << 64) - 1),
        m=st.sampled_from([4065, 2005, 5621, 821, 3621]),
    )
    def test_an_homomorphism_under_addition(self, data, m):
        """The AN-code property the paper leverages for PIM:
        e(x) + e(y) == e(x + y)."""
        other = (data * 7919 + 13) & ((1 << 64) - 1)
        assert an_encode(data, m) + an_encode(other, m) == an_encode(
            data + other, m
        )


class TestSystematic:
    def test_check_bits_make_codeword_divisible(self):
        for data in (0, 1, 0xFFFF, 0xDEADBEEF):
            codeword = systematic_encode(data, 4065)
            assert codeword % 4065 == 0

    def test_check_value_fits_in_r_bits(self):
        for data in range(0, 4096, 37):
            x = check_bits(data, 2005)
            assert 0 <= x < 2005

    def test_data_separable_without_division(self):
        """Eq. 4 / Figure 3a: data recovery is a shift, no arithmetic."""
        data = 0xCAFED00D
        codeword = systematic_encode(data, 4065)
        assert systematic_data(codeword, 12) == data

    def test_check_field_extraction(self):
        data = 12345
        r = redundancy_bits(2005)
        codeword = systematic_encode(data, 2005)
        assert systematic_check_field(codeword, r) == check_bits(data, 2005)

    def test_error_shifts_remainder_by_error_value(self):
        """The residue fingerprint: remainder == error value mod m."""
        data = 0x123456789
        m = 4065
        codeword = systematic_encode(data, m)
        for error in (1, -1, 1 << 40, -(1 << 40), 0b101 << 8):
            corrupted = codeword + error
            assert systematic_remainder(corrupted, m) == error % m

    @given(
        data=st.integers(min_value=0, max_value=(1 << 132) - 1),
        m=st.sampled_from([4065, 2005, 5621, 821]),
    )
    def test_encode_decode_roundtrip(self, data, m):
        r = redundancy_bits(m)
        codeword = systematic_encode(data, m, r)
        assert codeword % m == 0
        assert systematic_data(codeword, r) == data


class TestResidueParameters:
    def test_muse_144_132_shape(self):
        params = ResidueParameters(n=144, m=4065)
        assert params.r == 12
        assert params.k == 132

    def test_encode_checks_width(self):
        params = ResidueParameters(n=80, m=2005)
        with pytest.raises(ValueError, match="does not fit"):
            params.encode(1 << 69)

    def test_is_clean(self):
        params = ResidueParameters(n=80, m=2005)
        codeword = params.encode(0xABCDEF)
        assert params.is_clean(codeword)
        assert not params.is_clean(codeword + 1)
        assert not params.is_clean(codeword + (1 << 80))

    @given(data=st.integers(min_value=0, max_value=(1 << 69) - 1))
    def test_roundtrip(self, data):
        params = ResidueParameters(n=80, m=2005)
        assert params.data(params.encode(data)) == data
