"""Registry tests: Table I parameters are internally consistent."""

import pytest

from repro.core.codes import (
    ALL_BUILDERS,
    EXTENDED,
    TABLE_I,
    get_code,
)


class TestTableI:
    def test_table_i_has_four_codes(self):
        assert len(TABLE_I) == 4

    @pytest.mark.parametrize("spec", TABLE_I, ids=lambda s: s.name)
    def test_spec_matches_paper(self, spec):
        published = {
            "MUSE(144,132)": (4065, "C4B", "none"),
            "MUSE(80,69)": (2005, "C4B", "none"),
            "MUSE(80,67)": (5621, "C8A", "eq5"),
            "MUSE(80,70)": (821, "C4A_U1B", "eq6"),
        }
        m, error_class, shuffle = published[spec.name]
        assert spec.m == m
        assert spec.error_class == error_class
        assert spec.shuffle == shuffle

    @pytest.mark.parametrize("spec", EXTENDED, ids=lambda s: s.name)
    def test_construction_consistency(self, spec):
        """Building a code re-verifies multiplier validity (via the ELC)
        and the (n, k) arithmetic."""
        code = get_code(spec.name)
        assert code.n == spec.n
        assert code.k == spec.k
        assert code.m == spec.m
        assert code.r == spec.n - spec.k

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(KeyError, match="MUSE\\(144,132\\)"):
            get_code("MUSE(1,1)")

    def test_builders_cover_registry(self):
        assert set(ALL_BUILDERS) == {spec.name for spec in EXTENDED}
        for name, builder in ALL_BUILDERS.items():
            assert builder().name == name

    def test_get_code_is_cached(self):
        assert get_code("MUSE(80,69)") is get_code("MUSE(80,69)")
