"""Unit tests for the Error Lookup Circuit model."""

import pytest

from repro.core.elc import ErrorLookupCircuit
from repro.core.error_model import ErrorDirection, SymbolErrorModel
from repro.core.symbols import SymbolLayout


def c4b_model(n: int) -> SymbolErrorModel:
    return SymbolErrorModel(SymbolLayout.sequential(n, 4))


class TestConstruction:
    def test_paper_elc_dimensions_144_132(self):
        """Section V: 1080 entries, 157 bits each (12 + 144 + 1)."""
        elc = ErrorLookupCircuit(c4b_model(144), 4065)
        assert elc.entry_count == 1080
        assert elc.remainder_bits == 12
        assert elc.entry_width_bits == 157

    def test_invalid_multiplier_rejected_on_collision(self):
        # 4097 is not in the Appendix F list for the 144-bit search, and
        # it is small enough to collide.
        with pytest.raises(ValueError, match="same remainder|remainder 0"):
            ErrorLookupCircuit(c4b_model(144), 2049)

    def test_zero_remainder_rejected(self):
        # m dividing some error value: 2^4-1=15 divides error value 15.
        with pytest.raises(ValueError, match="remainder 0"):
            ErrorLookupCircuit(c4b_model(8), 15)


class TestLookup:
    def test_every_error_value_is_found_and_signed(self):
        model = c4b_model(80)
        elc = ErrorLookupCircuit(model, 2005)
        for value in model.error_values():
            entry = elc.lookup(value % 2005)
            assert entry is not None
            assert entry.error_value == value

    def test_unused_remainder_misses(self):
        model = c4b_model(80)
        elc = ErrorLookupCircuit(model, 2005)
        used = {value % 2005 for value in model.error_values()}
        unused = next(r for r in range(1, 2005) if r not in used)
        assert elc.lookup(unused) is None
        assert unused not in elc

    def test_len_and_contains(self):
        model = c4b_model(80)
        elc = ErrorLookupCircuit(model, 2005)
        assert len(elc) == 600
        some_value = next(iter(model.error_values()))
        assert some_value % 2005 in elc


class TestDetectionHeadroom:
    def test_unused_remainders_counts(self):
        elc = ErrorLookupCircuit(c4b_model(144), 4065)
        assert elc.unused_remainders == 4065 - 1 - 1080

    def test_larger_multiplier_buys_more_headroom(self):
        """Section VII-A: 65519 vs 4065 trades spare bits for detection."""
        small = ErrorLookupCircuit(c4b_model(144), 4065)
        large = ErrorLookupCircuit(c4b_model(144), 65519)
        assert large.entry_count == small.entry_count == 1080
        assert large.unused_remainders > small.unused_remainders
        assert large.coverage_ratio() < small.coverage_ratio()

    def test_asymmetric_code_elc(self):
        model = SymbolErrorModel(SymbolLayout.eq5(), ErrorDirection.ONE_TO_ZERO)
        elc = ErrorLookupCircuit(model, 5621)
        assert elc.entry_count == 2550
        # All stored corrections are negative values (1->0 flips).
        for value in model.error_values():
            assert elc.lookup(value % 5621).sign == -1
