"""Unit tests for repro.core.symbols (bit-to-symbol assignment)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.symbols import SymbolLayout


class TestConstruction:
    def test_sequential_partitions_all_bits(self):
        layout = SymbolLayout.sequential(16, 4)
        assert layout.symbol_count == 4
        assert layout.symbols[0] == (0, 1, 2, 3)
        assert layout.symbols[3] == (12, 13, 14, 15)

    def test_sequential_rejects_nondivisible(self):
        with pytest.raises(ValueError, match="not a multiple"):
            SymbolLayout.sequential(10, 4)

    def test_duplicate_bit_rejected(self):
        with pytest.raises(ValueError, match="assigned twice"):
            SymbolLayout(4, ((0, 1), (1, 3)))

    def test_missing_bit_rejected(self):
        with pytest.raises(ValueError, match="not covered"):
            SymbolLayout(4, ((0, 1), (3,)))

    def test_out_of_range_bit_rejected(self):
        with pytest.raises(ValueError, match="outside codeword"):
            SymbolLayout(4, ((0, 1), (2, 4)))

    def test_interleaved_requires_consistent_geometry(self):
        with pytest.raises(ValueError, match="must equal"):
            SymbolLayout.interleaved(80, 8, 9)


class TestPaperShuffles:
    def test_eq5_matches_paper_equation(self):
        """Eq. 5: S_i = [b_i, b_10+i, ..., b_70+i] for i in [0, 9]."""
        layout = SymbolLayout.eq5()
        assert layout.n == 80
        assert layout.symbol_count == 10
        for i in range(10):
            assert layout.symbols[i] == tuple(i + 10 * j for j in range(8))

    def test_eq6_matches_paper_equation(self):
        """Eq. 6: even/odd symbols take the low/high 40-bit half."""
        layout = SymbolLayout.eq6()
        assert layout.n == 80
        assert layout.symbol_count == 20
        for i in range(10):
            assert layout.symbols[2 * i] == (i, 10 + i, 20 + i, 30 + i)
            assert layout.symbols[2 * i + 1] == (40 + i, 50 + i, 60 + i, 70 + i)

    def test_eq5_is_shuffled_not_sequential(self):
        assert not SymbolLayout.eq5().is_sequential()
        assert SymbolLayout.sequential(80, 8).is_sequential()


class TestViews:
    def test_symbol_size_uniform(self):
        assert SymbolLayout.sequential(144, 4).symbol_size == 4
        assert SymbolLayout.eq5().symbol_size == 8

    def test_mixed_symbol_size_rejected_by_view(self):
        layout = SymbolLayout(3, ((0,), (1, 2)))
        with pytest.raises(ValueError, match="mixed"):
            _ = layout.symbol_size

    def test_masks_partition_the_word(self):
        layout = SymbolLayout.eq6()
        combined = 0
        for mask in layout.masks:
            assert combined & mask == 0
            combined |= mask
        assert combined == (1 << 80) - 1

    def test_bit_to_symbol_inverse_of_symbols(self):
        layout = SymbolLayout.eq5()
        for index, symbol in enumerate(layout.symbols):
            for bit in symbol:
                assert layout.symbol_of_bit(bit) == index


class TestSymbolAccess:
    def test_extract_insert_roundtrip(self):
        layout = SymbolLayout.sequential(16, 4)
        word = 0xABCD
        for i in range(4):
            value = layout.extract_symbol(word, i)
            assert layout.insert_symbol(word, i, value) == word

    def test_extract_uses_device_local_bit_order(self):
        # Shuffled symbol 0 of Eq.5 holds bits 0,10,...,70; set bit 10 only.
        layout = SymbolLayout.eq5()
        word = 1 << 10
        assert layout.extract_symbol(word, 0) == 0b10

    def test_insert_rejects_oversized_value(self):
        layout = SymbolLayout.sequential(16, 4)
        with pytest.raises(ValueError, match="does not fit"):
            layout.insert_symbol(0, 0, 16)

    @given(
        word=st.integers(min_value=0, max_value=(1 << 80) - 1),
        index=st.integers(min_value=0, max_value=9),
        value=st.integers(min_value=0, max_value=255),
    )
    def test_insert_then_extract_returns_value(self, word, index, value):
        layout = SymbolLayout.eq5()
        updated = layout.insert_symbol(word, index, value)
        assert layout.extract_symbol(updated, index) == value
        # other symbols untouched
        for other in range(10):
            if other != index:
                assert layout.extract_symbol(updated, other) == (
                    layout.extract_symbol(word, other)
                )


class TestRippleCheck:
    def test_zero_diff_is_confined(self):
        assert SymbolLayout.sequential(16, 4).confined_to_single_symbol(0)

    def test_single_symbol_diff_is_confined(self):
        layout = SymbolLayout.sequential(16, 4)
        assert layout.confined_to_single_symbol(0b1111 << 4)

    def test_cross_symbol_diff_is_not_confined(self):
        layout = SymbolLayout.sequential(16, 4)
        assert not layout.confined_to_single_symbol(0b11000)  # bits 3 and 4

    def test_diff_beyond_codeword_is_not_confined(self):
        layout = SymbolLayout.sequential(16, 4)
        assert not layout.confined_to_single_symbol(1 << 16)

    def test_shuffled_symbol_diff_is_confined(self):
        # Bits 3 and 13 belong to the same Eq.5 symbol (S_3).
        layout = SymbolLayout.eq5()
        assert layout.confined_to_single_symbol((1 << 3) | (1 << 13))
        # Bits 3 and 14 straddle S_3 / S_4.
        assert not layout.confined_to_single_symbol((1 << 3) | (1 << 14))


class TestDescribe:
    def test_describe_mentions_shape_and_kind(self):
        text = SymbolLayout.eq5().describe()
        assert "10 x 8-bit" in text
        assert "shuffled" in text


def shuffled_layouts():
    """Every shuffled constructor the paper uses, plus a strided C4."""
    return [
        ("interleaved_80_4_20", SymbolLayout.interleaved(80, 4, 20)),
        ("eq5", SymbolLayout.eq5()),
        ("eq6", SymbolLayout.eq6()),
    ]


class TestShuffledRoundTrips:
    """Extract/insert over every symbol of every shuffled layout."""

    @pytest.mark.parametrize(
        "layout", [l for _, l in shuffled_layouts()],
        ids=[name for name, _ in shuffled_layouts()],
    )
    def test_every_symbol_round_trips(self, layout):
        word = 0x5A5A_5A5A_5A5A_5A5A_5A5A % (1 << layout.n)
        for index in range(layout.symbol_count):
            width = len(layout.symbols[index])
            for value in (0, 1, (1 << width) - 1, 0b101 % (1 << width)):
                updated = layout.insert_symbol(word, index, value)
                assert layout.extract_symbol(updated, index) == value
                restored = layout.insert_symbol(
                    updated, index, layout.extract_symbol(word, index)
                )
                assert restored == word

    @pytest.mark.parametrize(
        "layout", [l for _, l in shuffled_layouts()],
        ids=[name for name, _ in shuffled_layouts()],
    )
    def test_masks_match_symbol_bits(self, layout):
        for index, symbol in enumerate(layout.symbols):
            assert layout.masks[index] == sum(1 << b for b in symbol)


class TestConfinementEdgeCases:
    def test_top_symbol_full_mask_is_confined(self):
        """The highest symbol — including codeword bit n-1 — confines."""
        for layout in (
            SymbolLayout.sequential(144, 4),
            SymbolLayout.eq5(),
            SymbolLayout.eq6(),
        ):
            top = layout.symbol_count - 1
            # each of these layouts puts codeword bit n-1 in its last symbol
            assert (layout.masks[top] >> (layout.n - 1)) & 1
            assert layout.confined_to_single_symbol(layout.masks[top])

    def test_top_bit_plus_overflow_bit_is_not_confined(self):
        layout = SymbolLayout.sequential(144, 4)
        assert not layout.confined_to_single_symbol((1 << 143) | (1 << 144))

    def test_carry_across_shuffled_boundary_is_not_confined(self):
        """A carry rippling one bit past a shuffled symbol's span: in
        Eq.5, bits {0, 10, ..., 70} are S_0; bit 71 belongs to S_1."""
        layout = SymbolLayout.eq5()
        inside = (1 << 70) | (1 << 0)
        assert layout.confined_to_single_symbol(inside)
        assert not layout.confined_to_single_symbol(inside | (1 << 71))

    def test_adjacent_physical_bits_straddle_eq6_symbols(self):
        """Eq.6 places physically adjacent bits 39 and 40 in different
        symbols (S_19 and S_1) — an adder carry from bit 39 to 40 is a
        detectable ripple."""
        layout = SymbolLayout.eq6()
        assert layout.symbol_of_bit(39) != layout.symbol_of_bit(40)
        assert not layout.confined_to_single_symbol((1 << 39) | (1 << 40))


class TestLayoutsThroughBothBackends:
    """Symbol access must agree with the engines that consume it: a
    corruption written into any (shuffled or top) symbol decodes to
    CORRECTED identically on the scalar and numpy backends."""

    @pytest.mark.parametrize("backend", ["scalar", "numpy"])
    def test_top_symbol_corruption_corrected(self, backend):
        from repro.core.codes import muse_80_67, muse_80_70, muse_144_132
        from repro.engine import available_backends

        if backend not in available_backends():
            pytest.skip("numpy backend unavailable")
        from repro.core.codec import DecodeStatus

        for code in (muse_144_132(), muse_80_67(), muse_80_70()):
            layout = code.layout
            top = layout.symbol_count - 1
            data = (1 << code.k) - 1
            word = code.encode(data)
            original = layout.extract_symbol(word, top)
            # With all-ones data, clearing data-region bits of the top
            # symbol is a 1->0 error — correctable under every model in
            # play (bidirectional, asymmetric, and hybrid alike).
            safe = [
                j
                for j, bit in enumerate(layout.symbols[top])
                if bit >= code.r
            ]
            flips = [1 << j for j in safe]
            if len(safe) > 1:
                flips.append(sum(1 << j for j in safe))
            corrupted = [
                layout.insert_symbol(word, top, original ^ flip)
                for flip in flips
            ]
            results = code.decode_batch(corrupted, backend=backend).results()
            assert all(r.status is DecodeStatus.CORRECTED for r in results)
            assert all(r.data == data for r in results)
