"""Unit tests for repro.core.symbols (bit-to-symbol assignment)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.symbols import SymbolLayout


class TestConstruction:
    def test_sequential_partitions_all_bits(self):
        layout = SymbolLayout.sequential(16, 4)
        assert layout.symbol_count == 4
        assert layout.symbols[0] == (0, 1, 2, 3)
        assert layout.symbols[3] == (12, 13, 14, 15)

    def test_sequential_rejects_nondivisible(self):
        with pytest.raises(ValueError, match="not a multiple"):
            SymbolLayout.sequential(10, 4)

    def test_duplicate_bit_rejected(self):
        with pytest.raises(ValueError, match="assigned twice"):
            SymbolLayout(4, ((0, 1), (1, 3)))

    def test_missing_bit_rejected(self):
        with pytest.raises(ValueError, match="not covered"):
            SymbolLayout(4, ((0, 1), (3,)))

    def test_out_of_range_bit_rejected(self):
        with pytest.raises(ValueError, match="outside codeword"):
            SymbolLayout(4, ((0, 1), (2, 4)))

    def test_interleaved_requires_consistent_geometry(self):
        with pytest.raises(ValueError, match="must equal"):
            SymbolLayout.interleaved(80, 8, 9)


class TestPaperShuffles:
    def test_eq5_matches_paper_equation(self):
        """Eq. 5: S_i = [b_i, b_10+i, ..., b_70+i] for i in [0, 9]."""
        layout = SymbolLayout.eq5()
        assert layout.n == 80
        assert layout.symbol_count == 10
        for i in range(10):
            assert layout.symbols[i] == tuple(i + 10 * j for j in range(8))

    def test_eq6_matches_paper_equation(self):
        """Eq. 6: even/odd symbols take the low/high 40-bit half."""
        layout = SymbolLayout.eq6()
        assert layout.n == 80
        assert layout.symbol_count == 20
        for i in range(10):
            assert layout.symbols[2 * i] == (i, 10 + i, 20 + i, 30 + i)
            assert layout.symbols[2 * i + 1] == (40 + i, 50 + i, 60 + i, 70 + i)

    def test_eq5_is_shuffled_not_sequential(self):
        assert not SymbolLayout.eq5().is_sequential()
        assert SymbolLayout.sequential(80, 8).is_sequential()


class TestViews:
    def test_symbol_size_uniform(self):
        assert SymbolLayout.sequential(144, 4).symbol_size == 4
        assert SymbolLayout.eq5().symbol_size == 8

    def test_mixed_symbol_size_rejected_by_view(self):
        layout = SymbolLayout(3, ((0,), (1, 2)))
        with pytest.raises(ValueError, match="mixed"):
            _ = layout.symbol_size

    def test_masks_partition_the_word(self):
        layout = SymbolLayout.eq6()
        combined = 0
        for mask in layout.masks:
            assert combined & mask == 0
            combined |= mask
        assert combined == (1 << 80) - 1

    def test_bit_to_symbol_inverse_of_symbols(self):
        layout = SymbolLayout.eq5()
        for index, symbol in enumerate(layout.symbols):
            for bit in symbol:
                assert layout.symbol_of_bit(bit) == index


class TestSymbolAccess:
    def test_extract_insert_roundtrip(self):
        layout = SymbolLayout.sequential(16, 4)
        word = 0xABCD
        for i in range(4):
            value = layout.extract_symbol(word, i)
            assert layout.insert_symbol(word, i, value) == word

    def test_extract_uses_device_local_bit_order(self):
        # Shuffled symbol 0 of Eq.5 holds bits 0,10,...,70; set bit 10 only.
        layout = SymbolLayout.eq5()
        word = 1 << 10
        assert layout.extract_symbol(word, 0) == 0b10

    def test_insert_rejects_oversized_value(self):
        layout = SymbolLayout.sequential(16, 4)
        with pytest.raises(ValueError, match="does not fit"):
            layout.insert_symbol(0, 0, 16)

    @given(
        word=st.integers(min_value=0, max_value=(1 << 80) - 1),
        index=st.integers(min_value=0, max_value=9),
        value=st.integers(min_value=0, max_value=255),
    )
    def test_insert_then_extract_returns_value(self, word, index, value):
        layout = SymbolLayout.eq5()
        updated = layout.insert_symbol(word, index, value)
        assert layout.extract_symbol(updated, index) == value
        # other symbols untouched
        for other in range(10):
            if other != index:
                assert layout.extract_symbol(updated, other) == (
                    layout.extract_symbol(word, other)
                )


class TestRippleCheck:
    def test_zero_diff_is_confined(self):
        assert SymbolLayout.sequential(16, 4).confined_to_single_symbol(0)

    def test_single_symbol_diff_is_confined(self):
        layout = SymbolLayout.sequential(16, 4)
        assert layout.confined_to_single_symbol(0b1111 << 4)

    def test_cross_symbol_diff_is_not_confined(self):
        layout = SymbolLayout.sequential(16, 4)
        assert not layout.confined_to_single_symbol(0b11000)  # bits 3 and 4

    def test_diff_beyond_codeword_is_not_confined(self):
        layout = SymbolLayout.sequential(16, 4)
        assert not layout.confined_to_single_symbol(1 << 16)

    def test_shuffled_symbol_diff_is_confined(self):
        # Bits 3 and 13 belong to the same Eq.5 symbol (S_3).
        layout = SymbolLayout.eq5()
        assert layout.confined_to_single_symbol((1 << 3) | (1 << 13))
        # Bits 3 and 14 straddle S_3 / S_4.
        assert not layout.confined_to_single_symbol((1 << 3) | (1 << 14))


class TestDescribe:
    def test_describe_mentions_shape_and_kind(self):
        text = SymbolLayout.eq5().describe()
        assert "10 x 8-bit" in text
        assert "shuffled" in text
