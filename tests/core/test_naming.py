"""Tests for the P-S-T error-class naming convention parser."""

import pytest

from repro.core.naming import ErrorClass, ErrorClassName, format_terms, parse


class TestParse:
    def test_c4b(self):
        name = parse("C4B")
        assert not name.is_hybrid
        term = name.terms[0]
        assert term.constrained and term.size == 4 and term.bidirectional

    def test_c8a(self):
        term = parse("C8A").terms[0]
        assert term.constrained and term.size == 8 and not term.bidirectional

    def test_hybrid_c4a_u1b(self):
        name = parse("C4A_U1B")
        assert name.is_hybrid
        first, second = name.terms
        assert str(first) == "C4A" and first.is_symbol_class
        assert str(second) == "U1B" and not second.constrained
        assert not second.is_symbol_class

    def test_multi_digit_size(self):
        assert parse("U16B").terms[0].size == 16

    @pytest.mark.parametrize("bad", ["", "X4B", "C4X", "4B", "CB", "C4B_", "c4b"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse(bad)


class TestFormat:
    def test_roundtrip(self):
        for text in ("C4B", "C8A", "C4A_U1B", "U1B"):
            assert str(parse(text)) == text

    def test_format_terms(self):
        terms = (
            ErrorClass(constrained=True, size=4, bidirectional=False),
            ErrorClass(constrained=False, size=1, bidirectional=True),
        )
        assert format_terms(*terms) == "C4A_U1B"

    def test_str_of_name(self):
        assert str(ErrorClassName(parse("C4B").terms)) == "C4B"
