"""Algorithm-1 search tests: exact reproduction of the paper's Appendix F.

These are the reproduction's anchor assertions: every multiplier list
the paper publishes must come out of our search *exactly*.
"""

import pytest

from repro.core.error_model import (
    ErrorDirection,
    SingleBitErrorModel,
    SymbolErrorModel,
    hybrid_c4a_u1b,
)
from repro.core.search import (
    MultiplierSearch,
    candidate_multipliers,
    find_multipliers,
    is_valid_multiplier,
    largest_multiplier,
    smallest_feasible_redundancy,
)
from repro.core.symbols import SymbolLayout

# Appendix F, verbatim.
APPENDIX_F_144_12 = (
    2397, 2883, 2967, 3009, 3259, 3295, 3371, 3417, 3431, 3459, 3469,
    3505, 3523, 3531, 3551, 3555, 3621, 3679, 3739, 3857, 3909, 3995,
    4017, 4043, 4065,
)
APPENDIX_F_80_11 = (1491, 1721, 1763, 1833, 1875, 1899, 1955, 2005)


class TestCandidateRange:
    def test_candidates_are_odd_r_bit_numbers(self):
        candidates = list(candidate_multipliers(4))
        assert candidates == [9, 11, 13, 15]
        assert all(c.bit_length() == 4 for c in candidates)

    def test_rejects_tiny_redundancy(self):
        with pytest.raises(ValueError):
            candidate_multipliers(1)


class TestValidity:
    def test_collision_rejected(self):
        # values 1 and 4 collide mod 3
        assert not is_valid_multiplier(3, [1, 4])

    def test_zero_remainder_rejected(self):
        assert not is_valid_multiplier(5, [5])

    def test_accepts_separating_multiplier(self):
        assert is_valid_multiplier(7, [1, 2, 3])


class TestAppendixF:
    """Exact-list reproduction of all four published searches."""

    def test_muse_144_132_full_list(self):
        model = SymbolErrorModel(SymbolLayout.sequential(144, 4))
        result = find_multipliers(model, r=12)
        assert result.required_remainders == 1080
        assert result.multipliers == APPENDIX_F_144_12
        assert result.largest == 4065  # Table I's pick

    def test_muse_80_69_full_list(self):
        model = SymbolErrorModel(SymbolLayout.sequential(80, 4))
        result = find_multipliers(model, r=11)
        assert result.required_remainders == 600
        assert result.multipliers == APPENDIX_F_80_11
        assert result.largest == 2005  # Table I's pick

    def test_muse_80_67_shuffled_asymmetric(self):
        model = SymbolErrorModel(SymbolLayout.eq5(), ErrorDirection.ONE_TO_ZERO)
        result = find_multipliers(model, r=13)
        assert result.required_remainders == 2550
        assert result.multipliers == (5621,)

    def test_muse_80_70_hybrid(self):
        result = find_multipliers(hybrid_c4a_u1b(SymbolLayout.eq6()), r=10)
        assert result.required_remainders == 380
        assert result.multipliers == (821,)


class TestAppendixG:
    def test_muse_80_67_without_shuffle_finds_nothing(self):
        """Appendix G: the '-s 0' configuration yields no multipliers."""
        model = SymbolErrorModel(
            SymbolLayout.sequential(80, 8), ErrorDirection.ONE_TO_ZERO
        )
        result = find_multipliers(model, r=13)
        assert not result.found

    @pytest.mark.slow
    def test_muse_80_67_without_shuffle_no_16bit_or_less(self):
        """Section IV: 'sequential assignment yields no multipliers of
        16 bits or less' for the C8A model."""
        model = SymbolErrorModel(
            SymbolLayout.sequential(80, 8), ErrorDirection.ONE_TO_ZERO
        )
        for r in range(12, 17):
            assert not MultiplierSearch(model, r).run(stop_after=1).found


class TestSectionClaims:
    def test_pim_multiplier_3621_valid_for_268_bits(self):
        """Section VI-B: MUSE(268,256) with m=3621."""
        model = SymbolErrorModel(SymbolLayout.sequential(268, 4))
        assert model.required_remainders == 67 * 30
        assert is_valid_multiplier(3621, sorted(model.error_values()))

    def test_largest_16bit_multiplier_is_65519(self):
        """Section VII-A: MUSE(144,128) chooses 65519."""
        model = SymbolErrorModel(SymbolLayout.sequential(144, 4))
        assert largest_multiplier(model, 16) == 65519


class TestSearchMechanics:
    def test_stop_after_limits_result(self):
        model = SymbolErrorModel(SymbolLayout.sequential(80, 4))
        result = find_multipliers(model, r=11, stop_after=1)
        assert result.multipliers == (1491,)
        assert result.candidates_tested < 512

    def test_descending_finds_largest_first(self):
        model = SymbolErrorModel(SymbolLayout.sequential(80, 4))
        result = MultiplierSearch(model, 11).run_descending(stop_after=1)
        assert result.multipliers == (2005,)

    def test_smallest_feasible_redundancy(self):
        """11 bits is the least redundancy covering the 80-bit C4B model."""
        model = SymbolErrorModel(SymbolLayout.sequential(80, 4))
        result = smallest_feasible_redundancy(model, r_min=8, r_max=12)
        assert result is not None
        assert result.r == 11

    def test_progress_callback_invoked(self):
        model = SymbolErrorModel(SymbolLayout.sequential(80, 4))
        calls: list[tuple[int, int]] = []
        search = MultiplierSearch(model, 11, progress=lambda d, t: calls.append((d, t)))
        search.run()
        assert calls
        assert all(total == 512 for _, total in calls)

    def test_result_describe(self):
        model = SymbolErrorModel(SymbolLayout.sequential(80, 4))
        result = find_multipliers(model, r=11)
        text = result.describe()
        assert "MUSE(80,69)" in text
        assert "2005" in text
