"""Codec tests: the Figure-4 decision flow, exhaustively and by property."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import DecodeStatus, DetectionReason, MuseCode
from repro.core.codes import (
    muse_80_67,
    muse_80_69,
    muse_80_70,
    muse_144_132,
)
from repro.core.error_model import ErrorDirection, SymbolErrorModel
from repro.core.symbols import SymbolLayout


def small_code() -> MuseCode:
    """A fast 16-bit C4B code for exhaustive loops (m found by search)."""
    layout = SymbolLayout.sequential(16, 4)
    model = SymbolErrorModel(layout)
    # smallest feasible redundancy for this toy model, via the real search
    from repro.core.search import smallest_feasible_redundancy

    result = smallest_feasible_redundancy(model, r_min=8, r_max=12)
    assert result is not None
    return MuseCode(layout, result.multipliers[0], model, name="toy(16)")


class TestEncode:
    def test_codeword_width(self):
        code = muse_144_132()
        codeword = code.encode((1 << 132) - 1)
        assert codeword.bit_length() <= 144

    def test_encode_rejects_oversized_data(self):
        code = muse_80_69()
        with pytest.raises(ValueError):
            code.encode(1 << 69)
        with pytest.raises(ValueError):
            code.encode(-1)

    def test_codeword_is_divisible_by_m(self):
        code = muse_80_69()
        assert code.encode(0xFEEDFACE) % code.m == 0

    def test_data_field_is_separable(self):
        code = muse_80_69()
        data = 0x1F00BA4BEEF
        assert code.encode(data) >> code.r == data


class TestCleanDecode:
    @given(data=st.integers(min_value=0, max_value=(1 << 132) - 1))
    @settings(max_examples=50)
    def test_roundtrip_144_132(self, data):
        code = muse_144_132()
        result = code.decode(code.encode(data))
        assert result.status is DecodeStatus.CLEAN
        assert result.data == data

    def test_all_registry_codes_roundtrip(self):
        for code in (muse_144_132(), muse_80_69(), muse_80_67(), muse_80_70()):
            data = (1 << code.k) - 1
            result = code.decode(code.encode(data))
            assert result.status is DecodeStatus.CLEAN
            assert result.data == data


class TestSingleSymbolCorrection:
    """Every correctable error pattern must be corrected, exactly."""

    def test_exhaustive_toy_code(self):
        """Every (data, symbol, pattern) for a 16-bit code — full sweep."""
        code = small_code()
        rng = random.Random(7)
        datas = [rng.randrange(1 << code.k) for _ in range(8)]
        for data in datas:
            codeword = code.encode(data)
            for index in range(code.layout.symbol_count):
                original = code.layout.extract_symbol(codeword, index)
                for corrupted_value in range(16):
                    if corrupted_value == original:
                        continue
                    bad = code.layout.insert_symbol(codeword, index, corrupted_value)
                    result = code.decode(bad)
                    assert result.status is DecodeStatus.CORRECTED
                    assert result.data == data
                    assert result.codeword == codeword

    @given(
        data=st.integers(min_value=0, max_value=(1 << 132) - 1),
        symbol=st.integers(min_value=0, max_value=35),
        pattern=st.integers(min_value=1, max_value=15),
    )
    @settings(max_examples=100)
    def test_muse_144_132_corrects_any_device_corruption(
        self, data, symbol, pattern
    ):
        """ChipKill property: arbitrary corruption of one x4 device."""
        code = muse_144_132()
        codeword = code.encode(data)
        original = code.layout.extract_symbol(codeword, symbol)
        bad = code.layout.insert_symbol(codeword, symbol, original ^ pattern)
        result = code.decode(bad)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data

    @given(
        data=st.integers(min_value=0, max_value=(1 << 67) - 1),
        symbol=st.integers(min_value=0, max_value=9),
        # asymmetric: clear some subset of the symbol's set bits
        clear_mask=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=100)
    def test_muse_80_67_corrects_retention_errors(self, data, symbol, clear_mask):
        """C8A: any 1->0 multi-bit pattern inside one shuffled device."""
        code = muse_80_67()
        codeword = code.encode(data)
        original = code.layout.extract_symbol(codeword, symbol)
        corrupted = original & ~clear_mask
        if corrupted == original:
            return  # nothing flipped; not an error
        bad = code.layout.insert_symbol(codeword, symbol, corrupted)
        result = code.decode(bad)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data

    @given(
        data=st.integers(min_value=0, max_value=(1 << 70) - 1),
        bit=st.integers(min_value=0, max_value=79),
    )
    @settings(max_examples=100)
    def test_muse_80_70_corrects_any_single_bit_flip(self, data, bit):
        """Hybrid code's U1B half: any bidirectional single-bit error."""
        code = muse_80_70()
        codeword = code.encode(data)
        bad = codeword ^ (1 << bit)
        result = code.decode(bad)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data

    @given(
        data=st.integers(min_value=0, max_value=(1 << 70) - 1),
        symbol=st.integers(min_value=0, max_value=19),
        clear_mask=st.integers(min_value=1, max_value=15),
    )
    @settings(max_examples=100)
    def test_muse_80_70_corrects_asymmetric_symbol_errors(
        self, data, symbol, clear_mask
    ):
        """Hybrid code's C4A half: 1->0 symbol errors."""
        code = muse_80_70()
        codeword = code.encode(data)
        original = code.layout.extract_symbol(codeword, symbol)
        corrupted = original & ~clear_mask
        if corrupted == original:
            return
        bad = code.layout.insert_symbol(codeword, symbol, corrupted)
        result = code.decode(bad)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data


class TestDetection:
    def test_multi_symbol_error_never_silently_wrong(self):
        """A detected or corrected result, never a wrong CLEAN, and any
        CORRECTED result for a 2-symbol error must be flagged by the
        Monte-Carlo as a miscorrection — here we only require the codec
        never claims CLEAN."""
        code = muse_80_69()
        rng = random.Random(21)
        for _ in range(200):
            data = rng.randrange(1 << code.k)
            codeword = code.encode(data)
            s1, s2 = rng.sample(range(code.layout.symbol_count), 2)
            bad = codeword
            for index in (s1, s2):
                original = code.layout.extract_symbol(bad, index)
                corrupted = rng.randrange(16)
                while corrupted == original:
                    corrupted = rng.randrange(16)
                bad = code.layout.insert_symbol(bad, index, corrupted)
            result = code.decode(bad)
            if result.status is DecodeStatus.CLEAN:
                pytest.fail("two-symbol error decoded as CLEAN")

    def test_remainder_not_found_reason(self):
        code = muse_80_69()
        model_values = {v % code.m for v in code.model.error_values()}
        unused = next(r for r in range(1, code.m) if r not in model_values)
        codeword = code.encode(123456)
        bad = codeword + unused  # error value == unused remainder
        result = code.decode(bad)
        assert result.status is DecodeStatus.DETECTED
        assert result.reason is DetectionReason.REMAINDER_NOT_FOUND

    def test_ripple_detection_exists_in_practice(self):
        """Some multi-symbol errors must be caught by the overflow check
        (not just by ELC miss) — this is the paper's second detector."""
        code = muse_80_69()
        rng = random.Random(5)
        ripple_detections = 0
        for _ in range(2000):
            data = rng.randrange(1 << code.k)
            codeword = code.encode(data)
            bad = codeword
            for index in rng.sample(range(code.layout.symbol_count), 2):
                original = code.layout.extract_symbol(bad, index)
                corrupted = rng.randrange(16)
                while corrupted == original:
                    corrupted = rng.randrange(16)
                bad = code.layout.insert_symbol(bad, index, corrupted)
            result = code.decode(bad)
            if (
                result.status is DecodeStatus.DETECTED
                and result.reason is DetectionReason.SYMBOL_OVERFLOW
            ):
                ripple_detections += 1
        assert ripple_detections > 0

    def test_ripple_ablation_detects_less(self):
        """decode_without_ripple_check must miscorrect a superset."""
        code = muse_80_69()
        rng = random.Random(11)
        full, ablated = 0, 0
        for _ in range(1000):
            data = rng.randrange(1 << code.k)
            codeword = code.encode(data)
            bad = codeword
            for index in rng.sample(range(code.layout.symbol_count), 2):
                original = code.layout.extract_symbol(bad, index)
                corrupted = rng.randrange(16)
                while corrupted == original:
                    corrupted = rng.randrange(16)
                bad = code.layout.insert_symbol(bad, index, corrupted)
            if code.decode(bad).status is DecodeStatus.DETECTED:
                full += 1
            if code.decode_without_ripple_check(bad).status is DecodeStatus.DETECTED:
                ablated += 1
        assert full > ablated


class TestNoRippleWrapSemantics:
    """decode vs decode_without_ripple_check on the same corrupted words.

    The ablation decoder models an n-bit adder with no range detector:
    a correction that would underflow (corrected < 0) or overflow
    (corrected >= 2^n) wraps modulo 2^n and is *delivered*, where the
    full decoder detects.  Regression for the former behaviour of
    arithmetic-shifting a negative big int and masking the data field.
    """

    @staticmethod
    def underflowing_word(code):
        """A received word whose ELC hit implies corrected < 0."""
        entry = max(
            (e for e in code.elc.entries() if e.sign > 0),
            key=lambda e: e.magnitude,
        )
        # encode(0) has only the small check value X set; adding the
        # entry's remainder reproduces its fingerprint while keeping
        # the word far below the error value itself.
        word = code.encode(0) + entry.remainder
        assert word < entry.error_value
        return word, entry

    def test_full_decoder_detects_underflow(self):
        code = muse_80_69()
        word, _ = self.underflowing_word(code)
        result = code.decode(word)
        assert result.status is DecodeStatus.DETECTED
        assert result.reason is DetectionReason.SYMBOL_OVERFLOW

    def test_ablation_decoder_wraps_underflow_into_n_bits(self):
        code = muse_80_69()
        word, entry = self.underflowing_word(code)
        result = code.decode_without_ripple_check(word)
        assert result.status is DecodeStatus.CORRECTED
        wrapped = (word - entry.error_value) & ((1 << code.n) - 1)
        assert result.codeword == wrapped
        assert result.data == wrapped >> code.r
        assert 0 <= result.data < (1 << code.k)

    def test_paths_agree_when_correction_is_in_range(self):
        """On genuinely correctable words the two decoders coincide."""
        code = muse_80_69()
        rng = random.Random(17)
        for _ in range(100):
            data = rng.randrange(1 << code.k)
            word = code.encode(data)
            index = rng.randrange(code.layout.symbol_count)
            original = code.layout.extract_symbol(word, index)
            bad = code.layout.insert_symbol(word, index, original ^ 0x5)
            assert code.decode(bad) == code.decode_without_ripple_check(bad)

    def test_batch_engines_match_scalar_on_underflow_words(self):
        from repro.engine import available_backends

        code = muse_80_69()
        word, _ = self.underflowing_word(code)
        words = [word, code.encode(123)]
        for backend in available_backends():
            for ripple in (True, False):
                scalar_fn = (
                    code.decode if ripple else code.decode_without_ripple_check
                )
                batch = code.engine(backend, ripple_check=ripple).decode_batch(
                    words
                )
                assert batch.results() == [scalar_fn(w) for w in words]


class TestSpareBits:
    def test_paper_spare_bit_claims(self):
        """Section VI-A: MUSE(80,69) leaves 5 bits over a 64-bit payload;
        Section IV: MUSE(80,67) leaves 3; MUSE(80,70) leaves 6."""
        assert muse_80_69().spare_bits(64) == 5
        assert muse_80_67().spare_bits(64) == 3
        assert muse_80_70().spare_bits(64) == 6
        assert muse_144_132().spare_bits(128) == 4

    def test_spare_bits_rejects_oversized_payload(self):
        with pytest.raises(ValueError):
            muse_80_69().spare_bits(70)


class TestConstructionGuards:
    def test_multiplier_too_big_for_codeword(self):
        layout = SymbolLayout.sequential(8, 4)
        with pytest.raises(ValueError):
            # r would be 13 > n = 8
            MuseCode(layout, 5621)

    def test_repr_mentions_geometry(self):
        assert "36x4b" in repr(muse_144_132())
