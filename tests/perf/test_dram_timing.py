"""DRAM timing and power model tests."""

import pytest

from repro.perf.dram_timing import (
    DramChannel,
    DramCounters,
    DramPowerConfig,
    DramPowerModel,
    DramTimingConfig,
)


class TestRowBuffer:
    def test_row_hit_is_faster_than_miss(self):
        channel = DramChannel()
        first = channel.read(0, 0.0)  # cold row: activate
        second = channel.read(64, first)  # same row: hit
        config = channel.config
        assert first == config.row_hit_ns + config.row_miss_extra_ns
        assert second - first == config.row_hit_ns

    def test_row_conflict_reopens(self):
        config = DramTimingConfig(banks=1)
        channel = DramChannel(config)
        channel.read(0, 0.0)
        t = channel.read(config.row_bytes, 1000.0)  # different row, bank 0
        assert t - 1000.0 == config.row_hit_ns + config.row_miss_extra_ns
        assert channel.counters.activates == 2

    def test_banks_hold_independent_rows(self):
        config = DramTimingConfig(banks=2)
        channel = DramChannel(config)
        channel.read(0, 0.0)  # bank 0, row 0
        channel.read(config.row_bytes, 1000.0)  # bank 1
        t = channel.read(64, 2000.0)  # bank 0 row still open
        assert t - 2000.0 == config.row_hit_ns


class TestBus:
    def test_demand_reads_serialize_on_bus(self):
        channel = DramChannel()
        config = channel.config
        first = channel.read(0, 0.0)
        # Immediately-following read waits for the first burst slot.
        second = channel.read(1 << 20, 0.0)
        assert second >= config.bus_occupancy_ns
        assert channel.counters.demand_wait_ns > 0

    def test_correction_delay_extends_completion_not_bus(self):
        plain = DramChannel()
        ecc = DramChannel()
        t_plain = plain.read(0, 0.0)
        t_ecc = ecc.read(0, 0.0, extra_ns=1.25)
        assert t_ecc - t_plain == 1.25


class TestWriteDrain:
    def test_writes_buffer_until_threshold(self):
        config = DramTimingConfig(write_drain_threshold=4)
        channel = DramChannel(config)
        for i in range(3):
            channel.write(i * 64, 0.0)
        assert channel._bus_free_ns == 0.0  # nothing drained yet
        channel.write(3 * 64, 0.0)
        assert channel._bus_free_ns > 0.0
        assert channel.counters.writes == 4

    def test_encode_delay_lengthens_drain(self):
        config = DramTimingConfig(write_drain_threshold=4)
        plain = DramChannel(config)
        ecc = DramChannel(config)
        for i in range(4):
            plain.write(i * 64, 0.0)
            ecc.write(i * 64, 0.0, extra_ns=1.25)
        assert ecc._bus_free_ns - plain._bus_free_ns == pytest.approx(4 * 1.25)

    def test_manual_drain(self):
        channel = DramChannel()
        channel.write(0, 0.0)
        channel.drain_writes(0.0)
        assert channel._write_queue == []
        channel.drain_writes(0.0)  # idempotent on empty queue


class TestPower:
    def test_background_floor(self):
        model = DramPowerModel()
        idle = model.power_mw(DramCounters(), elapsed_ns=1e9)
        config = DramPowerConfig()
        assert idle == config.background_mw + config.refresh_mw

    def test_dynamic_power_scales_with_operations(self):
        model = DramPowerModel()
        light = DramCounters(reads=1000, writes=100, activates=300)
        heavy = DramCounters(reads=2000, writes=200, activates=600)
        p_light = model.power_mw(light, 1e6)
        p_heavy = model.power_mw(heavy, 1e6)
        floor = model.power_mw(DramCounters(), 1e6)
        assert (p_heavy - floor) == pytest.approx(2 * (p_light - floor))

    def test_zero_elapsed_returns_floor(self):
        model = DramPowerModel()
        assert model.power_mw(DramCounters(reads=5), 0.0) == (
            model.config.background_mw + model.config.refresh_mw
        )

    def test_total_power_in_table_vi_range(self):
        """A busy channel should land in the paper's ~6.4-6.7 W band."""
        model = DramPowerModel()
        counters = DramCounters(reads=40_000, writes=12_000, activates=15_000)
        power = model.power_mw(counters, 2.5e6)  # 2.5 ms
        assert 6300 < power < 6900
