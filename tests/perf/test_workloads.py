"""Synthetic workload tests."""

import pytest

from repro.perf.workloads import (
    SPEC2017_PROFILES,
    TraceGenerator,
    WorkloadProfile,
    profile_by_name,
)


class TestProfiles:
    def test_all_22_benchmarks_present(self):
        assert len(SPEC2017_PROFILES) == 22
        names = {p.name for p in SPEC2017_PROFILES}
        assert "519.lbm_r" in names
        assert "505.mcf_r" in names
        assert "548.exchange2_r" in names

    def test_memory_bound_profiles_have_big_working_sets(self):
        """lbm/mcf/fotonik3d must dwarf the 8MB LLC; leela/exchange2
        must fit inside it — the ordering Figure 6 depends on."""
        llc = 8 * 1024  # kB
        for name in ("519.lbm_r", "505.mcf_r", "549.fotonik3d_r", "503.bwaves_r"):
            assert profile_by_name(name).working_set_kb > 10 * llc
        for name in ("541.leela_r", "548.exchange2_r", "511.povray_r"):
            assert profile_by_name(name).working_set_kb < llc

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            profile_by_name("600.nonesuch")

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("bad", 100, stream_fraction=1.5, write_fraction=0.1,
                            mem_per_kilo_inst=100)
        with pytest.raises(ValueError):
            WorkloadProfile("bad", 100, stream_fraction=0.5, write_fraction=-0.1,
                            mem_per_kilo_inst=100)


class TestTraceGenerator:
    def test_deterministic_under_seed(self):
        profile = profile_by_name("505.mcf_r")
        first = list(TraceGenerator(profile, seed=3).operations(500))
        second = list(TraceGenerator(profile, seed=3).operations(500))
        assert first == second

    def test_different_seeds_differ(self):
        profile = profile_by_name("505.mcf_r")
        first = list(TraceGenerator(profile, seed=3).operations(500))
        second = list(TraceGenerator(profile, seed=4).operations(500))
        assert first != second

    def test_addresses_stay_in_working_set(self):
        profile = profile_by_name("541.leela_r")
        limit = (
            TraceGenerator.BASE_ADDRESS
            + TraceGenerator.HOT_REGION_BYTES
            + profile.working_set_kb * 1024
        )
        for op in TraceGenerator(profile).operations(2000):
            assert TraceGenerator.BASE_ADDRESS <= op.address < limit

    def test_write_fraction_approximate(self):
        profile = profile_by_name("519.lbm_r")  # write_fraction 0.45
        ops = list(TraceGenerator(profile).operations(5000))
        write_share = sum(op.is_write for op in ops) / len(ops)
        assert abs(write_share - profile.write_fraction) < 0.05

    def test_op_count_exact(self):
        profile = profile_by_name("502.gcc_r")
        assert sum(1 for _ in TraceGenerator(profile).operations(123)) == 123
