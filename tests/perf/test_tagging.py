"""Memory-tagging configuration tests."""

from repro.perf.tagging import (
    DATA_BYTES_PER_TAG_LINE,
    METADATA_BASE,
    MetadataCache,
    TaggingEngine,
    TaggingMode,
    metadata_address_for,
)


class TestMetadataMapping:
    def test_one_tag_line_covers_2kb(self):
        assert metadata_address_for(0) == METADATA_BASE
        assert metadata_address_for(DATA_BYTES_PER_TAG_LINE - 1) == METADATA_BASE
        assert metadata_address_for(DATA_BYTES_PER_TAG_LINE) == METADATA_BASE + 64

    def test_metadata_addresses_are_line_aligned(self):
        for addr in (0, 12345, 1 << 30):
            assert metadata_address_for(addr) % 64 == 0


class TestMetadataCache:
    def test_hit_after_fill(self):
        cache = MetadataCache(entries=4)
        assert not cache.lookup(0)
        assert cache.lookup(0)
        assert cache.lookup(16 * 1024 - 1)  # same 16 kB window

    def test_lru_eviction(self):
        cache = MetadataCache(entries=2)
        cache.lookup(0)  # window 0
        cache.lookup(16 * 1024)  # window 1
        cache.lookup(0)  # touch window 0 (MRU)
        cache.lookup(32 * 1024)  # window 2 evicts window 1
        assert cache.lookup(0)
        assert not cache.lookup(16 * 1024)

    def test_stats(self):
        cache = MetadataCache(entries=2)
        cache.lookup(0)
        cache.lookup(0)
        assert cache.stats.lookups == 2
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5


class TestTaggingEngine:
    def test_muse_inline_never_fetches(self):
        engine = TaggingEngine(TaggingMode.MUSE_INLINE)
        assert engine.metadata_read_for_miss(0) is None
        assert engine.stats.metadata_reads == 0

    def test_disjoint_always_fetches(self):
        engine = TaggingEngine(TaggingMode.DISJOINT)
        assert engine.metadata_read_for_miss(0) == METADATA_BASE
        assert engine.metadata_read_for_miss(0) == METADATA_BASE
        assert engine.stats.metadata_reads == 2

    def test_cached_filters_repeats(self):
        engine = TaggingEngine(TaggingMode.DISJOINT_CACHED)
        assert engine.metadata_read_for_miss(0) is not None  # cold
        assert engine.metadata_read_for_miss(64) is None  # same window
        assert engine.stats.metadata_reads == 1

    def test_none_mode(self):
        engine = TaggingEngine(TaggingMode.NONE)
        assert engine.metadata_read_for_miss(123) is None
