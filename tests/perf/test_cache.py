"""Cache and hierarchy unit tests."""

import pytest

from repro.perf.cache import Cache, CacheHierarchy


class TestCache:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache("bad", size_bytes=1000, ways=3)

    def test_miss_then_hit(self):
        cache = Cache("L1", 1024, ways=2)
        assert not cache.access(0, write=False)
        cache.fill(0, dirty=False)
        assert cache.access(0, write=False)
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1

    def test_lru_eviction_order(self):
        cache = Cache("L1", 2 * 64, ways=2, line_bytes=64)  # 1 set, 2 ways
        cache.fill(0, dirty=False)
        cache.fill(64, dirty=False)
        cache.access(0, write=False)  # 0 becomes MRU
        victim = cache.fill(128, dirty=False)  # evicts line 64 (clean)
        assert victim is None
        assert cache.access(0, write=False)
        assert not cache.access(64, write=False)

    def test_dirty_victim_address_returned(self):
        cache = Cache("L1", 2 * 64, ways=2, line_bytes=64)
        cache.fill(0, dirty=True)
        cache.fill(64, dirty=False)
        victim = cache.fill(128, dirty=False)
        assert victim == 0

    def test_write_sets_dirty(self):
        cache = Cache("L1", 2 * 64, ways=2, line_bytes=64)
        cache.fill(0, dirty=False)
        cache.access(0, write=True)
        cache.fill(64, dirty=False)
        victim = cache.fill(128, dirty=False)
        assert victim == 0

    def test_fill_merges_dirtiness_on_rehit(self):
        cache = Cache("L1", 1024, ways=2)
        cache.fill(0, dirty=True)
        assert cache.fill(0, dirty=False) is None
        assert cache.invalidate(0) is True  # still dirty

    def test_invalidate_missing_line(self):
        cache = Cache("L1", 1024, ways=2)
        assert cache.invalidate(0) is False

    def test_hit_rate(self):
        cache = Cache("L1", 1024, ways=2)
        cache.fill(0, dirty=False)
        cache.access(0, write=False)
        cache.access(64, write=False)
        assert cache.stats.hit_rate == 0.5


class TestHierarchy:
    def test_l1_hit_generates_no_dram_traffic(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0, write=False)  # cold miss fills all levels
        event = hierarchy.access(0, write=False)
        assert event.served_level == 1
        assert not event.dram_read
        assert event.writebacks == ()

    def test_cold_miss_reads_dram(self):
        hierarchy = CacheHierarchy()
        event = hierarchy.access(4096, write=False)
        assert event.served_level == 4
        assert event.dram_read

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = CacheHierarchy()
        base = 1 << 20
        # Fill one L1 set (8 ways) plus one more line mapping to it.
        l1 = hierarchy.l1
        stride = l1.sets * l1.line_bytes
        for i in range(l1.ways + 1):
            hierarchy.access(base + i * stride, write=False)
        # The first line fell out of L1 but is still in L2.
        event = hierarchy.access(base, write=False)
        assert event.served_level == 2

    def test_dirty_lines_eventually_write_back(self):
        hierarchy = CacheHierarchy()
        # Shrink L3 for the test so capacity evictions happen quickly.
        hierarchy.l3 = type(hierarchy.l3)("L3", 64 * 1024, ways=4)
        writebacks = []
        for i in range(8192):
            event = hierarchy.access(i * 64, write=True)
            writebacks.extend(event.writebacks)
        assert writebacks, "dirty lines never reached DRAM"

    def test_warm_l3_fills_capacity(self):
        hierarchy = CacheHierarchy()
        hierarchy.warm_l3(0, 16 * 1024 * 1024, dirty_fraction=0.5, seed=1)
        filled = sum(len(ways) for ways in hierarchy.l3._sets.values())
        capacity = hierarchy.l3.sets * hierarchy.l3.ways
        assert filled == capacity

    def test_warm_l3_respects_dirty_fraction(self):
        hierarchy = CacheHierarchy()
        hierarchy.warm_l3(0, 8 * 1024 * 1024, dirty_fraction=1.0, seed=1)
        # Touching new lines must produce dirty writebacks immediately.
        event = hierarchy.access(1 << 31, write=False)
        assert event.served_level == 4
