"""Simulator integration tests: Figure 6 / Figure 7 / Table VI shapes.

These use short traces and a 3-workload subset; the full-suite runs
live in the benchmark harness.
"""

import pytest

from repro.perf.simulator import (
    FIGURE6_CONFIGS,
    MUSE_TIMING,
    NO_ECC_TIMING,
    RS_TIMING,
    SimResult,
    Simulator,
    SystemConfig,
    run_figure6,
    run_figure7,
    summarize_table6,
)
from repro.perf.tagging import TaggingMode
from repro.perf.workloads import SPEC2017_PROFILES, profile_by_name

MEMORY_BOUND = profile_by_name("519.lbm_r")
CACHE_RESIDENT = profile_by_name("541.leela_r")
SUBSET = (MEMORY_BOUND, profile_by_name("505.mcf_r"), CACHE_RESIDENT)
OPS = 20_000


class TestEccTiming:
    def test_paper_cycle_latencies(self):
        """Table V gem5 columns: MUSE 3 cycles, RS 1, at 2400 MHz."""
        assert MUSE_TIMING.write_cycles == 3
        assert RS_TIMING.write_cycles == 1
        assert abs(MUSE_TIMING.write_ns - 1.25) < 1e-9
        assert abs(RS_TIMING.write_ns - 0.41667) < 1e-3


class TestSimulator:
    def test_deterministic(self):
        config = SystemConfig("b", NO_ECC_TIMING)
        first = Simulator(MEMORY_BOUND, config, OPS, seed=3).run()
        second = Simulator(MEMORY_BOUND, config, OPS, seed=3).run()
        assert first == second

    def test_memory_bound_reads_dwarf_cache_resident(self):
        config = SystemConfig("b", NO_ECC_TIMING)
        heavy = Simulator(MEMORY_BOUND, config, OPS).run()
        light = Simulator(CACHE_RESIDENT, config, OPS).run()
        assert heavy.dram_reads > 10 * max(1, light.dram_reads)

    def test_warm_start_produces_writebacks(self):
        config = SystemConfig("b", NO_ECC_TIMING)
        result = Simulator(MEMORY_BOUND, config, OPS).run()
        assert result.dram_writes > 0

    def test_result_properties(self):
        result = SimResult(
            workload="x", config="y", instructions=3400, elapsed_ns=1000.0,
            dram_reads=10, dram_writes=5,
        )
        assert result.dram_operations == 15
        assert result.ipc == pytest.approx(1.0)


class TestFigure6:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_figure6(SUBSET, mem_ops=OPS)

    def test_all_configs_present(self, rows):
        expected = {config.name for config in FIGURE6_CONFIGS}
        for row in rows:
            assert set(row.slowdowns) == expected

    def test_slowdowns_are_small(self, rows):
        """Figure 6's message: ECC latency costs are sub-5% everywhere."""
        for row in rows:
            for value in row.slowdowns.values():
                assert 0.99 < value < 1.05

    def test_always_correction_costs_more_than_error_free(self, rows):
        for row in rows:
            assert (
                row.slowdowns["MUSE Always Correction"]
                >= row.slowdowns["MUSE"] - 1e-9
            )
            assert (
                row.slowdowns["RS Always Correction"]
                >= row.slowdowns["RS"] - 1e-9
            )

    def test_muse_ac_costs_more_than_rs_ac_when_memory_bound(self, rows):
        """3-cycle vs 1-cycle correction must be visible for lbm."""
        lbm = next(r for r in rows if r.workload == "519.lbm_r")
        assert (
            lbm.slowdowns["MUSE Always Correction"]
            > lbm.slowdowns["RS Always Correction"]
        )

    def test_cache_resident_benchmark_barely_moves(self, rows):
        leela = next(r for r in rows if r.workload == "541.leela_r")
        assert leela.slowdowns["MUSE Always Correction"] < 1.005


class TestFigure7:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_figure7(SUBSET, mem_ops=OPS)

    def test_muse_mt_adds_no_metadata_traffic(self, rows):
        for row in rows:
            assert row.results["MUSE MT"].metadata_reads == 0

    def test_base_mt_fetches_metadata_per_miss(self, rows):
        for row in rows:
            base = row.results["Base MT"]
            assert base.metadata_reads == base.dram_reads - (
                base.dram_reads - base.metadata_reads
            )
            muse_reads = row.results["MUSE MT"].dram_reads
            # metadata reads ~ demand reads (every miss fetches)
            assert base.metadata_reads >= 0.95 * muse_reads

    def test_metadata_cache_cuts_traffic(self, rows):
        """Paper: 67% extra ops uncached vs 12% cached on average."""
        for row in rows:
            base = row.results["Base MT"].metadata_reads
            cached = row.results["32-entry Cache MT"].metadata_reads
            assert cached <= base

    def test_streaming_workload_has_high_metadata_hit_rate(self, rows):
        lbm = next(r for r in rows if r.workload == "519.lbm_r")
        base = lbm.results["Base MT"].metadata_reads
        cached = lbm.results["32-entry Cache MT"].metadata_reads
        assert cached < 0.3 * base  # 2 kB tag lines, sequential stream

    def test_ops_normalization(self, rows):
        for row in rows:
            ops = row.normalized("dram_operations")
            assert ops["MUSE MT"] == pytest.approx(1.0)
            assert 1.0 <= ops["Base MT"] <= 2.01

    def test_power_ordering_matches_paper(self, rows):
        """Figure 7(b): MUSE <= cached <= base for DRAM power."""
        for row in rows:
            power = row.normalized("dram_power_mw")
            assert power["MUSE MT"] == pytest.approx(1.0)
            assert power["Base MT"] >= power["32-entry Cache MT"] - 5e-3


class TestTableVI:
    def test_summary_shape_and_ordering(self):
        rows = run_figure7(SUBSET, mem_ops=OPS)
        summary = summarize_table6(rows)
        schemes = [row.scheme for row in summary]
        assert schemes == ["MT w/ MUSE", "MT w/ 16kB cache", "MT w/o cache"]
        muse, cached, base = summary
        # Paper's ordering: MUSE total < cached total < uncached total.
        assert muse.dram_mw < cached.dram_mw < base.dram_mw
        # DRAM power lands in the Table VI ballpark (6.4-6.8 W).
        for row in summary:
            assert 6300 < row.dram_mw < 6900
        assert muse.total_mw == muse.dram_mw + 2 * muse.ecc_mw
