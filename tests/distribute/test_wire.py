"""Wire codec: registered dataclasses round-trip structurally equal."""

import io
import json

import pytest

from repro.distribute.wire import (
    from_wire,
    recv_message,
    register_wire_type,
    send_message,
    to_wire,
)
from repro.orchestrate.plan import Chunk
from repro.orchestrate.worker import ChunkTask, CodeRef, MuseSimSpec, RsSimSpec
from repro.reliability.metrics import MsedTally


class TestCodec:
    def test_chunk_task_round_trip_is_equal(self):
        task = ChunkTask(
            group="frontier:3",
            spec=MuseSimSpec(
                code=CodeRef("repro.core.codes:muse_80_69"),
                ripple_check=False,
                backend="scalar",
            ),
            chunk=Chunk(128, 64),
            key=0x1234_5678_9ABC_DEF0,
        )
        decoded = from_wire(to_wire(task))
        assert decoded == task  # structural equality: runner cache hits

    def test_code_ref_args_stay_tuples(self):
        ref = CodeRef("repro.reliability.monte_carlo:muse_design_point", (3,))
        decoded = from_wire(to_wire(ref))
        assert decoded == ref
        assert isinstance(decoded.args, tuple)

    def test_rs_spec_round_trip(self):
        spec = RsSimSpec(
            code=CodeRef("repro.rs.reed_solomon:rs_144_128"),
            device_bits=None,
        )
        assert from_wire(to_wire(spec)) == spec

    def test_tally_round_trip(self):
        tally = MsedTally(
            trials=100,
            detected_no_match=40,
            detected_confinement=30,
            miscorrected=20,
            silent=10,
        )
        assert from_wire(to_wire(tally)) == tally

    def test_payload_is_plain_json(self):
        task = ChunkTask(
            group=0,
            spec=MuseSimSpec(code=CodeRef("repro.core.codes:muse_80_69")),
            chunk=Chunk(0, 10),
            key=1,
        )
        json.dumps(to_wire(task))  # no pickle, no custom encoder

    def test_unregistered_dataclass_rejected(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class NotRegistered:
            x: int = 1

        with pytest.raises(TypeError, match="not wire-registered"):
            to_wire(NotRegistered())

    def test_unknown_wire_type_rejected(self):
        with pytest.raises(ValueError, match="unknown wire type"):
            from_wire({"__type__": "Bogus"})

    def test_register_admits_new_spec_types(self):
        from dataclasses import dataclass

        @register_wire_type
        @dataclass(frozen=True)
        class ExtensionSpec:
            m: int = 0

        assert from_wire(to_wire(ExtensionSpec(m=7))) == ExtensionSpec(m=7)

    def test_non_dataclass_registration_rejected(self):
        with pytest.raises(TypeError, match="dataclass"):
            register_wire_type(int)


class TestFraming:
    def test_messages_round_trip_over_a_stream(self):
        buffer = io.BytesIO()
        send_message(buffer, {"op": "task", "id": 3, "task": {"a": [1, 2]}})
        send_message(buffer, {"op": "ok"})
        buffer.seek(0)
        assert recv_message(buffer) == {
            "op": "task",
            "id": 3,
            "task": {"a": [1, 2]},
        }
        assert recv_message(buffer) == {"op": "ok"}
        assert recv_message(buffer) is None  # clean EOF
