"""Result-cache cells must never alias across fault scenarios.

The scenario name is part of the sim spec, hence of
``spec_fingerprint``, hence of the cache cell digest: two scenarios of
the same ``(code, seed)`` occupy distinct cells, and a lookup under
one scenario is never served a chunk computed under another.
"""

import itertools

from repro.distribute.cache import ResultCache
from repro.distribute.checkpoint import spec_fingerprint
from repro.orchestrate.plan import Chunk
from repro.orchestrate.worker import CodeRef, MuseSimSpec, RsSimSpec
from repro.reliability.metrics import MsedTally
from repro.scenarios import scenario_names

KEY = 0xBEEF
MUSE_REF = CodeRef("repro.core.codes:muse_80_69")
RS_REF = CodeRef("repro.rs.reed_solomon:rs_144_128")


def tally(**counts) -> MsedTally:
    t = MsedTally()
    t.record_counts(**counts)
    return t


class TestFingerprints:
    def test_distinct_across_all_scenarios(self):
        prints = {
            spec_fingerprint(MuseSimSpec(MUSE_REF, scenario=name))
            for name in scenario_names()
        }
        assert len(prints) == len(scenario_names())

    def test_distinct_for_rs_too(self):
        prints = {
            spec_fingerprint(RsSimSpec(RS_REF, scenario=name))
            for name in scenario_names()
        }
        assert len(prints) == len(scenario_names())

    def test_backend_still_collapses_within_a_scenario(self):
        """The scenario field must not break the cross-backend cell
        sharing the cache is built on."""
        a = spec_fingerprint(
            MuseSimSpec(MUSE_REF, backend="scalar", scenario="mbu")
        )
        b = spec_fingerprint(
            MuseSimSpec(MUSE_REF, backend="numpy", scenario="mbu")
        )
        assert a == b

    def test_default_spec_is_the_msed_cell(self):
        """Pre-scenario cache files were written with no scenario field;
        the default must stay ``msed`` so old msed cells keep hitting."""
        assert spec_fingerprint(MuseSimSpec(MUSE_REF)) == spec_fingerprint(
            MuseSimSpec(MUSE_REF, scenario="msed")
        )


class TestCacheCells:
    def test_foreign_scenario_cell_not_served(self, tmp_path):
        cache = ResultCache(tmp_path)
        chunk = Chunk(0, 64)
        mbu = MuseSimSpec(MUSE_REF, scenario="mbu")
        wear = MuseSimSpec(MUSE_REF, scenario="wear")
        cache.record(KEY, mbu, chunk, tally(miscorrected=3, silent=1))

        assert cache.lookup(KEY, wear, chunk) is None
        held = cache.lookup(KEY, mbu, chunk)
        assert held is not None and held.miscorrected == 3

    def test_every_scenario_pair_isolated_on_disk(self, tmp_path):
        """Round-trip through a fresh cache: each scenario reads back
        exactly its own chunk, never a sibling's."""
        chunk = Chunk(0, 32)
        writer = ResultCache(tmp_path)
        for i, name in enumerate(scenario_names()):
            spec = MuseSimSpec(MUSE_REF, scenario=name)
            writer.record(KEY, spec, chunk, tally(miscorrected=i, silent=1))
        writer.flush()

        reader = ResultCache(tmp_path)
        for i, name in enumerate(scenario_names()):
            spec = MuseSimSpec(MUSE_REF, scenario=name)
            held = reader.lookup(KEY, spec, chunk)
            assert held is not None and held.miscorrected == i, name
        for a, b in itertools.permutations(scenario_names(), 2):
            digest_a = reader._digest(
                KEY, spec_fingerprint(MuseSimSpec(MUSE_REF, scenario=a))
            )
            digest_b = reader._digest(
                KEY, spec_fingerprint(MuseSimSpec(MUSE_REF, scenario=b))
            )
            assert digest_a != digest_b, (a, b)

    def test_rerun_of_a_scenario_cell_is_zero_recompute(self, tmp_path):
        """The cache's core guarantee holds for scenario cells: a
        second run of a completed cell serves everything from disk."""
        chunk_a, chunk_b = Chunk(0, 64), Chunk(64, 64)
        spec = RsSimSpec(RS_REF, scenario="scrub")
        writer = ResultCache(tmp_path)
        writer.record(KEY, spec, chunk_a, tally(detected_no_match=64))
        writer.record(KEY, spec, chunk_b, tally(miscorrected=2))
        writer.flush()

        reader = ResultCache(tmp_path)
        assert reader.lookup(KEY, spec, chunk_a).trials == 64
        assert reader.lookup(KEY, spec, chunk_b).miscorrected == 2
        assert reader.trials_recorded == 0
