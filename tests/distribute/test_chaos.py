"""Deterministic fault injection: the chaos matrix.

Two layers:

* unit tests for the spec parser and the pure-function
  :class:`FaultPlan` schedule (same seed + scope → same faults);
* the acceptance matrix — for **every fault class**, a loopback run
  under injected chaos folds a tally **byte-identical** to the
  ``jobs=1`` in-process run at the same seed, and the degradation
  paths (total fleet loss, poison chunk) leave a durable, resumable
  partial state instead of a hung or empty run.

Seeds for the probabilistic classes are *probed* (cheaply, through the
same pure schedule the runtime evaluates) so every assertion about "at
least one fault fired" is deterministic, not statistical.
"""

import json
import threading
import time

import pytest

from repro.core.codes import muse_80_69
from repro.distribute import (
    PARTIAL_RESULTS_NAME,
    CheckpointJournal,
    DistributedDegraded,
    DistributedSession,
    parse_chaos,
    resolve_chaos,
)
from repro.distribute.chaos import (
    CHAOS_ENV,
    ChaosSpec,
    FaultPlan,
    FaultRule,
    describe,
    plan_for,
)
from repro.orchestrate import CodeRef, derive_key
from repro.orchestrate.plan import Chunk
from repro.orchestrate.worker import ChunkTask, MuseSimSpec
from repro.reliability.monte_carlo import MuseMsedSimulator

SEED = 5


def simulator():
    return MuseMsedSimulator(
        muse_80_69(),
        backend="auto",
        code_ref=CodeRef("repro.core.codes:muse_80_69"),
    )


def fire_events(spec: str, scope: str, kind: str, limit: int) -> list[int]:
    """The 1-based event indices at which ``kind`` fires for ``scope``
    — probing the exact schedule the runtime will evaluate."""
    plan = FaultPlan(parse_chaos(spec), scope)
    return [index for index in range(1, limit + 1) if plan.should(kind)]


def probe_seed(kind: str, rate: float, scope: str = "local-0") -> int:
    """A chaos seed under which ``kind`` fires for ``scope`` within the
    first 8 events (so small runs provably inject at least one fault)."""
    for seed in range(100):
        spec = f"seed={seed},{kind}={rate}"
        if any(event <= 8 for event in fire_events(spec, scope, kind, 8)):
            return seed
    raise AssertionError(f"no seed fires {kind} early")  # pragma: no cover


class TestParseChaos:
    def test_probabilistic_rules(self):
        spec = parse_chaos("seed=7,reset=0.1,dup=0.25")
        assert spec.seed == 7
        assert spec.kinds == ("reset", "dup")
        assert spec.rule("reset") == FaultRule(probability=0.1)
        assert spec.rule("dup") == FaultRule(probability=0.25)
        assert spec.rule("crash") is None

    def test_at_rule(self):
        assert parse_chaos("crash=@2").rule("crash") == FaultRule(at=2)

    def test_hang_duration(self):
        spec = parse_chaos("hang=0.1:0.8")
        assert spec.rule("hang") == FaultRule(probability=0.1)
        assert spec.hang_seconds == 0.8

    def test_round_trips_through_describe(self):
        spec = parse_chaos("seed=3,reset=0.1,crash=@2,hang=0.5:0.1")
        assert parse_chaos(describe(spec)) == spec

    @pytest.mark.parametrize(
        "bad",
        ["bogus=0.5", "reset=1.5", "reset=-0.1", "crash=@0", "reset",
         "seed=x", "hang=0.1:-1"],
    )
    def test_bad_specs_rejected_with_context(self, bad):
        with pytest.raises(ValueError, match="--chaos"):
            parse_chaos(bad)

    def test_resolve_reads_environment(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "seed=9,dup=0.5")
        assert resolve_chaos(None) == parse_chaos("seed=9,dup=0.5")
        monkeypatch.setenv(CHAOS_ENV, "")
        assert resolve_chaos(None) is None

    def test_plan_for_without_rules_is_off(self):
        assert plan_for("seed=5", "w") is None
        assert plan_for(None, "w") is None
        assert plan_for(ChaosSpec(), "w") is None


class TestFaultPlanDeterminism:
    def test_same_seed_and_scope_replays_identically(self):
        seed = probe_seed("reset", 0.3, scope="w")
        spec = f"seed={seed},reset=0.3"
        first = fire_events(spec, "w", "reset", 50)
        assert first  # the probe guarantees an early firing
        assert fire_events(spec, "w", "reset", 50) == first

    def test_scopes_fail_at_different_points(self):
        for seed in range(100):
            spec = f"seed={seed},reset=0.3"
            if fire_events(spec, "local-0", "reset", 50) != fire_events(
                spec, "local-1", "reset", 50
            ):
                return
        raise AssertionError("scopes never diverged")  # pragma: no cover

    def test_seed_changes_the_schedule(self):
        assert any(
            fire_events("seed=0,reset=0.3", "w", "reset", 50)
            != fire_events(f"seed={seed},reset=0.3", "w", "reset", 50)
            for seed in range(1, 100)
        )

    def test_at_rule_fires_exactly_once(self):
        assert fire_events("crash=@3", "w", "crash", 20) == [3]

    def test_unconfigured_kind_never_fires_nor_counts(self):
        plan = FaultPlan(parse_chaos("seed=1,reset=0.5"), "w")
        assert not any(plan.should("crash") for _ in range(10))
        assert plan.events("crash") == 0

    def test_probability_bounds(self):
        assert fire_events("reset=0.0", "w", "reset", 100) == []
        assert fire_events("reset=1.0", "w", "reset", 20) == list(
            range(1, 21)
        )


class TestChaosParity:
    """The acceptance matrix: injected faults never change the tally."""

    def parity_run(self, chaos, workers=1, trials=600, chunk_size=50,
                   lease_timeout=60.0, **session_kwargs):
        sim = simulator()
        serial = sim.run(trials, seed=SEED, chunk_size=chunk_size)
        with DistributedSession(
            local_workers=workers,
            chaos=chaos,
            lease_timeout=lease_timeout,
            **session_kwargs,
        ) as session:
            chaotic = sim.run(
                trials, seed=SEED, chunk_size=chunk_size, executor=session
            )
            assert chaotic == serial
            return session

    def test_connection_resets_rejoin_and_fold_identically(self):
        seed = probe_seed("reset", 0.3)
        session = self.parity_run(f"seed={seed},reset=0.3")
        assert session.rejoins >= 1  # the blip cost a lease, not a worker

    def test_torn_frames_drop_the_worker_not_the_run(self):
        seed = probe_seed("torn", 0.3)
        session = self.parity_run(f"seed={seed},torn=0.3")
        assert session.protocol_errors >= 1
        assert session.rejoins >= 1  # the torn worker reconnected

    def test_duplicate_results_fold_exactly_once(self):
        seed = probe_seed("dup", 0.5)
        self.parity_run(f"seed={seed},dup=0.5")

    def test_hung_workers_lose_their_leases_not_the_tally(self):
        session = self.parity_run(
            "hang=1.0:0.35",
            workers=2,
            trials=400,
            chunk_size=100,
            lease_timeout=0.15,
        )
        assert session._queue.requeues >= 1  # straggler leases stolen

    def test_crashed_worker_is_stolen_from(self):
        """local-0 dies early (probed seed); local-1 finishes the run."""
        # 15 chunks total, so the survivor sees at most 15 crash events:
        # probe for a seed where local-0 dies in its first 4 tasks and
        # local-1 never fires inside that window.
        for seed in range(500):
            spec = f"seed={seed},crash=0.2"
            if fire_events(spec, "local-0", "crash", 4) and not fire_events(
                spec, "local-1", "crash", 15
            ):
                break
        else:  # pragma: no cover
            raise AssertionError("no asymmetric crash seed found")
        session = self.parity_run(spec, workers=2, trials=1500,
                                  chunk_size=100)
        assert not session.worker_processes[0].is_alive()

    def test_fault_cocktail_still_folds_identically(self):
        self.parity_run(
            "seed=11,reset=0.15,torn=0.1,dup=0.2", workers=2
        )

    def test_torn_journal_salvages_and_resumes_identically(self, tmp_path):
        """The ``journal`` class: a run whose journal tears mid-append
        still folds correctly; the *next* run salvages the valid prefix
        and re-simulates only the lost chunks."""
        sim = simulator()
        serial = sim.run(600, seed=SEED, chunk_size=50)
        key = derive_key(SEED)
        with DistributedSession(
            local_workers=1,
            checkpoint=CheckpointJournal.open(tmp_path, key),
            chaos="journal=@2",
        ) as session:
            chaotic = sim.run(600, seed=SEED, chunk_size=50,
                              executor=session)
        assert chaotic == serial  # the tear broke durability, not folds

        journal = CheckpointJournal.open(tmp_path, key, resume=True)
        assert journal.salvage is not None
        assert journal.salvage.records_kept == 1  # prefix before the tear
        assert journal.salvage.corrupt_path.exists()
        with DistributedSession(
            local_workers=1, checkpoint=journal
        ) as session:
            resumed = sim.run(600, seed=SEED, chunk_size=50,
                              executor=session)
        assert resumed == serial
        assert len(journal) == 12  # healed: every chunk journalled again


class TestDegradedFleet:
    def test_total_fleet_loss_leaves_a_resumable_partial_run(
        self, tmp_path
    ):
        """Every worker crashes (``crash=@2``): the run degrades with a
        durable partial-results report instead of hanging, and a chaos-
        free ``--resume`` finishes it byte-identically."""
        sim = simulator()
        serial = sim.run(800, seed=SEED, chunk_size=100)
        key = derive_key(SEED)
        with DistributedSession(
            local_workers=2,
            checkpoint=CheckpointJournal.open(tmp_path, key),
            chaos="crash=@2",
        ) as session:
            with pytest.raises(DistributedDegraded) as excinfo:
                sim.run(800, seed=SEED, chunk_size=100, executor=session)
        assert "--resume" in str(excinfo.value)
        report_path = excinfo.value.report_path
        assert report_path == tmp_path / PARTIAL_RESULTS_NAME
        report = json.loads(report_path.read_text())
        assert report["resumable"] is True
        assert report["key"] == key
        assert report["batch"]["total"] == 8
        assert sum(g["chunks"] for g in report["groups"].values()) >= 1

        journal = CheckpointJournal.open(tmp_path, key, resume=True)
        assert len(journal) >= 1  # the crashed fleet's folds survived
        with DistributedSession(
            local_workers=2, checkpoint=journal
        ) as session:
            resumed = sim.run(800, seed=SEED, chunk_size=100,
                              executor=session)
        assert resumed == serial

    def test_degraded_without_checkpoint_says_so(self):
        sim = simulator()
        with DistributedSession(
            local_workers=1, chaos="crash=@1"
        ) as session:
            with pytest.raises(DistributedDegraded, match="checkpoint"):
                sim.run(200, seed=SEED, chunk_size=50, executor=session)


class TestPoisonChunk:
    """A chunk that fails on every worker aborts the run with the whole
    failure history — and still leaves a resumable partial state."""

    def test_poison_chunk_accumulates_errors_and_degrades(self, tmp_path):
        key = derive_key(SEED)
        task = ChunkTask(
            group=0,
            spec=MuseSimSpec(code=CodeRef("repro.core.codes:muse_80_69")),
            chunk=Chunk(0, 50),
            key=key,
        )
        journal = CheckpointJournal.open(tmp_path, key)
        caught = {}
        with DistributedSession(checkpoint=journal) as session:

            def drive():
                try:
                    session.run_tasks([task])
                except DistributedDegraded as exc:
                    caught["exc"] = exc

            thread = threading.Thread(target=drive)
            thread.start()
            for attempt in range(1, 4):
                deadline = time.monotonic() + 5.0
                while True:
                    reply = session._handle_message("w", {"op": "next"})
                    if reply["op"] == "task":
                        break
                    assert time.monotonic() < deadline, "never claimed"
                    time.sleep(0.01)
                session._handle_message(
                    "w",
                    {
                        "op": "failed",
                        "id": reply["id"],
                        "error": f"boom-{attempt}",
                    },
                )
            thread.join(timeout=5.0)
            assert not thread.is_alive()

        message = str(caught["exc"])
        assert "3 attempts" in message
        for attempt in (1, 2, 3):  # every attempt's error is surfaced
            assert f"boom-{attempt}" in message
        assert session._queue.requeues == 3
        report = json.loads(
            (tmp_path / PARTIAL_RESULTS_NAME).read_text()
        )
        assert report["resumable"] is True
        assert report["requeues"] == 3
        assert "boom-1" in report["reason"]
