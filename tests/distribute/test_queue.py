"""Work-stealing lease queue: exactly-once folds under loss and theft."""

from repro.distribute.queue import ChunkQueue


def make_queue(n_tasks: int = 3, lease_timeout: float = 10.0) -> ChunkQueue:
    queue = ChunkQueue(lease_timeout=lease_timeout)
    for index in range(n_tasks):
        queue.add_task(f"task-{index}")
    return queue


class TestLeasing:
    def test_claim_hands_out_tasks_in_order(self):
        queue = make_queue(2)
        assert queue.claim("w1", now=0.0) == (0, "task-0")
        assert queue.claim("w2", now=0.0) == (1, "task-1")
        assert queue.claim("w1", now=0.0) is None  # all leased out

    def test_complete_is_exactly_once(self):
        queue = make_queue(1)
        task_id, _ = queue.claim("w1", now=0.0)
        assert queue.complete(task_id) is True
        assert queue.complete(task_id) is False  # duplicate dropped
        assert queue.done

    def test_unknown_completion_rejected(self):
        import pytest

        with pytest.raises(KeyError):
            make_queue(1).complete(99)


class TestWorkerDeath:
    def test_release_worker_requeues_its_leases(self):
        queue = make_queue(3)
        queue.claim("dead", now=0.0)
        queue.claim("dead", now=0.0)
        queue.claim("alive", now=0.0)
        assert queue.release_worker("dead") == 2
        # The survivor can steal both re-queued tasks.
        assert queue.claim("alive", now=1.0) is not None
        assert queue.claim("alive", now=1.0) is not None
        assert queue.claim("alive", now=1.0) is None
        assert queue.requeues == 2

    def test_release_unknown_worker_is_noop(self):
        queue = make_queue(1)
        assert queue.release_worker("ghost") == 0


class TestStragglers:
    def test_reap_expired_steals_old_leases(self):
        queue = make_queue(2, lease_timeout=5.0)
        queue.claim("slow", now=0.0)  # deadline 5.0
        queue.claim("fast", now=3.0)  # deadline 8.0
        assert queue.reap_expired(now=6.0) == 1  # only the slow lease
        stolen = queue.claim("fast", now=6.0)
        assert stolen == (0, "task-0")

    def test_duplicate_after_steal_folds_once(self):
        """The slow worker finishes after its lease was stolen and the
        thief also finishes: exactly one completion counts."""
        queue = make_queue(1, lease_timeout=1.0)
        task_id, _ = queue.claim("slow", now=0.0)
        queue.reap_expired(now=2.0)
        thief_id, _ = queue.claim("thief", now=2.0)
        assert thief_id == task_id
        assert queue.complete(task_id) is True  # slow arrives first
        assert queue.complete(thief_id) is False  # thief's copy dropped
        assert queue.outstanding == 0

    def test_completed_task_never_reclaimed_from_pending(self):
        """A stolen-then-completed task sitting in pending is skipped."""
        queue = make_queue(2, lease_timeout=1.0)
        task_id, _ = queue.claim("slow", now=0.0)
        queue.reap_expired(now=2.0)  # task_id back in pending
        assert queue.complete(task_id) is True  # original result lands
        claim = queue.claim("w2", now=2.0)
        assert claim is not None and claim[0] != task_id

    def test_requeue_puts_failed_task_back(self):
        queue = make_queue(1)
        task_id, _ = queue.claim("w1", now=0.0)
        queue.requeue(task_id)
        assert queue.claim("w2", now=0.0) == (task_id, "task-0")

    def test_requeue_of_completed_task_is_noop(self):
        queue = make_queue(1)
        task_id, _ = queue.claim("w1", now=0.0)
        queue.complete(task_id)
        queue.requeue(task_id)
        assert queue.claim("w2", now=0.0) is None
