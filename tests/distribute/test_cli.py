"""CLI surface of the distributed subsystem: flags, guards, heartbeats.

Includes the ``--progress`` satellite's regression: default output is
unchanged — no heartbeat lines unless the flag is given, and heartbeats
go to stderr so stdout reports stay byte-identical either way.
"""

import pytest

from repro.cli import DISTRIBUTED_EXPERIMENTS, build_parser, run
from repro.distribute import parse_distribute


class TestParseDistribute:
    def test_local_spec(self):
        assert parse_distribute("local:4") == {"local_workers": 4}

    def test_listen_specs(self):
        assert parse_distribute("listen:7000") == {
            "host": "0.0.0.0",
            "port": 7000,
        }
        assert parse_distribute("listen:10.0.0.5:7000") == {
            "host": "10.0.0.5",
            "port": 7000,
        }

    @pytest.mark.parametrize(
        "bad", ["local:0", "local:x", "nfs:3", "listen:", "local"]
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError, match="--distribute"):
            parse_distribute(bad)


class TestDispatch:
    """The dispatch layer forwards every distributed flag it claims."""

    def _capture(self, monkeypatch, module, argv):
        captured = {}

        def fake_main(**kwargs):
            captured.update(kwargs)
            return ""

        monkeypatch.setattr(module, "main", fake_main)
        assert run(build_parser().parse_args(argv)) == 0
        return captured

    @pytest.mark.parametrize("experiment", DISTRIBUTED_EXPERIMENTS)
    def test_distribute_flags_threaded(self, monkeypatch, experiment):
        from repro import cli

        module = {
            "table4": cli.table4,
            "ablation-shuffle": cli.ablation_shuffle,
            "ablation-frontier": cli.ablation_frontier,
        }[experiment]
        captured = self._capture(
            monkeypatch,
            module,
            [experiment, "--distribute", "local:2", "--checkpoint-dir",
             "ckpt", "--resume", "--progress"],
        )
        assert captured["distribute"] == "local:2"
        assert captured["checkpoint_dir"] == "ckpt"
        assert captured["resume"] is True
        assert captured["progress"] is True

    def test_defaults_omit_distribute_kwargs(self, monkeypatch):
        from repro import cli

        captured = self._capture(monkeypatch, cli.table4, ["table4"])
        for key in ("distribute", "checkpoint_dir", "resume", "progress"):
            assert key not in captured

    def test_coordinator_mode_is_listen_distribute(self, monkeypatch):
        from repro import cli

        captured = self._capture(
            monkeypatch,
            cli.table4,
            ["coordinator", "--run", "table4", "--host", "127.0.0.1",
             "--port", "7000", "--trials", "50"],
        )
        assert captured["distribute"] == "listen:127.0.0.1:7000"
        assert captured["trials"] == 50

    def test_all_gives_each_experiment_its_own_checkpoint_subdir(
        self, monkeypatch
    ):
        import repro.orchestrate.sweep as sweep

        seen = {}

        def fake_run_all(tasks, **kwargs):
            for task in tasks:
                seen[task.name] = dict(task.kwargs)
            return {}

        monkeypatch.setattr("repro.cli.run_all", fake_run_all)
        args = build_parser().parse_args(
            ["all", "--distribute", "local:2", "--checkpoint-dir", "ckpt",
             "--progress"]
        )
        assert run(args) == 0
        assert seen["table4"]["checkpoint_dir"] == "ckpt/table4"
        assert seen["ablation-shuffle"]["checkpoint_dir"] == (
            "ckpt/ablation-shuffle"
        )
        assert seen["table4"]["distribute"] == "local:2"
        assert seen["table4"]["progress"] is True
        assert "distribute" not in seen["table1"]  # not a MC experiment
        assert sweep.EXPERIMENT_TARGETS  # registry untouched


class TestGuards:
    def test_distribute_rejected_for_non_msed_experiment(self, capsys):
        args = build_parser().parse_args(
            ["table1", "--distribute", "local:2"]
        )
        assert run(args) == 2
        assert "--distribute" in capsys.readouterr().err

    def test_all_rejects_listen_mode(self, capsys):
        """Workers don't reconnect between experiments (yet), so a
        listen-mode sweep would hang after the first one finishes."""
        args = build_parser().parse_args(
            ["all", "--distribute", "listen:7000"]
        )
        assert run(args) == 2
        assert "local:N" in capsys.readouterr().err

    def test_progress_rejected_for_unsupported_experiment(self, capsys):
        """Same flag-dropping class as the extension --trials bug: an
        experiment without heartbeats must refuse, not silently drop."""
        args = build_parser().parse_args(
            ["extension-double-device", "--progress"]
        )
        assert run(args) == 2
        assert "--progress" in capsys.readouterr().err

    def test_checkpoint_dir_requires_distribute(self, capsys):
        args = build_parser().parse_args(
            ["table4", "--checkpoint-dir", "ckpt"]
        )
        assert run(args) == 2
        assert "--distribute" in capsys.readouterr().err

    def test_resume_requires_checkpoint_dir(self, capsys):
        args = build_parser().parse_args(
            ["table4", "--distribute", "local:2", "--resume"]
        )
        assert run(args) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_connect_only_for_worker(self, capsys):
        args = build_parser().parse_args(
            ["table4", "--connect", "host:7000"]
        )
        assert run(args) == 2
        assert "--connect" in capsys.readouterr().err

    def test_worker_requires_connect(self, capsys):
        assert run(build_parser().parse_args(["worker"])) == 2
        assert "--connect" in capsys.readouterr().err

    def test_worker_rejects_bad_address(self, capsys):
        args = build_parser().parse_args(["worker", "--connect", "nope"])
        assert run(args) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_coordinator_requires_run_and_port(self, capsys):
        assert run(build_parser().parse_args(["coordinator"])) == 2
        assert "--run" in capsys.readouterr().err

    def test_run_port_only_for_coordinator(self, capsys):
        args = build_parser().parse_args(["table4", "--port", "7000"])
        assert run(args) == 2
        assert "coordinator" in capsys.readouterr().err

    def test_chaos_requires_distribute(self, capsys, monkeypatch):
        from repro.distribute import CHAOS_ENV

        monkeypatch.delenv(CHAOS_ENV, raising=False)
        args = build_parser().parse_args(
            ["table4", "--chaos", "seed=1,reset=0.1"]
        )
        assert run(args) == 2
        assert "--chaos" in capsys.readouterr().err
        # A refused invocation must not leak the spec into the process
        # environment (it would silently arm later runs).
        assert CHAOS_ENV not in __import__("os").environ

    def test_bad_chaos_spec_rejected(self, capsys):
        args = build_parser().parse_args(
            ["table4", "--distribute", "local:1", "--chaos", "bogus=0.5"]
        )
        assert run(args) == 2
        assert "--chaos" in capsys.readouterr().err


class TestChaosRuns:
    """--chaos end to end: parity under faults, exit 4 on degradation."""

    def test_chaos_run_output_identical_to_clean_run(
        self, capsys, monkeypatch
    ):
        from repro.distribute import CHAOS_ENV

        monkeypatch.setenv(CHAOS_ENV, "")  # restored after the test
        base = ["table4", "--trials", "60", "--chunk-size", "30",
                "--distribute", "local:1"]
        assert run(build_parser().parse_args(base)) == 0
        clean = capsys.readouterr().out
        assert run(
            build_parser().parse_args(
                base + ["--chaos", "seed=3,dup=0.5,reset=0.2"]
            )
        ) == 0
        assert capsys.readouterr().out == clean

    def test_degraded_run_exits_4_and_resumes(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.distribute import CHAOS_ENV, PARTIAL_RESULTS_NAME

        monkeypatch.setenv(CHAOS_ENV, "")
        base = ["table4", "--trials", "60", "--chunk-size", "30",
                "--distribute", "local:2", "--checkpoint-dir",
                str(tmp_path)]
        # Every worker crashes on its first task: total fleet loss.
        args = build_parser().parse_args(base + ["--chaos", "crash=@1"])
        assert run(args) == 4
        err = capsys.readouterr().err
        assert "degraded" in err
        assert "--resume" in err
        assert (tmp_path / PARTIAL_RESULTS_NAME).exists()
        # A chaos-free resume finishes the run.
        monkeypatch.setenv(CHAOS_ENV, "")
        assert run(build_parser().parse_args(base + ["--resume"])) == 0
        assert "measured vs paper" in capsys.readouterr().out


class TestProgressOutputRegression:
    """Satellite: default output unchanged; heartbeats are stderr-only."""

    def test_default_output_has_no_heartbeat(self, capsys):
        args = build_parser().parse_args(
            ["table4", "--trials", "60", "--chunk-size", "30"]
        )
        assert run(args) == 0
        out, err = capsys.readouterr()
        assert "[progress]" not in out
        assert "[progress]" not in err
        assert "measured vs paper" in out

    def test_progress_flag_prints_heartbeat_to_stderr_only(self, capsys):
        baseline_args = build_parser().parse_args(
            ["table4", "--trials", "60", "--chunk-size", "30"]
        )
        assert run(baseline_args) == 0
        baseline_out = capsys.readouterr().out

        args = build_parser().parse_args(
            ["table4", "--trials", "60", "--chunk-size", "30", "--progress"]
        )
        assert run(args) == 0
        out, err = capsys.readouterr()
        assert out == baseline_out  # stdout report byte-identical
        assert "[progress]" in err
        assert "chunks" in err
