"""Distributed execution end-to-end: loopback workers over real sockets.

The acceptance contract this file pins:

* a ``--distribute local:N`` run folds a tally **byte-identical** to
  the ``jobs=1`` in-process run at the same seed — including when a
  worker is killed mid-run (lease re-queue) and when the run is
  interrupted and resumed from the checkpoint journal;
* adaptive stopping decisions are identical through the distributed
  round barrier (same ``trials_used``, rounds, and convergence).
"""

import pytest

from repro.core.codes import muse_80_69
from repro.distribute import (
    CheckpointJournal,
    DistributedInterrupted,
    DistributedSession,
)
from repro.engine import available_backends
from repro.orchestrate import CodeRef, derive_key
from repro.reliability.monte_carlo import (
    MuseMsedSimulator,
    RsMsedSimulator,
    build_table_iv,
)
from repro.reliability.sampling.sequential import AdaptivePolicy
from repro.rs.reed_solomon import rs_144_128

SEED = 5


def muse_simulator(backend="auto"):
    return MuseMsedSimulator(
        muse_80_69(),
        backend=backend,
        code_ref=CodeRef("repro.core.codes:muse_80_69"),
    )


def rs_simulator(backend="auto"):
    return RsMsedSimulator(
        rs_144_128(),
        backend=backend,
        code_ref=CodeRef("repro.rs.reed_solomon:rs_144_128"),
    )


class TestLoopbackDeterminism:
    @pytest.mark.parametrize(
        "make", (muse_simulator, rs_simulator), ids=("muse", "rs")
    )
    def test_tally_identical_to_in_process(self, make):
        simulator = make()
        serial = simulator.run(600, seed=SEED, chunk_size=50)
        with DistributedSession(local_workers=2) as session:
            distributed = simulator.run(
                600, seed=SEED, chunk_size=50, executor=session
            )
        assert distributed == serial

    def test_table_iv_identical_to_in_process(self):
        trials, seed = 240, 11
        baseline = build_table_iv(trials=trials, seed=seed)
        with DistributedSession(local_workers=2) as session:
            table = build_table_iv(
                trials=trials, seed=seed, chunk_size=64, executor=session
            )
        assert [p.result for p in table.points] == [
            p.result for p in baseline.points
        ]
        assert [p.label for p in table.points] == [
            p.label for p in baseline.points
        ]

    def test_scalar_worker_fleet_folds_the_same_tally(self):
        """A worker-side --backend override changes the engine, never
        the tally (the cross-backend contract, now across hosts)."""
        simulator = muse_simulator()
        serial = simulator.run(300, seed=SEED, chunk_size=100)
        with DistributedSession(local_workers=1, backend="scalar") as session:
            distributed = simulator.run(
                300, seed=SEED, chunk_size=100, executor=session
            )
        assert distributed == serial

    @pytest.mark.parametrize("backend", available_backends())
    def test_every_registered_backend_folds_the_same_tally(self, backend):
        """2-worker loopback with each available backend forced on the
        workers — the JIT/native fused chunk path included — must fold
        byte-identically to the in-process run."""
        simulator = muse_simulator()
        serial = simulator.run(400, seed=SEED, chunk_size=64)
        with DistributedSession(local_workers=2, backend=backend) as session:
            distributed = simulator.run(
                400, seed=SEED, chunk_size=64, executor=session
            )
        assert distributed == serial

    def test_session_serves_multiple_batches(self):
        """Workers survive across run_tasks calls (adaptive rounds)."""
        simulator = muse_simulator()
        with DistributedSession(local_workers=1) as session:
            first = simulator.run(200, seed=1, chunk_size=64, executor=session)
            second = simulator.run(200, seed=2, chunk_size=64, executor=session)
        assert first == simulator.run(200, seed=1, chunk_size=64)
        assert second == simulator.run(200, seed=2, chunk_size=64)


class TestFaultTolerance:
    def test_worker_killed_mid_run_tally_identical(self):
        """Kill one of two workers after the first fold: its leases
        re-queue and the survivor finishes — same tally, byte for byte."""
        simulator = muse_simulator()
        serial = simulator.run(3000, seed=SEED, chunk_size=100)
        killed = []
        with DistributedSession(local_workers=2) as session:

            def assassin(done, total):
                if not killed:
                    killed.append(True)
                    session.worker_processes[0].kill()

            distributed = simulator.run(
                3000,
                seed=SEED,
                chunk_size=100,
                executor=session,
                progress=assassin,
            )
            assert not session.worker_processes[0].is_alive()
        assert killed, "kill hook never fired"
        assert distributed == serial

    def test_all_local_workers_dead_fails_instead_of_hanging(self):
        simulator = muse_simulator()
        with DistributedSession(local_workers=1) as session:
            session.worker_processes[0].kill()
            session.worker_processes[0].join(timeout=5.0)
            with pytest.raises(RuntimeError, match="workers exited"):
                simulator.run(200, seed=SEED, chunk_size=50, executor=session)

    def test_adaptive_stopping_identical_through_round_barrier(self):
        policy = AdaptivePolicy(
            ci_target=0.3,
            metric="failure",
            initial_trials=100,
            max_trials=800,
        )
        simulator = muse_simulator()
        baseline = simulator.run_adaptive(policy, seed=7, chunk_size=64)
        with DistributedSession(local_workers=2) as session:
            distributed = simulator.run_adaptive(
                policy, seed=7, chunk_size=64, executor=session
            )
        assert distributed.result == baseline.result
        assert distributed.trials_used == baseline.trials_used
        assert distributed.rounds == baseline.rounds
        assert distributed.converged == baseline.converged


class TestCheckpointResume:
    @pytest.mark.parametrize(
        "chunk_size,workers,backend",
        [(50, 2, "auto"), (64, 1, "scalar")],
        ids=("auto-2w", "scalar-1w"),
    )
    def test_interrupt_then_resume_is_byte_identical(
        self, tmp_path, chunk_size, workers, backend
    ):
        """Resume after k of n chunks ≡ uninterrupted run, across
        backends and (chunk_size, workers) splits."""
        simulator = muse_simulator(backend)
        serial = simulator.run(600, seed=SEED, chunk_size=chunk_size)
        key = derive_key(SEED)
        with pytest.raises(DistributedInterrupted):
            with DistributedSession(
                local_workers=workers,
                checkpoint=CheckpointJournal.open(tmp_path, key),
                interrupt_after=3,
            ) as session:
                simulator.run(
                    600, seed=SEED, chunk_size=chunk_size, executor=session
                )
        journal = CheckpointJournal.open(tmp_path, key, resume=True)
        assert len(journal) >= 3  # the interrupt saved completed chunks
        with DistributedSession(
            local_workers=workers, checkpoint=journal
        ) as session:
            resumed = simulator.run(
                600, seed=SEED, chunk_size=chunk_size, executor=session
            )
        assert resumed == serial

    def test_resume_of_finished_run_recomputes_nothing(self, tmp_path):
        simulator = muse_simulator()
        key = derive_key(SEED)
        with DistributedSession(
            local_workers=1, checkpoint=CheckpointJournal.open(tmp_path, key)
        ) as session:
            first = simulator.run(
                400, seed=SEED, chunk_size=100, executor=session
            )
        journal = CheckpointJournal.open(tmp_path, key, resume=True)
        with DistributedSession(
            local_workers=1, checkpoint=journal
        ) as session:
            replayed = simulator.run(
                400, seed=SEED, chunk_size=100, executor=session
            )
            assert session._folds == 0  # everything answered from disk
        assert replayed == first

    def test_adaptive_interrupt_then_resume_identical_decisions(
        self, tmp_path
    ):
        """The round barrier replays journalled rounds deterministically:
        a resumed adaptive run stops at the same look with the same
        tally as an uninterrupted one."""
        policy = AdaptivePolicy(
            ci_target=0.3,
            metric="failure",
            initial_trials=100,
            max_trials=800,
        )
        simulator = muse_simulator()
        baseline = simulator.run_adaptive(policy, seed=7, chunk_size=50)
        key = derive_key(7)
        with pytest.raises(DistributedInterrupted):
            with DistributedSession(
                local_workers=1,
                checkpoint=CheckpointJournal.open(tmp_path, key),
                interrupt_after=2,
            ) as session:
                simulator.run_adaptive(
                    policy, seed=7, chunk_size=50, executor=session
                )
        journal = CheckpointJournal.open(tmp_path, key, resume=True)
        with DistributedSession(
            local_workers=1, checkpoint=journal
        ) as session:
            resumed = simulator.run_adaptive(
                policy, seed=7, chunk_size=50, executor=session
            )
        assert resumed.result == baseline.result
        assert resumed.trials_used == baseline.trials_used
        assert resumed.rounds == baseline.rounds
        assert resumed.converged == baseline.converged
