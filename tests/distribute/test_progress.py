"""Progress heartbeats: formatting, throttling, and the REPRO_LOG gate.

Also pins the clock-source invariant for the whole distributed
runtime: progress elapsed times and lease deadlines must come from
monotonic clocks (``time.perf_counter()`` / ``time.monotonic()``),
never ``time.time()`` — an NTP step or a suspended laptop must not
produce negative elapsed values or spurious lease expiries.  The pin
is a source-level scan, so a regression cannot hide behind timing.
"""

import ast
import inspect
import io

import pytest

from repro.distribute.progress import ChunkProgress, Heartbeat
from repro.telemetry.log import ENV_VAR


@pytest.fixture(autouse=True)
def normal_log_level(monkeypatch):
    """Heartbeat tests assume the default gate unless they say otherwise."""
    monkeypatch.delenv(ENV_VAR, raising=False)


class TestChunkProgress:
    def test_emits_formatted_lines(self):
        stream = io.StringIO()
        progress = ChunkProgress(stream=stream, min_interval=0)
        progress(3, 10)
        progress(10, 10)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[progress] chunks 3/10 elapsed ")
        assert lines[1].startswith("[progress] chunks 10/10 elapsed ")

    def test_throttle_suppresses_intermediate_but_never_final(self):
        stream = io.StringIO()
        progress = ChunkProgress(stream=stream, min_interval=3600)
        progress(1, 10)  # first call is past the -inf sentinel
        progress(2, 10)  # throttled
        progress(10, 10)  # final: always emitted
        lines = stream.getvalue().splitlines()
        assert [line.split()[2] for line in lines] == ["1/10", "10/10"]

    def test_silent_gate_mutes_everything(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "silent")
        stream = io.StringIO()
        progress = ChunkProgress(stream=stream, min_interval=0)
        progress(5, 10)
        progress(10, 10)
        assert stream.getvalue() == ""


class TestHeartbeat:
    def test_tick_formats_point_and_batch_standing(self):
        stream = io.StringIO()
        heartbeat = Heartbeat(stream=stream, min_interval=0)
        heartbeat.tick("muse+2", 3, 8, 1500, 3, 80)
        line = stream.getvalue().splitlines()[0]
        assert "point muse+2: chunks 3/8" in line
        assert "trials 1500" in line
        assert "batch 3/80" in line

    def test_final_batch_tick_bypasses_throttle(self):
        stream = io.StringIO()
        heartbeat = Heartbeat(stream=stream, min_interval=3600)
        heartbeat.tick("a", 1, 8, 100, 1, 2)
        heartbeat.tick("a", 2, 8, 200, 1, 2)  # throttled
        heartbeat.tick("b", 8, 8, 900, 2, 2)  # batch done: always emitted
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "batch 2/2" in lines[-1]

    def test_allocation_lines_bypass_throttle(self):
        stream = io.StringIO()
        heartbeat = Heartbeat(stream=stream, min_interval=3600)
        heartbeat.tick("a", 1, 8, 100, 1, 16)  # consumes the throttle slot
        heartbeat.allocation(
            2, [("muse+2", 500, 1500, 0.12, 3.4), ("rs+4", 250, 750, 0.3, 1.1)]
        )
        lines = stream.getvalue().splitlines()
        assert lines[1] == (
            f"[campaign] round 2: 2 point(s) allocated, "
            f"elapsed {lines[1].split()[-1].rstrip('s')}s"
        )
        assert "[campaign]   point muse+2: +500 trials (-> 1500)" in lines[2]
        assert "ci-half 0.12 priority 3.4" in lines[2]
        assert "[campaign]   point rs+4: +250 trials (-> 750)" in lines[3]

    def test_silent_gate_mutes_heartbeats(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "silent")
        stream = io.StringIO()
        heartbeat = Heartbeat(stream=stream, min_interval=0)
        heartbeat.tick("a", 8, 8, 900, 2, 2)
        heartbeat.allocation(1, [("a", 10, 10, 0.5, 1.0)])
        assert stream.getvalue() == ""


class TestMonotonicClockPin:
    def test_no_wall_clock_timing_in_the_distributed_runtime(self):
        """``time.time()`` must not appear anywhere in the runtime's
        timing paths (progress, leases, straggler timeouts, wire)."""
        import repro.distribute.cache
        import repro.distribute.chaos
        import repro.distribute.checkpoint
        import repro.distribute.coordinator
        import repro.distribute.local
        import repro.distribute.progress
        import repro.distribute.queue
        import repro.distribute.wire
        import repro.distribute.worker

        modules = [
            repro.distribute.cache,
            repro.distribute.chaos,
            repro.distribute.checkpoint,
            repro.distribute.coordinator,
            repro.distribute.local,
            repro.distribute.progress,
            repro.distribute.queue,
            repro.distribute.wire,
            repro.distribute.worker,
        ]
        offenders = []
        for module in modules:
            tree = ast.parse(inspect.getsource(module))
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "time"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "time"
                ):
                    offenders.append(f"{module.__name__}:{node.lineno}")
        assert offenders == []
