"""Checkpoint journal: durable appends, salvage, resume gating,
fingerprints."""

import json

import pytest

from repro.distribute.checkpoint import (
    CORRUPT_SUFFIX,
    JOURNAL_NAME,
    JOURNAL_VERSION,
    CheckpointJournal,
    _decode_line,
    spec_fingerprint,
)
from repro.orchestrate.plan import Chunk
from repro.orchestrate.worker import CodeRef, MuseSimSpec
from repro.reliability.metrics import MsedTally

KEY = 0xDEAD_BEEF
FP = "spec"


def tally(**counts) -> MsedTally:
    t = MsedTally()
    t.record_counts(**counts)
    return t


class TestRoundTrip:
    def test_record_then_reopen_replays_entries(self, tmp_path):
        journal = CheckpointJournal.open(tmp_path, KEY)
        journal.record(0, Chunk(0, 64), tally(miscorrected=3, silent=1), FP)
        journal.record(0, Chunk(64, 64), tally(detected_no_match=64), FP)
        journal.record("k-sweep:1", Chunk(0, 64), tally(silent=2), FP)

        reopened = CheckpointJournal.open(tmp_path, KEY, resume=True)
        assert len(reopened) == 3
        replay = reopened.lookup(0, Chunk(0, 64), FP)
        assert replay == MsedTally(
            trials=4, detected_no_match=0, detected_confinement=0,
            miscorrected=3, silent=1,
        )
        assert reopened.lookup("k-sweep:1", Chunk(0, 64), FP).silent == 2
        assert reopened.lookup(0, Chunk(128, 64), FP) is None  # not done

    def test_lookup_returns_a_copy(self, tmp_path):
        journal = CheckpointJournal.open(tmp_path, KEY)
        journal.record(0, Chunk(0, 8), tally(silent=1), FP)
        journal.lookup(0, Chunk(0, 8), FP).record_silent()  # mutate copy
        assert journal.lookup(0, Chunk(0, 8), FP).trials == 1

    def test_mismatched_chunk_size_misses(self, tmp_path):
        """A resumed run with a different chunking recomputes (correct,
        just unsaved) instead of mis-folding partial ranges."""
        journal = CheckpointJournal.open(tmp_path, KEY)
        journal.record(0, Chunk(0, 64), tally(silent=1), FP)
        assert journal.lookup(0, Chunk(0, 100), FP) is None


class TestGating:
    def test_fresh_run_refuses_existing_journal(self, tmp_path):
        CheckpointJournal.open(tmp_path, KEY).record(
            0, Chunk(0, 1), tally(silent=1), FP
        )
        with pytest.raises(FileExistsError, match="--resume"):
            CheckpointJournal.open(tmp_path, KEY)

    def test_resume_with_no_journal_starts_empty(self, tmp_path):
        journal = CheckpointJournal.open(tmp_path, KEY, resume=True)
        assert len(journal) == 0

    def test_key_mismatch_refused(self, tmp_path):
        CheckpointJournal.open(tmp_path, KEY).record(
            0, Chunk(0, 1), tally(silent=1), FP
        )
        with pytest.raises(ValueError, match="stream key"):
            CheckpointJournal.open(tmp_path, KEY + 1, resume=True)

    def test_version_mismatch_refused(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_text(json.dumps({"version": 99, "key": KEY, "groups": {}}))
        with pytest.raises(ValueError, match="version"):
            CheckpointJournal.open(tmp_path, KEY, resume=True)

    def test_fingerprint_mismatch_refused(self, tmp_path):
        journal = CheckpointJournal.open(tmp_path, KEY)
        journal.record(0, Chunk(0, 8), tally(silent=1), "config-a")
        with pytest.raises(ValueError, match="different simulator"):
            journal.lookup(0, Chunk(0, 8), "config-b")
        reopened = CheckpointJournal.open(tmp_path, KEY, resume=True)
        with pytest.raises(ValueError, match="different simulator"):
            reopened.lookup(0, Chunk(0, 8), "config-b")


class TestSpecFingerprint:
    def test_backend_excluded(self):
        """Scalar and numpy tally byte-identically, so a checkpoint
        taken on one backend must resume on the other."""
        ref = CodeRef("repro.core.codes:muse_80_69")
        scalar = MuseSimSpec(code=ref, backend="scalar")
        numpy = MuseSimSpec(code=ref, backend="numpy")
        assert spec_fingerprint(scalar) == spec_fingerprint(numpy)

    def test_config_changes_included(self):
        ref = CodeRef("repro.core.codes:muse_80_69")
        assert spec_fingerprint(
            MuseSimSpec(code=ref, k_symbols=2)
        ) != spec_fingerprint(MuseSimSpec(code=ref, k_symbols=3))
        assert spec_fingerprint(
            MuseSimSpec(code=ref, ripple_check=True)
        ) != spec_fingerprint(MuseSimSpec(code=ref, ripple_check=False))


class TestDurability:
    def test_every_line_is_crc_valid_json(self, tmp_path):
        """Every append leaves a file of individually verifiable lines:
        a header naming the version + key, then one record per chunk."""
        journal = CheckpointJournal.open(tmp_path, KEY)
        for index in range(10):
            journal.record(
                index % 2, Chunk(index * 8, 8), tally(silent=index), FP
            )
            lines = journal.path.read_bytes().splitlines()
            decoded = [_decode_line(line) for line in lines]
            assert all(record is not None for record in decoded)
            assert decoded[0] == {"version": JOURNAL_VERSION, "key": KEY}
            assert len(decoded) == index + 2  # header + one per record

    def test_folded_summary_matches_chunk_sum(self, tmp_path):
        journal = CheckpointJournal.open(tmp_path, KEY)
        journal.record(0, Chunk(0, 8), tally(silent=3), FP)
        journal.record(0, Chunk(8, 8), tally(miscorrected=2), FP)
        folded = journal.folded()[json.dumps(0)]
        assert folded["chunks"] == 2
        assert folded["trials"] == 5
        assert folded["silent"] == 3
        assert folded["miscorrected"] == 2

    def test_save_every_batches_appends(self, tmp_path):
        journal = CheckpointJournal.open(tmp_path, KEY, save_every=3)
        journal.record(0, Chunk(0, 8), tally(silent=1), FP)
        journal.record(0, Chunk(8, 8), tally(silent=1), FP)
        assert not journal.path.exists()  # below the batch threshold
        journal.record(0, Chunk(16, 8), tally(silent=1), FP)
        assert journal.path.exists()
        assert len(journal.path.read_bytes().splitlines()) == 4

    def test_appends_do_not_rewrite_earlier_lines(self, tmp_path):
        """Persistence is O(1) per record: old lines stay byte-stable."""
        journal = CheckpointJournal.open(tmp_path, KEY)
        journal.record(0, Chunk(0, 8), tally(silent=1), FP)
        first = journal.path.read_bytes()
        journal.record(0, Chunk(8, 8), tally(silent=2), FP)
        assert journal.path.read_bytes().startswith(first)


def _journal_with_records(tmp_path, count=4):
    journal = CheckpointJournal.open(tmp_path, KEY)
    for index in range(count):
        journal.record(0, Chunk(index * 8, 8), tally(silent=index + 1), FP)
    return journal


class TestSalvage:
    """A damaged journal heals: keep the valid prefix, quarantine the
    evidence, re-simulate only what the damage lost."""

    def test_torn_final_line_drops_only_that_record(self, tmp_path):
        _journal_with_records(tmp_path, count=4)
        path = tmp_path / JOURNAL_NAME
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 10])  # tear the last append

        journal = CheckpointJournal.open(tmp_path, KEY, resume=True)
        assert len(journal) == 3
        assert journal.lookup(0, Chunk(0, 8), FP).silent == 1
        assert journal.lookup(0, Chunk(24, 8), FP) is None  # the torn one
        assert journal.salvage is not None
        assert journal.salvage.records_kept == 3
        assert journal.salvage.lines_dropped == 1

    def test_crc_flip_invalidates_that_line(self, tmp_path):
        """Bit rot that still parses as JSON is caught by the CRC."""
        _journal_with_records(tmp_path, count=3)
        path = tmp_path / JOURNAL_NAME
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = lines[2].replace(b'"silent":2', b'"silent":9')
        path.write_bytes(b"".join(lines))

        journal = CheckpointJournal.open(tmp_path, KEY, resume=True)
        # Prefix semantics: everything from the damaged line on is gone.
        assert len(journal) == 1
        assert journal.lookup(0, Chunk(0, 8), FP).silent == 1

    def test_garbage_interior_line_keeps_prefix(self, tmp_path):
        _journal_with_records(tmp_path, count=3)
        path = tmp_path / JOURNAL_NAME
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = b"\xff\xfenot json at all\n"
        path.write_bytes(b"".join(lines))

        journal = CheckpointJournal.open(tmp_path, KEY, resume=True)
        assert len(journal) == 1
        assert journal.salvage.lines_dropped == 2

    def test_quarantine_preserves_damaged_original(self, tmp_path):
        _journal_with_records(tmp_path, count=2)
        path = tmp_path / JOURNAL_NAME
        damaged = path.read_bytes()[:-7]
        path.write_bytes(damaged)

        journal = CheckpointJournal.open(tmp_path, KEY, resume=True)
        corrupt = path.with_name(JOURNAL_NAME + CORRUPT_SUFFIX)
        assert journal.salvage.corrupt_path == corrupt
        assert corrupt.read_bytes() == damaged
        # The healed journal on disk is fully valid again...
        lines = path.read_bytes().splitlines()
        assert all(_decode_line(line) is not None for line in lines)
        # ...and appending + reopening works with no residual damage.
        journal.record(0, Chunk(8, 8), tally(silent=7), FP)
        reopened = CheckpointJournal.open(tmp_path, KEY, resume=True)
        assert reopened.salvage is None
        assert len(reopened) == 2

    def test_salvaged_resume_refolds_byte_identically(self, tmp_path):
        """The healed prefix plus re-simulated lost chunks folds to the
        same totals as an undamaged journal."""
        full = _journal_with_records(tmp_path, count=4).folded()
        path = tmp_path / JOURNAL_NAME
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 5])

        journal = CheckpointJournal.open(tmp_path, KEY, resume=True)
        # The coordinator's resume loop: misses recompute and re-record.
        for index in range(4):
            chunk = Chunk(index * 8, 8)
            if journal.lookup(0, chunk, FP) is None:
                journal.record(0, chunk, tally(silent=index + 1), FP)
        assert journal.folded() == full

    def test_legacy_v1_journal_refused_with_version_error(self, tmp_path):
        """A pre-append-only whole-document journal names its version in
        the refusal instead of being silently quarantined."""
        path = tmp_path / JOURNAL_NAME
        path.write_text(
            json.dumps({"version": 1, "key": KEY, "groups": {}}, indent=2)
        )
        with pytest.raises(ValueError, match="version"):
            CheckpointJournal.open(tmp_path, KEY, resume=True)

    def test_unrecognizable_file_quarantines_and_starts_empty(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_bytes(b"\x00\x01\x02 total garbage\nmore garbage\n")
        journal = CheckpointJournal.open(tmp_path, KEY, resume=True)
        assert len(journal) == 0
        assert journal.salvage.records_kept == 0
        assert journal.salvage.corrupt_path.exists()
