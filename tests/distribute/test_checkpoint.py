"""Checkpoint journal: atomic persistence, resume gating, fingerprints."""

import json

import pytest

from repro.distribute.checkpoint import (
    JOURNAL_NAME,
    CheckpointJournal,
    spec_fingerprint,
)
from repro.orchestrate.plan import Chunk
from repro.orchestrate.worker import CodeRef, MuseSimSpec
from repro.reliability.metrics import MsedTally

KEY = 0xDEAD_BEEF
FP = "spec"


def tally(**counts) -> MsedTally:
    t = MsedTally()
    t.record_counts(**counts)
    return t


class TestRoundTrip:
    def test_record_then_reopen_replays_entries(self, tmp_path):
        journal = CheckpointJournal.open(tmp_path, KEY)
        journal.record(0, Chunk(0, 64), tally(miscorrected=3, silent=1), FP)
        journal.record(0, Chunk(64, 64), tally(detected_no_match=64), FP)
        journal.record("k-sweep:1", Chunk(0, 64), tally(silent=2), FP)

        reopened = CheckpointJournal.open(tmp_path, KEY, resume=True)
        assert len(reopened) == 3
        replay = reopened.lookup(0, Chunk(0, 64), FP)
        assert replay == MsedTally(
            trials=4, detected_no_match=0, detected_confinement=0,
            miscorrected=3, silent=1,
        )
        assert reopened.lookup("k-sweep:1", Chunk(0, 64), FP).silent == 2
        assert reopened.lookup(0, Chunk(128, 64), FP) is None  # not done

    def test_lookup_returns_a_copy(self, tmp_path):
        journal = CheckpointJournal.open(tmp_path, KEY)
        journal.record(0, Chunk(0, 8), tally(silent=1), FP)
        journal.lookup(0, Chunk(0, 8), FP).record_silent()  # mutate copy
        assert journal.lookup(0, Chunk(0, 8), FP).trials == 1

    def test_mismatched_chunk_size_misses(self, tmp_path):
        """A resumed run with a different chunking recomputes (correct,
        just unsaved) instead of mis-folding partial ranges."""
        journal = CheckpointJournal.open(tmp_path, KEY)
        journal.record(0, Chunk(0, 64), tally(silent=1), FP)
        assert journal.lookup(0, Chunk(0, 100), FP) is None


class TestGating:
    def test_fresh_run_refuses_existing_journal(self, tmp_path):
        CheckpointJournal.open(tmp_path, KEY).record(
            0, Chunk(0, 1), tally(silent=1), FP
        )
        with pytest.raises(FileExistsError, match="--resume"):
            CheckpointJournal.open(tmp_path, KEY)

    def test_resume_with_no_journal_starts_empty(self, tmp_path):
        journal = CheckpointJournal.open(tmp_path, KEY, resume=True)
        assert len(journal) == 0

    def test_key_mismatch_refused(self, tmp_path):
        CheckpointJournal.open(tmp_path, KEY).record(
            0, Chunk(0, 1), tally(silent=1), FP
        )
        with pytest.raises(ValueError, match="stream key"):
            CheckpointJournal.open(tmp_path, KEY + 1, resume=True)

    def test_version_mismatch_refused(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_text(json.dumps({"version": 99, "key": KEY, "groups": {}}))
        with pytest.raises(ValueError, match="version"):
            CheckpointJournal.open(tmp_path, KEY, resume=True)

    def test_fingerprint_mismatch_refused(self, tmp_path):
        journal = CheckpointJournal.open(tmp_path, KEY)
        journal.record(0, Chunk(0, 8), tally(silent=1), "config-a")
        with pytest.raises(ValueError, match="different simulator"):
            journal.lookup(0, Chunk(0, 8), "config-b")
        reopened = CheckpointJournal.open(tmp_path, KEY, resume=True)
        with pytest.raises(ValueError, match="different simulator"):
            reopened.lookup(0, Chunk(0, 8), "config-b")


class TestSpecFingerprint:
    def test_backend_excluded(self):
        """Scalar and numpy tally byte-identically, so a checkpoint
        taken on one backend must resume on the other."""
        ref = CodeRef("repro.core.codes:muse_80_69")
        scalar = MuseSimSpec(code=ref, backend="scalar")
        numpy = MuseSimSpec(code=ref, backend="numpy")
        assert spec_fingerprint(scalar) == spec_fingerprint(numpy)

    def test_config_changes_included(self):
        ref = CodeRef("repro.core.codes:muse_80_69")
        assert spec_fingerprint(
            MuseSimSpec(code=ref, k_symbols=2)
        ) != spec_fingerprint(MuseSimSpec(code=ref, k_symbols=3))
        assert spec_fingerprint(
            MuseSimSpec(code=ref, ripple_check=True)
        ) != spec_fingerprint(MuseSimSpec(code=ref, ripple_check=False))


class TestDurability:
    def test_saved_file_is_always_complete_json(self, tmp_path):
        """Every on-disk state parses: the journal is never observable
        mid-write (atomic rename)."""
        journal = CheckpointJournal.open(tmp_path, KEY)
        for index in range(10):
            journal.record(
                index % 2, Chunk(index * 8, 8), tally(silent=index), FP
            )
            payload = json.loads(journal.path.read_text())
            assert payload["version"] == 1
            total = sum(
                len(group["chunks"]) for group in payload["groups"].values()
            )
            assert total == index + 1

    def test_folded_summary_matches_chunk_sum(self, tmp_path):
        journal = CheckpointJournal.open(tmp_path, KEY)
        journal.record(0, Chunk(0, 8), tally(silent=3), FP)
        journal.record(0, Chunk(8, 8), tally(miscorrected=2), FP)
        payload = json.loads(journal.path.read_text())
        folded = payload["groups"]["0"]["folded"]
        assert folded["trials"] == 5
        assert folded["silent"] == 3
        assert folded["miscorrected"] == 2

    def test_save_every_batches_rewrites(self, tmp_path):
        journal = CheckpointJournal.open(tmp_path, KEY, save_every=3)
        journal.record(0, Chunk(0, 8), tally(silent=1), FP)
        journal.record(0, Chunk(8, 8), tally(silent=1), FP)
        assert not journal.path.exists()  # below the batch threshold
        journal.record(0, Chunk(16, 8), tally(silent=1), FP)
        assert journal.path.exists()
