"""Tests for MSED outcome accounting."""

import pytest

from repro.reliability.metrics import DesignPoint, MsedResult, MsedTally, TableIV


class TestTally:
    def test_counters_accumulate(self):
        tally = MsedTally()
        tally.record_detected_no_match()
        tally.record_detected_no_match()
        tally.record_detected_confinement()
        tally.record_miscorrected()
        tally.record_silent()
        result = tally.freeze()
        assert result.trials == 5
        assert result.detected == 3
        assert result.miscorrected == 1
        assert result.silent == 1

    def test_rates(self):
        result = MsedResult(
            trials=200,
            detected_no_match=150,
            detected_confinement=30,
            miscorrected=15,
            silent=5,
        )
        assert result.msed_rate == 0.9
        assert result.msed_percent == 90.0
        assert result.miscorrection_rate == 0.075
        assert result.silent_rate == 0.025

    def test_merge_folds_all_buckets(self):
        left = MsedTally()
        left.record_counts(detected_no_match=5, miscorrected=2, silent=1)
        right = MsedTally()
        right.record_counts(detected_confinement=3, silent=4)
        returned = left.merge(right)
        assert returned is left  # chains
        assert left.freeze() == MsedResult(
            trials=15,
            detected_no_match=5,
            detected_confinement=3,
            miscorrected=2,
            silent=5,
        )
        assert right.trials == 7  # the folded-in tally is untouched

    def test_merge_is_associative_and_commutative(self):
        def tally(no_match, confinement, mis, silent):
            t = MsedTally()
            t.record_counts(
                detected_no_match=no_match,
                detected_confinement=confinement,
                miscorrected=mis,
                silent=silent,
            )
            return t

        parts = [(1, 2, 3, 4), (5, 0, 1, 0), (0, 7, 0, 2)]
        forward = MsedTally()
        for part in parts:
            forward += tally(*part)
        backward = MsedTally()
        for part in reversed(parts):
            backward.merge(tally(*part))
        assert forward.freeze() == backward.freeze()

    def test_merge_accepts_frozen_results(self):
        tally = MsedTally()
        tally.merge(MsedResult(10, 5, 2, 2, 1))
        assert tally.trials == 10
        assert tally.detected_no_match == 5

    def test_empty_result_has_zero_rates(self):
        result = MsedTally().freeze()
        assert result.msed_rate == 0.0
        assert result.miscorrection_rate == 0.0

    def test_describe_mentions_all_buckets(self):
        result = MsedResult(10, 5, 2, 2, 1)
        text = result.describe()
        assert "70.00%" in text
        assert "miscorrected 2" in text

    def test_describe_deprecates_bare_rates(self):
        """Regression: every described rate carries its interval — the
        'rate [lo, hi] @ 95%' format, never a bare point estimate."""
        text = MsedResult(200, 150, 30, 15, 5).describe()
        assert "[" in text and "]" in text
        assert "@95%" in text

    def test_named_metrics_and_failure_rate(self):
        result = MsedResult(200, 150, 30, 15, 5)
        assert result.failure_rate == 0.1
        assert result.rate("failure") == 0.1
        assert result.count("silent") == 5
        assert result.count("miscorrection") == 15
        assert result.rate("msed") == result.msed_rate
        with pytest.raises(ValueError, match="metric"):
            result.rate("typo")

    def test_interval_shrinks_with_trials_and_brackets_rate(self):
        small = MsedResult(100, 90, 0, 8, 2)
        large = MsedResult(10_000, 9_000, 0, 800, 200)
        for metric in ("msed", "failure", "silent"):
            for kind in ("wilson", "clopper-pearson"):
                s = small.interval(kind=kind, metric=metric)
                l = large.interval(kind=kind, metric=metric)
                assert s.contains(small.rate(metric))
                assert l.contains(large.rate(metric))
                assert l.width < s.width

    def test_zero_trials_interval_is_vacuous(self):
        interval = MsedTally().freeze().interval()
        assert (interval.lo, interval.hi) == (0.0, 1.0)


class TestTableIV:
    def _point(self, family, extra, msed_trials=(100, 90)):
        trials, detected = msed_trials
        result = MsedResult(trials, detected, 0, trials - detected, 0)
        return DesignPoint(
            family=family,
            extra_bits=extra,
            label=f"{family}-{extra}",
            chipkill=family == "MUSE",
            result=result,
        )

    def test_row_selection(self):
        table = TableIV()
        table.add(self._point("MUSE", 0))
        table.add(self._point("RS", 0))
        table.add(self._point("MUSE", 1))
        assert set(table.row("MUSE")) == {0, 1}
        assert set(table.row("RS")) == {0}

    def test_render_marks_non_chipkill(self):
        table = TableIV()
        table.add(self._point("RS", 4))
        text = table.render()
        assert "*" in text
        assert "ChipKill" in text

    def test_render_shows_missing_cells(self):
        table = TableIV()
        table.add(self._point("MUSE", 0))
        text = table.render()
        assert "-" in text  # RS row has no entry at column 0
