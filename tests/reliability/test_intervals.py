"""Property tests for the Wilson / Clopper-Pearson binomial intervals.

The contracts the adaptive sampler leans on:

* **coverage** — on a seeded grid of (n, p), the exact binomial
  coverage probability of Clopper-Pearson is >= nominal at every point
  (that is its defining theorem), and Wilson stays within its known
  small dip of nominal;
* **monotonicity** — at a fixed success fraction, more trials never
  widen the interval;
* **tabulated values** — both intervals reproduce standard published
  numbers exactly (the 10/100 case, the closed-form 0-event
  Clopper-Pearson bound);
* **edges** — 0 events pins lo to 0, all events pins hi to 1, zero
  trials yields the vacuous [0, 1].
"""

import math
import random

import pytest

from repro.reliability.sampling.intervals import (
    INTERVAL_KINDS,
    binomial_interval,
    clopper_pearson_interval,
    regularized_incomplete_beta,
    wilson_interval,
)

CONFIDENCE = 0.95

#: Seeded (n, p) grid shared by the coverage tests: several trial
#: counts, four random proportions each, reproducible by construction.
_RNG = random.Random(20260729)
COVERAGE_GRID = [
    (n, round(_RNG.uniform(0.02, 0.98), 3))
    for n in (11, 25, 60, 140)
    for _ in range(4)
]


def exact_coverage(kind: str, n: int, p: float) -> float:
    """P[interval covers p] under Binomial(n, p), summed exactly."""
    return sum(
        math.comb(n, k) * p**k * (1.0 - p) ** (n - k)
        for k in range(n + 1)
        if binomial_interval(k, n, kind, CONFIDENCE).contains(p)
    )


class TestCoverage:
    @pytest.mark.parametrize("n,p", COVERAGE_GRID)
    def test_clopper_pearson_coverage_at_least_nominal(self, n, p):
        """The exact interval's guarantee, verified pointwise."""
        assert exact_coverage("clopper-pearson", n, p) >= CONFIDENCE

    @pytest.mark.parametrize("n,p", COVERAGE_GRID)
    def test_wilson_coverage_near_nominal(self, n, p):
        """Wilson trades the guarantee for tightness; its coverage is
        known to oscillate a few points below nominal at small n
        (Brown, Cai & DasGupta 2001) but never collapses."""
        assert exact_coverage("wilson", n, p) >= CONFIDENCE - 0.03

    def test_wilson_mean_coverage_at_least_nominal_minus_epsilon(self):
        mean = sum(
            exact_coverage("wilson", n, p) for n, p in COVERAGE_GRID
        ) / len(COVERAGE_GRID)
        assert mean >= CONFIDENCE - 0.01


class TestMonotonicity:
    @pytest.mark.parametrize("kind", sorted(INTERVAL_KINDS))
    @pytest.mark.parametrize("k,n", [(1, 20), (3, 10), (9, 30), (0, 8)])
    def test_half_width_shrinks_as_n_grows(self, kind, k, n):
        """Scaling (k, n) by s keeps the estimate and adds information;
        the interval must never widen."""
        widths = [
            binomial_interval(k * s, n * s, kind, CONFIDENCE).width
            for s in (1, 2, 4, 8, 16)
        ]
        assert all(a >= b for a, b in zip(widths, widths[1:]))
        assert widths[-1] < widths[0]  # and strictly tightens overall

    @pytest.mark.parametrize("kind", sorted(INTERVAL_KINDS))
    def test_higher_confidence_is_wider(self, kind):
        assert (
            binomial_interval(7, 50, kind, 0.99).width
            > binomial_interval(7, 50, kind, 0.95).width
            > binomial_interval(7, 50, kind, 0.80).width
        )


class TestTabulatedValues:
    def test_wilson_10_of_100(self):
        """The standard worked example (e.g. statsmodels docs)."""
        interval = wilson_interval(10, 100, 0.95)
        assert interval.lo == pytest.approx(0.05523, abs=5e-5)
        assert interval.hi == pytest.approx(0.17437, abs=5e-5)

    def test_clopper_pearson_10_of_100(self):
        interval = clopper_pearson_interval(10, 100, 0.95)
        assert interval.lo == pytest.approx(0.04900, abs=5e-5)
        assert interval.hi == pytest.approx(0.17622, abs=5e-5)

    @pytest.mark.parametrize("n", [10, 50, 1000])
    def test_clopper_pearson_zero_events_closed_form(self, n):
        """k = 0 has the closed form hi = 1 - (alpha/2)^(1/n) (whose
        first-order expansion is the 'rule of three' 3.7/n at 95%)."""
        interval = clopper_pearson_interval(0, n, 0.95)
        assert interval.hi == pytest.approx(1.0 - 0.025 ** (1.0 / n), abs=1e-9)

    def test_symmetry_under_success_failure_swap(self):
        for kind in INTERVAL_KINDS:
            forward = binomial_interval(17, 60, kind)
            mirrored = binomial_interval(43, 60, kind)
            assert forward.lo == pytest.approx(1.0 - mirrored.hi, abs=1e-9)
            assert forward.hi == pytest.approx(1.0 - mirrored.lo, abs=1e-9)

    def test_incomplete_beta_matches_binomial_cdf(self):
        """I_{p}(k, n-k+1) = P[Binomial(n, p) >= k] — the identity that
        makes the beta quantile the exact interval bound."""
        n, p = 30, 0.3
        for k in (1, 5, 12, 29):
            tail = sum(
                math.comb(n, j) * p**j * (1 - p) ** (n - j)
                for j in range(k, n + 1)
            )
            assert regularized_incomplete_beta(k, n - k + 1, p) == pytest.approx(
                tail, abs=1e-12
            )


class TestEdges:
    @pytest.mark.parametrize("kind", sorted(INTERVAL_KINDS))
    def test_zero_events_lo_is_zero(self, kind):
        interval = binomial_interval(0, 42, kind)
        assert interval.lo == 0.0
        assert 0.0 < interval.hi < 0.2

    @pytest.mark.parametrize("kind", sorted(INTERVAL_KINDS))
    def test_all_events_hi_is_one(self, kind):
        interval = binomial_interval(42, 42, kind)
        assert interval.hi == 1.0
        assert 0.8 < interval.lo < 1.0

    @pytest.mark.parametrize("kind", sorted(INTERVAL_KINDS))
    def test_zero_trials_is_vacuous(self, kind):
        assert binomial_interval(0, 0, kind) == binomial_interval(
            0, 0, kind
        )
        interval = binomial_interval(0, 0, kind)
        assert (interval.lo, interval.hi) == (0.0, 1.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError, match="successes"):
            wilson_interval(5, 3)
        with pytest.raises(ValueError, match="successes"):
            clopper_pearson_interval(-1, 3)
        with pytest.raises(ValueError, match="confidence"):
            wilson_interval(1, 3, confidence=1.0)
        with pytest.raises(ValueError, match="kind"):
            binomial_interval(1, 3, kind="wald")

    def test_interval_helpers(self):
        interval = wilson_interval(5, 50)
        assert interval.half_width == pytest.approx(interval.width / 2)
        assert interval.contains(0.1)
        assert not interval.contains(0.9)
        assert interval.format(scale=100.0).startswith("[")
