"""Importance-splitting tests: unbiasedness against brute force.

The estimator's claim is exactness, not approximation: branching the
final corrupted symbol over all its values and weighting by the uniform
continuation probability must estimate the *same* silent/miscorrection
rates as the plain stream — so on a deliberately weak toy code
(TOY(16,7), the smallest valid C4B multiplier, whose 3-symbol silent
rate ~3e-3 is big enough to brute-force) the two estimators' confidence
intervals must agree.  The splitting tally shares the orchestrator's
fold contract: byte-identical across ``(chunk_size, jobs)`` and decode
backends.
"""

import pytest

from repro.core.codes import muse_80_69, toy_16_7
from repro.engine import available_backends
from repro.reliability.monte_carlo import (
    MuseMsedSimulator,
    RsMsedSimulator,
    rs_design_point,
)
from repro.reliability.sampling.splitting import (
    MuseSplittingEstimator,
    RsSplittingEstimator,
    SplitTally,
    StratumTally,
)

pytest.importorskip("numpy", reason="splitting generation is vectorised")

TOY_REF = "repro.core.codes:toy_16_7"

BRUTE_TRIALS = 200_000
SPLIT_TRIALS = 25_000
SEED = 17


@pytest.fixture(scope="module")
def toy_brute():
    """Brute-force reference rates on the weak toy, k=3."""
    return MuseMsedSimulator(toy_16_7(), k_symbols=3).run(
        trials=BRUTE_TRIALS, seed=SEED
    )


@pytest.fixture(scope="module")
def toy_split():
    return MuseSplittingEstimator(toy_16_7(), k_symbols=3).run(
        trials=SPLIT_TRIALS, seed=SEED
    )


class TestUnbiasedness:
    """Satellite: splitting agrees with brute force where brute force
    can actually see the events."""

    def test_silent_rate_matches_brute_force(self, toy_brute, toy_split):
        brute_rate = toy_brute.silent_rate
        assert brute_rate > 1e-3  # the toy really is weak enough
        assert toy_split.events("silent") > 0
        # Each estimator's 95% interval must cover the other's point
        # estimate — the standard two-sided agreement check.
        assert toy_split.interval("silent").contains(brute_rate)
        assert toy_brute.interval(metric="silent").contains(
            toy_split.rate("silent")
        )

    def test_miscorrection_rate_matches_brute_force(self, toy_brute, toy_split):
        assert toy_split.interval("miscorrection").contains(
            toy_brute.miscorrection_rate
        )
        assert toy_brute.interval(metric="miscorrection").contains(
            toy_split.rate("miscorrection")
        )

    def test_splitting_tightens_the_error_bar(self, toy_brute, toy_split):
        """The point of splitting: fewer prefix trials, smaller CI.
        25k prefixes (each fanned over 15 continuations) must beat the
        200k-trial brute interval on the silent tail."""
        split_width = toy_split.interval("silent").width
        brute_width = toy_brute.interval(metric="silent").width
        assert split_width < brute_width

    def test_rs_miscorrection_matches_brute_force(self):
        """Same agreement on the RS family: the weak 5-bit-symbol code
        (RS +6 extra bits) miscorrects often enough to compare.  The
        brute run is 10x shorter than the MUSE one (256-value branch
        fans are pricier), so assert CI overlap and closeness rather
        than strict mutual containment — a 40k-trial brute estimate
        wobbles more than the split interval is wide."""
        code = rs_design_point(6)
        brute = RsMsedSimulator(code).run(trials=40_000, seed=SEED)
        split = RsSplittingEstimator(code).run(trials=4_000, seed=SEED)
        split_interval = split.interval("miscorrection")
        brute_interval = brute.interval(metric="miscorrection")
        assert split_interval.lo <= brute_interval.hi
        assert brute_interval.lo <= split_interval.hi
        assert split.rate("miscorrection") == pytest.approx(
            brute.miscorrection_rate, abs=0.01
        )


class TestRareTail:
    def test_zero_event_cell_still_gets_an_upper_bound(self):
        """The motivating case: a strong code whose silent rate a plain
        run reports as '0 events'.  The splitting interval must stay
        [0, something-positive], not collapse to a point."""
        split = MuseSplittingEstimator(muse_80_69()).run(
            trials=2_000, seed=3
        )
        interval = split.interval("silent")
        assert split.events("silent") == 0
        assert interval.lo == 0.0
        assert 0.0 < interval.hi < 1.0

    def test_fractional_events_accumulate_before_whole_ones(self):
        """On the toy, a handful of prefixes already yields branch
        events — the variance win over 0/1 indicators."""
        split = MuseSplittingEstimator(toy_16_7(), k_symbols=3).run(
            trials=3_000, seed=1
        )
        assert split.events("silent") > 0
        assert split.branches == split.prefixes * 15  # 4-bit symbols


class TestFoldContract:
    def test_chunking_invariant(self):
        estimator = MuseSplittingEstimator(toy_16_7(), k_symbols=3)
        baseline = estimator.run(trials=5_000, seed=9)
        for chunk_size in (512, 1_777, 5_000):
            assert estimator.run(trials=5_000, seed=9, chunk_size=chunk_size) == baseline

    def test_jobs_invariant(self):
        estimator = MuseSplittingEstimator(
            toy_16_7(), k_symbols=3, code_ref=TOY_REF
        )
        serial = estimator.run(trials=4_000, seed=9)
        sharded = estimator.run(trials=4_000, seed=9, jobs=2, chunk_size=1_000)
        assert sharded == serial

    def test_backends_agree(self):
        if "numpy" not in available_backends():
            pytest.skip("numpy backend unavailable")
        runs = {
            backend: MuseSplittingEstimator(
                toy_16_7(), k_symbols=3, backend=backend
            ).run(trials=2_000, seed=4)
            for backend in ("scalar", "numpy")
        }
        assert runs["scalar"] == runs["numpy"]

    def test_tally_merge_is_associative(self):
        def tally(width, *counts):
            t = SplitTally()
            t.record(width, *counts)
            return t

        parts = [
            tally(4, 10, 2, 4, 5, 7),
            tally(4, 3, 0, 0, 1, 1),
            tally(8, 6, 1, 1, 0, 0),
        ]
        forward = SplitTally()
        for part in parts:
            forward += part
        backward = SplitTally()
        for part in reversed(parts):
            backward.merge(part)
        assert forward.freeze() == backward.freeze()
        assert forward.freeze().prefixes == 19

    def test_jobs_without_code_ref_raises(self):
        estimator = MuseSplittingEstimator(toy_16_7(), k_symbols=3)
        with pytest.raises(ValueError, match="code_ref"):
            estimator.run(trials=1_000, seed=1, jobs=2)


class TestValidation:
    def test_k_must_leave_a_prefix(self):
        from repro.orchestrate.corruption import muse_split_chunk
        from repro.orchestrate.plan import Chunk

        with pytest.raises(ValueError, match="k_symbols"):
            muse_split_chunk(toy_16_7(), Chunk(0, 8), key=1, k_symbols=1)

    def test_unknown_metric_rejected(self, toy_split):
        with pytest.raises(ValueError, match="metric"):
            toy_split.rate("msed")

    def test_stratum_merge(self):
        left = StratumTally(1, 2, 4, 3, 9)
        left.merge(StratumTally(1, 1, 1, 1, 1))
        assert left == StratumTally(2, 3, 5, 4, 10)

    def test_without_numpy_raises_backend_unavailable(self, monkeypatch):
        """Regression: a numpy-free host must get the typed error, not
        a raw ModuleNotFoundError from a late import."""
        from repro.engine.base import BackendUnavailableError
        from repro.reliability.sampling import splitting

        monkeypatch.setattr(splitting, "np", None)
        with pytest.raises(BackendUnavailableError, match="numpy"):
            MuseSplittingEstimator(toy_16_7(), k_symbols=3).run(
                trials=10, seed=1
            )
        with pytest.raises(BackendUnavailableError, match="numpy"):
            RsSplittingEstimator(rs_design_point(6)).run(trials=10, seed=1)
