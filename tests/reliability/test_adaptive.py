"""Sequential-stopping tests: the adaptive sampler's headline contracts.

* **prefix property** — an adaptive run at a fixed seed ends with a
  tally byte-identical to a fixed-trial run of ``trials_used`` trials
  at that seed (the rounds literally extend the same counter-hashed
  stream);
* **stopping behaviour** — easy cells (common target events) converge
  below the ceiling, hard cells (rare target events) run to it;
* **execution-shape invariance** — ``jobs > 1`` folds identically to
  ``jobs = 1``, across chunk sizes and decode backends, including the
  stopping decision itself (``trials_used``).
"""

import itertools

import pytest

from repro.core.codes import muse_80_69
from repro.engine import available_backends
from repro.orchestrate.worker import CodeRef
from repro.reliability.monte_carlo import (
    MuseMsedSimulator,
    RsMsedSimulator,
    build_table_iv,
)
from repro.reliability.sampling.sequential import (
    AdaptivePolicy,
    AdaptiveRunner,
    policy_from_cli,
)
from repro.rs.reed_solomon import rs_144_128

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

requires_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")


def _muse(backend="auto"):
    return MuseMsedSimulator(
        muse_80_69(),
        backend=backend,
        code_ref=CodeRef("repro.core.codes:muse_80_69"),
    )


def _rs(backend="auto"):
    return RsMsedSimulator(
        rs_144_128(),
        backend=backend,
        code_ref=CodeRef("repro.rs.reed_solomon:rs_144_128"),
    )


#: Easy: MUSE(80,69)'s failure rate is ~15%, so a 30%-relative CI needs
#: only a few hundred trials.  Hard: its *silent* rate is ~0, so no
#: relative tolerance is ever met and the run must hit the ceiling.
EASY = AdaptivePolicy(
    ci_target=0.3, metric="failure", initial_trials=200, max_trials=4_000
)
HARD = AdaptivePolicy(
    ci_target=0.1, metric="silent", initial_trials=200, max_trials=1_500
)


class TestPolicy:
    def test_schedule_is_deterministic_and_hits_ceiling(self):
        policy = AdaptivePolicy(initial_trials=100, growth=2.0, max_trials=900)
        assert list(policy.schedule()) == [100, 201, 403, 807, 900]

    def test_schedule_single_round_when_ceiling_below_initial(self):
        policy = AdaptivePolicy(initial_trials=500, max_trials=300)
        assert list(policy.schedule()) == [300]

    def test_schedule_is_chunking_independent_input(self):
        """The looks depend on the policy alone — ten values are the
        same whether consumed eagerly or lazily."""
        policy = AdaptivePolicy(initial_trials=7, growth=1.5, max_trials=10**7)
        eager = list(itertools.islice(policy.schedule(), 10))
        lazy = [n for _, n in zip(range(10), policy.schedule())]
        assert eager == lazy
        assert all(a < b for a, b in zip(eager, eager[1:]))

    def test_validation(self):
        with pytest.raises(ValueError, match="growth"):
            AdaptivePolicy(growth=1.0)
        with pytest.raises(ValueError, match="metric"):
            AdaptivePolicy(metric="typo")
        with pytest.raises(ValueError, match="kind"):
            AdaptivePolicy(kind="wald")
        with pytest.raises(ValueError, match="ci_target"):
            AdaptivePolicy(ci_target=-0.1)
        with pytest.raises(ValueError, match="initial_trials"):
            AdaptivePolicy(initial_trials=0)

    def test_zero_tolerances_never_satisfied(self):
        policy = AdaptivePolicy(ci_target=0.0, ci_abs=0.0)
        result = _muse().run(400, seed=1)
        assert not policy.satisfied(result)

    def test_absolute_tolerance_alone_satisfies(self):
        policy = AdaptivePolicy(ci_target=0.0, ci_abs=0.5, metric="failure")
        assert policy.satisfied(_muse().run(400, seed=1))

    def test_policy_from_cli_overrides(self):
        policy = policy_from_cli(0.2, 5000)
        assert policy.ci_target == 0.2
        assert policy.max_trials == 5000
        assert policy.metric == AdaptivePolicy().metric
        assert policy_from_cli(None, None) == AdaptivePolicy()


class TestStopping:
    def test_easy_cell_stops_under_ceiling(self):
        outcome = AdaptiveRunner(EASY).run_one(_muse(), seed=2022)
        assert outcome.converged
        assert outcome.trials_used < EASY.max_trials
        assert EASY.satisfied(outcome.result)
        assert outcome.rounds >= 1

    def test_hard_cell_hits_ceiling(self):
        outcome = AdaptiveRunner(HARD).run_one(_muse(), seed=2022)
        assert not outcome.converged
        assert outcome.trials_used == HARD.max_trials

    def test_trials_used_lands_on_a_schedule_boundary(self):
        outcome = AdaptiveRunner(EASY).run_one(_muse(), seed=2022)
        assert outcome.trials_used in list(EASY.schedule())

    def test_describe_mentions_exit(self):
        easy = AdaptiveRunner(EASY).run_one(_muse(), seed=2022)
        hard = AdaptiveRunner(HARD).run_one(_muse(), seed=2022)
        assert "converged" in easy.describe()
        assert "ceiling" in hard.describe()

    def test_design_points_stop_independently(self):
        """A grid run spends less on the easy point than the hard one."""
        policy = AdaptivePolicy(
            ci_target=0.25, metric="failure", initial_trials=200,
            max_trials=6_000,
        )
        # rs_144_128 failure ~0.6% needs far more trials than
        # muse_80_69's ~15% at the same relative tolerance.
        outcomes = AdaptiveRunner(policy).run([_muse(), _rs()], seed=2022)
        assert outcomes[0].trials_used < outcomes[1].trials_used


class TestPrefixProperty:
    """Satellite: adaptive reproduces the fixed-trial tally prefix."""

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("make", (_muse, _rs), ids=("muse", "rs"))
    def test_adaptive_tally_is_fixed_run_prefix(self, make, backend):
        simulator = make(backend)
        outcome = AdaptiveRunner(EASY).run_one(simulator, seed=5)
        fixed = simulator.run(outcome.trials_used, seed=5)
        assert outcome.result == fixed  # byte-for-byte, every bucket

    def test_every_round_boundary_is_a_prefix(self):
        """Not just the final tally: stopping one round earlier (via a
        lower ceiling) yields that round's fixed-trial tally too."""
        simulator = _muse()
        schedule = list(EASY.schedule())
        for ceiling in schedule[:3]:
            policy = AdaptivePolicy(
                ci_target=0.0,  # never converge: run to the ceiling
                metric="failure",
                initial_trials=EASY.initial_trials,
                max_trials=ceiling,
            )
            outcome = AdaptiveRunner(policy).run_one(simulator, seed=5)
            assert outcome.trials_used == ceiling
            assert outcome.result == simulator.run(ceiling, seed=5)


class TestExecutionShapeInvariance:
    """Satellite: jobs>1 folds identically to jobs=1, across chunk
    sizes and backends — including the stopping decision."""

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("make", (_muse, _rs), ids=("muse", "rs"))
    def test_jobs_and_chunking_invariant(self, make, backend):
        simulator = make(backend)
        runner = AdaptiveRunner(EASY)
        baseline = runner.run_one(simulator, seed=7)
        for jobs, chunk_size in ((1, 64), (1, 333), (2, 128), (2, None)):
            outcome = runner.run_one(
                simulator, seed=7, jobs=jobs, chunk_size=chunk_size
            )
            assert outcome == baseline, (
                f"adaptive outcome diverged at jobs={jobs} "
                f"chunk_size={chunk_size} backend={backend}"
            )

    def test_backends_agree_on_stopping_decision(self):
        backends = available_backends()
        if "numpy" not in backends or "scalar" not in backends:
            pytest.skip("needs both backends")
        outcomes = {
            backend: AdaptiveRunner(EASY).run_one(_muse(backend), seed=11)
            for backend in ("scalar", "numpy")
        }
        assert outcomes["scalar"].result == outcomes["numpy"].result
        assert (
            outcomes["scalar"].trials_used == outcomes["numpy"].trials_used
        )


class TestTableIVAdaptive:
    @requires_numpy
    def test_build_table_iv_adaptive_attaches_outcomes(self):
        policy = AdaptivePolicy(
            ci_target=0.5, metric="failure", initial_trials=150,
            max_trials=600,
        )
        table = build_table_iv(seed=3, adaptive=policy)
        assert len(table.points) == 10
        for point in table.points:
            assert point.sampling is not None
            assert point.sampling.policy == policy
            assert point.result.trials <= policy.max_trials
            assert point.result == point.sampling.result

    @requires_numpy
    def test_build_table_iv_adaptive_jobs_invariant(self):
        policy = AdaptivePolicy(
            ci_target=0.5, metric="failure", initial_trials=150,
            max_trials=450,
        )
        serial = build_table_iv(seed=3, adaptive=policy)
        sharded = build_table_iv(
            seed=3, adaptive=policy, jobs=2, chunk_size=100
        )
        assert [p.result for p in sharded.points] == [
            p.result for p in serial.points
        ]
        assert [p.sampling for p in sharded.points] == [
            p.sampling for p in serial.points
        ]
