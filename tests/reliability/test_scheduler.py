"""Campaign-scheduler tests: fleet-wide budget allocation contracts.

* **pure allocator** — priorities, 1/sqrt(n) projections, doubling
  caps, and greedy budget draining are a pure function of the folded
  tallies (unit-tested on hand-built views, no simulation);
* **execution-shape invariance** — a campaign's per-point
  ``trials_used`` and tallies are byte-identical across
  ``(chunk_size, jobs, workers)`` and backends at a fixed seed,
  including through a 2-worker loopback :class:`DistributedSession`;
* **budget** — a campaign-wide ``trial_budget`` is honoured exactly
  and reported as "budget exhausted" on the points it starves;
* **escalation** — a zero-event point hands off to the importance
  splitting estimator instead of burning plain trials to the ceiling;
* **result cache** — a warm re-run folds every cell from disk with
  zero new trials and byte-identical outcomes.
"""

import pytest

from repro.core.codes import muse_80_69
from repro.engine import available_backends
from repro.orchestrate.worker import CodeRef
from repro.reliability.metrics import MsedTally
from repro.reliability.monte_carlo import (
    MuseMsedSimulator,
    RsMsedSimulator,
    run_design_points_adaptive,
)
from repro.reliability.sampling.scheduler import (
    CampaignPolicy,
    CampaignRunner,
    CampaignScheduler,
    PointView,
)
from repro.reliability.sampling.sequential import AdaptivePolicy
from repro.rs.reed_solomon import rs_144_128

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

requires_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")


def _muse(backend="auto"):
    return MuseMsedSimulator(
        muse_80_69(),
        backend=backend,
        code_ref=CodeRef("repro.core.codes:muse_80_69"),
    )


def _rs(backend="auto"):
    return RsMsedSimulator(
        rs_144_128(),
        backend=backend,
        code_ref=CodeRef("repro.rs.reed_solomon:rs_144_128"),
    )


#: muse_80_69's failure rate is ~15% — a loose relative CI converges in
#: a few hundred trials; rs_144_128's ~0.6% takes noticeably more, so a
#: two-point campaign exercises real priority contrast.
EASY = AdaptivePolicy(
    ci_target=0.3, metric="failure", initial_trials=200, max_trials=4_000
)


def _view(counts: int, trials: int) -> PointView:
    """A point that has seen ``counts`` failure events in ``trials``."""
    tally = MsedTally()
    tally.record_counts(
        miscorrected=counts, detected_no_match=trials - counts
    )
    return PointView(trials=trials, result=tally.freeze())


class TestCampaignPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="trial_budget"):
            CampaignPolicy(trial_budget=0)
        with pytest.raises(ValueError, match="escalate_after"):
            CampaignPolicy(escalate_after=0)
        with pytest.raises(ValueError, match="escalation_trials"):
            CampaignPolicy(escalation_trials=0)
        with pytest.raises(ValueError, match="safety"):
            CampaignPolicy(safety=0.9)

    def test_defaults_wrap_base_policy(self):
        policy = CampaignPolicy(base=EASY)
        assert policy.base == EASY
        assert policy.trial_budget is None
        assert policy.escalate_after is None


class TestScheduler:
    """The allocator is a pure function of the folded tallies."""

    def setup_method(self):
        self.scheduler = CampaignScheduler(CampaignPolicy(base=EASY))

    def test_unexplored_point_bootstraps_at_initial_trials(self):
        view = PointView(trials=0, result=None)
        assert self.scheduler.priority(view) == float("inf")
        assert self.scheduler.desired_total(view) == EASY.initial_trials

    def test_satisfied_point_requests_nothing(self):
        # 3000 events in 20000 trials: half-width ~0.005 << 0.3*0.15.
        view = _view(3000, 20_000)
        assert self.scheduler.desired_total(view) == view.trials
        assert self.scheduler.allocate([view]) == []

    def test_priority_orders_hungrier_points_first(self):
        hungry = _view(3, 200)  # wide CI relative to its tiny rate
        nearly = _view(20, 300)  # unsatisfied, but much closer
        allocations = self.scheduler.allocate([nearly, hungry])
        assert [alloc.index for alloc in allocations] == [1, 0]
        assert allocations[0].priority > allocations[1].priority

    def test_round_grant_never_more_than_doubles(self):
        view = _view(1, 1_000)  # projection wants far more than 2x
        (alloc,) = self.scheduler.allocate([view])
        assert alloc.trials <= max(EASY.initial_trials, view.trials)

    def test_ceiling_caps_projection(self):
        view = _view(1, 3_900)  # wants more, but max_trials = 4000
        assert self.scheduler.desired_total(view) <= EASY.max_trials
        (alloc,) = self.scheduler.allocate([view])
        assert view.trials + alloc.trials <= EASY.max_trials

    def test_inactive_points_are_skipped(self):
        view = PointView(trials=0, result=None, active=False)
        assert self.scheduler.allocate([view]) == []

    def test_budget_drains_greedily_and_truncates_last_grant(self):
        views = [PointView(trials=0, result=None) for _ in range(3)]
        allocations = self.scheduler.allocate(views, budget_left=450)
        assert sum(alloc.trials for alloc in allocations) == 450
        # initial_trials=200 each: full, full, truncated to 50, by index
        assert [alloc.trials for alloc in allocations] == [200, 200, 50]
        assert [alloc.index for alloc in allocations] == [0, 1, 2]

    def test_zero_budget_allocates_nothing(self):
        views = [PointView(trials=0, result=None)]
        assert self.scheduler.allocate(views, budget_left=0) == []

    def test_allocation_is_deterministic(self):
        views = [_view(3, 200), _view(300, 2_000), PointView(0, None)]
        first = self.scheduler.allocate(views, budget_left=1_000)
        second = self.scheduler.allocate(views, budget_left=1_000)
        assert first == second


class TestExecutionShapeInvariance:
    """Tentpole contract: allocation is a pure function of folds, so
    ``trials_used`` and tallies match across every execution shape."""

    def test_jobs_and_chunking_invariant(self):
        runner = CampaignRunner(CampaignPolicy(base=EASY))
        simulators = [_muse(), _rs()]
        baseline = runner.run(simulators, seed=7)
        for jobs, chunk_size in ((1, 64), (1, 333), (2, 128), (2, None)):
            outcomes = runner.run(
                simulators, seed=7, jobs=jobs, chunk_size=chunk_size
            )
            assert outcomes == baseline, (
                f"campaign diverged at jobs={jobs} chunk_size={chunk_size}"
            )

    @pytest.mark.parametrize("backend", available_backends())
    def test_backends_agree(self, backend):
        runner = CampaignRunner(CampaignPolicy(base=EASY))
        auto = runner.run([_muse(), _rs()], seed=9)
        explicit = runner.run([_muse(backend), _rs(backend)], seed=9)
        assert [o.result for o in explicit] == [o.result for o in auto]
        assert [o.trials_used for o in explicit] == [
            o.trials_used for o in auto
        ]

    def test_two_worker_loopback_matches_in_process(self):
        from repro.distribute import DistributedSession

        policy = CampaignPolicy(base=EASY)
        serial = CampaignRunner(policy).run([_muse(), _rs()], seed=7)
        with DistributedSession(local_workers=2) as session:
            distributed = CampaignRunner(policy).run(
                [_muse(), _rs()], seed=7, chunk_size=500, executor=session
            )
        assert distributed == serial


class TestBudget:
    def test_budget_is_honoured_exactly_when_it_starves_the_sweep(self):
        policy = CampaignPolicy(base=EASY, trial_budget=500)
        outcomes = CampaignRunner(policy).run([_muse(), _rs()], seed=7)
        assert sum(o.trials_used for o in outcomes) == 500
        starved = [o for o in outcomes if not o.converged]
        assert starved
        for outcome in starved:
            assert outcome.trials_used < outcome.policy.max_trials
            assert "budget exhausted" in outcome.describe()

    def test_ample_budget_changes_nothing(self):
        unbounded = CampaignRunner(CampaignPolicy(base=EASY)).run(
            [_muse(), _rs()], seed=7
        )
        spent = sum(o.trials_used for o in unbounded)
        bounded = CampaignRunner(
            CampaignPolicy(base=EASY, trial_budget=spent)
        ).run([_muse(), _rs()], seed=7)
        assert [o.result for o in bounded] == [o.result for o in unbounded]
        assert [o.converged for o in bounded] == [
            o.converged for o in unbounded
        ]

    def test_trial_budget_kwarg_threads_through_runner_api(self):
        outcomes = run_design_points_adaptive(
            [_muse(), _rs()], EASY, seed=7, trial_budget=500
        )
        assert sum(o.trials_used for o in outcomes) == 500


class TestEscalation:
    #: muse_80_69's *silent* rate is ~0: the plain stream sees no
    #: events, so without escalation this policy runs to the ceiling.
    ZERO_EVENT = AdaptivePolicy(
        ci_target=0.1, metric="silent", initial_trials=200, max_trials=4_000
    )

    def test_zero_event_point_escalates_instead_of_burning_trials(self):
        policy = CampaignPolicy(
            base=self.ZERO_EVENT, escalate_after=400, escalation_trials=200
        )
        (outcome,) = CampaignRunner(policy).run([_muse()], seed=7)
        assert outcome.escalated
        assert not outcome.converged
        assert outcome.trials_used < self.ZERO_EVENT.max_trials
        assert "importance splitting" in outcome.describe()

    @requires_numpy
    def test_escalated_point_carries_a_splitting_tail_bound(self):
        policy = CampaignPolicy(
            base=self.ZERO_EVENT, escalate_after=400, escalation_trials=400
        )
        (outcome,) = CampaignRunner(policy).run([_muse()], seed=7)
        assert outcome.tail_bound is not None
        assert outcome.tail_bound.prefixes > 0

    def test_without_escalation_the_point_runs_to_the_ceiling(self):
        policy = CampaignPolicy(base=self.ZERO_EVENT)
        (outcome,) = CampaignRunner(policy).run([_muse()], seed=7)
        assert not outcome.escalated
        assert outcome.trials_used == self.ZERO_EVENT.max_trials


class TestResultCache:
    def test_warm_rerun_executes_zero_new_trials(self, tmp_path):
        from repro.distribute import ResultCache

        simulators = [_muse(), _rs()]
        cold = run_design_points_adaptive(
            simulators, EASY, seed=7, cache_dir=str(tmp_path)
        )
        assert all(o.trials_cached == 0 for o in cold)

        warm = run_design_points_adaptive(
            simulators, EASY, seed=7, cache_dir=str(tmp_path)
        )
        assert [o.result for o in warm] == [o.result for o in cold]
        assert [o.trials_used for o in warm] == [
            o.trials_used for o in cold
        ]
        for outcome in warm:
            assert outcome.trials_cached == outcome.trials_used

        # And the cache itself confirms: the warm run recorded nothing.
        probe = ResultCache(tmp_path)
        runner = CampaignRunner(CampaignPolicy(base=EASY), cache=probe)
        runner.run(simulators, seed=7)
        assert probe.trials_recorded == 0
        assert probe.hits > 0 and probe.misses == 0

    def test_cache_hit_equals_recompute(self, tmp_path):
        baseline = run_design_points_adaptive([_muse()], EASY, seed=7)
        run_design_points_adaptive(
            [_muse()], EASY, seed=7, cache_dir=str(tmp_path)
        )
        cached = run_design_points_adaptive(
            [_muse()], EASY, seed=7, cache_dir=str(tmp_path)
        )
        assert [o.result for o in cached] == [o.result for o in baseline]

    def test_budget_counts_cached_trials(self, tmp_path):
        """Allocation must not depend on cache state: a warm run under
        the same budget makes the same grants (served from disk)."""
        policy = CampaignPolicy(base=EASY, trial_budget=500)
        cold = CampaignRunner(
            policy, cache=_fresh_cache(tmp_path)
        ).run([_muse(), _rs()], seed=7)
        warm = CampaignRunner(
            policy, cache=_fresh_cache(tmp_path)
        ).run([_muse(), _rs()], seed=7)
        assert [o.result for o in warm] == [o.result for o in cold]
        assert sum(o.trials_used for o in warm) == 500
        assert sum(o.trials_cached for o in warm) == 500

    def test_cache_survives_chunk_size_changes_via_allocation_history(
        self, tmp_path
    ):
        """Chunk boundaries derive from the allocation history, which
        is chunk_size-independent only at the default — a different
        chunk_size re-plans boundaries but must still agree on
        results (misses just recompute)."""
        cold = run_design_points_adaptive(
            [_muse()], EASY, seed=7, cache_dir=str(tmp_path)
        )
        other = run_design_points_adaptive(
            [_muse()], EASY, seed=7, chunk_size=77, cache_dir=str(tmp_path)
        )
        assert [o.result for o in other] == [o.result for o in cold]

    def test_torn_cache_tail_keeps_valid_prefix(self, tmp_path):
        from repro.distribute import ResultCache

        run_design_points_adaptive(
            [_muse()], EASY, seed=7, cache_dir=str(tmp_path)
        )
        (cell,) = tmp_path.glob("*.jsonl")
        cell.write_bytes(cell.read_bytes()[:-7])  # tear the last record
        probe = ResultCache(tmp_path)
        outcomes = run_design_points_adaptive(
            [_muse()], EASY, seed=7, cache_dir=str(tmp_path)
        )
        baseline = run_design_points_adaptive([_muse()], EASY, seed=7)
        assert [o.result for o in outcomes] == [
            o.result for o in baseline
        ]
        del probe

    def test_foreign_cell_file_is_left_alone(self, tmp_path):
        from repro.distribute import ResultCache

        run_design_points_adaptive(
            [_muse()], EASY, seed=7, cache_dir=str(tmp_path)
        )
        (cell,) = tmp_path.glob("*.jsonl")
        cell.write_bytes(b'{"something": "else"}\n')
        probe = ResultCache(tmp_path)
        outcomes = run_design_points_adaptive(
            [_muse()], EASY, seed=7, cache_dir=str(tmp_path)
        )
        baseline = run_design_points_adaptive([_muse()], EASY, seed=7)
        assert [o.result for o in outcomes] == [
            o.result for o in baseline
        ]
        # The foreign bytes were never appended onto.
        assert cell.read_bytes() == b'{"something": "else"}\n'
        del probe


def _fresh_cache(tmp_path):
    from repro.distribute import ResultCache

    return ResultCache(tmp_path)


class TestCampaignOutcome:
    def test_duck_types_adaptive_outcome(self):
        (outcome,) = CampaignRunner(CampaignPolicy(base=EASY)).run(
            [_muse()], seed=7
        )
        assert outcome.policy == EASY
        assert outcome.trials_used == outcome.result.trials
        assert outcome.interval() == EASY.interval_of(outcome.result)
        assert "converged" in outcome.describe()

    def test_describe_mentions_cached_trials(self, tmp_path):
        run_design_points_adaptive(
            [_muse()], EASY, seed=7, cache_dir=str(tmp_path)
        )
        (warm,) = run_design_points_adaptive(
            [_muse()], EASY, seed=7, cache_dir=str(tmp_path)
        )
        assert "cached" in warm.describe()
