"""Monte-Carlo MSED simulator tests, including Table IV shape anchors."""

import pytest

from repro.core.codes import muse_80_69, muse_144_132
from repro.reliability.monte_carlo import (
    MuseMsedSimulator,
    RsMsedSimulator,
    build_table_iv,
    largest_144_multiplier,
    muse_design_point,
    rs_design_point,
)
from repro.rs.reed_solomon import rs_144_128


class TestMuseSimulator:
    def test_deterministic_under_seed(self):
        simulator = MuseMsedSimulator(muse_80_69())
        first = simulator.run(trials=500, seed=7)
        second = simulator.run(trials=500, seed=7)
        assert first == second

    def test_backends_produce_identical_tallies(self):
        """Same (trials, seed) -> byte-identical MsedResult on both
        backends: generation is shared, only the decoder differs."""
        from repro.engine import available_backends

        if "numpy" not in available_backends():
            pytest.skip("numpy backend unavailable")
        for code in (muse_80_69(), muse_144_132()):
            for ripple in (True, False):
                scalar = MuseMsedSimulator(
                    code, ripple_check=ripple, backend="scalar"
                ).run(trials=1200, seed=2022)
                vector = MuseMsedSimulator(
                    code, ripple_check=ripple, backend="numpy"
                ).run(trials=1200, seed=2022)
                assert scalar == vector

    def test_sequential_fallback_matches_buckets_invariant(self):
        """The numpy-free path still partitions every trial."""
        simulator = MuseMsedSimulator(muse_80_69())
        result = simulator._run_sequential(trials=400, seed=3)
        assert (
            result.detected + result.miscorrected + result.silent == result.trials
        )

    def test_buckets_partition_trials(self):
        result = MuseMsedSimulator(muse_80_69()).run(trials=800, seed=1)
        assert (
            result.detected + result.miscorrected + result.silent == result.trials
        )

    def test_muse_144_132_msed_near_paper_value(self):
        """Paper: 86.71% for MUSE(144,132); allow Monte-Carlo noise."""
        result = MuseMsedSimulator(muse_144_132()).run(trials=4000, seed=3)
        assert 83.0 < result.msed_percent < 91.0

    def test_muse_80_69_msed_near_paper_value(self):
        """Paper: 85.03% for MUSE(80,69)."""
        result = MuseMsedSimulator(muse_80_69()).run(trials=4000, seed=3)
        assert 81.0 < result.msed_percent < 89.0

    def test_ripple_check_improves_detection(self):
        """The Figure-4 overflow detector contributes real coverage."""
        code = muse_144_132()
        with_ripple = MuseMsedSimulator(code, ripple_check=True).run(2000, seed=5)
        without = MuseMsedSimulator(code, ripple_check=False).run(2000, seed=5)
        assert with_ripple.msed_rate > without.msed_rate

    def test_three_symbol_errors_supported(self):
        result = MuseMsedSimulator(muse_80_69(), k_symbols=3).run(500, seed=9)
        assert result.trials == 500


class TestRsSimulator:
    def test_buckets_partition_trials(self):
        result = RsMsedSimulator(rs_144_128()).run(trials=800, seed=1)
        assert (
            result.detected + result.miscorrected + result.silent == result.trials
        )

    def test_rs_144_128_msed_near_paper_value(self):
        """Paper: 99.36% for RS(144,128) (with device-confined policy)."""
        result = RsMsedSimulator(rs_144_128()).run(trials=4000, seed=3)
        assert 97.5 < result.msed_percent <= 100.0

    def test_device_policy_ablation(self):
        """Without the device-confinement reject, MSED drops sharply."""
        strict = RsMsedSimulator(rs_144_128(), device_bits=4).run(2000, seed=5)
        loose = RsMsedSimulator(rs_144_128(), device_bits=None).run(2000, seed=5)
        assert strict.msed_rate > loose.msed_rate
        # The loose decoder's miss rate is roughly the locator-validity
        # fraction n/2^b = 18/256 ~= 7%.
        assert 0.02 < loose.miscorrection_rate < 0.15


class TestDesignPoints:
    def test_muse_extra_bits_mapping(self):
        assert muse_design_point(0).m == 65519
        assert muse_design_point(4).m == 4065
        assert muse_design_point(5).name == "MUSE(80,69)"
        with pytest.raises(ValueError):
            muse_design_point(6)

    def test_rs_extra_bits_mapping(self):
        assert rs_design_point(0).symbol_bits == 8
        assert rs_design_point(6).symbol_bits == 5
        with pytest.raises(ValueError):
            rs_design_point(1)
        with pytest.raises(ValueError):
            rs_design_point(8)

    def test_largest_multipliers_have_right_width(self):
        for r in (12, 13, 14, 15, 16):
            assert largest_144_multiplier(r).bit_length() == r


class TestTableIVShape:
    """The qualitative claims of Table IV, asserted on a real run."""

    @pytest.fixture(scope="class")
    def table(self):
        return build_table_iv(trials=2500, seed=11)

    def test_muse_has_all_six_points(self, table):
        assert set(table.row("MUSE")) == {0, 1, 2, 3, 4, 5}

    def test_rs_has_even_points_only(self, table):
        assert set(table.row("RS")) == {0, 2, 4, 6}

    def test_muse_msed_degrades_monotonically_with_extra_bits(self, table):
        row = table.row("MUSE")
        rates = [row[e].result.msed_rate for e in range(5)]  # 144-bit points
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_rs_loses_chipkill_beyond_zero_extra_bits(self, table):
        row = table.row("RS")
        assert row[0].chipkill
        assert not row[2].chipkill
        assert not row[4].chipkill
        assert not row[6].chipkill

    def test_rs_collapses_at_six_extra_bits(self, table):
        """The paper's headline RS failure: ~54% MSED at 5-bit symbols."""
        row = table.row("RS")
        assert row[6].result.msed_percent < 75.0

    def test_muse_beats_rs_at_four_extra_bits(self, table):
        """At 4 extra bits: MUSE 86.71% (ChipKill) vs RS 86.79% (no
        ChipKill) in the paper — comparable rates, but only MUSE keeps
        the guarantee. We assert the guarantee difference and that the
        rates are within a few points."""
        muse = table.row("MUSE")[4]
        rs = table.row("RS")[4]
        assert muse.chipkill and not rs.chipkill
        assert abs(muse.result.msed_rate - rs.result.msed_rate) < 0.12

    def test_render_includes_both_families(self, table):
        text = table.render()
        assert "MUSE" in text and "RS" in text
