"""Closed-form MSED tests — the exact-match reproduction of Table IV."""

import pytest

from repro.core.codes import muse_80_69, muse_144_132
from repro.reliability.analytic import (
    AnalyticMsed,
    predict,
    predict_table_iv_muse_row,
)
from repro.reliability.monte_carlo import MuseMsedSimulator

PAPER_MUSE_ROW = {0: 99.17, 1: 98.35, 2: 96.70, 3: 93.39, 4: 86.71, 5: 85.03}


class TestClosedForm:
    def test_predicts_paper_table_iv_row_to_published_precision(self):
        """1 - R/(2(m-1)) matches every published MUSE MSED value to
        within rounding of the paper's two decimal places."""
        predicted = predict_table_iv_muse_row()
        for extra_bits, paper_value in PAPER_MUSE_ROW.items():
            assert predicted[extra_bits] == pytest.approx(paper_value, abs=0.011), (
                f"extra={extra_bits}: predicted {predicted[extra_bits]:.3f} "
                f"vs paper {paper_value}"
            )

    def test_monte_carlo_agrees_with_closed_form(self):
        """The simulator and the formula measure the same mechanism."""
        code = muse_144_132()
        analytic = predict(code)
        measured = MuseMsedSimulator(code).run(trials=6000, seed=9)
        assert measured.msed_percent == pytest.approx(
            analytic.msed_percent, abs=1.5
        )

    def test_ripple_ablation_prediction(self):
        code = muse_80_69()
        analytic = predict(code)
        assert analytic.msed_percent_without_ripple < analytic.msed_percent
        measured = MuseMsedSimulator(code, ripple_check=False).run(4000, seed=9)
        assert measured.msed_percent == pytest.approx(
            analytic.msed_percent_without_ripple, abs=2.5
        )

    def test_dataclass_arithmetic(self):
        model = AnalyticMsed(m=101, elc_entries=50, ripple_survival=0.5)
        assert model.miscorrection_rate == pytest.approx(0.25)
        assert model.msed_rate == pytest.approx(0.75)
