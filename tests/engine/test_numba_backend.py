"""The numba MUSE backend and the open backend registry.

The kernels run pure-Python via the :mod:`repro.engine._jit` shim when
numba is absent, so every parity assertion here pins the *kernel logic*
on any host; CI's numba leg runs the identical tests against the
compiled kernels.  Registry semantics (priority order, env-var
disabling, explicit-unavailable errors) are exercised with the real
registry, not a mock.
"""

import numpy as np
import pytest

from repro.core.codes import muse_80_67, muse_80_69, muse_80_70, muse_144_132
from repro.engine import (
    DISABLE_ENV,
    BackendUnavailableError,
    available_backends,
    get_engine,
    msed_corruption_batch,
    numpy_available,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.engine.numba_backend import NUMBA_AVAILABLE, NumbaDecodeEngine
from repro.orchestrate.corruption import muse_corruption_chunk
from repro.orchestrate.plan import Chunk
from repro.orchestrate.rng import derive_key

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable"
)

ALL_CODES = [muse_144_132, muse_80_69, muse_80_67, muse_80_70]
CODE_IDS = ["144_132", "80_69", "80_67_eq5", "80_70_eq6_hybrid"]


class TestRegistrySemantics:
    def test_numba_is_registered(self):
        assert "numba" in registered_backends()

    def test_numba_availability_tracks_import(self):
        assert ("numba" in available_backends()) == (
            NUMBA_AVAILABLE and numpy_available()
        )

    def test_register_rejects_reserved_names(self):
        with pytest.raises(ValueError):
            register_backend("auto", lambda: True, lambda code: None)
        with pytest.raises(ValueError):
            register_backend("", lambda: True, lambda code: None)

    def test_env_var_disables_a_backend(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "numpy,numba,native")
        backends = available_backends()
        assert "numpy" not in backends
        assert "numba" not in backends
        assert "native" not in backends
        assert resolve_backend("auto") == "scalar"

    def test_explicit_disabled_backend_raises(self, monkeypatch):
        """An explicit request must never silently degrade."""
        monkeypatch.setenv(DISABLE_ENV, "numpy")
        with pytest.raises(BackendUnavailableError):
            resolve_backend("numpy")

    def test_unknown_backend_lists_registered(self):
        with pytest.raises(ValueError) as err:
            resolve_backend("tpu")
        assert "scalar" in str(err.value)

    @requires_numpy
    def test_auto_is_the_last_available(self):
        assert resolve_backend("auto") == available_backends()[-1]


@requires_numpy
class TestNumbaDecodeParity:
    """Fallback-or-compiled, the kernels match numpy bit for bit."""

    @pytest.mark.parametrize("factory", ALL_CODES, ids=CODE_IDS)
    def test_corrupted_stream_matches_numpy(self, factory):
        code = factory()
        words = msed_corruption_batch(code, 600, seed=2022, k_symbols=2)
        ref = get_engine(code, "numpy").decode_batch(words)
        jit = NumbaDecodeEngine(code).decode_batch(words)
        assert np.array_equal(ref.statuses, jit.statuses)
        assert ref.counts() == jit.counts()
        assert ref.results() == jit.results()

    @pytest.mark.parametrize("factory", ALL_CODES, ids=CODE_IDS)
    def test_ripple_ablation_matches_numpy(self, factory):
        code = factory()
        words = msed_corruption_batch(code, 400, seed=7, k_symbols=2)
        ref = get_engine(code, "numpy", ripple_check=False).decode_batch(words)
        jit = NumbaDecodeEngine(code, ripple_check=False).decode_batch(words)
        assert np.array_equal(ref.statuses, jit.statuses)
        assert ref.results() == jit.results()

    def test_stream_exercises_every_status(self):
        """The parity stream is only a real pin if all 4 statuses occur,
        including the ripple path and its in-kernel ctz/confinement."""
        # The weakened eq-6 hybrid code miscorrects often enough that a
        # short 2-symbol stream also lands silent-clean aliases.
        code = muse_80_70()
        words = msed_corruption_batch(code, 600, seed=2022, k_symbols=2)
        statuses = set(NumbaDecodeEngine(code).decode_batch(words).statuses)
        assert statuses == {0, 1, 2, 3}

    def test_wrapping_correction_add(self):
        """Corrections whose addend wraps the top limb stay exact."""
        code = muse_144_132()
        engine = NumbaDecodeEngine(code)
        ref = get_engine(code, "numpy")
        # Flip the top bit of words near the wrap boundary: the ELC
        # addend for these remainders carries across all three limbs.
        top = code.n - 1
        words = [code.encode(0) ^ (1 << top), code.encode(1) ^ (1 << top)]
        got = engine.decode_batch(words)
        expect = ref.decode_batch(words)
        assert list(got.statuses) == list(expect.statuses)
        assert got.results() == expect.results()


@requires_numpy
class TestFusedChunkKernel:
    @pytest.mark.parametrize("k_symbols", [1, 2])
    @pytest.mark.parametrize("factory", ALL_CODES, ids=CODE_IDS)
    def test_counts_match_generate_then_decode(self, factory, k_symbols):
        code = factory()
        engine = NumbaDecodeEngine(code)
        key = derive_key(13)
        for chunk in (Chunk(0, 250), Chunk(137, 200)):
            words = muse_corruption_chunk(code, chunk, key, k_symbols)
            expect = get_engine(code, "numpy").decode_batch(words).counts()
            assert engine.fused_chunk_counts(chunk, key, k_symbols) == expect

    def test_ablation_counts_match(self):
        code = muse_80_69()
        engine = NumbaDecodeEngine(code, ripple_check=False)
        key = derive_key(21)
        chunk = Chunk(11, 150)
        words = muse_corruption_chunk(code, chunk, key, 2)
        expect = (
            get_engine(code, "numpy", ripple_check=False)
            .decode_batch(words)
            .counts()
        )
        assert engine.fused_chunk_counts(chunk, key, 2) == expect

    def test_declines_beyond_two_symbols(self):
        """k > 2 is not exactly replayable -> the caller must fall back."""
        code = muse_80_69()
        engine = NumbaDecodeEngine(code)
        assert engine.fused_chunk_counts(Chunk(0, 10), derive_key(1), 3) is None
        assert engine.fused_chunk_counts(Chunk(0, 10), derive_key(1), 0) is None

    def test_chunk_splits_compose(self):
        """Tallies are a pure function of the global trial index."""
        code = muse_80_69()
        engine = NumbaDecodeEngine(code)
        key = derive_key(33)
        whole = engine.fused_chunk_counts(Chunk(0, 300), key, 2)
        parts = [
            engine.fused_chunk_counts(Chunk(0, 110), key, 2),
            engine.fused_chunk_counts(Chunk(110, 90), key, 2),
            engine.fused_chunk_counts(Chunk(200, 100), key, 2),
        ]
        assert tuple(sum(c) for c in zip(*parts)) == whole


@requires_numpy
class TestEngineCache:
    def test_compiled_engine_cached_per_code_and_flavour(self):
        """One compile per (code, ripple_check): chunk loops must reuse
        the JIT engine, not rebuild (and re-warm) it per chunk."""
        code = muse_80_69()
        if "numba" in available_backends():
            first = get_engine(code, "numba")
            assert get_engine(code, "numba") is first
            assert get_engine(code, "numba", ripple_check=False) is not first
        # auto resolves to a concrete name before hitting the cache, so
        # auto and the explicit best backend share one engine.
        best = available_backends()[-1]
        assert get_engine(code, "auto") is get_engine(code, best)

    def test_warmup_is_idempotent(self):
        code = muse_80_69()
        engine = NumbaDecodeEngine(code)
        engine.warmup()
        engine.warmup()
        counts = engine.fused_chunk_counts(Chunk(0, 50), derive_key(2), 2)
        assert sum(counts) == 50
