"""The native (self-compiled C) MUSE backend.

Skipped wholesale on hosts without a working C compiler — the registry
probe is the same gate ``auto`` resolution uses, so skipping here means
the backend can never have been selected either.
"""

import numpy as np
import pytest

from repro.core.codes import muse_80_67, muse_80_69, muse_80_70, muse_144_132
from repro.engine import (
    available_backends,
    get_engine,
    msed_corruption_batch,
    numpy_available,
)
from repro.orchestrate.corruption import muse_corruption_chunk
from repro.orchestrate.plan import Chunk
from repro.orchestrate.rng import derive_key

# Gate on the registry (not the raw compiler probe) so the suite also
# skips when REPRO_DISABLE_BACKENDS hides the backend from `auto`.
pytestmark = pytest.mark.skipif(
    not (numpy_available() and "native" in available_backends()),
    reason="native backend unavailable (no C compiler, or disabled)",
)

ALL_CODES = [muse_144_132, muse_80_69, muse_80_67, muse_80_70]
CODE_IDS = ["144_132", "80_69", "80_67_eq5", "80_70_eq6_hybrid"]


class TestNativeRegistration:
    def test_probe_and_registry_agree(self):
        assert "native" in available_backends()

    def test_native_outranks_numpy_for_auto(self):
        backends = available_backends()
        assert backends.index("native") > backends.index("numpy")

    def test_engine_cached_per_code(self):
        code = muse_80_69()
        assert get_engine(code, "native") is get_engine(code, "native")

    def test_library_compiled_once(self):
        from repro.engine.cc import load_library

        assert load_library() is load_library()


class TestNativeDecodeParity:
    @pytest.mark.parametrize("factory", ALL_CODES, ids=CODE_IDS)
    def test_corrupted_stream_matches_numpy(self, factory):
        code = factory()
        words = msed_corruption_batch(code, 600, seed=2022, k_symbols=2)
        ref = get_engine(code, "numpy").decode_batch(words)
        nat = get_engine(code, "native").decode_batch(words)
        assert np.array_equal(ref.statuses, nat.statuses)
        assert ref.counts() == nat.counts()
        assert ref.results() == nat.results()

    @pytest.mark.parametrize("factory", ALL_CODES, ids=CODE_IDS)
    def test_ripple_ablation_matches_numpy(self, factory):
        code = factory()
        words = msed_corruption_batch(code, 400, seed=7, k_symbols=2)
        ref = get_engine(code, "numpy", ripple_check=False).decode_batch(words)
        nat = get_engine(code, "native", ripple_check=False).decode_batch(words)
        assert np.array_equal(ref.statuses, nat.statuses)
        assert ref.results() == nat.results()


class TestNativeFusedChunk:
    @pytest.mark.parametrize("k_symbols", [1, 2])
    @pytest.mark.parametrize("factory", ALL_CODES, ids=CODE_IDS)
    def test_counts_match_generate_then_decode(self, factory, k_symbols):
        code = factory()
        engine = get_engine(code, "native")
        key = derive_key(13)
        for chunk in (Chunk(0, 250), Chunk(137, 200)):
            words = muse_corruption_chunk(code, chunk, key, k_symbols)
            expect = get_engine(code, "numpy").decode_batch(words).counts()
            assert engine.fused_chunk_counts(chunk, key, k_symbols) == expect

    def test_declines_beyond_two_symbols(self):
        code = muse_80_69()
        engine = get_engine(code, "native")
        assert engine.fused_chunk_counts(Chunk(0, 10), derive_key(1), 3) is None

    def test_matches_numba_kernel_exactly(self):
        """C and the (fallback or JIT) numba kernel are twins."""
        from repro.engine.numba_backend import NumbaDecodeEngine

        code = muse_144_132()
        native = get_engine(code, "native")
        jit = NumbaDecodeEngine(code)
        key = derive_key(99)
        for chunk in (Chunk(0, 300), Chunk(777, 123)):
            assert native.fused_chunk_counts(
                chunk, key, 2
            ) == jit.fused_chunk_counts(chunk, key, 2)
