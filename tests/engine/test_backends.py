"""Cross-backend equivalence: the numpy engine must be bit-exact with
the scalar reference on every code family, layout, and decode flavour."""

import random

import pytest

from repro.core.codec import DecodeStatus, MuseCode
from repro.core.codes import muse_80_67, muse_80_69, muse_80_70, muse_144_132
from repro.engine import (
    BackendUnavailableError,
    available_backends,
    get_engine,
    msed_corruption_batch,
    numpy_available,
    resolve_backend,
)

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable"
)

ALL_CODES = [muse_144_132, muse_80_69, muse_80_67, muse_80_70]
CODE_IDS = ["144_132", "80_69", "80_67_eq5", "80_70_eq6_hybrid"]


class TestRegistry:
    def test_scalar_always_available(self):
        assert "scalar" in available_backends()

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_backend("cuda")

    @requires_numpy
    def test_auto_resolves_highest_priority_available(self):
        """auto picks the fastest available rung of the backend ladder."""
        backends = available_backends()
        assert "numpy" in backends
        assert resolve_backend("auto") == backends[-1]
        # numpy outranks scalar whenever both are present
        assert backends.index("numpy") > backends.index("scalar")

    def test_engines_are_cached_per_code(self):
        code = muse_80_69()
        assert get_engine(code, "scalar") is get_engine(code, "scalar")
        assert get_engine(code, "scalar") is not get_engine(
            code, "scalar", ripple_check=False
        )

    @requires_numpy
    def test_numpy_backend_rejects_oversized_multiplier(self):
        from repro.core.symbols import SymbolLayout
        from repro.engine.numpy_backend import NumpyDecodeEngine

        class FakeCode:
            m = 1 << 40
            n = 80

        with pytest.raises(BackendUnavailableError):
            NumpyDecodeEngine(FakeCode())


@requires_numpy
class TestEncodeEquivalence:
    @pytest.mark.parametrize("factory", ALL_CODES, ids=CODE_IDS)
    def test_encode_batch_matches_scalar(self, factory):
        code = factory()
        rng = random.Random(42)
        data = [0, 1, (1 << code.k) - 1] + [
            rng.randrange(1 << code.k) for _ in range(100)
        ]
        assert code.encode_batch(data, backend="numpy") == [
            code.encode(d) for d in data
        ]

    def test_encode_batch_rejects_oversized_data(self):
        code = muse_80_69()
        with pytest.raises(ValueError):
            code.encode_batch([1 << code.k], backend="numpy")


#: Every non-reference backend this host can run gets the full matrix.
VECTOR_BACKENDS = [b for b in available_backends() if b != "scalar"]


@requires_numpy
class TestDecodeEquivalence:
    @pytest.mark.parametrize("backend", VECTOR_BACKENDS)
    @pytest.mark.parametrize("factory", ALL_CODES, ids=CODE_IDS)
    def test_multi_symbol_stream_full_parity(self, factory, backend):
        """Same corrupted words -> identical per-word DecodeResults."""
        code = factory()
        words = msed_corruption_batch(code, 1500, seed=2022, k_symbols=2)
        scalar = get_engine(code, "scalar").decode_batch(words)
        vector = get_engine(code, backend).decode_batch(words)
        assert list(scalar.statuses) == list(vector.statuses)
        assert scalar.counts() == vector.counts()
        assert scalar.results() == vector.results()

    @pytest.mark.parametrize("backend", VECTOR_BACKENDS)
    @pytest.mark.parametrize("factory", ALL_CODES, ids=CODE_IDS)
    def test_no_ripple_stream_full_parity(self, factory, backend):
        code = factory()
        words = msed_corruption_batch(code, 1000, seed=7, k_symbols=2)
        scalar = get_engine(code, "scalar", ripple_check=False).decode_batch(words)
        vector = get_engine(code, backend, ripple_check=False).decode_batch(words)
        assert scalar.results() == vector.results()

    def test_single_symbol_corruptions_all_corrected(self):
        """The ChipKill guarantee survives the vectorised path."""
        code = muse_144_132()
        rng = random.Random(3)
        originals, corrupted = [], []
        for _ in range(300):
            data = rng.randrange(1 << code.k)
            word = code.encode(data)
            symbol = rng.randrange(code.layout.symbol_count)
            value = code.layout.extract_symbol(word, symbol)
            flip = rng.randrange(1, 16)
            corrupted.append(
                code.layout.insert_symbol(word, symbol, value ^ flip)
            )
            originals.append(data)
        batch = code.decode_batch(corrupted, backend="numpy")
        results = batch.results()
        assert all(r.status is DecodeStatus.CORRECTED for r in results)
        assert [r.data for r in results] == originals

    def test_clean_words_decode_clean(self):
        code = muse_80_67()
        data = list(range(50))
        words = code.encode_batch(data, backend="numpy")
        for backend in ("scalar", "numpy"):
            results = code.decode_batch(words, backend=backend).results()
            assert all(r.status is DecodeStatus.CLEAN for r in results)
            assert [r.data for r in results] == data

    def test_batch_matches_single_word_decode(self):
        """decode_batch agrees with MuseCode.decode word by word."""
        code = muse_80_70()
        rng = random.Random(9)
        words = []
        for _ in range(200):
            word = code.encode(rng.randrange(1 << code.k))
            words.append(word ^ (1 << rng.randrange(code.n)))
        batch = code.decode_batch(words, backend="numpy")
        assert batch.results() == [code.decode(w) for w in words]


@requires_numpy
class TestLimbHelpers:
    def test_int_round_trip(self):
        from repro.engine.limbs import ints_to_limbs, limbs_to_ints

        rng = random.Random(1)
        values = [0, 1, (1 << 144) - 1] + [rng.randrange(1 << 144) for _ in range(64)]
        assert limbs_to_ints(ints_to_limbs(values, 3)) == values

    def test_shifts_and_residue_match_bigint(self):
        from repro.engine.limbs import (
            ints_to_limbs,
            limbs_to_ints,
            lshift,
            residue,
            rshift,
        )

        rng = random.Random(2)
        values = [rng.randrange(1 << 140) for _ in range(64)]
        batch = ints_to_limbs(values, 3)
        assert limbs_to_ints(rshift(batch, 13)) == [v >> 13 for v in values]
        assert limbs_to_ints(lshift(batch, 13)) == [
            (v << 13) & ((1 << 192) - 1) for v in values
        ]
        for m in (3, 821, 4065, 65519):
            assert residue(batch, m).tolist() == [v % m for v in values]

    def test_add_wraps_like_hardware(self):
        from repro.engine.limbs import add, ints_to_limbs, limbs_to_ints

        width = 1 << 128
        pairs = [(width - 1, 1), (width - 1, width - 1), (12345, 67890)]
        a = ints_to_limbs([p[0] for p in pairs], 2)
        b = ints_to_limbs([p[1] for p in pairs], 2)
        assert limbs_to_ints(add(a, b)) == [(x + y) % width for x, y in pairs]

    def test_residue_rejects_wide_multiplier(self):
        from repro.engine.limbs import ints_to_limbs, residue

        with pytest.raises(ValueError):
            residue(ints_to_limbs([1], 2), 1 << 30)


@requires_numpy
class TestSymbolBatchOps:
    """Vectorised extract/insert must mirror SymbolLayout bit for bit."""

    @pytest.mark.parametrize("factory", ALL_CODES, ids=CODE_IDS)
    def test_extract_matches_layout(self, factory):
        from repro.engine.limbs import ints_to_limbs, limb_count
        from repro.engine.numpy_backend import extract_symbol_batch

        code = factory()
        layout = code.layout
        rng = random.Random(5)
        values = [rng.randrange(1 << code.n) for _ in range(40)]
        batch = ints_to_limbs(values, limb_count(code.n))
        for index in range(layout.symbol_count):
            expected = [layout.extract_symbol(v, index) for v in values]
            assert extract_symbol_batch(batch, layout, index).tolist() == expected

    @pytest.mark.parametrize("factory", ALL_CODES, ids=CODE_IDS)
    def test_insert_round_trips(self, factory):
        import numpy as np

        from repro.engine.limbs import ints_to_limbs, limbs_to_ints, limb_count
        from repro.engine.numpy_backend import insert_symbol_batch

        code = factory()
        layout = code.layout
        rng = random.Random(6)
        values = [rng.randrange(1 << code.n) for _ in range(40)]
        batch = ints_to_limbs(values, limb_count(code.n))
        for index in (0, layout.symbol_count - 1):
            width = len(layout.symbols[index])
            new = np.array(
                [rng.randrange(1 << width) for _ in values], dtype=np.uint64
            )
            copy = batch.copy()
            insert_symbol_batch(copy, layout, index, new)
            expected = [
                layout.insert_symbol(v, index, int(n)) for v, n in zip(values, new)
            ]
            assert limbs_to_ints(copy) == expected


class TestTrialGeneration:
    @requires_numpy
    def test_deterministic_under_seed(self):
        import numpy as np

        code = muse_80_69()
        first = msed_corruption_batch(code, 500, seed=11)
        second = msed_corruption_batch(code, 500, seed=11)
        assert np.array_equal(first, second)

    @requires_numpy
    def test_every_word_has_exactly_k_corrupted_symbols(self):
        """Recover the clean words from the shared counter-hashed data
        stream, then diff symbols against the corrupted batch."""
        from repro.engine.limbs import limbs_to_ints
        from repro.orchestrate import Chunk, derive_key
        from repro.orchestrate.corruption import muse_clean_chunk

        code = muse_80_69()
        layout = code.layout
        for k in (1, 2, 3):
            seed = 40 + k
            clean = limbs_to_ints(
                muse_clean_chunk(code, Chunk(0, 200), derive_key(seed))
            )
            corrupted = limbs_to_ints(
                msed_corruption_batch(code, 200, seed=seed, k_symbols=k)
            )
            for before, after in zip(clean, corrupted):
                differing = sum(
                    layout.extract_symbol(before, i)
                    != layout.extract_symbol(after, i)
                    for i in range(layout.symbol_count)
                )
                assert differing == k

    @requires_numpy
    def test_k_symbols_bounds_checked(self):
        code = muse_80_69()
        with pytest.raises(ValueError):
            msed_corruption_batch(code, 10, seed=1, k_symbols=0)
        with pytest.raises(ValueError):
            msed_corruption_batch(
                code, 10, seed=1, k_symbols=code.layout.symbol_count + 1
            )
