#!/usr/bin/env python3
"""Memory tagging in MUSE spare bits: MTE semantics for free.

The paper's Section VII-D co-design: MUSE(80,69) carries a 64-bit word
plus 5 spare bits, enough for an ARM-MTE-style 4-bit allocation tag —
no extra DRAM traffic, and the tag is ECC-protected together with the
data.  This demo shows:

1. heap coloring and a tag-checked store/load;
2. a use-after-free caught by retagging on free;
3. a DRAM chip failure that corrupts data *and* tag — both recovered
   by one MUSE correction, with no spurious tag fault.

Run:  python examples/memory_tagging.py
"""

from repro.security.mte import MuseTaggedMemory, TagMismatchError, pointer_tag


def main() -> None:
    memory = MuseTaggedMemory()
    print(f"backing code: {memory.code.description}\n")

    # 1. allocate + tagged access
    buffer_ptr = memory.allocate(0x1000, words=8)
    print(f"allocated 64B at 0x1000, pointer tag = {pointer_tag(buffer_ptr):#x}")
    memory.store(buffer_ptr, 0x1122_3344_5566_7788)
    print(f"load through matching pointer: {memory.load(buffer_ptr):#x}")

    # 2. use-after-free
    memory.free(buffer_ptr, words=8)
    try:
        memory.load(buffer_ptr)
        raise SystemExit("BUG: stale pointer was honored")
    except TagMismatchError as error:
        print(f"use-after-free caught: {error}")

    # 3. chip failure under tagged data
    data_ptr = memory.allocate(0x2000, words=1)
    memory.store(data_ptr, 0xFEED_FACE_0BAD_F00D)
    stored = memory._store[0x2000]
    symbol = memory.code.layout.extract_symbol(stored, 3)
    memory.corrupt_device(0x2000, device=3, value=symbol ^ 0xF)
    value = memory.load(data_ptr)  # ECC corrects data AND tag
    assert value == 0xFEED_FACE_0BAD_F00D
    print(f"after chip failure, tag-checked load still returns {value:#x}")
    print("\n(the disjoint-metadata alternative would have spent an extra "
          "DRAM read per LLC miss for the same tags — see "
          "`repro-muse figure7`)")


if __name__ == "__main__":
    main()
