#!/usr/bin/env python3
"""A resumable distributed Monte-Carlo sweep, end to end.

Runs a rare-event MSED study for MUSE(80,69) through the full
coordinator/worker path on this machine: loopback worker subprocesses
pulling chunks from a work-stealing queue, a checkpoint journal after
every folded chunk, a simulated mid-run crash, and a resume that
finishes byte-identical to an uninterrupted run.

Run:  python examples/distributed_sweep.py
"""

import tempfile
from pathlib import Path

from repro.core.codes import muse_80_69
from repro.distribute import (
    CheckpointJournal,
    DistributedInterrupted,
    DistributedSession,
)
from repro.orchestrate import CodeRef, derive_key
from repro.reliability.monte_carlo import MuseMsedSimulator

TRIALS = 40_000
CHUNK_SIZE = 2_000
SEED = 2022


def main() -> None:
    simulator = MuseMsedSimulator(
        muse_80_69(), code_ref=CodeRef("repro.core.codes:muse_80_69")
    )
    key = derive_key(SEED)
    checkpoint_dir = Path(tempfile.mkdtemp(prefix="muse-ckpt-"))
    print(f"checkpoint journal: {checkpoint_dir}/checkpoint.jsonl")

    # --- first attempt: 2 workers, forced to die after 7 chunks -------
    print(f"\nrun 1: {TRIALS} trials over 2 workers, crashing mid-run ...")
    try:
        with DistributedSession(
            local_workers=2,
            checkpoint=CheckpointJournal.open(checkpoint_dir, key),
            interrupt_after=7,
        ) as session:
            simulator.run(
                TRIALS, seed=SEED, chunk_size=CHUNK_SIZE, executor=session
            )
    except DistributedInterrupted as exc:
        print(f"  crashed on purpose: {exc}")

    journal = CheckpointJournal.open(checkpoint_dir, key, resume=True)
    print(f"  journal holds {len(journal)} completed chunks")

    # --- resume: journalled chunks replay from disk -------------------
    print("\nrun 2: resuming from the checkpoint ...")
    with DistributedSession(local_workers=2, checkpoint=journal) as session:
        resumed = simulator.run(
            TRIALS, seed=SEED, chunk_size=CHUNK_SIZE, executor=session
        )
        print(f"  chunks computed after resume: {session._folds}")

    # --- the distributed contract -------------------------------------
    serial = simulator.run(TRIALS, seed=SEED, chunk_size=CHUNK_SIZE)
    assert resumed == serial, "distributed tally diverged!"
    print("\nresumed distributed run == in-process run, byte for byte:")
    print(f"  {serial.describe()}")


if __name__ == "__main__":
    main()
