#!/usr/bin/env python3
"""ChipKill on a DDR4 DIMM pair: permanent device failure, live traffic.

Builds the full memory-controller stack from the paper's Figure 2 —
MUSE(144,132) codec, 36 x4 devices across two lockstepped DDR4 ECC
DIMMs — writes a working set, permanently fails a chip, and shows every
read still returning correct data.  Then a second chip fails and the
controller reports (rather than silently miscorrects) the uncorrectable
words, and a field repair + scrub restores full protection.

Run:  python examples/chipkill_demo.py
"""

import random

from repro.core.codes import muse_144_132
from repro.memory import (
    DeviceStriping,
    MemoryController,
    MuseEcc,
    ReadStatus,
    ddr4_144bit,
)


def main() -> None:
    code = muse_144_132()
    striping = DeviceStriping(code.layout, ddr4_144bit())
    controller = MemoryController(MuseEcc(code), striping)
    print(f"channel: {striping.geometry.describe()}")
    print(f"ECC    : {code.description}\n")

    rng = random.Random(42)
    working_set = {addr: rng.randrange(1 << code.k) for addr in range(64)}
    for address, value in working_set.items():
        controller.write(address, value)
    print(f"wrote {len(working_set)} words")

    # --- one chip dies --------------------------------------------------
    controller.fail_device(17)
    corrected = 0
    for address, expected in working_set.items():
        result = controller.read(address)
        assert result.data == expected, "data loss under single chip failure!"
        corrected += result.status is ReadStatus.CORRECTED
    print(f"device 17 failed: all {len(working_set)} reads correct "
          f"({corrected} needed correction)")

    # --- a second chip dies: beyond the SSC guarantee -------------------
    controller.fail_device(31)
    flagged = sum(
        controller.read(address).status is ReadStatus.UNCORRECTABLE
        for address in working_set
    )
    print(f"device 31 also failed: {flagged}/{len(working_set)} reads "
          f"flagged uncorrectable (none returned silently wrong)")

    # --- field service: replace chips, scrub, back to full protection ---
    controller.repair_device(17)
    controller.repair_device(31)
    for address in working_set:
        controller.scrub(address)
    controller.fail_device(5)
    ok = all(
        controller.read(address).data == expected
        for address, expected in working_set.items()
    )
    print(f"after repair + scrub, a fresh device-5 failure is again "
          f"fully correctable: {ok}")
    print(f"\ncontroller stats: {controller.stats}")


if __name__ == "__main__":
    main()
