#!/usr/bin/env python3
"""Rowhammer detection with hashes in salvaged ECC bits.

MUSE(80,69) leaves 5 spare bits per 64-bit word: 40 bits per cache
line, which hold a keyed hash of the line (paper Section VI-A).  A
Rowhammer attacker must corrupt data *and* forge the matching hash; a
random flip pattern survives with probability 2^-40.

This demo attacks hash-protected lines at several (truncated) hash
widths and shows the measured escape rate tracking the 2^-w law.

Run:  python examples/rowhammer_detect.py
"""

import random

from repro.core.codes import muse_80_69
from repro.security.hashing import LineHasher
from repro.security.rowhammer import (
    HashedLine,
    RowhammerAttacker,
    deployed_detection_probability,
    measure_escape_rate,
)


def main() -> None:
    code = muse_80_69()
    spare = code.spare_bits(64)
    print(f"{code.name}: {spare} spare bits/word -> {spare * 8} bits per 64B line\n")

    # One attack, blow by blow.
    rng = random.Random(1)
    hasher = LineHasher(width_bits=40)
    line = HashedLine(hasher, rng.getrandbits(512))
    outcome = RowhammerAttacker(line_flips=3).attack(line, rng)
    print(f"attacker flipped data bits {outcome.flipped_line_bits} "
          f"and digest bits {outcome.flipped_digest_bits}")
    print(f"hash check on next read: "
          f"{'DETECTED' if outcome.detected else 'missed!'}\n")

    # The 2^-w law, measured where Monte Carlo can reach it.
    print(f"{'width':<7} {'measured escape':>16} {'2^-w':>12}")
    for width in (4, 6, 8, 10):
        point = measure_escape_rate(width, attempts=60_000)
        print(f"{width:<7} {point.escape_rate:>16.2e} {point.expected_rate:>12.2e}")

    print(f"\ndeployed 40-bit hash: detection probability "
          f"{deployed_detection_probability(40):.12f} (paper: 1 - 2^-40)")


if __name__ == "__main__":
    main()
