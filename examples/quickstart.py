#!/usr/bin/env python3
"""Quickstart: encode a word, kill a DRAM chip, get your data back.

The 30-second tour of MUSE ECC: build the paper's MUSE(144,132)
ChipKill code, corrupt an entire x4 device's worth of bits, and watch
the decoder recover the payload — with 4 fewer check bits than the
commercial Reed-Solomon arrangement needs.

Run:  python examples/quickstart.py
"""

from repro import muse_144_132
from repro.core import DecodeStatus


def main() -> None:
    code = muse_144_132()
    print(f"code: {code.description}\n")

    data = 0xDEAD_BEEF_CAFE_F00D_0123_4567_89AB_CDEF & ((1 << code.k) - 1)
    codeword = code.encode(data)
    print(f"data      = {data:#x}")
    print(f"codeword  = {codeword:#x}  (codeword % m == {codeword % code.m})")

    # A whole DRAM device dies: symbol 9's four bits turn to garbage.
    dead_device = 9
    garbage = code.layout.extract_symbol(codeword, dead_device) ^ 0b1011
    corrupted = code.layout.insert_symbol(codeword, dead_device, garbage)
    print(f"\ndevice {dead_device} failed: codeword is now {corrupted:#x}")

    result = code.decode(corrupted)
    assert result.status is DecodeStatus.CORRECTED
    assert result.data == data
    print(f"decode -> {result.status.value}")
    print(f"recovered = {result.data:#x}  (error value {result.error_value:+d})")

    # The headline: the same protection with fewer bits than RS.
    print(f"\nMUSE(144,132) uses {code.r} check bits;")
    print("the commercial Reed-Solomon ChipKill baseline uses 16.")
    print(f"That frees {16 - code.r} bits per codeword for metadata.")


if __name__ == "__main__":
    main()
