#!/usr/bin/env python3
"""Design your own MUSE code: the Algorithm-1 search, interactively.

Walks the paper's code-construction flow for a custom configuration:
pick a codeword width, symbol size, error model and shuffle, then scan
redundancy budgets until multipliers appear — the same procedure that
produced Table I (and this script reproduces two of its rows live).

Run:  python examples/code_search_demo.py
"""

from repro.core import (
    ErrorDirection,
    MuseCode,
    MultiplierSearch,
    SymbolErrorModel,
    SymbolLayout,
    smallest_feasible_redundancy,
)


def search_report(model, r_min, r_max) -> None:
    print(f"  model: {model.describe()}")
    print(f"  distinct error values to separate: {model.required_remainders}")
    result = smallest_feasible_redundancy(model, r_min=r_min, r_max=r_max)
    if result is None:
        print(f"  no multiplier with r in [{r_min}, {r_max}]")
        return
    full = MultiplierSearch(model, result.r).run()
    print(f"  first feasible redundancy: r = {result.r}")
    print(f"  all multipliers at r = {result.r}: {list(full.multipliers)}")


def main() -> None:
    print("1) The paper's MUSE(80,69): 20 x 4-bit symbols, bidirectional")
    model = SymbolErrorModel(SymbolLayout.sequential(80, 4))
    search_report(model, r_min=9, r_max=12)

    print("\n2) The paper's MUSE(80,67): 8-bit symbols need the Eq.5 shuffle")
    sequential = SymbolErrorModel(
        SymbolLayout.sequential(80, 8), ErrorDirection.ONE_TO_ZERO
    )
    print("  without shuffle:")
    search_report(sequential, r_min=12, r_max=13)
    shuffled = SymbolErrorModel(SymbolLayout.eq5(), ErrorDirection.ONE_TO_ZERO)
    print("  with the Eq.5 shuffle:")
    search_report(shuffled, r_min=12, r_max=13)

    print("\n3) A custom code: 96-bit codewords, 4-bit symbols (24 devices)")
    custom_model = SymbolErrorModel(SymbolLayout.sequential(96, 4))
    result = smallest_feasible_redundancy(custom_model, r_min=10, r_max=14)
    if result:
        code = MuseCode(
            SymbolLayout.sequential(96, 4), result.multipliers[0],
            name=f"MUSE(96,{96 - result.r})",
        )
        print(f"  built {code.description}")
        data = 0x1234_5678_9ABC
        bad = code.layout.insert_symbol(
            code.encode(data), 11,
            code.layout.extract_symbol(code.encode(data), 11) ^ 0x5,
        )
        assert code.decode(bad).data == data
        print(f"  verified: corrects a device failure out of the box")


if __name__ == "__main__":
    main()
