#!/usr/bin/env python3
"""Reliable processing-in-memory: one code for storage AND compute.

The paper's Section VI-B scenario: an HBM2-PIM bank whose 256-bit words
are MUSE(268,256) codewords (12 check bits where HBM provisions 32),
feeding residue-checked MAC units.  The residue commutes with
arithmetic — e(f(x,y)) == f(e(x), e(y)) — so the same check information
verifies the dot product, no re-encoding between storage and compute
codes.

Run:  python examples/pim_reliable_mac.py
"""

import random

from repro.pim import (
    CheckedValue,
    MacFaultSite,
    PimRedundancyBudget,
    ReliablePimDevice,
    ResidueCheckedMac,
)


def main() -> None:
    budget = PimRedundancyBudget()
    print(f"HBM provisions {budget.provisioned_bits} ECC bits per 256-bit word;")
    print(f"MUSE(268,256) needs {budget.muse_bits} -> "
          f"{budget.reduction_factor:.2f}x fewer, {budget.saved_bits_per_word} "
          f"bits saved per word\n")

    # --- storage + compute on the device model --------------------------
    device = ReliablePimDevice()
    rng = random.Random(7)
    weights = [rng.randrange(1 << 16) for _ in range(8)]
    activations = [rng.randrange(1 << 16) for _ in range(8)]
    for i, (w, a) in enumerate(zip(weights, activations)):
        device.write_word(i, w)
        device.write_word(100 + i, a)

    # a chip inside the bank fails mid-inference
    victim = device._store[3]
    symbol = device.code.layout.extract_symbol(victim, 20)
    device.corrupt_device(3, symbol=20, value=symbol ^ 0x7)

    result = device.dot_product(list(range(8)), [100 + i for i in range(8)])
    expected = sum(w * a for w, a in zip(weights, activations))
    print(f"dot product over a bank with a failed chip: {result}")
    print(f"expected                                  : {expected}")
    assert result == expected

    # --- compute fault, caught by the residue congruence ---------------
    m = device.code.m
    mac = ResidueCheckedMac(m)
    mac.accumulate(CheckedValue.of(1234, m), CheckedValue.of(5678, m))
    mac.inject_fault(MacFaultSite.MULTIPLIER, bit=13)
    mac.accumulate(CheckedValue.of(42, m), CheckedValue.of(99, m))
    print(f"\ninjected a bit-13 fault into the multiplier...")
    print(f"residue check verdict: "
          f"{'FAULT CAUGHT' if not mac.check() else 'missed!'}")


if __name__ == "__main__":
    main()
