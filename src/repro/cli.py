"""Command-line entry point: ``repro-muse <experiment> [options]``.

Examples
--------
::

    repro-muse table1                      # regenerate Table I searches
    repro-muse table4 --trials 1000000 --jobs 8   # rare-tail Table IV
    repro-muse table4 --chunk-size 65536 --seed 7 # streamed, reseeded
    repro-muse table4 --adaptive --ci-target 0.1  # stop when CIs tighten
    repro-muse figure6 --quick             # 3-benchmark, short-trace preview
    repro-muse all --jobs 4 --results-dir results  # concurrent sweep
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ablation_frontier,
    ablation_shuffle,
    extension_double_device,
    table4,
)
from repro.orchestrate.sweep import (
    EXPERIMENT_TARGETS,
    ExperimentTask,
    resolve_experiment,
    run_all,
)

FAST_SETTINGS = {
    "trials": 2000,
    "mem_ops": 20_000,
    "attempts": 40_000,
    "benchmarks": 3,
}

#: The experiments whose Monte-Carlo loops accept the streaming /
#: sharding options (--trials/--seed/--jobs/--chunk-size), with their
#: published per-experiment trial defaults (--quick takes the smaller
#: of FAST_SETTINGS and the default — a preview never does more work).
MONTE_CARLO_DEFAULT_TRIALS = {
    "table4": table4.DEFAULT_TRIALS,
    "ablation-shuffle": ablation_shuffle.DEFAULT_TRIALS,
    "ablation-frontier": ablation_frontier.DEFAULT_TRIALS,
    "extension-double-device": extension_double_device.DEFAULT_TRIALS,
}
MONTE_CARLO_EXPERIMENTS = tuple(MONTE_CARLO_DEFAULT_TRIALS)

#: The MSED experiments that accept the sequential adaptive-sampling
#: mode (--adaptive/--ci-target/--max-trials).  extension-double-device
#: tallies erasure recoveries, not MSED rates, so it stays fixed-budget.
ADAPTIVE_EXPERIMENTS = ("table4", "ablation-shuffle", "ablation-frontier")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-muse",
        description=(
            "Regenerate the tables and figures of 'Revisiting Residue "
            "Codes for Modern Memories' (MICRO 2022)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1", "figure1b", "table3", "table4", "table5",
            "figure6", "figure7", "rowhammer", "pim",
            "ablation-shuffle", "ablation-frontier",
            "extension-double-device", "all",
        ],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help=(
            "Monte-Carlo trials per design point (table4, ablations, "
            "extension-double-device; default: each experiment's "
            "published setting)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help=(
            "master Monte-Carlo seed for the trial streams (default: "
            "each experiment's published seed); tallies at a fixed seed "
            "are independent of --jobs/--chunk-size/--backend"
        ),
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help=(
            "worker processes: fans design-point chunks (table4, "
            "ablations, extension-double-device) or whole experiments "
            "('all') over a process pool"
        ),
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None,
        help=(
            "trials per streamed chunk (default 65536); bounds peak "
            "memory — a 10^6-trial run only ever materialises one "
            "chunk per worker"
        ),
    )
    parser.add_argument(
        "--adaptive", action="store_true",
        help=(
            "drive the MSED Monte-Carlo by statistical need instead of "
            "a fixed budget: each design point stops once its failure-"
            "rate confidence interval is tight (table4, ablations); "
            "ignores --trials"
        ),
    )
    parser.add_argument(
        "--ci-target", type=float, default=None,
        help=(
            "adaptive stopping tolerance: relative 95%% CI half-width "
            "on the target rate (default 0.1, i.e. +-10%% of the rate)"
        ),
    )
    parser.add_argument(
        "--max-trials", type=int, default=None,
        help=(
            "adaptive trial ceiling per design point (default 1000000); "
            "points whose interval never tightens stop here"
        ),
    )
    parser.add_argument(
        "--mem-ops", type=int, default=120_000,
        help="memory operations per workload trace (figure6/figure7)",
    )
    parser.add_argument(
        "--attempts", type=int, default=200_000,
        help="attack attempts per hash width (rowhammer)",
    )
    parser.add_argument(
        "--benchmarks", type=int, default=None,
        help="limit figure6/figure7 to the first N workloads",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small trial counts and traces for a fast preview",
    )
    parser.add_argument(
        "--backend", choices=["auto", "scalar", "numpy"], default="auto",
        help=(
            "decode engine for the Monte-Carlo experiments: 'numpy' "
            "vectorises batches of codewords, 'scalar' is the big-int "
            "reference path, 'auto' picks numpy when available "
            "(table4, ablations, extension-double-device)"
        ),
    )
    parser.add_argument(
        "--results-dir", default=None,
        help=(
            "directory for rendered reports + summary.json ('all'; "
            "created if missing)"
        ),
    )
    return parser


def experiment_kwargs(args: argparse.Namespace) -> dict[str, dict]:
    """Per-experiment keyword arguments from the parsed namespace.

    ``None`` values are omitted so each experiment keeps its own
    published defaults (e.g. extension-double-device's 400 trials vs
    table4's 10,000) unless the user overrides them.
    """
    mem_ops = FAST_SETTINGS["mem_ops"] if args.quick else args.mem_ops
    attempts = FAST_SETTINGS["attempts"] if args.quick else args.attempts
    benchmarks = FAST_SETTINGS["benchmarks"] if args.quick else args.benchmarks

    def monte_carlo(name: str) -> dict:
        kw = {"backend": args.backend}
        if args.quick:
            kw["trials"] = min(
                FAST_SETTINGS["trials"], MONTE_CARLO_DEFAULT_TRIALS[name]
            )
        elif args.trials is not None:
            kw["trials"] = args.trials
        if args.seed is not None:
            kw["seed"] = args.seed
        if args.chunk_size is not None:
            kw["chunk_size"] = args.chunk_size
        if args.adaptive and name in ADAPTIVE_EXPERIMENTS:
            kw["adaptive"] = True
            if args.ci_target is not None:
                kw["ci_target"] = args.ci_target
            if args.max_trials is not None:
                kw["max_trials"] = args.max_trials
            elif args.quick:
                # A preview must stay a preview: without an explicit
                # ceiling, cap the adaptive run at the quick budget
                # instead of the 10^6-trial default.
                kw["max_trials"] = kw["trials"]
        return kw

    trace = {"mem_ops": mem_ops}
    if args.seed is not None:
        trace["seed"] = args.seed  # figure6/figure7 sample traces too
    if benchmarks is not None:
        trace["benchmarks"] = benchmarks

    return {
        "table1": {},
        "figure1b": {},
        "table3": {},
        "table4": monte_carlo("table4"),
        "table5": {},
        "figure6": dict(trace),
        "figure7": dict(trace),
        "rowhammer": {"attempts": attempts},
        "pim": {},
        "ablation-shuffle": monte_carlo("ablation-shuffle"),
        "ablation-frontier": monte_carlo("ablation-frontier"),
        "extension-double-device": monte_carlo("extension-double-device"),
    }


def run(args: argparse.Namespace) -> int:
    if args.adaptive and args.experiment not in ADAPTIVE_EXPERIMENTS + ("all",):
        print(
            f"error: --adaptive applies to {', '.join(ADAPTIVE_EXPERIMENTS)} "
            f"(or 'all'), not {args.experiment}",
            file=sys.stderr,
        )
        return 2
    if not args.adaptive and (
        args.ci_target is not None or args.max_trials is not None
    ):
        # The same flag-dropping class the extension --trials regression
        # fixed: refuse rather than silently run fixed-budget.
        print(
            "error: --ci-target/--max-trials only apply with --adaptive",
            file=sys.stderr,
        )
        return 2
    if args.adaptive and args.trials is not None:
        # Mirror image of the guard above: adaptive mode ignores a fixed
        # trial budget, so an explicit --trials would silently do nothing.
        print(
            "error: --trials does not apply with --adaptive; "
            "use --max-trials for the per-point ceiling",
            file=sys.stderr,
        )
        return 2
    kwargs = experiment_kwargs(args)

    if args.experiment == "all":
        # Experiments parallelise across the pool; each runs its own
        # Monte-Carlo single-process (no nested pools).  Reports stream
        # as experiments finish — held back only as long as needed to
        # keep presentation order — so a long sweep shows progress and
        # a mid-sweep failure keeps everything already completed.
        tasks = [
            ExperimentTask.make(name, kwargs[name]) for name in EXPERIMENT_TARGETS
        ]
        order = [task.name for task in tasks]
        ready: dict[str, str] = {}
        emitted = 0

        def header(name: str) -> str:
            return f"\n=== {name} " + "=" * max(0, 60 - len(name))

        def emit(outcome) -> None:
            nonlocal emitted
            ready[outcome.name] = outcome.report
            while emitted < len(order) and order[emitted] in ready:
                name = order[emitted]
                print(header(name))
                print(ready.pop(name))
                emitted += 1

        try:
            run_all(
                tasks,
                jobs=args.jobs,
                results_dir=args.results_dir,
                on_outcome=emit,
            )
        finally:
            # Only non-empty when a failure interrupted the sweep:
            # completed experiments held back for presentation order
            # still get shown, just marked out of order.
            for name in order[emitted:]:
                if name in ready:
                    print(header(name) + " (out of order)")
                    print(ready.pop(name))
        if args.results_dir is not None:
            print(f"\nreports + summary.json written to {args.results_dir}/")
        return 0

    call_kwargs = kwargs[args.experiment]
    if args.experiment in MONTE_CARLO_EXPERIMENTS:
        call_kwargs["jobs"] = args.jobs
    # One registry (sweep.EXPERIMENT_TARGETS) backs both direct dispatch
    # and the 'all' sweep, so an experiment can't exist in one but not
    # the other.
    resolve_experiment(args.experiment)(**call_kwargs)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
