"""Command-line entry point: ``repro-muse <experiment> [options]``.

Examples
--------
::

    repro-muse table1                 # regenerate Table I searches
    repro-muse table4 --trials 10000  # full Monte-Carlo Table IV
    repro-muse figure6 --quick        # 3-benchmark, short-trace preview
    repro-muse all --quick            # every experiment, fast settings
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ablation_frontier,
    ablation_shuffle,
    extension_double_device,
    figure1b,
    figure6,
    figure7,
    pim,
    rowhammer,
    table1,
    table3,
    table4,
    table5,
)

FAST_SETTINGS = {
    "trials": 2000,
    "mem_ops": 20_000,
    "attempts": 40_000,
    "benchmarks": 3,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-muse",
        description=(
            "Regenerate the tables and figures of 'Revisiting Residue "
            "Codes for Modern Memories' (MICRO 2022)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1", "figure1b", "table3", "table4", "table5",
            "figure6", "figure7", "rowhammer", "pim",
            "ablation-shuffle", "ablation-frontier",
            "extension-double-device", "all",
        ],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--trials", type=int, default=10_000,
        help="Monte-Carlo trials per design point (table4, ablations)",
    )
    parser.add_argument(
        "--mem-ops", type=int, default=120_000,
        help="memory operations per workload trace (figure6/figure7)",
    )
    parser.add_argument(
        "--attempts", type=int, default=200_000,
        help="attack attempts per hash width (rowhammer)",
    )
    parser.add_argument(
        "--benchmarks", type=int, default=None,
        help="limit figure6/figure7 to the first N workloads",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small trial counts and traces for a fast preview",
    )
    parser.add_argument(
        "--backend", choices=["auto", "scalar", "numpy"], default="auto",
        help=(
            "decode engine for the Monte-Carlo experiments: 'numpy' "
            "vectorises batches of codewords, 'scalar' is the big-int "
            "reference path, 'auto' picks numpy when available "
            "(table4, ablations, extension-double-device)"
        ),
    )
    return parser


def run(args: argparse.Namespace) -> int:
    trials = FAST_SETTINGS["trials"] if args.quick else args.trials
    mem_ops = FAST_SETTINGS["mem_ops"] if args.quick else args.mem_ops
    attempts = FAST_SETTINGS["attempts"] if args.quick else args.attempts
    benchmarks = FAST_SETTINGS["benchmarks"] if args.quick else args.benchmarks

    backend = args.backend

    dispatch = {
        "table1": lambda: table1.main(),
        "figure1b": lambda: figure1b.main(),
        "table3": lambda: table3.main(),
        "table4": lambda: table4.main(trials=trials, backend=backend),
        "table5": lambda: table5.main(),
        "figure6": lambda: figure6.main(mem_ops=mem_ops, benchmarks=benchmarks),
        "figure7": lambda: figure7.main(mem_ops=mem_ops, benchmarks=benchmarks),
        "rowhammer": lambda: rowhammer.main(attempts=attempts),
        "pim": lambda: pim.main(),
        "ablation-shuffle": lambda: ablation_shuffle.main(
            trials=trials, backend=backend
        ),
        "ablation-frontier": lambda: ablation_frontier.main(
            trials=trials, backend=backend
        ),
        "extension-double-device": lambda: extension_double_device.main(
            backend=backend
        ),
    }
    if args.experiment == "all":
        for name, runner in dispatch.items():
            print(f"\n=== {name} " + "=" * max(0, 60 - len(name)))
            runner()
        return 0
    dispatch[args.experiment]()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
