"""Command-line entry point: ``repro-muse <experiment> [options]``.

Examples
--------
::

    repro-muse table1                      # regenerate Table I searches
    repro-muse table4 --trials 1000000 --jobs 8   # rare-tail Table IV
    repro-muse table4 --chunk-size 65536 --seed 7 # streamed, reseeded
    repro-muse table4 --adaptive --ci-target 0.1  # stop when CIs tighten
    repro-muse table4 --adaptive --trial-budget 200000 --cache-dir cache \\
        # campaign-scheduled sweep: budget goes to the loosest CIs,
        # completed cells fold from the cross-run cache with 0 trials
    repro-muse figure6 --quick             # 3-benchmark, short-trace preview
    repro-muse all --jobs 4 --results-dir results  # concurrent sweep
    repro-muse table4 --distribute local:4 # loopback coordinator + 4 workers
    repro-muse coordinator --run table4 --port 7000 --trials 100000000 \\
        --checkpoint-dir ckpt              # serve chunks to remote workers
    repro-muse worker --connect host:7000  # join a coordinator's queue
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.engine import registered_backends
from repro.experiments import (
    ablation_frontier,
    ablation_shuffle,
    extension_double_device,
    table4,
)
from repro.orchestrate.sweep import (
    EXPERIMENT_TARGETS,
    ExperimentTask,
    resolve_experiment,
    run_all,
)

FAST_SETTINGS = {
    "trials": 2000,
    "mem_ops": 20_000,
    "attempts": 40_000,
    "benchmarks": 3,
}

#: The experiments whose Monte-Carlo loops accept the streaming /
#: sharding options (--trials/--seed/--jobs/--chunk-size), with their
#: published per-experiment trial defaults (--quick takes the smaller
#: of FAST_SETTINGS and the default — a preview never does more work).
MONTE_CARLO_DEFAULT_TRIALS = {
    "table4": table4.DEFAULT_TRIALS,
    "ablation-shuffle": ablation_shuffle.DEFAULT_TRIALS,
    "ablation-frontier": ablation_frontier.DEFAULT_TRIALS,
    "extension-double-device": extension_double_device.DEFAULT_TRIALS,
}
MONTE_CARLO_EXPERIMENTS = tuple(MONTE_CARLO_DEFAULT_TRIALS)

#: The MSED experiments that accept the sequential adaptive-sampling
#: mode (--adaptive/--ci-target/--max-trials).  extension-double-device
#: tallies erasure recoveries, not MSED rates, so it stays fixed-budget.
ADAPTIVE_EXPERIMENTS = ("table4", "ablation-shuffle", "ablation-frontier")

#: The experiments whose chunk grids can fan over a coordinator/worker
#: session (--distribute/--checkpoint-dir/--resume); their MsedTally
#: specs are wire-registered for the JSON transport.
DISTRIBUTED_EXPERIMENTS = ("table4", "ablation-shuffle", "ablation-frontier")

#: The experiments that accept --scenario (a registered fault scenario
#: swapped in for the default transient msed stream).
SCENARIO_EXPERIMENTS = ("table4", "ablation-shuffle", "ablation-frontier")

#: The experiments that accept --telemetry-dir (their mains wrap the
#: run in a telemetry session); the coordinator/worker subcommands and
#: the 'all' sweep thread it through as well.
TELEMETRY_EXPERIMENTS = ("table4", "ablation-shuffle", "ablation-frontier")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-muse",
        description=(
            "Regenerate the tables and figures of 'Revisiting Residue "
            "Codes for Modern Memories' (MICRO 2022)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1", "figure1b", "table3", "table4", "table5",
            "figure6", "figure7", "rowhammer", "pim",
            "ablation-shuffle", "ablation-frontier",
            "extension-double-device", "all",
            "coordinator", "worker", "report",
        ],
        help=(
            "which paper artifact to regenerate — or 'coordinator' / "
            "'worker', the two halves of a distributed run, or "
            "'report', the post-hoc telemetry summary of a run "
            "directory"
        ),
    )
    parser.add_argument(
        "target", nargs="?", default=None, metavar="RUNDIR",
        help=(
            "(report) the telemetry run directory (a --telemetry-dir "
            "from an earlier run) to summarise"
        ),
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help=(
            "Monte-Carlo trials per design point (table4, ablations, "
            "extension-double-device; default: each experiment's "
            "published setting)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help=(
            "master Monte-Carlo seed for the trial streams (default: "
            "each experiment's published seed); tallies at a fixed seed "
            "are independent of --jobs/--chunk-size/--backend"
        ),
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help=(
            "worker processes: fans design-point chunks (table4, "
            "ablations, extension-double-device) or whole experiments "
            "('all') over a process pool"
        ),
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None,
        help=(
            "trials per streamed chunk (default 65536); bounds peak "
            "memory — a 10^6-trial run only ever materialises one "
            "chunk per worker"
        ),
    )
    parser.add_argument(
        "--adaptive", action="store_true",
        help=(
            "drive the MSED Monte-Carlo by statistical need instead of "
            "a fixed budget: each design point stops once its failure-"
            "rate confidence interval is tight (table4, ablations); "
            "ignores --trials"
        ),
    )
    parser.add_argument(
        "--ci-target", type=float, default=None,
        help=(
            "adaptive stopping tolerance: relative 95%% CI half-width "
            "on the target rate (default 0.1, i.e. +-10%% of the rate)"
        ),
    )
    parser.add_argument(
        "--max-trials", type=int, default=None,
        help=(
            "adaptive trial ceiling per design point (default 1000000); "
            "points whose interval never tightens stop here"
        ),
    )
    parser.add_argument(
        "--trial-budget", type=int, default=None,
        help=(
            "campaign-wide trial budget for --adaptive sweeps: each "
            "round's trials go to the design points furthest from "
            "--ci-target (priority = CI half-width / goal) until the "
            "budget is spent; allocation is a pure function of the "
            "folded tallies, so results stay byte-identical across "
            "--jobs/--chunk-size/--distribute"
        ),
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help=(
            "cross-run result cache keyed by (seed stream, spec "
            "fingerprint): chunks computed by any earlier run fold "
            "straight from disk with zero new trials (requires "
            "--adaptive or --distribute; backend-portable, since all "
            "backends tally byte-identically)"
        ),
    )
    from repro.scenarios import scenario_names

    parser.add_argument(
        "--scenario",
        choices=scenario_names(),
        default=None,
        help=(
            "fault scenario for the MSED Monte-Carlo (table4, "
            "ablations): choices come from the scenario registry "
            "(repro.scenarios) — 'msed' is the paper's transient "
            "k-symbol model; 'mbu'/'stuck'/'rowfail'/'scrub'/'wear' "
            "inject correlated bursts, permanent faults, row "
            "failures, scrub-interval accumulation, and wear-dependent "
            "flips; every scenario tallies byte-identically across "
            "--backend/--chunk-size/--jobs/--distribute at a fixed seed"
        ),
    )
    parser.add_argument(
        "--mem-ops", type=int, default=120_000,
        help="memory operations per workload trace (figure6/figure7)",
    )
    parser.add_argument(
        "--attempts", type=int, default=200_000,
        help="attack attempts per hash width (rowhammer)",
    )
    parser.add_argument(
        "--benchmarks", type=int, default=None,
        help="limit figure6/figure7 to the first N workloads",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small trial counts and traces for a fast preview",
    )
    parser.add_argument(
        "--backend",
        choices=["auto", *registered_backends()],
        default="auto",
        help=(
            "decode engine for the Monte-Carlo experiments: choices "
            "come from the backend registry ('scalar' is the big-int "
            "reference path, 'numpy' vectorises batches, 'native'/"
            "'numba' run compiled fused kernels); 'auto' picks the "
            "fastest backend available on this host (table4, "
            "ablations, extension-double-device; also the worker "
            "subcommand's engine override)"
        ),
    )
    parser.add_argument(
        "--results-dir", default=None,
        help=(
            "directory for rendered reports + summary.json ('all'; "
            "created if missing)"
        ),
    )
    parser.add_argument(
        "--distribute", default=None, metavar="SPEC",
        help=(
            "fan the Monte-Carlo chunk grid over a coordinator/worker "
            "session: 'local:N' spawns N loopback worker subprocesses, "
            "'listen:PORT' (or 'listen:HOST:PORT') waits for external "
            "'repro-muse worker' processes (table4, ablations; 'all' "
            "supports local:N only); tallies stay byte-identical to "
            "--jobs 1"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir", default=None,
        help=(
            "journal every folded chunk to this directory (atomic "
            "writes; requires --distribute) so an interrupted run can "
            "--resume; 'all' gives each experiment a subdirectory"
        ),
    )
    parser.add_argument(
        "--resume", action="store_true",
        help=(
            "resume from --checkpoint-dir: completed chunks replay from "
            "the journal and the final tally is byte-identical to an "
            "uninterrupted run"
        ),
    )
    parser.add_argument(
        "--progress", action="store_true",
        help=(
            "print heartbeat lines to stderr (per-design-point chunks "
            "done / trials folded / elapsed from the coordinator, or "
            "overall chunk progress for single-host runs); stdout "
            "reports are unchanged"
        ),
    )
    parser.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help=(
            "deterministic fault injection for distributed runs (also "
            "settable via REPRO_CHAOS): comma-separated rules like "
            "'seed=7,reset=0.1,torn=0.05,crash=@2,hang=0.1:0.5,"
            "dup=0.2,journal=@3' — probabilities fire per event, @K "
            "fires once on the K-th event; tallies stay byte-identical "
            "to --jobs 1 under every fault class"
        ),
    )
    parser.add_argument(
        "--telemetry-dir", default=None,
        help=(
            "record the run's telemetry there: an append-only CRC'd "
            "events.jsonl, a Prometheus textfile (metrics.prom), and "
            "an end-of-run run-manifest.json (table4, ablations, "
            "coordinator, worker; 'all' gives each experiment a "
            "subdirectory); summarise later with 'repro-muse report "
            "DIR'; never changes tallies"
        ),
    )
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="(worker) coordinator address to pull chunk tasks from",
    )
    parser.add_argument(
        "--run", default=None, choices=DISTRIBUTED_EXPERIMENTS,
        help="(coordinator) which experiment to serve",
    )
    parser.add_argument(
        "--host", default="0.0.0.0",
        help="(coordinator) bind address (default 0.0.0.0)",
    )
    parser.add_argument(
        "--port", type=int, default=None,
        help="(coordinator) port to serve the chunk queue on",
    )
    return parser


def experiment_kwargs(args: argparse.Namespace) -> dict[str, dict]:
    """Per-experiment keyword arguments from the parsed namespace.

    ``None`` values are omitted so each experiment keeps its own
    published defaults (e.g. extension-double-device's 400 trials vs
    table4's 10,000) unless the user overrides them.
    """
    mem_ops = FAST_SETTINGS["mem_ops"] if args.quick else args.mem_ops
    attempts = FAST_SETTINGS["attempts"] if args.quick else args.attempts
    benchmarks = FAST_SETTINGS["benchmarks"] if args.quick else args.benchmarks

    def monte_carlo(name: str) -> dict:
        kw = {"backend": args.backend}
        if args.quick:
            kw["trials"] = min(
                FAST_SETTINGS["trials"], MONTE_CARLO_DEFAULT_TRIALS[name]
            )
        elif args.trials is not None:
            kw["trials"] = args.trials
        if args.seed is not None:
            kw["seed"] = args.seed
        if args.chunk_size is not None:
            kw["chunk_size"] = args.chunk_size
        if name in DISTRIBUTED_EXPERIMENTS:
            if args.distribute is not None:
                kw["distribute"] = args.distribute
                if args.checkpoint_dir is not None:
                    # An 'all' sweep journals each experiment in its own
                    # subdirectory so the journals can never collide.
                    kw["checkpoint_dir"] = (
                        os.path.join(args.checkpoint_dir, name)
                        if args.experiment == "all"
                        else args.checkpoint_dir
                    )
                    if args.resume:
                        kw["resume"] = True
            if args.progress:
                kw["progress"] = True
        if args.scenario is not None and name in SCENARIO_EXPERIMENTS:
            kw["scenario"] = args.scenario
        if args.telemetry_dir is not None and name in TELEMETRY_EXPERIMENTS:
            # Like --checkpoint-dir: an 'all' sweep gives each
            # experiment its own run directory so two event logs can
            # never interleave.
            kw["telemetry_dir"] = (
                os.path.join(args.telemetry_dir, name)
                if args.experiment == "all"
                else args.telemetry_dir
            )
        if args.adaptive and name in ADAPTIVE_EXPERIMENTS:
            kw["adaptive"] = True
            if args.ci_target is not None:
                kw["ci_target"] = args.ci_target
            if args.max_trials is not None:
                kw["max_trials"] = args.max_trials
            elif args.quick:
                # A preview must stay a preview: without an explicit
                # ceiling, cap the adaptive run at the quick budget
                # instead of the 10^6-trial default.
                kw["max_trials"] = kw["trials"]
            if args.trial_budget is not None:
                kw["trial_budget"] = args.trial_budget
        if args.cache_dir is not None and (
            (args.adaptive and name in ADAPTIVE_EXPERIMENTS)
            or (args.distribute is not None and name in DISTRIBUTED_EXPERIMENTS)
        ):
            # One shared directory is safe (and useful) across
            # experiments: cells are keyed by (stream key, spec
            # fingerprint), so different experiments can never collide
            # but identical design points are shared.
            kw["cache_dir"] = args.cache_dir
        return kw

    trace = {"mem_ops": mem_ops}
    if args.seed is not None:
        trace["seed"] = args.seed  # figure6/figure7 sample traces too
    if benchmarks is not None:
        trace["benchmarks"] = benchmarks

    return {
        "table1": {},
        "figure1b": {},
        "table3": {},
        "table4": monte_carlo("table4"),
        "table5": {},
        "figure6": dict(trace),
        "figure7": dict(trace),
        "rowhammer": {"attempts": attempts},
        "pim": {},
        "ablation-shuffle": monte_carlo("ablation-shuffle"),
        "ablation-frontier": monte_carlo("ablation-frontier"),
        "extension-double-device": monte_carlo("extension-double-device"),
    }


def run(args: argparse.Namespace) -> int:
    if args.experiment == "report":
        if args.target is None:
            print(
                "error: report mode needs a RUNDIR (a --telemetry-dir "
                "from an earlier run)",
                file=sys.stderr,
            )
            return 2
        from repro.telemetry import render_report

        print(render_report(args.target))
        return 0
    if args.target is not None:
        print(
            "error: the RUNDIR positional only applies to "
            "'repro-muse report'",
            file=sys.stderr,
        )
        return 2
    if args.chaos is not None:
        from repro.distribute import parse_chaos

        try:
            parse_chaos(args.chaos)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.experiment == "worker":
        return _run_worker(args)
    if args.experiment == "coordinator":
        if args.run is None or args.port is None:
            print(
                "error: coordinator mode needs --run EXPERIMENT and "
                "--port PORT",
                file=sys.stderr,
            )
            return 2
        # A coordinator is just the named experiment serving its chunk
        # queue to external workers instead of spawning loopback ones.
        args.experiment = args.run
        args.distribute = f"listen:{args.host}:{args.port}"
    elif args.connect is not None:
        print(
            "error: --connect only applies to 'repro-muse worker'",
            file=sys.stderr,
        )
        return 2
    elif args.run is not None or args.port is not None:
        print(
            "error: --run/--port only apply to 'repro-muse coordinator'",
            file=sys.stderr,
        )
        return 2
    if args.distribute is not None and args.experiment not in (
        DISTRIBUTED_EXPERIMENTS + ("all",)
    ):
        print(
            f"error: --distribute applies to "
            f"{', '.join(DISTRIBUTED_EXPERIMENTS)} (or 'all'), "
            f"not {args.experiment}",
            file=sys.stderr,
        )
        return 2
    if (
        args.experiment == "all"
        and args.distribute is not None
        and args.distribute.startswith("listen")
    ):
        # Workers exit when an experiment's session shuts down and do
        # not reconnect (yet — see ROADMAP), so a listen-mode sweep
        # would hang waiting for a fleet that already left after the
        # first experiment.
        print(
            "error: 'all' cannot use --distribute listen:... (workers "
            "do not reconnect between experiments); use --distribute "
            "local:N, or run experiments individually via "
            "'repro-muse coordinator --run ...'",
            file=sys.stderr,
        )
        return 2
    if args.scenario is not None and args.experiment not in (
        SCENARIO_EXPERIMENTS + ("all",)
    ):
        # Same flag-dropping class as --progress/--adaptive: a scenario
        # on an experiment without a Monte-Carlo corruption stream
        # would silently run the default model.
        print(
            f"error: --scenario applies to "
            f"{', '.join(SCENARIO_EXPERIMENTS)} (or 'all'), "
            f"not {args.experiment}",
            file=sys.stderr,
        )
        return 2
    if args.chaos is not None and args.distribute is None:
        # Chaos wraps the distributed transport/worker loop; without a
        # session there is nothing to inject into — refuse rather than
        # silently running clean (the flag-dropping regression class).
        print(
            "error: --chaos requires --distribute (or the worker/"
            "coordinator subcommands)",
            file=sys.stderr,
        )
        return 2
    if args.chaos is not None:
        from repro.distribute import CHAOS_ENV

        # The environment variable is the one channel every consumer
        # reads — the coordinator session, and (by inheritance) every
        # worker subprocess the loopback fleet spawns.  Set only after
        # the guards pass so a refused invocation leaves no trace.
        os.environ[CHAOS_ENV] = args.chaos
    if args.progress and args.experiment not in (
        DISTRIBUTED_EXPERIMENTS + ("all",)
    ):
        # Same flag-dropping class as the extension --trials regression:
        # refuse rather than silently showing no heartbeat.
        print(
            f"error: --progress applies to "
            f"{', '.join(DISTRIBUTED_EXPERIMENTS)} (or 'all'), "
            f"not {args.experiment}",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint_dir is not None and args.distribute is None:
        print(
            "error: --checkpoint-dir requires --distribute (use "
            "'--distribute local:1' for a single-host resumable run)",
            file=sys.stderr,
        )
        return 2
    if args.resume and args.checkpoint_dir is None:
        print(
            "error: --resume requires --checkpoint-dir",
            file=sys.stderr,
        )
        return 2
    if args.adaptive and args.experiment not in ADAPTIVE_EXPERIMENTS + ("all",):
        print(
            f"error: --adaptive applies to {', '.join(ADAPTIVE_EXPERIMENTS)} "
            f"(or 'all'), not {args.experiment}",
            file=sys.stderr,
        )
        return 2
    if not args.adaptive and (
        args.ci_target is not None or args.max_trials is not None
    ):
        # The same flag-dropping class the extension --trials regression
        # fixed: refuse rather than silently run fixed-budget.
        print(
            "error: --ci-target/--max-trials only apply with --adaptive",
            file=sys.stderr,
        )
        return 2
    if args.adaptive and args.trials is not None:
        # Mirror image of the guard above: adaptive mode ignores a fixed
        # trial budget, so an explicit --trials would silently do nothing.
        print(
            "error: --trials does not apply with --adaptive; "
            "use --max-trials for the per-point ceiling",
            file=sys.stderr,
        )
        return 2
    if args.trial_budget is not None and not args.adaptive:
        # The campaign scheduler only runs in adaptive mode; a budget on
        # a fixed-trial run would silently do nothing.
        print(
            "error: --trial-budget requires --adaptive",
            file=sys.stderr,
        )
        return 2
    if args.trial_budget is not None and args.trial_budget < 1:
        print(
            "error: --trial-budget must be at least 1",
            file=sys.stderr,
        )
        return 2
    if args.cache_dir is not None and not (
        args.adaptive or args.distribute is not None
    ):
        # The cache is wired through the campaign runner and the
        # coordinator; a plain fixed-budget in-process run never
        # consults it, so refuse rather than silently not caching.
        print(
            "error: --cache-dir requires --adaptive or --distribute",
            file=sys.stderr,
        )
        return 2
    if args.telemetry_dir is not None and args.experiment not in (
        TELEMETRY_EXPERIMENTS + ("all",)
    ):
        # Same flag-dropping class as --progress: a telemetry dir on
        # an uninstrumented experiment would silently record nothing.
        print(
            f"error: --telemetry-dir applies to "
            f"{', '.join(TELEMETRY_EXPERIMENTS)} (or 'all', or the "
            f"worker/coordinator subcommands), not {args.experiment}",
            file=sys.stderr,
        )
        return 2
    kwargs = experiment_kwargs(args)

    if args.experiment == "all":
        # Experiments parallelise across the pool; each runs its own
        # Monte-Carlo single-process (no nested pools).  Reports stream
        # as experiments finish — held back only as long as needed to
        # keep presentation order — so a long sweep shows progress and
        # a mid-sweep failure keeps everything already completed.
        tasks = [
            ExperimentTask.make(name, kwargs[name]) for name in EXPERIMENT_TARGETS
        ]
        order = [task.name for task in tasks]
        ready: dict[str, str] = {}
        emitted = 0

        def header(name: str) -> str:
            return f"\n=== {name} " + "=" * max(0, 60 - len(name))

        def emit(outcome) -> None:
            nonlocal emitted
            ready[outcome.name] = outcome.report
            while emitted < len(order) and order[emitted] in ready:
                name = order[emitted]
                print(header(name))
                print(ready.pop(name))
                emitted += 1

        from repro.distribute import (
            DistributedDegraded,
            DistributedInterrupted,
        )

        try:
            run_all(
                tasks,
                jobs=args.jobs,
                results_dir=args.results_dir,
                on_outcome=emit,
            )
        except DistributedInterrupted as exc:
            print(
                f"interrupted: {exc}\nre-run with --resume to continue "
                f"from the checkpoint",
                file=sys.stderr,
            )
            return 3
        except DistributedDegraded as exc:
            print(f"degraded: {exc}", file=sys.stderr)
            return 4
        finally:
            # Only non-empty when a failure interrupted the sweep:
            # completed experiments held back for presentation order
            # still get shown, just marked out of order.
            for name in order[emitted:]:
                if name in ready:
                    print(header(name) + " (out of order)")
                    print(ready.pop(name))
        if args.results_dir is not None:
            print(f"\nreports + summary.json written to {args.results_dir}/")
        return 0

    call_kwargs = kwargs[args.experiment]
    if args.experiment in MONTE_CARLO_EXPERIMENTS:
        call_kwargs["jobs"] = args.jobs
    from repro.distribute import DistributedDegraded, DistributedInterrupted

    try:
        # One registry (sweep.EXPERIMENT_TARGETS) backs both direct
        # dispatch and the 'all' sweep, so an experiment can't exist in
        # one but not the other.
        resolve_experiment(args.experiment)(**call_kwargs)
    except DistributedInterrupted as exc:
        print(
            f"interrupted: {exc}\nre-run with --resume to continue from "
            f"the checkpoint",
            file=sys.stderr,
        )
        return 3
    except DistributedDegraded as exc:
        # Exit 4 ≠ exit 3: degraded means the *fleet or a chunk* failed
        # (not an operator interrupt), but the partial-results report +
        # checkpoint make the run finishable with --resume.
        print(f"degraded: {exc}", file=sys.stderr)
        return 4
    return 0


def _run_worker(args: argparse.Namespace) -> int:
    """``repro-muse worker --connect HOST:PORT``: serve one worker."""
    if args.connect is None:
        print(
            "error: worker mode needs --connect HOST:PORT",
            file=sys.stderr,
        )
        return 2
    host, sep, port = args.connect.rpartition(":")
    if not sep or not host or not port.isdigit():
        print(
            f"error: bad --connect address {args.connect!r}; expected "
            f"HOST:PORT",
            file=sys.stderr,
        )
        return 2
    from repro.distribute import serve_worker
    from repro.telemetry import telemetry_session

    # An external worker gets its own (operator-chosen, per-worker)
    # run directory: its decode spans and engine builds land there,
    # while its counters still flow to the coordinator over the wire.
    with telemetry_session(
        args.telemetry_dir,
        experiment="worker",
        backend=args.backend,
        connect=args.connect,
    ):
        executed = serve_worker(
            host, int(port), backend=args.backend, chaos=args.chaos
        )
    print(f"worker done: {executed} chunks executed", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.engine import BackendUnavailableError

    try:
        return run(args)
    except BackendUnavailableError as exc:
        # Registered-but-unavailable backends stay listed in --backend
        # choices (the registry is host-independent); an explicit
        # request for one fails here with the availability story
        # instead of a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
