"""Single-symbol-correcting Reed-Solomon codes — the ChipKill baseline.

The paper compares MUSE against RS codes "with the redundancy of
commercial schemes": two check symbols, correcting any error confined to
one symbol (the classic ChipKill arrangement, decoded with the
Peterson-Gorenstein-Zierler procedure, Section VII-B).

This module implements shortened systematic RS over GF(2^b):

* ``RSCode(symbol_bits=8, data_symbols=16)`` is RS(144,128) — 18 symbols;
* shortening is implicit: any ``n_symbols <= 2^b - 1`` is allowed;
* codewords whose bit length is not a symbol multiple (the paper's 5- and
  7-bit-symbol design points over a 144-bit channel) are handled with a
  *partial last symbol*: the missing bits are virtual zero-padding, and a
  "correction" that touches padding bits is itself a detectable
  inconsistency.

Decoding follows the bounded-distance PGZ rules for t=1:

=========  =========  =====================================================
S1         S2         verdict
=========  =========  =====================================================
0          0          clean
0          nonzero    uncorrectable (detected)
nonzero    0          uncorrectable (detected)
nonzero    nonzero    locator ``X = S2/S1``; if ``X == alpha^i`` for a
                      position ``i`` inside the (shortened) codeword,
                      correct symbol ``i`` with magnitude ``S1/alpha^i``;
                      otherwise uncorrectable (detected)
=========  =========  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

from repro.rs.gf import GaloisField, get_field


class RSDecodeStatus(enum.Enum):
    CLEAN = "no errors detected"
    CORRECTED = "single-symbol error corrected"
    DETECTED = "uncorrectable error detected"


@dataclass(frozen=True)
class RSDecodeResult:
    status: RSDecodeStatus
    symbols: tuple[int, ...] | None
    error_position: int | None = None
    error_magnitude: int = 0

    @property
    def ok(self) -> bool:
        return self.status is not RSDecodeStatus.DETECTED


class RSCode:
    """Shortened systematic RS(n, n-2) over GF(2^symbol_bits), t = 1.

    Parameters
    ----------
    symbol_bits:
        Field symbol width ``b``.
    data_symbols:
        Number of data symbols ``k``; the codeword has ``k + 2`` symbols.
    partial_bits:
        If nonzero, the *last data symbol* only has this many physical
        bits (shortened mid-symbol, for codeword bit budgets that are
        not symbol multiples).  Encoded values must keep the virtual
        bits zero; corrections that set them signal detection.
    """

    CHECK_SYMBOLS = 2

    def __init__(self, symbol_bits: int, data_symbols: int, partial_bits: int = 0):
        if data_symbols < 1:
            raise ValueError("need at least one data symbol")
        field = get_field(symbol_bits)
        n_symbols = data_symbols + self.CHECK_SYMBOLS
        if n_symbols > field.order:
            raise ValueError(
                f"{n_symbols} symbols exceed GF(2^{symbol_bits}) "
                f"code length limit {field.order}"
            )
        if not 0 <= partial_bits < symbol_bits:
            raise ValueError("partial_bits must be in [0, symbol_bits)")
        self.field: GaloisField = field
        self.symbol_bits = symbol_bits
        self.data_symbols = data_symbols
        self.n_symbols = n_symbols
        self.partial_bits = partial_bits

    def __repr__(self) -> str:
        return (
            f"RS({self.n_bits},{self.k_bits})"
            f"[b={self.symbol_bits}, {self.n_symbols} symbols]"
        )

    # ------------------------------------------------------------------
    # Bit accounting (what Table IV calls "extra bits")
    # ------------------------------------------------------------------

    @cached_property
    def n_bits(self) -> int:
        """Physical codeword bits (honors the partial last symbol)."""
        full = self.n_symbols * self.symbol_bits
        if self.partial_bits:
            full -= self.symbol_bits - self.partial_bits
        return full

    @cached_property
    def k_bits(self) -> int:
        """Physical data bits."""
        return self.n_bits - self.CHECK_SYMBOLS * self.symbol_bits

    @property
    def check_bits(self) -> int:
        return self.CHECK_SYMBOLS * self.symbol_bits

    @cached_property
    def symbol_widths(self) -> tuple[int, ...]:
        """Physical bit width of every codeword symbol."""
        return tuple(self._symbol_width(i) for i in range(self.n_symbols))

    @cached_property
    def symbol_bit_offsets(self) -> tuple[int, ...]:
        """Global channel bit offset of every symbol (prefix sums of
        :attr:`symbol_widths`) — shared by the scalar and vectorised
        device-confinement checks."""
        offsets = []
        total = 0
        for width in self.symbol_widths:
            offsets.append(total)
            total += width
        return tuple(offsets)

    # ------------------------------------------------------------------
    # Encode
    # ------------------------------------------------------------------

    def _check_data(self, data: tuple[int, ...] | list[int]) -> None:
        if len(data) != self.data_symbols:
            raise ValueError(
                f"expected {self.data_symbols} data symbols, got {len(data)}"
            )
        limit = 1 << self.symbol_bits
        for index, symbol in enumerate(data):
            if not 0 <= symbol < limit:
                raise ValueError(f"symbol {index} out of range: {symbol}")
        if self.partial_bits:
            live = (1 << self.partial_bits) - 1
            if data[-1] & ~live:
                raise ValueError(
                    "last data symbol uses virtual padding bits "
                    f"(only {self.partial_bits} physical bits exist)"
                )

    def encode(self, data: tuple[int, ...] | list[int]) -> tuple[int, ...]:
        """Systematic encode: ``data + (p0, p1)``.

        Check symbols are chosen so the codeword polynomial has roots
        alpha^1 and alpha^2: solve the 2x2 linear system over GF(2^b).
        Codeword symbol ``i`` sits at polynomial position ``i`` (data
        first, then checks at positions n-2 and n-1).
        """
        self._check_data(data)
        field = self.field
        # Partial syndromes of the data-only word (checks = 0).
        s1 = 0
        s2 = 0
        for position, symbol in enumerate(data):
            if symbol:
                s1 ^= field.mul(symbol, field.pow_alpha(position))
                s2 ^= field.mul(symbol, field.pow_alpha(2 * position))
        # Solve for checks c1 at position p = n-2, c2 at position q = n-1:
        #   c1*a^p  + c2*a^q  == s1
        #   c1*a^2p + c2*a^2q == s2
        p = self.n_symbols - 2
        q = self.n_symbols - 1
        ap, aq = field.pow_alpha(p), field.pow_alpha(q)
        ap2, aq2 = field.pow_alpha(2 * p), field.pow_alpha(2 * q)
        # determinant = a^(p+2q) + a^(q+2p) -- nonzero because p != q.
        det = field.mul(ap, aq2) ^ field.mul(aq, ap2)
        c1 = field.div(field.mul(s1, aq2) ^ field.mul(s2, aq), det)
        c2 = field.div(field.mul(s2, ap) ^ field.mul(s1, ap2), det)
        return tuple(data) + (c1, c2)

    # ------------------------------------------------------------------
    # Decode (PGZ, t = 1)
    # ------------------------------------------------------------------

    def syndromes(self, symbols: tuple[int, ...] | list[int]) -> tuple[int, int]:
        """(S1, S2) = codeword evaluated at alpha^1 and alpha^2."""
        field = self.field
        s1 = 0
        s2 = 0
        for position, symbol in enumerate(symbols):
            if symbol:
                s1 ^= field.mul(symbol, field.pow_alpha(position))
                s2 ^= field.mul(symbol, field.pow_alpha(2 * position))
        return s1, s2

    def decode(self, symbols: tuple[int, ...] | list[int]) -> RSDecodeResult:
        """Bounded-distance decode; see the module table for the rules."""
        if len(symbols) != self.n_symbols:
            raise ValueError(
                f"expected {self.n_symbols} codeword symbols, got {len(symbols)}"
            )
        field = self.field
        s1, s2 = self.syndromes(symbols)
        if s1 == 0 and s2 == 0:
            return RSDecodeResult(RSDecodeStatus.CLEAN, tuple(symbols))
        if s1 == 0 or s2 == 0:
            return RSDecodeResult(RSDecodeStatus.DETECTED, None)
        locator = field.div(s2, s1)  # == alpha^position for single errors
        position = field.log_alpha(locator)
        if position >= self.n_symbols:
            # Shortened positions do not exist physically: detected.
            return RSDecodeResult(RSDecodeStatus.DETECTED, None)
        magnitude = field.div(s1, field.pow_alpha(position))
        corrected = list(symbols)
        corrected[position] ^= magnitude
        if self.partial_bits and position == self.data_symbols - 1:
            live = (1 << self.partial_bits) - 1
            if corrected[position] & ~live:
                # Correction lands on virtual padding bits: impossible
                # for a real single-symbol error, hence detected.
                return RSDecodeResult(RSDecodeStatus.DETECTED, None)
        return RSDecodeResult(
            RSDecodeStatus.CORRECTED,
            tuple(corrected),
            error_position=position,
            error_magnitude=magnitude,
        )

    # ------------------------------------------------------------------
    # Bit-level convenience (shared geometry with MUSE experiments)
    # ------------------------------------------------------------------

    def encode_bits(self, data: int) -> int:
        """Encode an integer of ``k_bits`` into an ``n_bits`` codeword.

        Symbol 0 occupies the least-significant bits.
        """
        if not 0 <= data < (1 << self.k_bits):
            raise ValueError(f"data must fit in {self.k_bits} bits")
        data_syms = []
        remaining = data
        for index in range(self.data_symbols):
            width = self._symbol_width(index)
            data_syms.append(remaining & ((1 << width) - 1))
            remaining >>= width
        codeword_syms = self.encode(data_syms)
        return self.pack(codeword_syms)

    def _symbol_width(self, index: int) -> int:
        if self.partial_bits and index == self.data_symbols - 1:
            return self.partial_bits
        return self.symbol_bits

    def pack(self, symbols: tuple[int, ...] | list[int]) -> int:
        """Pack codeword symbols into an integer (symbol 0 in low bits)."""
        value = 0
        for index, symbol in enumerate(symbols):
            width = self.symbol_widths[index]
            if symbol >> width:
                raise ValueError(
                    f"symbol {index} value {symbol:#x} exceeds its "
                    f"{width} physical bits"
                )
            value |= symbol << self.symbol_bit_offsets[index]
        return value

    def unpack(self, codeword: int) -> tuple[int, ...]:
        """Inverse of :meth:`pack`."""
        if not 0 <= codeword < (1 << self.n_bits):
            raise ValueError(f"codeword must fit in {self.n_bits} bits")
        return tuple(
            (codeword >> offset) & ((1 << width) - 1)
            for offset, width in zip(self.symbol_bit_offsets, self.symbol_widths)
        )

    def decode_bits(self, codeword: int) -> tuple[RSDecodeStatus, int | None]:
        """Bit-level decode; returns (status, data or None)."""
        result = self.decode(self.unpack(codeword))
        if result.symbols is None:
            return result.status, None
        data = 0
        offset = 0
        for index in range(self.data_symbols):
            width = self._symbol_width(index)
            data |= result.symbols[index] << offset
            offset += width
        return result.status, data


def rs_144_128() -> RSCode:
    """The commercial ChipKill baseline: 8-bit symbols, 18 per codeword."""
    return RSCode(symbol_bits=8, data_symbols=16)


def rs_80_64() -> RSCode:
    """The DDR5-channel baseline: 8-bit symbols, 10 per codeword."""
    return RSCode(symbol_bits=8, data_symbols=8)


def rs_for_channel(symbol_bits: int, channel_bits: int) -> RSCode:
    """Largest RS code with ``symbol_bits`` symbols in a fixed channel.

    Produces the Table IV design points: for a 144-bit channel,
    b=8 -> RS(144,128); b=7 -> RS(144,130) with a partial symbol;
    b=6 -> RS(144,132); b=5 -> RS(144,134) with a partial symbol.
    """
    n_symbols = -(-channel_bits // symbol_bits)  # ceil
    partial = channel_bits % symbol_bits
    partial_bits = partial if partial else 0
    return RSCode(
        symbol_bits=symbol_bits,
        data_symbols=n_symbols - RSCode.CHECK_SYMBOLS,
        partial_bits=partial_bits,
    )
