"""Batch Reed-Solomon decode engines (scalar reference vs vectorised numpy).

The RS analogue of :mod:`repro.engine`: one :class:`RsDecodeEngine`
binds an :class:`~repro.rs.reed_solomon.RSCode` to a batch execution
strategy behind the same backend registry semantics the MUSE engine
uses (``resolve_backend`` — explicit ``numpy`` raises
:class:`BackendUnavailableError` when numpy is missing, ``auto``
degrades to ``scalar``).

Codeword batches are ``(batch, n_symbols)`` uint32 symbol arrays.  The
numpy backend runs the whole t=1 PGZ flow vectorised:

1. **Syndromes** — one doubled-exp-table gather per weight vector
   (``alpha^i`` and ``alpha^2i`` logs are just ``i`` and ``2i mod
   order``), then an XOR reduction along the symbol axis.
2. **Locator/position** — ``log(S2) - log(S1) mod order`` *is* the
   error position; no Chien search, one subtraction per word.
3. **Validity** — shortened positions (``>= n_symbols``) and partial
   last-symbol corrections that touch virtual padding bits both detect,
   exactly like the scalar decoder.
4. **Device policy** — the x4 confinement check is one gather into a
   precomputed ``(position, magnitude) -> confined`` table built from
   the code's symbol bit-offset prefix sums (devices are contiguous, so
   confinement reduces to the lowest and highest flipped bit landing in
   the same device).

Per-word outcomes reuse the MUSE engine's four tally-aligned status
codes; the fourth bucket is the device-confinement veto rather than a
correction ripple.  Corruption streams are generated once, vectorised
(:func:`rs_msed_corruption_batch`), independent of the decode backend —
a fixed ``(trials, seed)`` run therefore tallies byte-identically on
both backends.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine import resolve_backend
from repro.engine.base import (
    BackendUnavailableError,
    STATUS_CLEAN,
    STATUS_CORRECTED,
    STATUS_DETECTED_NO_MATCH,
    STATUS_DETECTED_RIPPLE,
)
from repro.rs.reed_solomon import RSCode, RSDecodeResult, RSDecodeStatus

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

#: RS name for the fourth status bucket: the PGZ correction was valid
#: but could not have been produced by a single failed device.
STATUS_DETECTED_CONFINEMENT = STATUS_DETECTED_RIPPLE

RS_STATUS_NAMES = (
    "clean",
    "corrected",
    "detected_no_match",
    "detected_confinement",
)


def device_confined(
    code: RSCode, position: int, magnitude: int, device_bits: int
) -> bool:
    """Would this correction be producible by one failed device?

    Devices own contiguous ``device_bits`` ranges of the channel, so
    the flipped bits are confined iff the lowest and highest of them
    fall in the same device.
    """
    if magnitude == 0:
        return True
    offset = code.symbol_bit_offsets[position]
    low = offset + ((magnitude & -magnitude).bit_length() - 1)
    high = offset + magnitude.bit_length() - 1
    return low // device_bits == high // device_bits


# ----------------------------------------------------------------------
# Batch results
# ----------------------------------------------------------------------

class RsBatchResult:
    """Outcome of decoding one batch of RS codewords.

    ``statuses`` / ``counts()`` are the cheap tally views;
    ``results()`` reconstructs per-word :class:`RSDecodeResult` objects
    identical to ``code.decode`` — the device-policy verdict lives only
    in the status codes (the bounded-distance decoder itself still
    reports such words as CORRECTED, as the scalar decoder does).
    """

    code: RSCode

    @property
    def statuses(self) -> Sequence[int]:
        raise NotImplementedError

    def counts(self) -> tuple[int, int, int, int]:
        """``(clean, corrected, detected_no_match, detected_confinement)``."""
        raise NotImplementedError

    def results(self) -> list[RSDecodeResult]:
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.statuses)


class ScalarRsBatchResult(RsBatchResult):
    def __init__(self, code, statuses, results):
        self.code = code
        self._statuses = statuses
        self._results = results

    @property
    def statuses(self) -> Sequence[int]:
        return self._statuses

    def counts(self) -> tuple[int, int, int, int]:
        buckets = [0, 0, 0, 0]
        for status in self._statuses:
            buckets[status] += 1
        return tuple(buckets)

    def results(self) -> list[RSDecodeResult]:
        return list(self._results)


class NumpyRsBatchResult(RsBatchResult):
    """Batch result backed by symbol arrays; tuples materialise lazily."""

    def __init__(self, code, statuses, words, corrected, positions, magnitudes):
        self.code = code
        self._statuses = statuses
        self._words = words
        self._corrected = corrected
        self._positions = positions
        self._magnitudes = magnitudes

    @property
    def statuses(self) -> Sequence[int]:
        return self._statuses

    def counts(self) -> tuple[int, int, int, int]:
        return tuple(int(c) for c in np.bincount(self._statuses, minlength=4)[:4])

    def results(self) -> list[RSDecodeResult]:
        received = self._words.tolist()
        corrected = self._corrected.tolist()
        positions = self._positions.tolist()
        magnitudes = self._magnitudes.tolist()
        out = []
        for i, status in enumerate(self._statuses.tolist()):
            if status == STATUS_CLEAN:
                out.append(
                    RSDecodeResult(RSDecodeStatus.CLEAN, tuple(received[i]))
                )
            elif status == STATUS_DETECTED_NO_MATCH:
                out.append(RSDecodeResult(RSDecodeStatus.DETECTED, None))
            else:  # CORRECTED, with or without the policy veto
                out.append(
                    RSDecodeResult(
                        RSDecodeStatus.CORRECTED,
                        tuple(corrected[i]),
                        error_position=positions[i],
                        error_magnitude=magnitudes[i],
                    )
                )
        return out


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------

class RsDecodeEngine:
    """One RS code bound to one batch-execution strategy.

    ``device_bits`` enables the device-confinement decode policy
    (``None`` disables it); the policy only affects which of the two
    "corrected" status buckets a PGZ correction lands in.
    """

    #: registry name of the backend ("scalar" or "numpy")
    name: str

    def __init__(self, code: RSCode, device_bits: int | None = 4):
        self.code = code
        self.device_bits = device_bits

    def __repr__(self) -> str:
        policy = (
            f", x{self.device_bits} policy" if self.device_bits is not None else ""
        )
        return f"{type(self).__name__}({self.code!r}{policy})"

    def encode_batch(self, data) -> list[tuple[int, ...]]:
        """Systematically encode a batch of data-symbol rows."""
        raise NotImplementedError

    def decode_batch(self, words) -> RsBatchResult:
        """PGZ-decode a batch of codeword-symbol rows.

        ``words`` may be a sequence of symbol sequences or (for the
        numpy backend, zero-copy) a ``(B, n_symbols)`` uint32 array.
        """
        raise NotImplementedError


def _as_symbol_rows(words) -> list[list[int]]:
    """Accept a symbol-row sequence or an ndarray from the numpy side."""
    if hasattr(words, "dtype"):
        return words.tolist()
    return [list(row) for row in words]


class ScalarRsEngine(RsDecodeEngine):
    """Reference backend: one ``RSCode.decode`` call per word."""

    name = "scalar"

    def encode_batch(self, data) -> list[tuple[int, ...]]:
        encode = self.code.encode
        return [encode(row) for row in _as_symbol_rows(data)]

    def decode_batch(self, words) -> ScalarRsBatchResult:
        code = self.code
        device_bits = self.device_bits
        statuses = []
        results = []
        for row in _as_symbol_rows(words):
            result = code.decode(row)
            if result.status is RSDecodeStatus.CLEAN:
                statuses.append(STATUS_CLEAN)
            elif result.status is RSDecodeStatus.DETECTED:
                statuses.append(STATUS_DETECTED_NO_MATCH)
            elif device_bits is not None and not device_confined(
                code, result.error_position, result.error_magnitude, device_bits
            ):
                statuses.append(STATUS_DETECTED_CONFINEMENT)
            else:
                statuses.append(STATUS_CORRECTED)
            results.append(result)
        return ScalarRsBatchResult(code, statuses, results)


class NumpyRsEngine(RsDecodeEngine):
    """Vectorised backend over ``(batch, n_symbols)`` uint32 codewords."""

    name = "numpy"

    def __init__(self, code: RSCode, device_bits: int | None = 4):
        if np is None:
            raise BackendUnavailableError(
                "numpy backend requested but numpy is missing"
            )
        super().__init__(code, device_bits)
        field = code.field
        order = field.order
        n = code.n_symbols
        positions = np.arange(n, dtype=np.int64)
        # Syndrome weight logs: log(alpha^i) == i, log(alpha^2i) == 2i mod q.
        self._w1_log = positions
        self._w2_log = (2 * positions) % order
        self._order = order
        # Check-symbol solve constants (see RSCode.encode).
        p, q = n - 2, n - 1
        ap, aq = field.pow_alpha(p), field.pow_alpha(q)
        ap2, aq2 = field.pow_alpha(2 * p), field.pow_alpha(2 * q)
        self._enc_aq, self._enc_aq2 = aq, aq2
        self._enc_ap, self._enc_ap2 = ap, ap2
        self._enc_det = field.mul(ap, aq2) ^ field.mul(aq, ap2)
        # Partial-last-symbol padding mask (0 disables the check).
        self._pad_mask = np.uint32(
            ((1 << code.symbol_bits) - (1 << code.partial_bits))
            if code.partial_bits
            else 0
        )
        self._partial_position = code.data_symbols - 1
        # Device-confinement lookup: (position, magnitude) -> confined.
        # Devices are contiguous bit ranges, so a correction is confined
        # iff its lowest and highest flipped bits share a device.
        if device_bits is not None:
            offsets = np.asarray(code.symbol_bit_offsets, dtype=np.int64)
            values = np.arange(1 << code.symbol_bits, dtype=np.int64)
            # frexp exponents are exact bit lengths for ints < 2^53.
            low = np.frexp((values & -values).astype(np.float64))[1] - 1
            high = np.frexp(values.astype(np.float64))[1] - 1
            confined = (
                (offsets[:, None] + low[None, :]) // device_bits
                == (offsets[:, None] + high[None, :]) // device_bits
            )
            confined[:, 0] = True  # magnitude 0 never occurs, keep it benign
            self._confined = confined
        else:
            self._confined = None

    # -- batches -------------------------------------------------------

    def as_batch(self, words) -> np.ndarray:
        """Coerce symbol rows into this engine's ``(B, n)`` uint32 batch."""
        code = self.code
        if isinstance(words, np.ndarray) and words.dtype == np.uint32:
            batch = words
        else:
            batch = np.asarray(_as_symbol_rows(words), dtype=np.uint32)
        if batch.ndim != 2 or batch.shape[1] != code.n_symbols:
            raise ValueError(
                f"expected a (batch, {code.n_symbols}) symbol array, "
                f"got shape {batch.shape}"
            )
        if batch.size and int(batch.max()) >= code.field.size:
            raise ValueError(
                f"symbol values must fit in GF(2^{code.symbol_bits})"
            )
        return batch

    # -- encode --------------------------------------------------------

    def encode_arrays(self, data: np.ndarray) -> np.ndarray:
        """Systematic encode of a ``(B, k)`` uint32 data batch."""
        code = self.code
        field = code.field
        exp2, log = field.exp_nd, field.log_nd
        k = code.data_symbols
        logd = log[data]
        nz = data != 0
        s1 = np.bitwise_xor.reduce(
            np.where(nz, exp2[logd + self._w1_log[:k]], np.uint32(0)), axis=1
        )
        s2 = np.bitwise_xor.reduce(
            np.where(nz, exp2[logd + self._w2_log[:k]], np.uint32(0)), axis=1
        )
        c1 = field.div_batch(
            field.mul_batch(s1, self._enc_aq2) ^ field.mul_batch(s2, self._enc_aq),
            self._enc_det,
        )
        c2 = field.div_batch(
            field.mul_batch(s2, self._enc_ap) ^ field.mul_batch(s1, self._enc_ap2),
            self._enc_det,
        )
        return np.concatenate(
            [data, c1[:, None], c2[:, None]], axis=1
        ).astype(np.uint32)

    def encode_batch(self, data) -> list[tuple[int, ...]]:
        code = self.code
        rows = _as_symbol_rows(data)
        for row in rows:
            code._check_data(row)
        encoded = self.encode_arrays(np.asarray(rows, dtype=np.uint32))
        return [tuple(row) for row in encoded.tolist()]

    # -- decode --------------------------------------------------------

    def decode_arrays(self, words: np.ndarray) -> NumpyRsBatchResult:
        """The whole t=1 PGZ flow over a ``(B, n)`` uint32 batch."""
        code = self.code
        field = code.field
        exp2, log = field.exp_nd, field.log_nd
        order = self._order
        logw = log[words]
        nz = words != 0
        s1 = np.bitwise_xor.reduce(
            np.where(nz, exp2[logw + self._w1_log], np.uint32(0)), axis=1
        )
        s2 = np.bitwise_xor.reduce(
            np.where(nz, exp2[logw + self._w2_log], np.uint32(0)), axis=1
        )
        batch = words.shape[0]
        statuses = np.full(batch, STATUS_DETECTED_NO_MATCH, dtype=np.uint8)
        statuses[(s1 == 0) & (s2 == 0)] = STATUS_CLEAN
        corrected = words.copy()
        positions = np.full(batch, -1, dtype=np.int64)
        magnitudes = np.zeros(batch, dtype=np.uint32)
        candidates = np.flatnonzero((s1 != 0) & (s2 != 0))
        if candidates.size:
            l1 = log[s1[candidates]]
            l2 = log[s2[candidates]]
            # locator X = S2/S1 == alpha^position: the log difference IS
            # the position, no Chien sweep needed.
            pos = (l2 - l1) % order
            in_range = pos < code.n_symbols
            rows = candidates[in_range]
            pos = pos[in_range]
            magnitude = exp2[l1[in_range] - pos + order].astype(np.uint32)
            fixed = words[rows, pos] ^ magnitude
            valid = np.ones(rows.size, dtype=bool)
            if self._pad_mask:
                # Corrections landing on virtual padding bits of the
                # partial last data symbol are impossible for a real
                # single-symbol error: detected.
                valid &= ~(
                    (pos == self._partial_position)
                    & ((fixed & self._pad_mask) != 0)
                )
            good_rows = rows[valid]
            corrected[good_rows, pos[valid]] = fixed[valid]
            positions[good_rows] = pos[valid]
            magnitudes[good_rows] = magnitude[valid]
            if self._confined is not None:
                confined = self._confined[pos[valid], magnitude[valid]]
                statuses[good_rows[confined]] = STATUS_CORRECTED
                statuses[good_rows[~confined]] = STATUS_DETECTED_CONFINEMENT
            else:
                statuses[good_rows] = STATUS_CORRECTED
        return NumpyRsBatchResult(
            code, statuses, words, corrected, positions, magnitudes
        )

    def decode_batch(self, words) -> NumpyRsBatchResult:
        return self.decode_arrays(self.as_batch(words))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def get_rs_engine(
    code: RSCode, backend: str = "auto", device_bits: int | None = 4
) -> RsDecodeEngine:
    """Build (or fetch the cached) RS engine for one code.

    Shares the MUSE backend registry (:mod:`repro.engine`): backends
    registered with an ``rs_factory`` are selectable here by name, an
    explicit request for an unavailable backend raises
    :class:`BackendUnavailableError`, and ``auto`` resolves to the
    fastest available backend.
    """
    from repro.engine import rs_engine_factory

    name = resolve_backend(backend)
    cache = code.__dict__.setdefault("_rs_engine_cache", {})
    key = (name, device_bits)
    engine = cache.get(key)
    if engine is None:
        engine = rs_engine_factory(name)(code, device_bits)
        cache[key] = engine
    return engine


# ----------------------------------------------------------------------
# Shared corruption generation
# ----------------------------------------------------------------------

def rs_msed_corruption_batch(
    code: RSCode, trials: int, seed: int, k_symbols: int = 2
):
    """Encode ``trials`` random words and corrupt ``k_symbols`` each.

    Returns a ``(trials, n_symbols)`` uint32 batch of corrupted
    codewords, consumable by either backend — the RS analogue of
    :func:`repro.engine.msed_corruption_batch`, and the reason a fixed
    ``(trials, seed)`` run tallies identically scalar-vs-numpy.  A thin
    wrapper over chunk ``[0, trials)`` of the counter-hashed stream in
    :mod:`repro.orchestrate.corruption`, so the monolithic and chunked
    generators can never diverge.  Requires numpy (it is the
    generator, not a decoder).
    """
    from repro.orchestrate.corruption import rs_corruption_chunk
    from repro.orchestrate.plan import Chunk
    from repro.orchestrate.rng import derive_key

    return rs_corruption_chunk(
        code, Chunk(0, trials), derive_key(seed), k_symbols
    )


__all__ = [
    "NumpyRsEngine",
    "RsBatchResult",
    "RsDecodeEngine",
    "RS_STATUS_NAMES",
    "STATUS_CLEAN",
    "STATUS_CORRECTED",
    "STATUS_DETECTED_CONFINEMENT",
    "STATUS_DETECTED_NO_MATCH",
    "ScalarRsEngine",
    "device_confined",
    "get_rs_engine",
    "rs_msed_corruption_batch",
]
