"""ChipKill practicality analysis (paper Section VII-A).

A code only provides ChipKill if a single *device* failure is guaranteed
to corrupt at most one *code symbol*.  Reed-Solomon codes whose symbol
size is not a multiple of the device width interleave device bits across
symbol boundaries: the paper's example is a 5-bit-symbol RS code over x4
devices, where one dead chip corrupts two adjacent symbols and the
single-symbol corrector miscorrects or fails.

This module makes that geometric argument executable: it maps device
bit ranges onto symbol bit ranges and reports whether every device is
confined to one symbol.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChipkillAssessment:
    """Verdict for one (symbol size, device width, channel) geometry."""

    symbol_bits: int
    device_bits: int
    channel_bits: int
    chipkill: bool
    worst_device: int | None
    symbols_touched: int

    def explain(self) -> str:
        if self.chipkill:
            return (
                f"{self.symbol_bits}-bit symbols align with {self.device_bits}-bit "
                f"devices: every device maps into exactly one symbol (ChipKill holds)"
            )
        return (
            f"{self.symbol_bits}-bit symbols over {self.device_bits}-bit devices: "
            f"device {self.worst_device} spans {self.symbols_touched} symbols; a "
            f"single chip failure becomes a multi-symbol error (no ChipKill)"
        )


def device_symbol_span(
    device: int, device_bits: int, symbol_bits: int
) -> set[int]:
    """Indices of the symbols containing any bit of ``device``.

    Bits are laid out contiguously: device ``d`` owns bits
    ``[d*w, (d+1)*w)`` and symbol ``s`` owns bits ``[s*b, (s+1)*b)`` —
    the standard sequential striping for both code families.
    """
    first_bit = device * device_bits
    last_bit = first_bit + device_bits - 1
    return set(range(first_bit // symbol_bits, last_bit // symbol_bits + 1))


def assess(
    symbol_bits: int, device_bits: int, channel_bits: int
) -> ChipkillAssessment:
    """Check whether every device in the channel maps into one symbol."""
    if channel_bits % device_bits:
        raise ValueError(
            f"channel of {channel_bits} bits is not a whole number of "
            f"{device_bits}-bit devices"
        )
    worst_device = None
    worst_span = 1
    for device in range(channel_bits // device_bits):
        span = len(device_symbol_span(device, device_bits, symbol_bits))
        if span > worst_span:
            worst_span = span
            worst_device = device
    return ChipkillAssessment(
        symbol_bits=symbol_bits,
        device_bits=device_bits,
        channel_bits=channel_bits,
        chipkill=worst_span == 1,
        worst_device=worst_device,
        symbols_touched=worst_span,
    )


def practical_for_dram(symbol_bits: int, device_bits: int = 4) -> bool:
    """The paper's shorthand: symbol size must be a device-width multiple.

    6-bit symbols fail not only alignment but existence — "6-bit-wide
    DRAMs do not exist" (Section VII-A); the alignment test subsumes
    that argument for the x4 devices the table assumes.
    """
    return symbol_bits % device_bits == 0
