"""The numba Reed-Solomon backend: JIT batch PGZ with typed GF tables.

The RS half of the JIT tentpole (MUSE lives in
:mod:`repro.engine.numba_backend`, which also provides the shared
splitmix64 kernel helpers).  The whole t=1 PGZ flow — syndrome gathers
through the doubled exp table, log-difference locator, padding veto,
x4 device-confinement lookup — runs per word inside one
``@njit(parallel=True)`` kernel over ``(batch, n_symbols)`` uint32
codewords, with the GF log/antilog tables passed as typed arrays.

:meth:`NumbaRsEngine.fused_chunk_counts` additionally replays the
counter-hashed corruption stream in-kernel (data-symbol draws, GF
check-symbol solve, two-minimum symbol choice, never-the-original
replacement — the compiled twin of
:func:`repro.orchestrate.corruption.rs_corruption_chunk`) and tallies
the 4 statuses without materialising any batch array.  Exact for
``k_symbols <= 2`` (the argpartition slot order is only pinned there);
``None`` otherwise, which sends the caller down the generate-then-
decode path.

All kernels run pure-Python via :mod:`repro.engine._jit` when numba is
absent; in-kernel GF state is int64 (every value < 2^16) and splitmix64
state uint64, never mixed — see the MUSE module note.
"""

from __future__ import annotations

import numpy as np

from repro.engine._jit import NUMBA_AVAILABLE, njit, prange
from repro.engine.numba_backend import _GOLDEN, _U1, _UMAX, _mix64
from repro.rs.engine import NumpyRsBatchResult, NumpyRsEngine

_CLEAN = 0
_CORRECTED = 1
_NO_MATCH = 2
_CONFINEMENT = 3


@njit(cache=True)
def _gf_mul(a, b, exp2, log):
    """Scalar field product via the doubled exp table (0 absorbs)."""
    if a == 0 or b == 0:
        return np.int64(0)
    return np.int64(exp2[log[a] + log[b]])


@njit(cache=True)
def _gf_div(a, b, exp2, log, order):
    """Scalar field quotient; ``b`` is a known-nonzero constant here."""
    if a == 0:
        return np.int64(0)
    return np.int64(exp2[log[a] - log[b] + order])


@njit(cache=True)
def _rs_decode_row(
    word, fixed, exp2, log, order, n_symbols, pad_mask, partial_position,
    confined, has_policy,
):
    """t=1 PGZ for one codeword row; returns ``(status, pos, mag)``.

    Copies the received word into ``fixed`` and applies an accepted
    correction in place, mirroring NumpyRsEngine.decode_arrays row for
    row (the corrected symbol is written even when the device policy
    vetoes delivery, as the vectorised path does).
    """
    s1 = np.int64(0)
    s2 = np.int64(0)
    for i in range(n_symbols):
        value = np.int64(word[i])
        fixed[i] = word[i]
        if value != 0:
            lv = log[value]
            s1 ^= np.int64(exp2[lv + i])
            s2 ^= np.int64(exp2[lv + ((2 * i) % order)])
    if s1 == 0 and s2 == 0:
        return _CLEAN, np.int64(-1), np.int64(0)
    if s1 == 0 or s2 == 0:
        return _NO_MATCH, np.int64(-1), np.int64(0)
    l1 = log[s1]
    l2 = log[s2]
    # locator X = S2/S1 == alpha^position: the log difference IS the
    # position; out-of-range hits are shortened (virtual) symbols.
    position = (l2 - l1) % order
    if position >= n_symbols:
        return _NO_MATCH, np.int64(-1), np.int64(0)
    magnitude = np.int64(exp2[l1 - position + order])
    corrected = np.int64(word[position]) ^ magnitude
    if pad_mask != 0 and position == partial_position:
        if (corrected & pad_mask) != 0:
            return _NO_MATCH, np.int64(-1), np.int64(0)
    fixed[position] = np.uint32(corrected)
    if has_policy and confined[position, magnitude] == 0:
        return _CONFINEMENT, np.int64(position), magnitude
    return _CORRECTED, np.int64(position), magnitude


@njit(cache=True, parallel=True)
def _rs_decode_batch_kernel(
    words, corrected, statuses, positions, magnitudes, exp2, log, order,
    n_symbols, pad_mask, partial_position, confined, has_policy,
):
    for i in prange(words.shape[0]):
        status, position, magnitude = _rs_decode_row(
            words[i], corrected[i], exp2, log, order, n_symbols,
            pad_mask, partial_position, confined, has_policy,
        )
        statuses[i] = status
        positions[i] = position
        magnitudes[i] = magnitude


@njit(cache=True, parallel=True)
def _rs_fused_chunk_kernel(
    start, size, k_symbols, exp2, log, order, n_symbols, data_symbols,
    widths, pad_mask, partial_position, confined, has_policy,
    aq, aq2, ap, ap2, det, data_keys, choice_keys, value_keys,
):
    """Corruption draw -> encode -> corrupt -> decode -> tally, fused.

    Per global trial this replays ``rs_clean_chunk`` (masked splitmix64
    data draws, GF check-symbol solve) and the shared choose/replace
    recipe, then PGZ-decodes in place.  ``k_symbols`` must be 1 or 2.
    """
    n_clean = 0
    n_corrected = 0
    n_no_match = 0
    n_confinement = 0
    for i in prange(size):
        counter = (np.uint64(start + i) + _U1) * _GOLDEN
        word = np.empty(n_symbols, np.uint32)
        fixed = np.empty(n_symbols, np.uint32)
        # -- data draws + systematic encode (rs_clean_chunk) ----------
        s1 = np.int64(0)
        s2 = np.int64(0)
        for j in range(data_symbols):
            mask = (_U1 << np.uint64(widths[j])) - _U1
            value = np.int64(_mix64(data_keys[j] + counter) & mask)
            word[j] = np.uint32(value)
            if value != 0:
                lv = log[value]
                s1 ^= np.int64(exp2[lv + j])
                s2 ^= np.int64(exp2[lv + ((2 * j) % order)])
        c1 = _gf_div(
            _gf_mul(s1, aq2, exp2, log) ^ _gf_mul(s2, aq, exp2, log),
            det, exp2, log, order,
        )
        c2 = _gf_div(
            _gf_mul(s2, ap, exp2, log) ^ _gf_mul(s1, ap2, exp2, log),
            det, exp2, log, order,
        )
        word[data_symbols] = np.uint32(c1)
        word[data_symbols + 1] = np.uint32(c2)
        # -- choose the k smallest of n iid scores (_choose_symbols) --
        best = _mix64(choice_keys[0] + counter)
        best_index = 0
        second = _UMAX
        second_index = -1
        for s in range(1, n_symbols):
            score = _mix64(choice_keys[s] + counter)
            if score < best:
                second = best
                second_index = best_index
                best = score
                best_index = s
            elif score < second:
                second = score
                second_index = s
        if second_index < 0:  # all-ties-at-max; probability ~ n * 2^-64
            second_index = 1 if best_index == 0 else 0
        # -- replace, never with the original (_replace_chosen_symbols)
        for slot in range(k_symbols):
            symbol = best_index if slot == 0 else second_index
            original = np.uint64(word[symbol])
            draw = _mix64(value_keys[slot] + counter) % (
                (_U1 << np.uint64(widths[symbol])) - _U1
            )
            if draw >= original:
                draw += _U1
            word[symbol] = np.uint32(draw)
        # -- decode + tally -------------------------------------------
        status, _, _ = _rs_decode_row(
            word, fixed, exp2, log, order, n_symbols, pad_mask,
            partial_position, confined, has_policy,
        )
        if status == _CLEAN:
            n_clean += 1
        elif status == _CORRECTED:
            n_corrected += 1
        elif status == _NO_MATCH:
            n_no_match += 1
        else:
            n_confinement += 1
    return n_clean, n_corrected, n_no_match, n_confinement


class NumbaRsEngine(NumpyRsEngine):
    """JIT RS backend: numpy's tables, numba's kernels.

    Subclasses the numpy engine for table construction (syndrome weight
    logs, encode constants, the confinement lookup) and overrides the
    batch decode with the compiled kernel.  Cached per
    ``(code, device_bits)`` by ``get_rs_engine``, so workers compile
    once per process.
    """

    name = "numba"

    def __init__(self, code, device_bits: int | None = 4):
        super().__init__(code, device_bits)
        field = code.field
        self._exp2_nd = field.exp_nd
        self._log_nd = field.log_nd
        self._widths_nd = np.asarray(code.symbol_widths, dtype=np.int64)
        self._pad_mask_i = int(self._pad_mask)
        if self._confined is not None:
            self._confined_u8 = self._confined.astype(np.uint8)
            self._has_policy = True
        else:
            self._confined_u8 = np.zeros((1, 1), dtype=np.uint8)
            self._has_policy = False

    def decode_arrays(self, words: np.ndarray) -> NumpyRsBatchResult:
        words = np.ascontiguousarray(words, dtype=np.uint32)
        batch = words.shape[0]
        corrected = np.empty_like(words)
        statuses = np.empty(batch, dtype=np.uint8)
        positions = np.empty(batch, dtype=np.int64)
        magnitudes = np.empty(batch, dtype=np.uint32)
        _rs_decode_batch_kernel(
            words, corrected, statuses, positions, magnitudes,
            self._exp2_nd, self._log_nd, self._order,
            self.code.n_symbols, self._pad_mask_i, self._partial_position,
            self._confined_u8, self._has_policy,
        )
        return NumpyRsBatchResult(
            self.code, statuses, words, corrected, positions, magnitudes
        )

    def fused_chunk_counts(self, chunk, key: int, k_symbols: int):
        """The 4-status counts of one fused corruption->decode chunk.

        ``(clean, corrected, no_match, confinement)`` — byte-identical
        to decoding ``rs_corruption_chunk`` — or ``None`` when
        ``k_symbols`` falls outside the exactly-replayable 1..2 range.
        """
        code = self.code
        if not 1 <= k_symbols <= min(2, code.n_symbols):
            return None
        from repro.orchestrate.corruption import (
            STREAM_CHOICE,
            STREAM_DATA,
            STREAM_VALUE,
        )
        from repro.orchestrate.rng import derive_key

        data_keys = np.array(
            [
                derive_key(key, STREAM_DATA, j)
                for j in range(code.data_symbols)
            ],
            dtype=np.uint64,
        )
        choice_keys = np.array(
            [
                derive_key(key, STREAM_CHOICE, s)
                for s in range(code.n_symbols)
            ],
            dtype=np.uint64,
        )
        value_keys = np.array(
            [derive_key(key, STREAM_VALUE, slot) for slot in range(k_symbols)],
            dtype=np.uint64,
        )
        counts = _rs_fused_chunk_kernel(
            chunk.start, chunk.size, k_symbols, self._exp2_nd, self._log_nd,
            self._order, code.n_symbols, code.data_symbols, self._widths_nd,
            self._pad_mask_i, self._partial_position, self._confined_u8,
            self._has_policy, self._enc_aq, self._enc_aq2, self._enc_ap,
            self._enc_ap2, self._enc_det, data_keys, choice_keys, value_keys,
        )
        return tuple(int(count) for count in counts)

    def warmup(self) -> None:
        """Compile both kernels on a one-trial input (bench hygiene)."""
        from repro.orchestrate.plan import Chunk

        self.decode_arrays(
            np.zeros((1, self.code.n_symbols), dtype=np.uint32)
        )
        self.fused_chunk_counts(Chunk(0, 1), key=0, k_symbols=1)
        self.fused_chunk_counts(Chunk(0, 1), key=0, k_symbols=2)


__all__ = ["NUMBA_AVAILABLE", "NumbaRsEngine"]
