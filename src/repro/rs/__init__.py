"""Reed-Solomon ChipKill baseline (paper Sections VII-A/B).

* :class:`GaloisField` / :func:`get_field` — GF(2^m) table arithmetic.
* :class:`RSCode` — shortened systematic single-symbol-correcting RS
  with PGZ decoding; :func:`rs_144_128` and :func:`rs_80_64` are the
  paper's two baseline configurations, :func:`rs_for_channel` builds the
  Table IV design points (including partial-symbol shortenings).
* :mod:`repro.rs.chipkill` — device/symbol alignment analysis behind the
  "not practical" entries of Table IV.
"""

from repro.rs.chipkill import (
    ChipkillAssessment,
    assess,
    device_symbol_span,
    practical_for_dram,
)
from repro.rs.gf import PRIMITIVE_POLYNOMIALS, GaloisField, get_field
from repro.rs.reed_solomon import (
    RSCode,
    RSDecodeResult,
    RSDecodeStatus,
    rs_80_64,
    rs_144_128,
    rs_for_channel,
)

__all__ = [
    "ChipkillAssessment",
    "GaloisField",
    "PRIMITIVE_POLYNOMIALS",
    "RSCode",
    "RSDecodeResult",
    "RSDecodeStatus",
    "assess",
    "device_symbol_span",
    "get_field",
    "practical_for_dram",
    "rs_144_128",
    "rs_80_64",
    "rs_for_channel",
]
