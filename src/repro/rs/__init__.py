"""Reed-Solomon ChipKill baseline (paper Sections VII-A/B).

* :class:`GaloisField` / :func:`get_field` — GF(2^m) table arithmetic.
* :class:`RSCode` — shortened systematic single-symbol-correcting RS
  with PGZ decoding; :func:`rs_144_128` and :func:`rs_80_64` are the
  paper's two baseline configurations, :func:`rs_for_channel` builds the
  Table IV design points (including partial-symbol shortenings).
* :mod:`repro.rs.chipkill` — device/symbol alignment analysis behind the
  "not practical" entries of Table IV.
* :mod:`repro.rs.engine` — batch decode engines (scalar reference +
  vectorised numpy PGZ) behind :func:`get_rs_engine`, with shared
  vectorised corruption generation for the Monte-Carlo studies.
"""

from repro.rs.chipkill import (
    ChipkillAssessment,
    assess,
    device_symbol_span,
    practical_for_dram,
)
from repro.rs.engine import (
    RsDecodeEngine,
    device_confined,
    get_rs_engine,
    rs_msed_corruption_batch,
)
from repro.rs.gf import PRIMITIVE_POLYNOMIALS, GaloisField, get_field
from repro.rs.reed_solomon import (
    RSCode,
    RSDecodeResult,
    RSDecodeStatus,
    rs_80_64,
    rs_144_128,
    rs_for_channel,
)

__all__ = [
    "ChipkillAssessment",
    "GaloisField",
    "PRIMITIVE_POLYNOMIALS",
    "RSCode",
    "RSDecodeResult",
    "RSDecodeStatus",
    "RsDecodeEngine",
    "assess",
    "device_confined",
    "device_symbol_span",
    "get_field",
    "get_rs_engine",
    "practical_for_dram",
    "rs_msed_corruption_batch",
    "rs_144_128",
    "rs_80_64",
    "rs_for_channel",
]
