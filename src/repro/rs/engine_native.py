"""The native Reed-Solomon backend: C PGZ kernels via ctypes.

The RS twin of :mod:`repro.engine.native` — subclasses
:class:`repro.rs.engine_numba.NumbaRsEngine` for the typed GF tables
and encode constants, and dispatches batch decode and the fused
corruption->decode->tally chunk to the shared kernel library compiled
by :mod:`repro.engine.cc`.  Byte-identical tallies, native speed, no
package installs.
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro.engine.base import BackendUnavailableError
from repro.rs.engine import NumpyRsBatchResult
from repro.rs.engine_numba import NumbaRsEngine

#: The C kernels use fixed stack scratch ``uint32_t word[64]``.
MAX_NATIVE_SYMBOLS = 64


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


class NativeRsEngine(NumbaRsEngine):
    """C-kernel RS backend; numba's tables, ``cc``'s code."""

    name = "native"

    def __init__(self, code, device_bits: int | None = 4):
        super().__init__(code, device_bits)
        from repro.engine.cc import load_library

        library = load_library()
        if library is None:
            raise BackendUnavailableError(
                "native kernels unavailable (no working C compiler?)"
            )
        if code.n_symbols > MAX_NATIVE_SYMBOLS:
            raise BackendUnavailableError(
                f"native kernels support up to {MAX_NATIVE_SYMBOLS} "
                f"symbols, code needs {code.n_symbols}"
            )
        self._lib = library
        self._conf_stride = self._confined_u8.shape[1]

    def decode_arrays(self, words: np.ndarray) -> NumpyRsBatchResult:
        words = np.ascontiguousarray(words, dtype=np.uint32)
        batch = words.shape[0]
        corrected = np.empty_like(words)
        statuses = np.empty(batch, dtype=np.uint8)
        positions = np.empty(batch, dtype=np.int64)
        magnitudes = np.empty(batch, dtype=np.uint32)
        self._lib.rs_decode_batch(
            _ptr(words), batch, _ptr(corrected), _ptr(statuses),
            _ptr(positions), _ptr(magnitudes), _ptr(self._exp2_nd),
            _ptr(self._log_nd), self._order, self.code.n_symbols,
            self._pad_mask_i, self._partial_position,
            _ptr(self._confined_u8), int(self._has_policy),
            self._conf_stride,
        )
        return NumpyRsBatchResult(
            self.code, statuses, words, corrected, positions, magnitudes
        )

    def fused_chunk_counts(self, chunk, key: int, k_symbols: int):
        """Fused corruption->decode->tally in C; ``None`` outside k<=2."""
        code = self.code
        if not 1 <= k_symbols <= min(2, code.n_symbols):
            return None
        from repro.orchestrate.corruption import (
            STREAM_CHOICE,
            STREAM_DATA,
            STREAM_VALUE,
        )
        from repro.orchestrate.rng import derive_key

        data_keys = np.array(
            [
                derive_key(key, STREAM_DATA, j)
                for j in range(code.data_symbols)
            ],
            dtype=np.uint64,
        )
        choice_keys = np.array(
            [
                derive_key(key, STREAM_CHOICE, s)
                for s in range(code.n_symbols)
            ],
            dtype=np.uint64,
        )
        value_keys = np.array(
            [derive_key(key, STREAM_VALUE, slot) for slot in range(k_symbols)],
            dtype=np.uint64,
        )
        counts = np.zeros(4, dtype=np.int64)
        self._lib.rs_fused_chunk(
            chunk.start, chunk.size, k_symbols, _ptr(self._exp2_nd),
            _ptr(self._log_nd), self._order, code.n_symbols,
            code.data_symbols, _ptr(self._widths_nd), self._pad_mask_i,
            self._partial_position, _ptr(self._confined_u8),
            int(self._has_policy), self._conf_stride, int(self._enc_aq),
            int(self._enc_aq2), int(self._enc_ap), int(self._enc_ap2),
            int(self._enc_det), _ptr(data_keys), _ptr(choice_keys),
            _ptr(value_keys), _ptr(counts),
        )
        return tuple(int(count) for count in counts)

    def warmup(self) -> None:
        """Nothing to JIT — compilation happened at import probe time."""


__all__ = ["MAX_NATIVE_SYMBOLS", "NativeRsEngine"]
