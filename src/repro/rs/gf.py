"""Galois-field GF(2^m) arithmetic with log/antilog tables.

The paper's Reed-Solomon baseline ("for simplicity, we picked lookup
tables to implement Galois Field arithmetic", Section VII-B) is
reproduced the same way: a generator-power table and its inverse give
O(1) multiply/divide/log, which is both the hardware structure the paper
costs (the LUTs in Table V) and a fast software path.

Two execution styles share the same tables:

* scalar ``mul``/``div``/``inv`` index a *doubled* exp table
  (``exp[i % order] == _exp2[i]`` for ``i < 2 * order``) so the hot
  path needs no ``% order`` reduction;
* :meth:`GaloisField.mul_batch` / :meth:`div_batch` /
  :meth:`pow_alpha_batch` run the same lookups over whole ndarrays for
  the vectorised Reed-Solomon engine (they require numpy and raise
  :class:`~repro.engine.base.BackendUnavailableError` without it).

Symbol sizes 2..16 bits are supported — Table IV needs 5-, 6-, 7- and
8-bit symbols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

#: Primitive polynomials (with the x^m term) for each supported field size.
PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    2: 0b111,                # x^2 + x + 1
    3: 0b1011,               # x^3 + x + 1
    4: 0b10011,              # x^4 + x + 1
    5: 0b100101,             # x^5 + x^2 + 1
    6: 0b1000011,            # x^6 + x + 1
    7: 0b10001001,           # x^7 + x^3 + 1
    8: 0b100011101,          # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,         # x^9 + x^4 + 1
    10: 0b10000001001,       # x^10 + x^3 + 1
    11: 0b100000000101,      # x^11 + x^2 + 1
    12: 0b1000001010011,     # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,    # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,   # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,  # x^15 + x + 1
    16: 0b10001000000001011, # x^16 + x^12 + x^3 + x + 1
}


@dataclass
class GaloisField:
    """GF(2^m) with exp/log tables generated from a primitive element.

    ``exp[i] == alpha^i`` for ``i in [0, 2^m - 1)`` and
    ``log[exp[i]] == i``; zero has no logarithm.
    """

    m: int
    exp: list[int] = field(init=False, repr=False)
    log: list[int] = field(init=False, repr=False)
    _exp2: list[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.m not in PRIMITIVE_POLYNOMIALS:
            supported = sorted(PRIMITIVE_POLYNOMIALS)
            raise ValueError(f"unsupported field GF(2^{self.m}); have {supported}")
        poly = PRIMITIVE_POLYNOMIALS[self.m]
        size = 1 << self.m
        self.exp = [0] * (size - 1)
        self.log = [0] * size
        value = 1
        for i in range(size - 1):
            self.exp[i] = value
            self.log[value] = i
            value <<= 1
            if value & size:
                value ^= poly
        if value != 1:
            raise AssertionError(f"polynomial {poly:#x} is not primitive")
        # Doubled exp table: any log sum/difference offset into
        # [0, 2 * order) indexes directly, with no modular reduction.
        self._exp2 = self.exp * 2

    # ------------------------------------------------------------------
    # Field operations
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of field elements, 2^m."""
        return 1 << self.m

    @property
    def order(self) -> int:
        """Multiplicative group order, 2^m - 1."""
        return (1 << self.m) - 1

    def add(self, a: int, b: int) -> int:
        """Addition == subtraction == XOR in characteristic 2."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return self._exp2[self.log[a] + self.log[b]]

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero field element")
        if a == 0:
            return 0
        return self._exp2[self.log[a] - self.log[b] + self.order]

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no inverse")
        return self._exp2[self.order - self.log[a]]

    def pow_alpha(self, i: int) -> int:
        """alpha^i for any integer i (negative allowed)."""
        return self.exp[i % self.order]

    def log_alpha(self, a: int) -> int:
        """Discrete log base alpha; raises for zero."""
        if a == 0:
            raise ValueError("zero has no discrete logarithm")
        return self.log[a]

    def poly_eval(self, coefficients: list[int], x: int) -> int:
        """Evaluate a polynomial (highest-degree coefficient first)."""
        result = 0
        for coefficient in coefficients:
            result = self.mul(result, x) ^ coefficient
        return result

    # ------------------------------------------------------------------
    # Vectorised field operations (numpy required)
    # ------------------------------------------------------------------

    def _nd_tables(self):
        """Lazily built ndarray views of the lookup tables.

        ``exp_nd`` is the doubled exp table (uint32, length 2 * order)
        and ``log_nd`` the log table (int64; index 0 holds a harmless 0
        sentinel — callers must mask zero operands themselves).
        """
        if np is None:
            from repro.engine.base import BackendUnavailableError

            raise BackendUnavailableError(
                "numpy is required for vectorised GF arithmetic"
            )
        tables = self.__dict__.get("_nd")
        if tables is None:
            tables = (
                np.array(self._exp2, dtype=np.uint32),
                np.array(self.log, dtype=np.int64),
            )
            self.__dict__["_nd"] = tables
        return tables

    @property
    def exp_nd(self):
        """Doubled exp table as a uint32 ndarray (``exp_nd[i] == alpha^i``
        for ``0 <= i < 2 * order``)."""
        return self._nd_tables()[0]

    @property
    def log_nd(self):
        """Log table as an int64 ndarray; ``log_nd[0]`` is a 0 sentinel."""
        return self._nd_tables()[1]

    def mul_batch(self, a, b):
        """Elementwise field product of two symbol ndarrays (broadcasts)."""
        exp2, log = self._nd_tables()
        a = np.asarray(a)
        b = np.asarray(b)
        product = exp2[log[a] + log[b]]
        return np.where((a == 0) | (b == 0), np.uint32(0), product)

    def div_batch(self, a, b):
        """Elementwise field quotient; raises if any divisor is zero."""
        exp2, log = self._nd_tables()
        a = np.asarray(a)
        b = np.asarray(b)
        if np.any(b == 0):
            raise ZeroDivisionError("division by zero field element")
        quotient = exp2[log[a] - log[b] + self.order]
        return np.where(a == 0, np.uint32(0), quotient)

    def pow_alpha_batch(self, i):
        """``alpha^i`` for an ndarray of integers (negative allowed)."""
        exp2, _ = self._nd_tables()
        return exp2[np.asarray(i) % self.order]


@lru_cache(maxsize=None)
def get_field(m: int) -> GaloisField:
    """Shared per-size field instance (tables are immutable in practice)."""
    return GaloisField(m)
