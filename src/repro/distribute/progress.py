"""Progress heartbeats: what ``--progress`` prints.

Two printers, both writing to stderr so they never contaminate the
report on stdout (the regression the CLI tests pin: default output is
byte-identical with the flag off, and stdout is unchanged even with it
on):

* :class:`ChunkProgress` — a plain
  :data:`~repro.orchestrate.pool.ProgressCallback` for in-process and
  process-pool runs: overall ``chunks done/total`` plus elapsed time;
* :class:`Heartbeat` — the coordinator's per-design-point line: chunks
  folded / trials folded / elapsed, emitted as results arrive from
  workers.

Both throttle to ``min_interval`` seconds between lines (0 in tests for
determinism) but always emit the final line, so even a sub-second run
shows exactly one heartbeat.

Lines go through :func:`repro.telemetry.log.log_line`, so the whole
progress surface obeys the ``REPRO_LOG`` gate (``silent`` mutes it,
``normal`` — the default — keeps historical behaviour).

Timing here uses ``time.perf_counter()`` exclusively — never
``time.time()`` — so NTP steps or a suspended laptop can't produce
negative elapsed values or spurious throttle stalls.  The same
invariant holds for lease deadlines (``time.monotonic()`` in
:mod:`repro.distribute.queue`/``coordinator``); it is pinned by a
source-level test in ``tests/distribute/test_progress.py``.
"""

from __future__ import annotations

import sys
import time
from typing import Any, TextIO

from repro.telemetry.log import log_line


class ChunkProgress:
    """``progress(done, total)`` printer for single-host runs."""

    def __init__(
        self, stream: TextIO | None = None, min_interval: float = 1.0
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._started = time.perf_counter()
        self._last = -float("inf")

    def __call__(self, done: int, total: int) -> None:
        now = time.perf_counter()
        if done < total and now - self._last < self.min_interval:
            return
        self._last = now
        elapsed = now - self._started
        log_line(
            f"[progress] chunks {done}/{total} elapsed {elapsed:.1f}s",
            stream=self.stream,
        )


class Heartbeat:
    """Per-design-point fold heartbeat, printed from the coordinator."""

    def __init__(
        self, stream: TextIO | None = None, min_interval: float = 1.0
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._started = time.perf_counter()
        self._last = -float("inf")

    def tick(
        self,
        group: Any,
        chunks_done: int,
        chunks_total: int,
        trials_folded: int,
        batch_done: int,
        batch_total: int,
    ) -> None:
        """One folded chunk: per-point and whole-batch standing."""
        now = time.perf_counter()
        final = batch_done >= batch_total
        if not final and now - self._last < self.min_interval:
            return
        self._last = now
        elapsed = now - self._started
        log_line(
            f"[progress] point {group}: chunks {chunks_done}/{chunks_total} "
            f"trials {trials_folded} | batch {batch_done}/{batch_total} "
            f"elapsed {elapsed:.1f}s",
            stream=self.stream,
        )

    def allocation(
        self,
        round_no: int,
        entries: "list[tuple[Any, int, int, float, float]]",
    ) -> None:
        """One campaign allocation round: where the next trials go.

        ``entries`` is ``(group, allocated, total_trials, ci_half_width,
        priority)`` per point that received trials.  Allocation rounds
        are rare (a handful per campaign) and are the scheduler's whole
        observable story, so they bypass the throttle.
        """
        elapsed = time.perf_counter() - self._started
        log_line(
            f"[campaign] round {round_no}: {len(entries)} point(s) "
            f"allocated, elapsed {elapsed:.1f}s",
            stream=self.stream,
        )
        for group, allocated, total, half, priority in entries:
            log_line(
                f"[campaign]   point {group}: +{allocated} trials "
                f"(-> {total}) ci-half {half:.3g} priority {priority:.3g}",
                stream=self.stream,
            )
