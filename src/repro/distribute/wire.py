"""Wire format for the coordinator/worker transport: JSON lines.

Everything that crosses a host boundary is a single line of JSON — no
pickle, so a worker never executes anything a coordinator (or a
man-in-the-middle on a trusted LAN) chooses beyond the registered spec
dataclasses, and either side can be debugged with ``nc`` and eyeballs.

Two layers:

* **framing** — :func:`send_message` / :func:`recv_message` move one
  JSON object per ``\\n``-terminated line over a socket file;
* **codec** — :func:`to_wire` / :func:`from_wire` turn the registered
  frozen dataclasses (:class:`ChunkTask` and the sim specs it carries)
  into tagged JSON objects and back.  Tuples are tagged too, so a
  decoded spec is *structurally equal* to the one encoded — which is
  what keeps the per-worker runner cache
  (:func:`repro.orchestrate.worker.runner_for`) hitting across tasks.

The registry is open: :func:`register_wire_type` admits new spec
dataclasses (e.g. an erasure-study spec) without touching the
transport.
"""

from __future__ import annotations

import json
from dataclasses import fields, is_dataclass
from typing import Any, BinaryIO

from repro.orchestrate.plan import Chunk
from repro.orchestrate.worker import ChunkTask, CodeRef, MuseSimSpec, RsSimSpec
from repro.reliability.metrics import MsedTally

#: Protocol version; both ends refuse a mismatch instead of
#: mis-decoding each other.
PROTOCOL_VERSION = 1

_TYPE_TAG = "__type__"
_TUPLE_TAG = "__tuple__"

#: name -> dataclass for every object allowed on the wire.
_WIRE_TYPES: dict[str, type] = {}


def register_wire_type(cls: type) -> type:
    """Admit a (frozen) dataclass to the wire codec.  Returns ``cls``
    so it can be used as a decorator by extension spec types."""
    if not is_dataclass(cls):
        raise TypeError(f"wire types must be dataclasses, got {cls!r}")
    _WIRE_TYPES[cls.__name__] = cls
    return cls


for _cls in (Chunk, CodeRef, MuseSimSpec, RsSimSpec, ChunkTask, MsedTally):
    register_wire_type(_cls)

#: Frozen, value-hashable spec fragments whose encoded tree is worth
#: memoising: a big run dispatches thousands of leases whose ``spec``
#: is one of ~10 values, so re-walking the same dataclass tree per
#: lease is pure overhead on the coordinator's hot path.  ``ChunkTask``
#: / ``Chunk`` / ``MsedTally`` stay out — they differ per message.
_MEMO_TYPES: tuple[type, ...] = (CodeRef, MuseSimSpec, RsSimSpec)

#: value -> encoded tree.  Entries are shared between messages and
#: must be treated as read-only by callers (``send_message`` only
#: serialises them).  Bounded so a pathological caller churning specs
#: cannot grow it without limit.
_ENCODED_MEMO: dict[Any, Any] = {}
_ENCODED_MEMO_LIMIT = 512


def _encode_dataclass(obj: Any) -> dict:
    name = type(obj).__name__
    if name not in _WIRE_TYPES:
        raise TypeError(
            f"{name} is not wire-registered; call register_wire_type "
            f"before shipping it to workers"
        )
    payload = {_TYPE_TAG: name}
    for field in fields(obj):
        payload[field.name] = to_wire(getattr(obj, field.name))
    return payload


def to_wire(obj: Any) -> Any:
    """A JSON-ready tree for ``obj`` (registered dataclasses, tuples,
    and JSON scalars/containers, recursively).

    Spec fragments (:data:`_MEMO_TYPES`) are encoded once and the tree
    reused across messages — the returned subtree is shared, so wire
    trees are read-only by contract.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        if isinstance(obj, _MEMO_TYPES):
            try:
                held = _ENCODED_MEMO.get(obj)
            except TypeError:  # unhashable field snuck in: encode fresh
                return _encode_dataclass(obj)
            if held is None:
                held = _encode_dataclass(obj)
                if len(_ENCODED_MEMO) >= _ENCODED_MEMO_LIMIT:
                    _ENCODED_MEMO.clear()
                _ENCODED_MEMO[obj] = held
            return held
        return _encode_dataclass(obj)
    if isinstance(obj, tuple):
        return {_TUPLE_TAG: [to_wire(item) for item in obj]}
    if isinstance(obj, list):
        return [to_wire(item) for item in obj]
    if isinstance(obj, dict):
        return {key: to_wire(value) for key, value in obj.items()}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot encode {type(obj).__name__} for the wire: {obj!r}")


def from_wire(payload: Any) -> Any:
    """Inverse of :func:`to_wire` (structural equality round-trip)."""
    if isinstance(payload, dict):
        if _TUPLE_TAG in payload:
            return tuple(from_wire(item) for item in payload[_TUPLE_TAG])
        if _TYPE_TAG in payload:
            name = payload[_TYPE_TAG]
            cls = _WIRE_TYPES.get(name)
            if cls is None:
                raise ValueError(
                    f"unknown wire type {name!r}; both ends must register "
                    f"the same spec dataclasses"
                )
            kwargs = {
                key: from_wire(value)
                for key, value in payload.items()
                if key != _TYPE_TAG
            }
            return cls(**kwargs)
        return {key: from_wire(value) for key, value in payload.items()}
    if isinstance(payload, list):
        return [from_wire(item) for item in payload]
    return payload


def send_message(stream: BinaryIO, message: dict) -> None:
    """Write one message as a single JSON line and flush it."""
    stream.write(json.dumps(message, separators=(",", ":")).encode() + b"\n")
    stream.flush()


def send_messages(stream: BinaryIO, messages: list[dict]) -> None:
    """Write several messages as one buffered payload, one flush.

    The pipelined worker loop sends ``[previous result, next lease
    request]`` back-to-back; batching them into a single write (one
    syscall on a socket file) is what makes the prefetch free.
    """
    payload = b"".join(
        json.dumps(message, separators=(",", ":")).encode() + b"\n"
        for message in messages
    )
    stream.write(payload)
    stream.flush()


def recv_message(stream: BinaryIO) -> dict | None:
    """Read one message; ``None`` on a clean EOF (peer went away)."""
    line = stream.readline()
    if not line:
        return None
    return json.loads(line)
