"""Wire format for the coordinator/worker transport: JSON lines.

Everything that crosses a host boundary is a single line of JSON — no
pickle, so a worker never executes anything a coordinator (or a
man-in-the-middle on a trusted LAN) chooses beyond the registered spec
dataclasses, and either side can be debugged with ``nc`` and eyeballs.

Two layers:

* **framing** — :func:`send_message` / :func:`recv_message` move one
  JSON object per ``\\n``-terminated line over a socket file;
* **codec** — :func:`to_wire` / :func:`from_wire` turn the registered
  frozen dataclasses (:class:`ChunkTask` and the sim specs it carries)
  into tagged JSON objects and back.  Tuples are tagged too, so a
  decoded spec is *structurally equal* to the one encoded — which is
  what keeps the per-worker runner cache
  (:func:`repro.orchestrate.worker.runner_for`) hitting across tasks.

The registry is open: :func:`register_wire_type` admits new spec
dataclasses (e.g. an erasure-study spec) without touching the
transport.
"""

from __future__ import annotations

import json
from dataclasses import fields, is_dataclass
from typing import Any, BinaryIO

from repro.orchestrate.plan import Chunk
from repro.orchestrate.worker import ChunkTask, CodeRef, MuseSimSpec, RsSimSpec
from repro.reliability.metrics import MsedTally

#: Protocol version; both ends refuse a mismatch instead of
#: mis-decoding each other.
PROTOCOL_VERSION = 1

_TYPE_TAG = "__type__"
_TUPLE_TAG = "__tuple__"

#: name -> dataclass for every object allowed on the wire.
_WIRE_TYPES: dict[str, type] = {}


def register_wire_type(cls: type) -> type:
    """Admit a (frozen) dataclass to the wire codec.  Returns ``cls``
    so it can be used as a decorator by extension spec types."""
    if not is_dataclass(cls):
        raise TypeError(f"wire types must be dataclasses, got {cls!r}")
    _WIRE_TYPES[cls.__name__] = cls
    return cls


for _cls in (Chunk, CodeRef, MuseSimSpec, RsSimSpec, ChunkTask, MsedTally):
    register_wire_type(_cls)


def to_wire(obj: Any) -> Any:
    """A JSON-ready tree for ``obj`` (registered dataclasses, tuples,
    and JSON scalars/containers, recursively)."""
    if is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__
        if name not in _WIRE_TYPES:
            raise TypeError(
                f"{name} is not wire-registered; call register_wire_type "
                f"before shipping it to workers"
            )
        payload = {_TYPE_TAG: name}
        for field in fields(obj):
            payload[field.name] = to_wire(getattr(obj, field.name))
        return payload
    if isinstance(obj, tuple):
        return {_TUPLE_TAG: [to_wire(item) for item in obj]}
    if isinstance(obj, list):
        return [to_wire(item) for item in obj]
    if isinstance(obj, dict):
        return {key: to_wire(value) for key, value in obj.items()}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot encode {type(obj).__name__} for the wire: {obj!r}")


def from_wire(payload: Any) -> Any:
    """Inverse of :func:`to_wire` (structural equality round-trip)."""
    if isinstance(payload, dict):
        if _TUPLE_TAG in payload:
            return tuple(from_wire(item) for item in payload[_TUPLE_TAG])
        if _TYPE_TAG in payload:
            name = payload[_TYPE_TAG]
            cls = _WIRE_TYPES.get(name)
            if cls is None:
                raise ValueError(
                    f"unknown wire type {name!r}; both ends must register "
                    f"the same spec dataclasses"
                )
            kwargs = {
                key: from_wire(value)
                for key, value in payload.items()
                if key != _TYPE_TAG
            }
            return cls(**kwargs)
        return {key: from_wire(value) for key, value in payload.items()}
    if isinstance(payload, list):
        return [from_wire(item) for item in payload]
    return payload


def send_message(stream: BinaryIO, message: dict) -> None:
    """Write one message as a single JSON line and flush it."""
    stream.write(json.dumps(message, separators=(",", ":")).encode() + b"\n")
    stream.flush()


def recv_message(stream: BinaryIO) -> dict | None:
    """Read one message; ``None`` on a clean EOF (peer went away)."""
    line = stream.readline()
    if not line:
        return None
    return json.loads(line)
