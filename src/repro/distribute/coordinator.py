"""The coordinator: serve a work-stealing chunk queue, fold the tallies.

One :class:`DistributedSession` owns the whole distributed run:

* a threaded TCP server speaking the JSON-line protocol
  (:mod:`repro.distribute.wire`) — one handler thread per connected
  worker, all mutating one lock-guarded :class:`ChunkQueue`;
* the **fold**: every first-completion tally merges into its group via
  ``MsedTally.merge`` exactly once (duplicates from stolen leases are
  dropped), so the distributed result is byte-identical to ``jobs=1``
  whatever the completion order, worker count, or failure history;
* optional **checkpoints**: each fold is journalled through a
  :class:`~repro.distribute.checkpoint.CheckpointJournal`, and tasks a
  resumed journal already holds are answered from disk without ever
  being queued;
* the **round barrier**: :meth:`run_tasks` is a batch call — submit,
  wait for every fold, return ``{group: tally}`` — which is exactly the
  synchronisation point the adaptive runner needs: the coordinator
  process evaluates the stopping policy between batches and decides
  continue/stop per look.

Workers survive across batches: between rounds they poll and are told
to idle, so an adaptive run pays connection setup once.
"""

from __future__ import annotations

import os
import socketserver
import sys
import threading
import time
from pathlib import Path
from typing import Any, Iterable

from repro import telemetry
from repro.distribute.chaos import FaultPlan, resolve_chaos, spec_string
from repro.distribute.checkpoint import CheckpointJournal, spec_fingerprint
from repro.distribute.progress import Heartbeat
from repro.distribute.queue import ChunkQueue
from repro.distribute.wire import (
    PROTOCOL_VERSION,
    from_wire,
    recv_message,
    send_message,
    to_wire,
)
from repro.orchestrate.persist import atomic_write_json
from repro.orchestrate.pool import ProgressCallback
from repro.reliability.metrics import MsedTally
from repro.telemetry.log import log_line

#: Environment hook for fault-injection smoke tests (CI): interrupt the
#: session after this many computed folds, as if the coordinator died.
INTERRUPT_ENV = "REPRO_DISTRIBUTE_INTERRUPT_AFTER"

#: A task that fails on this many distinct attempts aborts the run —
#: a deterministic bug would otherwise bounce between workers forever.
MAX_TASK_ATTEMPTS = 3

#: The durable partial-results report a degraded run leaves next to
#: the checkpoint journal (see :class:`DistributedDegraded`).
PARTIAL_RESULTS_NAME = "partial-results.json"


class DistributedInterrupted(RuntimeError):
    """Raised by the forced-interrupt fault hook after the journal is
    saved; a ``--resume`` run picks up from the checkpoint."""


class DistributedDegraded(RuntimeError):
    """The run could not finish — poison chunk, total fleet loss — but
    everything already folded was preserved: the checkpoint journal is
    flushed and a partial-results report is written next to it, so a
    later ``--resume`` finishes the run instead of restarting it.
    Surfaced by the CLI as exit code 4 (vs 3 for a plain interrupt)."""

    def __init__(self, message: str, report_path: Path | None = None):
        super().__init__(message)
        self.report_path = report_path


class _WorkerServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    session: "DistributedSession"

    def handle_error(self, request, client_address) -> None:
        # A connection dropping mid-message is a normal fault-tolerance
        # event (a worker died); the handler's ``finally`` has already
        # re-queued its leases — no stack trace needed.
        pass


class _WorkerHandler(socketserver.StreamRequestHandler):
    """One connected worker: a strict request→reply message loop."""

    def handle(self) -> None:
        session: DistributedSession = self.server.session
        address = f"{self.client_address[0]}:{self.client_address[1]}"
        try:
            hello = recv_message(self.rfile)
        except (ValueError, UnicodeDecodeError) as exc:
            session._protocol_error(address, exc)
            return
        if not hello or hello.get("op") != "hello":
            return
        if hello.get("version") != PROTOCOL_VERSION:
            send_message(
                self.wfile,
                {
                    "op": "error",
                    "message": f"protocol version {hello.get('version')} != "
                    f"{PROTOCOL_VERSION}",
                },
            )
            return
        # Lease keys stay unique per connection (the address part);
        # the self-reported name makes fleet logs readable.
        worker = f"{hello.get('worker', 'worker')}@{address}"
        send_message(self.wfile, {"op": "welcome", "version": PROTOCOL_VERSION})
        session._worker_joined(worker, rejoin=bool(hello.get("rejoin")))
        try:
            while True:
                try:
                    message = recv_message(self.rfile)
                    if message is None:
                        return  # worker went away; leases re-queue below
                    reply = session._handle_message(worker, message)
                except (ValueError, KeyError, TypeError) as exc:
                    # A torn or garbage frame from one worker is that
                    # worker's problem, not the run's: log it, drop the
                    # connection, and let the lease queue steal back
                    # whatever it held (the ``finally`` below).
                    session._protocol_error(worker, exc)
                    return
                if reply is None:
                    # Results and failures are one-way in the pipelined
                    # protocol: the worker's next lease request is
                    # already in this socket's buffer, so an ack would
                    # only desynchronise the stream.
                    continue
                send_message(self.wfile, reply)
                if reply["op"] == "shutdown":
                    return
        finally:
            session._worker_gone(worker)


class DistributedSession:
    """Coordinator lifecycle + the batch fold API (context manager).

    ``local_workers=N`` spawns N loopback worker subprocesses against
    the session's own ephemeral port — the full distributed path on one
    host, which is what tests, CI, and ``--distribute local:N`` use.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        local_workers: int = 0,
        backend: str | None = None,
        checkpoint: CheckpointJournal | None = None,
        cache: Any | None = None,
        lease_timeout: float = 60.0,
        heartbeat: Heartbeat | None = None,
        interrupt_after: int | None = None,
        poll_interval: float = 0.02,
        chaos: "str | None" = None,
    ):
        self.host = host
        self.requested_port = port
        self.local_workers = local_workers
        self.backend = backend
        self.checkpoint = checkpoint
        #: Cross-run result cache (:class:`repro.distribute.cache.ResultCache`):
        #: consulted after the checkpoint journal, fed by every computed
        #: fold, flushed at barriers and close.
        self.cache = cache
        self.lease_timeout = lease_timeout
        self.heartbeat = heartbeat
        if interrupt_after is None and os.environ.get(INTERRUPT_ENV):
            interrupt_after = int(os.environ[INTERRUPT_ENV])
        self.interrupt_after = interrupt_after
        self.poll_interval = poll_interval
        # Parse eagerly so a bad spec fails at construction, and arm
        # the coordinator-scoped plan (journal tearing) if a journal is
        # attached.  Workers get their own plans, scoped by name.
        self.chaos_spec = resolve_chaos(chaos)
        if (
            self.chaos_spec is not None
            and self.checkpoint is not None
            and self.checkpoint.chaos is None
        ):
            self.checkpoint.chaos = FaultPlan(self.chaos_spec, "coordinator")

        self._lock = threading.Lock()
        self._queue = ChunkQueue(lease_timeout=lease_timeout)
        self._batch_event = threading.Event()
        self._batch: dict[str, Any] | None = None
        self._attempt_errors: dict[int, list[str]] = {}
        self._error: str | None = None
        self._interrupted = False
        self._folds = 0
        self._group_trials: dict[Any, int] = {}
        self._workers: set[str] = set()
        self._closed = False
        self._server: _WorkerServer | None = None
        self._server_thread: threading.Thread | None = None
        self.worker_processes: list = []
        self.rejoins = 0
        self.protocol_errors = 0

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("session is not open")
        return self._server.server_address[1]

    @property
    def workers_connected(self) -> int:
        with self._lock:
            return len(self._workers)

    def open(self) -> "DistributedSession":
        if self._server is not None:
            raise RuntimeError("session already open")
        self._server = _WorkerServer(
            (self.host, self.requested_port), _WorkerHandler
        )
        self._server.session = self
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name="repro-coordinator",
        )
        self._server_thread.start()
        if self.local_workers:
            from repro.distribute.local import spawn_local_workers

            self.worker_processes = spawn_local_workers(
                self.host,
                self.port,
                self.local_workers,
                backend=self.backend,
                chaos=(
                    spec_string(self.chaos_spec)
                    if self.chaos_spec is not None
                    else None
                ),
            )
        return self

    def close(self) -> None:
        with self._lock:
            self._closed = True
        for process in self.worker_processes:
            process.join(timeout=5.0)
        for process in self.worker_processes:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self.checkpoint is not None:
            self.checkpoint.flush()
        if self.cache is not None:
            self.cache.flush()

    def __enter__(self) -> "DistributedSession":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the batch fold API (what run_sharded plugs into) ---------------

    def run_tasks(
        self,
        tasks: Iterable[Any],
        progress: ProgressCallback | None = None,
    ) -> dict[Any, MsedTally]:
        """Run one batch of chunk tasks to completion; the round barrier.

        Returns ``{group: folded tally}`` exactly like
        :func:`repro.orchestrate.pool.run_sharded` — checkpointed chunks
        fold from the journal, the rest fold as workers return them.
        """
        task_list = list(tasks)
        with self._lock:
            if self._server is None or self._closed:
                raise RuntimeError("session is not open")
            results: dict[Any, MsedTally] = {}
            per_group: dict[Any, list[int]] = {}  # group -> [done, total]
            for task in task_list:
                per_group.setdefault(task.group, [0, 0])[1] += 1
            self._batch = {
                "results": results,
                "per_group": per_group,
                "total": len(task_list),
                "done": 0,
                "progress": progress,
            }
            self._batch_event.clear()
            replayed = []
            for task in task_list:
                cached = (
                    self.checkpoint.lookup(
                        task.group, task.chunk, spec_fingerprint(task.spec)
                    )
                    if self.checkpoint is not None
                    else None
                )
                if cached is None and self.cache is not None:
                    # The cross-run cache answers what this run's
                    # journal cannot; a hit still lands in the journal
                    # so the run's own record stays complete.
                    cached = self.cache.lookup(task.key, task.spec, task.chunk)
                    if cached is not None and self.checkpoint is not None:
                        self.checkpoint.record(
                            task.group,
                            task.chunk,
                            cached,
                            spec_fingerprint(task.spec),
                        )
                if cached is not None:
                    replayed.append((task, cached))
                else:
                    self._queue.add_task(task)
            for task, cached in replayed:
                self._fold_locked(task, cached, journal=False)
            finished = self._batch["done"] >= self._batch["total"]
        while not finished:
            self._batch_event.wait(timeout=0.1)
            with self._lock:
                self._check_interrupt_locked()
                if self._error is not None:
                    message, self._error = self._error, None
                    raise self._degrade_locked(
                        f"distributed run failed: {message}"
                    )
                stolen = self._queue.reap_expired(time.monotonic())
                if stolen:
                    telemetry.counter("lease.expired", stolen)
                    telemetry.event("lease.expired", requeued=stolen)
                    if self.heartbeat is not None:
                        log_line(
                            f"[progress] re-queued {stolen} expired lease(s)",
                            stream=self.heartbeat.stream,
                        )
                if (
                    self.worker_processes
                    and not self._workers
                    and not any(
                        worker.is_alive() for worker in self.worker_processes
                    )
                ):
                    # A local fleet cannot grow back: with every spawned
                    # worker dead and none connected, waiting is forever.
                    # (A listen-mode session keeps waiting — external
                    # workers may join at any time.)
                    raise self._degrade_locked(
                        "all local workers exited with work outstanding; "
                        "see their stderr for the underlying failure"
                    )
                finished = self._batch["done"] >= self._batch["total"]
        with self._lock:
            self._batch = None
            if self.checkpoint is not None:
                # The batch barrier is a durability point: anything the
                # journal's rate limit held back lands now.
                self.checkpoint.flush()
            if self.cache is not None:
                self.cache.flush()
        return results

    # -- message handling (worker threads) ------------------------------

    def _handle_message(self, worker: str, message: dict) -> dict | None:
        op = message.get("op")
        if op == "next":
            return self._next_task(worker)
        if op == "result":
            self._take_result(
                message["id"],
                from_wire(message["tally"]),
                worker=worker,
                seconds=message.get("seconds"),
            )
            return None  # one-way: the worker never waits on an ack
        if op == "failed":
            self._take_failure(message["id"], message.get("error", "unknown"))
            return None
        if op == "telemetry":
            # One-way counter deltas a worker ships while idle; folded
            # into the coordinator's registry under its name so fleet
            # totals survive the worker process.
            counters = message.get("counters")
            if isinstance(counters, dict):
                telemetry.merge_worker_counters(counters, worker=worker)
                # Mirror the deltas into the event log too: chaos firings
                # happen inside worker processes (no session there), so
                # without this the post-hoc report could not reconstruct
                # fault counts from ``events.jsonl`` alone.
                telemetry.event(
                    "telemetry.worker", worker=worker, counters=counters
                )
            return None
        return {"op": "error", "message": f"unknown op {op!r}"}

    def _next_task(self, worker: str) -> dict:
        with self._lock:
            if self._closed:
                return {"op": "shutdown"}
            now = time.monotonic()
            stolen = self._queue.reap_expired(now)
            if stolen:
                telemetry.counter("lease.expired", stolen)
                telemetry.event("lease.expired", requeued=stolen)
            claim = self._queue.claim(worker, now)
            if claim is None:
                return {"op": "idle", "delay": self.poll_interval}
            task_id, task = claim
            return {"op": "task", "id": task_id, "task": to_wire(task)}

    def _take_result(
        self,
        task_id: int,
        tally: MsedTally,
        worker: str | None = None,
        seconds: float | None = None,
    ) -> None:
        with self._lock:
            if not self._queue.complete(task_id):
                telemetry.counter("chunks.duplicate")
                return  # duplicate from a stolen lease: fold exactly once
            task = self._queue.tasks[task_id]
            self._fold_locked(
                task, tally, journal=True, worker=worker, seconds=seconds
            )

    def _take_failure(self, task_id: int, error: str) -> None:
        with self._lock:
            if task_id in self._queue.completed:
                return
            errors = self._attempt_errors.setdefault(task_id, [])
            errors.append(error)
            self._queue.requeue(task_id)
            telemetry.counter("chunks.failed")
            telemetry.event(
                "chunk.failed",
                task=task_id,
                attempts=len(errors),
                error=errors[-1],
                requeued=1,
            )
            if len(errors) >= MAX_TASK_ATTEMPTS:
                # A poison chunk: it failed on MAX_TASK_ATTEMPTS
                # distinct leases, so retrying elsewhere won't help.
                # Surface *every* attempt's error — they may differ,
                # and the first one is often the honest one.
                detail = "; ".join(
                    f"attempt {index}: {message}"
                    for index, message in enumerate(errors, start=1)
                )
                self._error = (
                    f"task {task_id} failed on {len(errors)} attempts "
                    f"[{detail}]"
                )
                self._batch_event.set()

    def _worker_joined(self, worker: str, rejoin: bool = False) -> None:
        with self._lock:
            self._workers.add(worker)
            telemetry.counter("worker.rejoins" if rejoin else "worker.joins")
            telemetry.gauge("workers.connected", len(self._workers))
            telemetry.event(
                "worker.rejoin" if rejoin else "worker.join", worker=worker
            )
            if rejoin:
                self.rejoins += 1
                if self.heartbeat is not None:
                    log_line(
                        f"[progress] worker {worker} rejoined "
                        f"(rejoin #{self.rejoins})",
                        stream=self.heartbeat.stream,
                    )

    def _worker_gone(self, worker: str) -> None:
        with self._lock:
            self._workers.discard(worker)
            stolen = self._queue.release_worker(worker)
            telemetry.gauge("workers.connected", len(self._workers))
            telemetry.event("worker.leave", worker=worker, requeued=stolen)
            if stolen:
                telemetry.counter("leases.stolen", stolen)
                if self.heartbeat is not None:
                    log_line(
                        f"[progress] worker {worker} left; re-queued {stolen} "
                        f"lease(s)",
                        stream=self.heartbeat.stream,
                    )

    def _protocol_error(self, worker: str, exc: Exception) -> None:
        """A torn/garbage frame: count it, log it, and let the caller
        drop only that worker's connection (its leases re-queue)."""
        with self._lock:
            self.protocol_errors += 1
            telemetry.counter("protocol.errors")
            telemetry.event("protocol.error", worker=worker, error=repr(exc))
            stream = (
                self.heartbeat.stream
                if self.heartbeat is not None
                else sys.stderr
            )
            log_line(
                f"[protocol] dropping worker {worker} after unparseable "
                f"frame: {exc!r}",
                stream=stream,
            )

    # -- fold (lock held) ------------------------------------------------

    def _fold_locked(
        self,
        task: Any,
        tally: MsedTally,
        journal: bool,
        worker: str | None = None,
        seconds: float | None = None,
    ) -> None:
        batch = self._batch
        if batch is None:  # pragma: no cover - late result after barrier
            return
        held = batch["results"].get(task.group)
        if held is None:
            batch["results"][task.group] = MsedTally().merge(tally)
        else:
            held.merge(tally)
        if journal:
            self._folds += 1
            telemetry.counter("chunks.computed", group=str(task.group))
            telemetry.record_spec(task.group, spec_fingerprint(task.spec))
            if seconds is not None:
                # The worker timed its own decode; surface it as the
                # same ``decode_chunk`` span the in-process path emits
                # so the report's slowest-points table covers both.
                telemetry.histogram(
                    "span.decode_chunk",
                    seconds,
                    point=str(task.group),
                    worker=worker or "?",
                )
                telemetry.event(
                    "span",
                    name="decode_chunk",
                    seconds=round(seconds, 6),
                    attrs={
                        "point": str(task.group),
                        "worker": worker or "?",
                        "trials": tally.trials,
                    },
                )
            if self.checkpoint is not None:
                self.checkpoint.record(
                    task.group, task.chunk, tally, spec_fingerprint(task.spec)
                )
            if self.cache is not None:
                self.cache.record(task.key, task.spec, task.chunk, tally)
        else:
            telemetry.counter("chunks.replayed", group=str(task.group))
        batch["done"] += 1
        stats = batch["per_group"][task.group]
        stats[0] += 1
        self._group_trials[task.group] = (
            self._group_trials.get(task.group, 0) + tally.trials
        )
        if self.heartbeat is not None:
            self.heartbeat.tick(
                task.group,
                stats[0],
                stats[1],
                self._group_trials[task.group],
                batch["done"],
                batch["total"],
            )
        if batch["progress"] is not None:
            batch["progress"](batch["done"], batch["total"])
        if batch["done"] >= batch["total"]:
            self._batch_event.set()
        if (
            self.interrupt_after is not None
            and self._folds >= self.interrupt_after
        ):
            self._batch_event.set()

    def _degrade_locked(self, message: str) -> DistributedDegraded:
        """Build the graceful-degradation exit (lock held): flush the
        journal, write the durable partial-results report, and return
        the exception for the caller to raise.  Everything folded so
        far survives; ``--resume`` finishes the run later."""
        telemetry.event(
            "run.degraded",
            reason=message,
            requeues=self._queue.requeues,
            rejoins=self.rejoins,
            protocol_errors=self.protocol_errors,
        )
        report_path = None
        if self.checkpoint is not None:
            self.checkpoint.flush()
            batch = self._batch or {}
            report_path = self.checkpoint.path.parent / PARTIAL_RESULTS_NAME
            atomic_write_json(
                report_path,
                {
                    "version": 1,
                    "key": self.checkpoint.key,
                    "reason": message,
                    "batch": {
                        "done": batch.get("done", 0),
                        "total": batch.get("total", 0),
                    },
                    "requeues": self._queue.requeues,
                    "rejoins": self.rejoins,
                    "protocol_errors": self.protocol_errors,
                    "groups": self.checkpoint.folded(),
                    "resumable": True,
                },
            )
            message += (
                f"; partial results + checkpoint saved under "
                f"{report_path.parent} — re-run with --resume to finish"
            )
        else:
            message += (
                "; no checkpoint journal was configured, so completed "
                "chunks were not preserved (use --checkpoint-dir)"
            )
        self._batch = None
        return DistributedDegraded(message, report_path=report_path)

    def _check_interrupt_locked(self) -> None:
        if (
            self.interrupt_after is not None
            and not self._interrupted
            and self._folds >= self.interrupt_after
        ):
            self._interrupted = True
            if self.checkpoint is not None:
                self.checkpoint.flush()
            raise DistributedInterrupted(
                f"forced interrupt after {self._folds} folded chunks"
                + (
                    f"; checkpoint saved to {self.checkpoint.path}"
                    if self.checkpoint is not None
                    else ""
                )
            )
