"""Loopback workers: the full distributed path on a single host.

``--distribute local:N`` spawns N worker *subprocesses* against the
coordinator's ephemeral loopback port — real sockets, real process
boundaries, real worker loss — so tests, CI, and single-host users
exercise exactly the code path a multi-host fleet runs, with none of
the deployment.

Workers are plain ``subprocess`` children running a one-line
``-c`` entry into :func:`repro.distribute.worker.serve_worker`: no
``multiprocessing`` start-method games, no re-import of the caller's
``__main__``, and a handle with ``poll()``/``terminate()`` — which the
fault-tolerance tests use to kill one mid-run on purpose.  A worker
orphaned by a dying coordinator sees EOF on its socket and exits on
its own.
"""

from __future__ import annotations

import subprocess
import sys

_ENTRY = """\
import sys
from repro.distribute.worker import serve_worker
serve_worker(
    sys.argv[1], int(sys.argv[2]),
    backend=sys.argv[3] or None,
    connect_timeout=float(sys.argv[4]),
    name=sys.argv[5],
    chaos=sys.argv[6] or None,
)
"""


class LocalWorker:
    """One loopback worker subprocess (thin handle over ``Popen``)."""

    def __init__(self, process: subprocess.Popen, name: str):
        self.process = process
        self.name = name

    def is_alive(self) -> bool:
        return self.process.poll() is None

    def terminate(self) -> None:
        self.process.terminate()

    def kill(self) -> None:
        self.process.kill()

    def join(self, timeout: float | None = None) -> None:
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            pass


def spawn_local_workers(
    host: str,
    port: int,
    count: int,
    backend: str | None = None,
    connect_timeout: float = 30.0,
    chaos: str | None = None,
) -> list[LocalWorker]:
    """Start ``count`` worker subprocesses connected to ``host:port``.

    Returns the handles; the caller (the session) owns shutdown.
    ``chaos`` forwards the coordinator's fault-injection spec so the
    loopback fleet runs the same plan it would inherit from
    ``REPRO_CHAOS`` in a real deployment (each worker's plan is scoped
    by its ``local-N`` name, so faults land deterministically but not
    in lockstep).
    """
    if count < 1:
        raise ValueError(f"need at least one local worker, got {count}")
    workers = []
    for index in range(count):
        name = f"local-{index}"
        process = subprocess.Popen(
            [
                sys.executable,
                "-c",
                _ENTRY,
                host,
                str(port),
                backend or "",
                str(connect_timeout),
                name,
                chaos or "",
            ],
        )
        workers.append(LocalWorker(process, name))
    return workers
