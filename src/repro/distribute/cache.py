"""Fingerprint-keyed result cache: a completed cell never re-simulates.

The checkpoint journal (:mod:`repro.distribute.checkpoint`) makes one
*run* resumable; this cache makes the *results themselves* durable
across runs.  Every folded chunk tally is filed under its **cell** —
the ``(stream key, spec fingerprint)`` pair — where the fingerprint is
:func:`~repro.distribute.checkpoint.spec_fingerprint`: the spec's
structural identity minus the decode backend (scalar, numpy, numba and
native tally byte-identically, so a cell computed on one backend is
served to all of them).  Because every chunk's tally is a pure
function of ``(spec, chunk range, key)``, a cache hit *is* the
recomputation: re-running any completed ``(code, scenario, seed)``
cell folds straight off disk with zero new trials.

On-disk layout: one CRC'd JSON-lines file per cell, named by a
``sha256(key, fingerprint)`` digest, under the ``--cache-dir``
directory.  The line format is shared with the checkpoint journal
(:func:`_encode_line` / :func:`_decode_line`), so the same
torn-tail-tolerant load applies: a damaged suffix is simply ignored
and those chunks recompute.  Appends batch in memory and land via one
fsync'd :func:`~repro.orchestrate.persist.durable_append` per
:meth:`flush` — the campaign runner and the distributed coordinator
both flush at round barriers and at close.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro import telemetry
from repro.distribute.checkpoint import (
    _TALLY_FIELDS,
    _decode_line,
    _encode_line,
    spec_fingerprint,
)
from repro.orchestrate.persist import durable_append
from repro.orchestrate.plan import Chunk
from repro.reliability.metrics import MsedTally

CACHE_VERSION = 1

__all__ = ["ResultCache", "CACHE_VERSION"]


class ResultCache:
    """Chunk tallies shared across runs, keyed by ``(key, fingerprint)``.

    The cache owns fingerprinting (callers hand it raw specs), so the
    scheduler can stay free of any ``repro.distribute`` import and two
    runs that differ only in backend share cells.  Counters make the
    zero-recompute guarantee checkable: a re-run of a completed cell
    must finish with ``trials_recorded == 0``.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.trials_served = 0
        self.trials_recorded = 0
        self._fingerprints: dict[Any, str] = {}
        # digest -> {(start, size): MsedTally}; None = not yet loaded
        self._cells: dict[str, dict[tuple[int, int], MsedTally]] = {}
        self._pending: dict[str, list[bytes]] = {}
        self._headered: set[str] = set()
        self._foreign: set[str] = set()

    def _fingerprint(self, spec: Any) -> str:
        held = self._fingerprints.get(spec)
        if held is None:
            held = spec_fingerprint(spec)
            self._fingerprints[spec] = held
        return held

    def _digest(self, key: int, fingerprint: str) -> str:
        material = f"{key}\n{fingerprint}".encode()
        return hashlib.sha256(material).hexdigest()[:24]

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.jsonl"

    def _load(
        self, digest: str, key: int, fingerprint: str
    ) -> dict[tuple[int, int], MsedTally]:
        cell = self._cells.get(digest)
        if cell is not None:
            return cell
        cell = {}
        self._cells[digest] = cell
        path = self._path(digest)
        if not path.exists():
            return cell
        lines = path.read_bytes().splitlines()
        if not lines:
            return cell
        header = _decode_line(lines[0])
        if (
            header is None
            or header.get("version") != CACHE_VERSION
            or header.get("key") != key
            or header.get("spec") != fingerprint
        ):
            # A foreign or damaged file under our digest: leave it
            # alone and treat the cell as empty (every lookup misses,
            # nothing is appended on top of it).
            self._foreign.add(digest)
            return cell
        self._headered.add(digest)
        for line in lines[1:]:
            record = _decode_line(line)
            if record is None:
                break  # torn tail: keep the valid prefix, drop the rest
            counts = record["counts"]
            tally = MsedTally(**{name: counts[name] for name in _TALLY_FIELDS})
            cell[(record["start"], record["size"])] = tally
        return cell

    def lookup(self, key: int, spec: Any, chunk: Chunk) -> MsedTally | None:
        """The stored tally for this exact chunk of this cell, or None."""
        fingerprint = self._fingerprint(spec)
        digest = self._digest(key, fingerprint)
        cell = self._load(digest, key, fingerprint)
        held = cell.get((chunk.start, chunk.size))
        if held is None:
            self.misses += 1
            telemetry.counter("cache.misses")
            telemetry.event("cache.lookup", hit=False)
            return None
        self.hits += 1
        self.trials_served += held.trials
        telemetry.counter("cache.hits")
        telemetry.counter("cache.trials_served", held.trials)
        telemetry.event("cache.lookup", hit=True, trials=held.trials)
        copy = MsedTally()
        copy.merge(held)
        return copy

    def record(self, key: int, spec: Any, chunk: Chunk, tally: MsedTally) -> None:
        """File one computed chunk tally under its cell (flush later)."""
        fingerprint = self._fingerprint(spec)
        digest = self._digest(key, fingerprint)
        cell = self._load(digest, key, fingerprint)
        if (chunk.start, chunk.size) in cell:
            return
        held = MsedTally().merge(tally)
        cell[(chunk.start, chunk.size)] = held
        if digest in self._foreign:
            # In-memory only: same-run lookups still hit, but the
            # foreign bytes on disk are never appended onto.
            return
        record = {
            "start": chunk.start,
            "size": chunk.size,
            "counts": {name: getattr(held, name) for name in _TALLY_FIELDS},
        }
        queue = self._pending.setdefault(digest, [])
        if digest not in self._headered and not queue:
            header = {
                "version": CACHE_VERSION,
                "key": key,
                "spec": fingerprint,
            }
            queue.append(_encode_line(header))
        queue.append(_encode_line(record))
        self.trials_recorded += tally.trials

    def flush(self) -> None:
        """Durably append every pending record (one fsync per cell)."""
        for digest, lines in self._pending.items():
            durable_append(self._path(digest), b"".join(lines))
            self._headered.add(digest)
        self._pending.clear()

    def close(self) -> None:
        self.flush()

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "trials_served": self.trials_served,
            "trials_recorded": self.trials_recorded,
        }
