"""The worker side: connect, pull chunk tasks, push tallies — and come
back after a network blip.

``repro-muse worker --connect HOST:PORT`` runs :func:`serve_worker`: a
single-threaded pull loop against the coordinator's queue.  Each task
is decoded from the wire, its runner rebuilt (and cached) through the
PR-3 per-worker cache (:func:`repro.orchestrate.worker.runner_for` via
:func:`run_chunk_task`), its chunk executed with whatever decode
backend this host has, and the resulting tally shipped back as plain
integers — so a heterogeneous fleet (numpy here, scalar there) still
folds byte-identical results.  Dispatch is *pipelined*: the next lease
request is already queued at the coordinator while the current chunk
computes, and the finished tally ships in the same flush as the
following request, so steady-state chunk execution never waits on a
socket round-trip.

A worker is expendable by design: if it dies mid-chunk the coordinator
re-queues its leases, and if its chunk raises it reports the failure
and moves on rather than wedging.  But expendable is not the same as
disposable — a *transient* connection failure (flaky switch, injected
``reset`` chaos, coordinator restart) no longer ends the worker.  The
session loop reconnects with exponential backoff + jitter and rejoins
the fleet (``hello`` with ``rejoin: true``, which the coordinator
counts and logs), so a blip costs one stolen lease, not a worker.  The
loop only ends for good when the coordinator says ``shutdown``, closes
the connection cleanly (EOF on an idle worker), or stays unreachable
for the whole reconnect window.

Fault injection: with a chaos spec active (``--chaos`` or the
inherited ``REPRO_CHAOS``), the loop consults a deterministic
:class:`~repro.distribute.chaos.FaultPlan` at each step — hang, crash,
reset, torn frame, duplicated result — so the fleet's failure modes
are reproducible test subjects instead of production surprises.

Telemetry: a worker process never opens its own telemetry session
(two processes appending one event log would interleave batches).  It
keeps plain integer counters — chunks executed/failed, reconnects,
chaos firings — and ships the *deltas* to the coordinator as one-way
``{"op": "telemetry", "counters": {...}}`` frames riding the normal
result/poll flushes, where they fold into the coordinator's registry
under ``worker=<name>`` labels.  Each result frame also carries the
chunk's compute ``seconds`` so the coordinator can emit the same
``decode_chunk`` spans the in-process path records.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import socket
import time

from repro.distribute.chaos import CHAOS_CRASH_EXIT, FaultPlan, plan_for
from repro.distribute.wire import (
    PROTOCOL_VERSION,
    from_wire,
    recv_message,
    send_message,
    send_messages,
    to_wire,
)
from repro.orchestrate.worker import run_chunk_task

#: How long a worker that lost its connection keeps trying to rejoin
#: before concluding the coordinator is gone and exiting cleanly.
RECONNECT_TIMEOUT = 10.0


class _ChaosReset(ConnectionError):
    """An injected connection reset (chaos); handled like a real one."""


def _connect_with_retry(
    host: str, port: int, timeout: float
) -> socket.socket:
    """Retry until the coordinator is listening (workers often start
    first, e.g. under a process supervisor), with exponential backoff
    plus jitter so a rejoining fleet doesn't reconnect in lockstep.

    Raises :class:`ConnectionError` carrying the *last* underlying
    ``OSError`` once the deadline passes — "refused for 10s" and "no
    route to host" need different fixes, so the timeout must not eat
    the evidence.
    """
    deadline = time.monotonic() + timeout
    delay = 0.05
    while True:
        try:
            return socket.create_connection((host, port), timeout=30.0)
        except OSError as exc:
            now = time.monotonic()
            if now >= deadline:
                raise ConnectionError(
                    f"coordinator at {host}:{port} unreachable for "
                    f"{timeout:.1f}s (last error: {exc!r})"
                ) from exc
            # Full jitter on an exponential ceiling: sleep in
            # [0.5, 1.5) * delay, capped at the remaining budget.
            time.sleep(min(delay * (0.5 + random.random()), deadline - now))
            delay = min(delay * 2, 2.0)


def _with_backend(task, backend: str | None):
    """Re-target a task's spec at this worker's decode backend.

    Safe by the cross-backend contract: scalar and numpy tally
    byte-identically, so a mixed fleet still folds one truth.
    """
    if backend is None or not hasattr(task.spec, "backend"):
        return task
    return dataclasses.replace(
        task, spec=dataclasses.replace(task.spec, backend=backend)
    )


def _send_torn_frame(wfile, result: dict) -> None:
    """Write a deliberately unparseable prefix of ``result`` (chaos
    ``torn``): the coordinator must treat it as a protocol error, not
    a crash."""
    line = json.dumps(result, separators=(",", ":")).encode()
    wfile.write(line[: max(8, len(line) // 3)] + b"\xff\xfe\n")
    wfile.flush()


def _bump(counters: dict, name: str, amount: int = 1) -> None:
    counters[name] = counters.get(name, 0) + amount


def _telemetry_frames(counters: dict, shipped: dict) -> list[dict]:
    """The (0 or 1) wire frames carrying unshipped counter deltas."""
    deltas = {
        name: value - shipped.get(name, 0)
        for name, value in counters.items()
        if value != shipped.get(name, 0)
    }
    if not deltas:
        return []
    shipped.update(counters)
    return [{"op": "telemetry", "counters": deltas}]


def _serve_session(
    sock: socket.socket,
    worker_name: str,
    backend: str | None,
    plan: FaultPlan | None,
    rejoin: bool,
    executed: list,
    counters: dict | None = None,
    shipped: dict | None = None,
) -> bool:
    """One connection's pull loop.

    Returns ``True`` on a clean end (shutdown op, or EOF while idle —
    the coordinator finished); raises ``ConnectionError`` on an abrupt
    loss so the caller can rejoin.  ``executed`` is a single-element
    counter that survives the exception path; ``counters``/``shipped``
    hold the telemetry tallies and the high-water mark of what the
    coordinator has already been told.
    """
    counters = counters if counters is not None else {}
    shipped = shipped if shipped is not None else {}
    sock.settimeout(None)
    rfile = sock.makefile("rb")
    wfile = sock.makefile("wb")
    send_message(
        wfile,
        {
            "op": "hello",
            "version": PROTOCOL_VERSION,
            "worker": worker_name,
            "rejoin": rejoin,
        },
    )
    welcome = recv_message(rfile)
    if not welcome or welcome.get("op") != "welcome":
        raise RuntimeError(
            f"coordinator refused the connection: {welcome!r}"
        )
    # Pipelined dispatch: the lease request for chunk N+1 is already in
    # flight while chunk N computes, and chunk N's tally rides in the
    # same flush as the *next* lease request — so the per-chunk
    # round-trip stall (send result, await ack, send next, await task)
    # collapses to zero between back-to-back chunks.  ``pending`` holds
    # the frames for the last computed chunk until the next reply
    # arrives; losing the connection just requeues that lease.
    pending: list[dict] = []
    send_message(wfile, {"op": "next"})
    while True:
        reply = recv_message(rfile)
        if reply is None:
            if pending:
                raise ConnectionError("coordinator went away mid-result")
            return True
        op = reply.get("op")
        if op == "shutdown":
            return True
        if op == "idle":
            if pending:
                # Flush without sleeping: the coordinator may be
                # waiting on exactly this tally to close the barrier.
                send_messages(
                    wfile,
                    [
                        *pending,
                        *_telemetry_frames(counters, shipped),
                        {"op": "next"},
                    ],
                )
                pending = []
            else:
                # An idle beat is the natural moment to fold this
                # worker's counter deltas back to the coordinator:
                # it costs one extra frame on a poll that was being
                # sent anyway, and every batch ends in an idle beat.
                time.sleep(float(reply.get("delay", 0.05)))
                send_messages(
                    wfile,
                    [*_telemetry_frames(counters, shipped), {"op": "next"}],
                )
            continue
        if op != "task":
            raise RuntimeError(f"unexpected coordinator reply: {reply!r}")
        send_messages(
            wfile,
            [*pending, *_telemetry_frames(counters, shipped), {"op": "next"}],
        )
        pending = []
        task = _with_backend(from_wire(reply["task"]), backend)
        if plan is not None:
            if plan.should("hang"):  # straggle past the lease timeout
                _bump(counters, "worker.chaos.hang")
                time.sleep(plan.spec.hang_seconds)
            if plan.should("crash"):  # die holding the lease
                os._exit(CHAOS_CRASH_EXIT)
            if plan.should("reset"):  # blip before reporting
                _bump(counters, "worker.chaos.reset")
                raise _ChaosReset("chaos: connection reset before result")
        started = time.perf_counter()
        try:
            _, tally = run_chunk_task(task)
        except Exception as exc:  # report, don't die: the chunk may
            # succeed on a worker with different capabilities.
            _bump(counters, "worker.chunks_failed")
            pending = [
                {"op": "failed", "id": reply["id"], "error": repr(exc)}
            ]
        else:
            executed[0] += 1
            _bump(counters, "worker.chunks_executed")
            result = {
                "op": "result",
                "id": reply["id"],
                "tally": to_wire(tally),
                "seconds": round(time.perf_counter() - started, 6),
            }
            if plan is not None and plan.should("torn"):
                _bump(counters, "worker.chaos.torn")
                _send_torn_frame(wfile, result)
                raise _ChaosReset("chaos: torn result frame")
            pending = [result]
            if plan is not None and plan.should("dup"):
                _bump(counters, "worker.chaos.dup")
                pending = [result, result]  # exactly-once fold drops it


def serve_worker(
    host: str,
    port: int,
    backend: str | None = None,
    connect_timeout: float = 10.0,
    name: str | None = None,
    chaos: "str | None" = None,
    reconnect_timeout: float = RECONNECT_TIMEOUT,
) -> int:
    """Serve one worker until the coordinator shuts the run down.

    Returns the number of chunks executed (handy for tests and logs).
    ``chaos`` (a spec string; defaults to ``$REPRO_CHAOS``) arms
    deterministic fault injection scoped to this worker's name.
    """
    worker_name = name or f"pid-{os.getpid()}"
    plan = plan_for(chaos, worker_name)
    executed = [0]
    counters: dict = {}
    shipped: dict = {}
    rejoin = False
    while True:
        try:
            sock = _connect_with_retry(
                host, port, reconnect_timeout if rejoin else connect_timeout
            )
        except OSError:
            if rejoin:
                # The coordinator stayed gone past the reconnect
                # window: the run is over (or moved); stop quietly.
                return executed[0]
            raise
        if rejoin:
            _bump(counters, "worker.reconnects")
        try:
            finished = _serve_session(
                sock, worker_name, backend, plan, rejoin, executed,
                counters, shipped,
            )
        except (ConnectionError, BrokenPipeError, OSError):
            finished = False  # abrupt loss: back off and rejoin
        finally:
            sock.close()
        if finished:
            return executed[0]
        rejoin = True
