"""The worker side: connect, pull chunk tasks, push tallies.

``repro-muse worker --connect HOST:PORT`` runs :func:`serve_worker`: a
single-threaded pull loop against the coordinator's queue.  Each task
is decoded from the wire, its runner rebuilt (and cached) through the
PR-3 per-worker cache (:func:`repro.orchestrate.worker.runner_for` via
:func:`run_chunk_task`), its chunk executed with whatever decode
backend this host has, and the resulting tally shipped back as plain
integers — so a heterogeneous fleet (numpy here, scalar there) still
folds byte-identical results.

A worker is expendable by design: if it dies mid-chunk the coordinator
re-queues its leases, and if its chunk raises it reports the failure
and moves on rather than wedging.  The loop ends when the coordinator
says ``shutdown`` or goes away (EOF).
"""

from __future__ import annotations

import dataclasses
import os
import socket
import time

from repro.distribute.wire import (
    PROTOCOL_VERSION,
    from_wire,
    recv_message,
    send_message,
    to_wire,
)
from repro.orchestrate.worker import run_chunk_task


def _connect_with_retry(
    host: str, port: int, timeout: float
) -> socket.socket:
    """Retry until the coordinator is listening (workers often start
    first, e.g. under a process supervisor)."""
    deadline = time.monotonic() + timeout
    delay = 0.05
    while True:
        try:
            return socket.create_connection((host, port), timeout=30.0)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(delay)
            delay = min(delay * 2, 1.0)


def _with_backend(task, backend: str | None):
    """Re-target a task's spec at this worker's decode backend.

    Safe by the cross-backend contract: scalar and numpy tally
    byte-identically, so a mixed fleet still folds one truth.
    """
    if backend is None or not hasattr(task.spec, "backend"):
        return task
    return dataclasses.replace(
        task, spec=dataclasses.replace(task.spec, backend=backend)
    )


def serve_worker(
    host: str,
    port: int,
    backend: str | None = None,
    connect_timeout: float = 10.0,
    name: str | None = None,
) -> int:
    """Serve one worker until the coordinator shuts the run down.

    Returns the number of chunks executed (handy for tests and logs).
    """
    sock = _connect_with_retry(host, port, connect_timeout)
    executed = 0
    try:
        sock.settimeout(None)
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        send_message(
            wfile,
            {
                "op": "hello",
                "version": PROTOCOL_VERSION,
                "worker": name or f"pid-{os.getpid()}",
            },
        )
        welcome = recv_message(rfile)
        if not welcome or welcome.get("op") != "welcome":
            raise RuntimeError(
                f"coordinator refused the connection: {welcome!r}"
            )
        while True:
            send_message(wfile, {"op": "next"})
            reply = recv_message(rfile)
            if reply is None or reply.get("op") == "shutdown":
                return executed
            if reply.get("op") == "idle":
                time.sleep(float(reply.get("delay", 0.05)))
                continue
            if reply.get("op") != "task":
                raise RuntimeError(f"unexpected coordinator reply: {reply!r}")
            task = _with_backend(from_wire(reply["task"]), backend)
            try:
                _, tally = run_chunk_task(task)
            except Exception as exc:  # report, don't die: the chunk may
                # succeed on a worker with different capabilities.
                send_message(
                    wfile,
                    {"op": "failed", "id": reply["id"], "error": repr(exc)},
                )
            else:
                executed += 1
                send_message(
                    wfile,
                    {
                        "op": "result",
                        "id": reply["id"],
                        "tally": to_wire(tally),
                    },
                )
            ack = recv_message(rfile)
            if ack is None:
                return executed
    except (ConnectionError, BrokenPipeError):
        return executed  # coordinator went away: a worker just stops
    finally:
        sock.close()
