"""Distributed multi-host execution for the Monte-Carlo studies.

The scale rung over the PR-3 streaming orchestrator: because every
chunk tally is a pure function of ``(spec, chunk range, stream key)``
and folds commutatively, a chunk can run *anywhere* — so this package
ships :class:`ChunkTask` specs to remote hosts over a pickle-free
JSON-line socket protocol and folds the returned tallies exactly once:

* :mod:`~repro.distribute.wire` — framing + the registered-dataclass
  codec;
* :mod:`~repro.distribute.queue` — the work-stealing lease queue
  (re-queues work from dead or straggling workers);
* :mod:`~repro.distribute.checkpoint` — the atomic per-chunk tally
  journal behind ``--checkpoint-dir`` / ``--resume``;
* :mod:`~repro.distribute.coordinator` — :class:`DistributedSession`,
  the server + batch fold API (``run_tasks``) that plugs into
  :func:`repro.orchestrate.pool.run_sharded` as an ``executor`` and
  serves as the adaptive runner's round barrier;
* :mod:`~repro.distribute.worker` / :mod:`~repro.distribute.local` —
  the ``repro-muse worker --connect`` pull loop and the loopback
  ``--distribute local:N`` subprocess fleet;
* :mod:`~repro.distribute.progress` — the ``--progress`` heartbeats;
* :mod:`~repro.distribute.chaos` — deterministic fault injection
  (``--chaos SPEC`` / ``REPRO_CHAOS``): seeded connection resets, torn
  frames, worker crashes, straggler hangs, duplicated results, and
  torn journal tails, so the fault-tolerance story is *tested* the way
  the repo tests memory faults, not assumed.

The invariant, inherited from the chunk/fold contract and preserved by
exactly-once folding: a distributed run's tally — and every adaptive
stopping decision derived from it — is **byte-identical** to the
``jobs=1`` in-process run at the same seed, across worker counts,
worker deaths, reconnects, injected chaos, and checkpoint/resume
boundaries.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.distribute.chaos import (
    CHAOS_ENV,
    ChaosSpec,
    FaultPlan,
    parse_chaos,
    resolve_chaos,
)
from repro.distribute.checkpoint import (
    JOURNAL_NAME,
    CheckpointJournal,
    SalvageReport,
)

# cache must import before coordinator: both sit on checkpoint, and the
# cache is what the coordinator's ``cache=`` parameter duck-types.
from repro.distribute.cache import ResultCache
from repro.distribute.coordinator import (
    INTERRUPT_ENV,
    PARTIAL_RESULTS_NAME,
    DistributedDegraded,
    DistributedInterrupted,
    DistributedSession,
)
from repro.distribute.local import spawn_local_workers
from repro.distribute.progress import ChunkProgress, Heartbeat
from repro.distribute.queue import ChunkQueue
from repro.distribute.wire import (
    PROTOCOL_VERSION,
    from_wire,
    register_wire_type,
    to_wire,
)
from repro.distribute.worker import serve_worker
from repro.orchestrate.rng import derive_key

__all__ = [
    "CHAOS_ENV",
    "ChaosSpec",
    "CheckpointJournal",
    "ChunkProgress",
    "ChunkQueue",
    "DistributedDegraded",
    "DistributedInterrupted",
    "DistributedSession",
    "FaultPlan",
    "Heartbeat",
    "INTERRUPT_ENV",
    "JOURNAL_NAME",
    "PARTIAL_RESULTS_NAME",
    "PROTOCOL_VERSION",
    "ResultCache",
    "SalvageReport",
    "execution_context",
    "from_wire",
    "parse_chaos",
    "parse_distribute",
    "register_wire_type",
    "resolve_chaos",
    "serve_worker",
    "session_from_spec",
    "spawn_local_workers",
    "to_wire",
]


def parse_distribute(spec: str) -> dict:
    """Parse a ``--distribute`` spec into session keyword arguments.

    * ``local:N`` — spawn N loopback worker subprocesses;
    * ``listen:PORT`` / ``listen:HOST:PORT`` — serve the queue and wait
      for external ``repro-muse worker --connect`` processes.
    """
    mode, _, rest = spec.partition(":")
    try:
        if mode == "local":
            count = int(rest)
            if count < 1:
                raise ValueError
            return {"local_workers": count}
        if mode == "listen":
            host, sep, port = rest.rpartition(":")
            return {
                "host": host if sep else "0.0.0.0",
                "port": int(port if sep else rest),
            }
    except ValueError:
        pass
    raise ValueError(
        f"bad --distribute spec {spec!r}; expected local:N, listen:PORT "
        f"or listen:HOST:PORT"
    )


def session_from_spec(
    spec: str,
    *,
    seed: int,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    backend: str | None = None,
    progress: bool = False,
    lease_timeout: float = 60.0,
    interrupt_after: int | None = None,
    chaos: str | None = None,
    cache_dir: str | None = None,
) -> DistributedSession:
    """Build (but do not open) the session a ``--distribute`` run uses.

    ``chaos`` (defaulting to ``$REPRO_CHAOS``) arms deterministic fault
    injection on the coordinator *and* the spawned loopback workers.
    ``cache_dir`` attaches the cross-run :class:`ResultCache`: completed
    cells fold from disk with zero new trials.
    """
    kwargs = parse_distribute(spec)
    checkpoint = None
    if checkpoint_dir is not None:
        # The append-only journal persists each fold in O(1) (fsync'd
        # line append), so no rate limiting is needed: a hard kill can
        # tear at most the final in-flight record, which the CRC
        # salvage discards on --resume.
        checkpoint = CheckpointJournal.open(
            checkpoint_dir,
            key=derive_key(seed),
            resume=resume,
        )
    return DistributedSession(
        backend=backend,
        checkpoint=checkpoint,
        cache=ResultCache(cache_dir) if cache_dir is not None else None,
        lease_timeout=lease_timeout,
        heartbeat=Heartbeat() if progress else None,
        interrupt_after=interrupt_after,
        chaos=chaos,
        **kwargs,
    )


@contextlib.contextmanager
def execution_context(
    distribute: str | None,
    *,
    seed: int,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    backend: str | None = None,
    progress: bool = False,
    lease_timeout: float = 60.0,
    chaos: str | None = None,
    cache_dir: str | None = None,
) -> Iterator[tuple]:
    """The one experiment-side entry point: ``(executor, progress_cb)``.

    With ``distribute`` set, yields an open :class:`DistributedSession`
    (heartbeats cover progress, so the callback is ``None``); without
    it, yields no executor and — when ``progress`` is on — the
    single-host :class:`ChunkProgress` printer.  Checkpoints belong to
    the coordinator, so ``checkpoint_dir`` without ``distribute``
    refuses loudly instead of silently not journaling.  ``cache_dir``
    rides with the session here; in-process runs attach their cache in
    the campaign runner instead (see
    :func:`repro.reliability.monte_carlo.run_design_points_adaptive`).
    """
    if distribute is None:
        if checkpoint_dir is not None:
            raise ValueError(
                "--checkpoint-dir requires --distribute (use "
                "'--distribute local:1' for a single-host resumable run)"
            )
        yield None, (ChunkProgress() if progress else None)
        return
    session = session_from_spec(
        distribute,
        seed=seed,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        backend=backend,
        progress=progress,
        lease_timeout=lease_timeout,
        chaos=chaos,
        cache_dir=cache_dir,
    )
    with session:
        yield session, None
