"""The coordinator's work-stealing chunk queue.

Workers *pull*: an idle worker asks for the next task, the queue hands
one out under a **lease** (task id, worker, deadline), and the fold
happens when the worker reports the result back.  Fault tolerance is
two rules on top of that:

* **death** — when a worker's connection drops, every lease it held is
  re-queued immediately (:meth:`ChunkQueue.release_worker`);
* **straggling** — a lease older than ``lease_timeout`` is stolen back
  into the pending queue (:meth:`ChunkQueue.reap_expired`), so one hung
  host cannot wedge the run.

Both rules can make a task run more than once; the queue keeps the fold
**exactly-once** anyway by marking each task id completed on the first
result and telling callers to drop duplicates
(:meth:`ChunkQueue.complete` returns ``False``).  Because every chunk
tally is a pure function of its task (the PR-3 counter-RNG contract),
a duplicate execution computes the *same* tally, so dropping it keeps
the folded result byte-identical to a single-execution run.

The queue is plain state + methods, synchronised by the caller (the
coordinator holds one lock around all queue access), which keeps the
logic single-threaded and unit-testable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Lease:
    """One outstanding task: who has it and when it is presumed lost."""

    task_id: int
    worker: str
    deadline: float


@dataclass
class ChunkQueue:
    """Lease-based pull queue over integer task ids."""

    lease_timeout: float = 60.0
    tasks: dict[int, Any] = field(default_factory=dict)
    pending: deque = field(default_factory=deque)
    leases: dict[int, Lease] = field(default_factory=dict)
    completed: set = field(default_factory=set)
    requeues: int = 0
    _next_id: int = 0

    def add_task(self, task: Any) -> int:
        task_id = self._next_id
        self._next_id += 1
        self.tasks[task_id] = task
        self.pending.append(task_id)
        return task_id

    def claim(self, worker: str, now: float) -> tuple[int, Any] | None:
        """Lease the next pending task to ``worker``; ``None`` if the
        queue is momentarily empty (idle — or all work is leased out)."""
        while self.pending:
            task_id = self.pending.popleft()
            if task_id in self.completed:
                continue
            self.leases[task_id] = Lease(
                task_id, worker, now + self.lease_timeout
            )
            return task_id, self.tasks[task_id]
        return None

    def complete(self, task_id: int) -> bool:
        """First completion wins: ``True`` to fold, ``False`` to drop a
        duplicate from a stolen or re-queued lease."""
        self.leases.pop(task_id, None)
        if task_id in self.completed:
            return False
        if task_id not in self.tasks:
            raise KeyError(f"unknown task id {task_id}")
        self.completed.add(task_id)
        return True

    def requeue(self, task_id: int) -> None:
        """Put one leased task back in the pending queue (worker
        reported a failure; another attempt may succeed elsewhere)."""
        self.leases.pop(task_id, None)
        if task_id not in self.completed:
            self.pending.append(task_id)
            self.requeues += 1

    def release_worker(self, worker: str) -> int:
        """Re-queue every lease a (dead) worker holds; returns count."""
        stolen = [
            lease.task_id
            for lease in self.leases.values()
            if lease.worker == worker
        ]
        for task_id in stolen:
            del self.leases[task_id]
            self.pending.append(task_id)
        self.requeues += len(stolen)
        return len(stolen)

    def reap_expired(self, now: float) -> int:
        """Steal back every lease past its deadline; returns count."""
        expired = [
            lease.task_id
            for lease in self.leases.values()
            if lease.deadline <= now
        ]
        for task_id in expired:
            del self.leases[task_id]
            self.pending.append(task_id)
        self.requeues += len(expired)
        return len(expired)

    @property
    def done(self) -> bool:
        return len(self.completed) == len(self.tasks)

    @property
    def outstanding(self) -> int:
        return len(self.tasks) - len(self.completed)
