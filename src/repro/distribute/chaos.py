"""Deterministic fault injection for the distributed runtime.

The repo simulates memory faults for a living; this module points the
same discipline at the runtime itself.  A :class:`ChaosSpec` names a
set of fault classes with firing rules, and a :class:`FaultPlan`
evaluates those rules as a **pure function** of ``(seed, scope, fault
class, event index)`` using the same splitmix64 counter hashing the
Monte-Carlo streams use (:mod:`repro.orchestrate.rng`) — no wall
clock, no shared RNG state — so a chaos run injects the same faults at
the same per-worker event counts every time it is replayed.

Fault classes (all opt-in, all off by default):

========== ==========================================================
``reset``   drop the worker's connection before a result is reported
            (exercises lease re-queue + worker rejoin)
``torn``    replace a result frame with a torn/garbage line, then
            drop the connection (exercises the coordinator's
            protocol-error path)
``crash``   hard-kill the worker process (``os._exit``) before it
            runs its next task (exercises work stealing from dead
            workers, and total-fleet-loss degradation)
``hang``    straggler sleep before reporting (exercises lease-timeout
            steals; duration set via ``hang=P:SECONDS``)
``dup``     send the result frame twice (exercises exactly-once folds)
``journal`` tear the checkpoint journal's tail mid-record and stop
            journalling, as a crash mid-append would (exercises CRC
            salvage on ``--resume``)
========== ==========================================================

Spec syntax — comma-separated ``key=value`` (``--chaos SPEC`` or the
``REPRO_CHAOS`` environment variable, which worker subprocesses
inherit)::

    seed=7,reset=0.1,dup=0.25        # probabilistic, per event
    crash=@2                         # deterministic: fire on the 2nd
                                     # event of that class (once)
    hang=0.1:0.8                     # 10% of tasks sleep 0.8s
    journal=@3                       # tear the 3rd journal append

A rule is evaluated once per *event* (one task pulled, one result
sent, one journal append …) against a per-``(scope, class)`` counter,
where the scope is the worker's name (or ``coordinator``) — so two
workers under the same spec fail at different, but individually
reproducible, points.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass

from repro.orchestrate.rng import derive_key, trial_seed

#: Environment variable carrying the chaos spec; ``--chaos`` sets it so
#: spawned loopback workers inherit the same plan.
CHAOS_ENV = "REPRO_CHAOS"

#: Every fault class a spec may name, in documentation order.
FAULT_KINDS = ("reset", "torn", "crash", "hang", "dup", "journal")

#: Exit status of a chaos-crashed worker process (distinct from real
#: failures so fleet logs attribute the death correctly).
CHAOS_CRASH_EXIT = 86

_TWO_64 = float(1 << 64)


@dataclass(frozen=True)
class FaultRule:
    """When one fault class fires: Bernoulli per event, or exactly
    once on the ``at``-th event of that class in a scope."""

    probability: float = 0.0
    at: int | None = None


@dataclass(frozen=True)
class ChaosSpec:
    """A parsed ``--chaos`` spec: seed + one rule per fault class."""

    seed: int = 0
    rules: tuple[tuple[str, FaultRule], ...] = ()
    hang_seconds: float = 0.25

    def rule(self, kind: str) -> FaultRule | None:
        for name, rule in self.rules:
            if name == kind:
                return rule
        return None

    @property
    def kinds(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.rules)


def _parse_rule(kind: str, value: str) -> FaultRule:
    if value.startswith("@"):
        at = int(value[1:])
        if at < 1:
            raise ValueError(f"{kind}=@{at}: event index must be >= 1")
        return FaultRule(at=at)
    probability = float(value)
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"{kind}={value}: probability must be in [0, 1]")
    return FaultRule(probability=probability)


def parse_chaos(spec: str) -> ChaosSpec:
    """Parse a chaos spec string (see the module docstring for syntax)."""
    seed = 0
    hang_seconds = 0.25
    rules: list[tuple[str, FaultRule]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            if not sep or not value:
                raise ValueError("expected key=value")
            if key == "seed":
                seed = int(value)
            elif key == "hang":
                rule_text, colon, duration = value.partition(":")
                if colon:
                    hang_seconds = float(duration)
                    if hang_seconds < 0:
                        raise ValueError("hang duration must be >= 0")
                rules.append((key, _parse_rule(key, rule_text)))
            elif key in FAULT_KINDS:
                rules.append((key, _parse_rule(key, value)))
            else:
                raise ValueError(
                    f"unknown fault class {key!r}; expected seed, "
                    f"{', '.join(FAULT_KINDS)}"
                )
        except ValueError as exc:
            raise ValueError(
                f"bad --chaos spec {spec!r} at {part!r}: {exc}"
            ) from None
    return ChaosSpec(
        seed=seed, rules=tuple(rules), hang_seconds=hang_seconds
    )


def resolve_chaos(
    chaos: "ChaosSpec | str | None",
) -> ChaosSpec | None:
    """Normalise a chaos argument: parsed spec, spec string, or —
    when ``None`` — the :data:`CHAOS_ENV` environment variable."""
    if chaos is None:
        chaos = os.environ.get(CHAOS_ENV) or None
    if chaos is None or isinstance(chaos, ChaosSpec):
        return chaos
    return parse_chaos(chaos)


class FaultPlan:
    """One scope's deterministic fault schedule under a spec.

    ``should(kind)`` advances that class's event counter and answers
    whether the fault fires at this event — a pure function of
    ``(spec.seed, scope, kind, event index)``, so replaying the same
    run replays the same faults.
    """

    def __init__(self, spec: ChaosSpec, scope: str):
        self.spec = spec
        self.scope = scope
        self._counts: dict[str, int] = {}
        scope_part = zlib.crc32(scope.encode())
        self._keys = {
            kind: derive_key(spec.seed, scope_part, index)
            for index, kind in enumerate(FAULT_KINDS)
        }

    def should(self, kind: str) -> bool:
        rule = self.spec.rule(kind)
        if rule is None:
            return False
        count = self._counts.get(kind, 0) + 1
        self._counts[kind] = count
        if rule.at is not None:
            fired = count == rule.at
        else:
            fired = (
                trial_seed(self._keys[kind], count) / _TWO_64
                < rule.probability
            )
        if fired:
            # In-process scopes (coordinator journal faults, loopback
            # tests) land in the active telemetry session; worker
            # subprocesses have none, and count firings themselves
            # (see :mod:`repro.distribute.worker`).
            from repro import telemetry

            telemetry.counter("chaos.fired", kind=kind, scope=self.scope)
            telemetry.event(
                "chaos.fault", kind=kind, scope=self.scope, event=count
            )
        return fired

    def events(self, kind: str) -> int:
        """How many times ``kind`` has been evaluated in this scope."""
        return self._counts.get(kind, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(scope={self.scope!r}, seed={self.spec.seed}, "
            f"kinds={self.spec.kinds})"
        )


def plan_for(
    chaos: "ChaosSpec | str | None", scope: str
) -> FaultPlan | None:
    """A :class:`FaultPlan` for ``scope``, or ``None`` with chaos off."""
    spec = resolve_chaos(chaos)
    if spec is None or not spec.rules:
        return None
    return FaultPlan(spec, scope)


def describe(spec: ChaosSpec) -> str:
    """One log line summarising an active spec."""
    parts = [f"seed={spec.seed}"]
    for name, rule in spec.rules:
        value = f"@{rule.at}" if rule.at is not None else f"{rule.probability}"
        if name == "hang":
            value += f":{spec.hang_seconds}"
        parts.append(f"{name}={value}")
    return ",".join(parts)


def spec_string(spec: ChaosSpec) -> str:
    """Round-trippable spec string (``parse_chaos(spec_string(s)) == s``
    up to rule order) — what the coordinator forwards to spawned
    loopback workers."""
    return describe(spec)


__all__ = [
    "CHAOS_ENV",
    "CHAOS_CRASH_EXIT",
    "ChaosSpec",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "describe",
    "parse_chaos",
    "plan_for",
    "resolve_chaos",
    "spec_string",
]
