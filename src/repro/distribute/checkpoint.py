"""Persistent tally checkpoints: a self-healing append-only journal.

The journal records one line per completed :class:`ChunkTask` —
``(group, chunk range, chunk tally, spec fingerprint)`` — under a
header naming the run's stream ``key``.  Per-*chunk* tallies (not just
a folded total per group) are what make resume exact under **any**
batch structure: an adaptive run submits rounds of chunk ranges, a
resumed coordinator replays the same deterministic rounds, and every
chunk the journal already holds is answered from disk while the rest
recompute — the fold is the same integer sums either way, so the
resumed tally (and every adaptive stopping decision derived from it)
is byte-identical to an uninterrupted run.  A chunk plan that
*doesn't* match the journal (different ``chunk_size``) simply misses
and recomputes — still correct, just unsaved work.

Durability model (version 2):

* every line carries a CRC32 of its own payload, and every append is
  fsync'd (:func:`repro.orchestrate.persist.durable_append`) — O(1)
  per record, unlike the version-1 whole-file rewrite;
* appends are not atomic, so a crash (or an injected ``journal``
  chaos fault) can tear the final line — and **only** the final line,
  because the fsync orders everything before it;
* on load, the journal keeps the longest valid prefix of records.  A
  damaged file is **salvaged**, not fatal: the original is quarantined
  as a ``.corrupt`` sidecar, the valid prefix is rewritten atomically,
  and a resumed run re-simulates only the chunks the tear lost
  (:attr:`CheckpointJournal.salvage` reports what happened).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.orchestrate.persist import (
    atomic_write_text,
    decode_crc_line,
    durable_append,
    encode_crc_line,
)
from repro.orchestrate.plan import Chunk
from repro.reliability.metrics import MsedTally

JOURNAL_VERSION = 2
JOURNAL_NAME = "checkpoint.jsonl"

#: Quarantine suffix for a damaged journal (sits next to the salvaged
#: rewrite so the evidence survives for post-mortems).
CORRUPT_SUFFIX = ".corrupt"

_TALLY_FIELDS = (
    "trials",
    "detected_no_match",
    "detected_confinement",
    "miscorrected",
    "silent",
)


def _group_key(group: Any) -> str:
    """A stable string key for a task group (JSON round-trippable)."""
    return json.dumps(group, sort_keys=True)


def spec_fingerprint(spec: Any) -> str:
    """What must match for a journalled chunk to be reusable.

    The spec's structural repr, minus the decode backend: scalar and
    numpy tally byte-identically (the PR-1/PR-2 contract), so a
    checkpoint taken on one backend resumes on any other — but a
    changed code, ``k_symbols`` or decode policy must refuse, not
    silently fold chunks of a different experiment.
    """
    if dataclasses.is_dataclass(spec) and hasattr(spec, "backend"):
        spec = dataclasses.replace(spec, backend="any")
    return repr(spec)


# The CRC'd-line codec now lives in :mod:`repro.orchestrate.persist`
# (it is shared with the result cache and the telemetry event log);
# the private aliases keep this module's historical import surface.
_encode_line = encode_crc_line
_decode_line = decode_crc_line


@dataclass(frozen=True)
class SalvageReport:
    """What loading a damaged journal kept and dropped."""

    records_kept: int
    lines_dropped: int
    corrupt_path: Path


class CheckpointJournal:
    """All completed chunks of one run, persisted as CRC'd JSON lines.

    In memory: ``(group key, start, size) -> MsedTally``.  On disk: a
    header line plus one appended line per record.  By default every
    :meth:`record` persists immediately (appends are O(1));
    ``save_every`` / ``min_save_interval`` batch appends for callers
    that want to trade a few re-computable chunks for fewer fsyncs —
    the coordinator flushes pending entries at every batch barrier, on
    interrupt, and at session close, so a hard kill loses at most the
    batched tail of *re-computable* chunks, never correctness.

    ``chaos`` (a :class:`repro.distribute.chaos.FaultPlan`) injects the
    ``journal`` fault class: a scheduled append writes a torn line and
    the journal goes silent afterwards, exactly as a crash mid-append
    would leave the file.
    """

    def __init__(
        self,
        path: str | Path,
        key: int,
        save_every: int = 1,
        min_save_interval: float = 0.0,
        chaos: Any | None = None,
    ):
        self.path = Path(path)
        self.key = key
        self.save_every = max(1, save_every)
        self.min_save_interval = min_save_interval
        self.chaos = chaos
        self.salvage: SalvageReport | None = None
        self._last_save = -float("inf")
        self._entries: dict[tuple[str, int, int], MsedTally] = {}
        self._fingerprints: dict[str, str] = {}
        self._pending: list[dict] = []
        self._unsaved = 0
        self._header_written = False
        self._torn = False  # a chaos journal fault fired: play dead

    # -- construction ---------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str | Path,
        key: int,
        resume: bool = False,
        save_every: int = 1,
        min_save_interval: float = 0.0,
        chaos: Any | None = None,
    ) -> "CheckpointJournal":
        """Start (or resume) the journal under ``directory``.

        A fresh run refuses to clobber an existing journal — passing
        ``resume=True`` is the explicit opt-in that loads it instead.
        A resumed journal must match this run's stream ``key`` (seed):
        folding chunks of a different stream would silently corrupt the
        tally.  A damaged journal salvages its valid prefix rather than
        refusing (see the module docstring).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        journal = cls(
            directory / JOURNAL_NAME,
            key,
            save_every=save_every,
            min_save_interval=min_save_interval,
            chaos=chaos,
        )
        if journal.path.exists():
            if not resume:
                raise FileExistsError(
                    f"{journal.path} already holds a checkpoint journal; "
                    f"pass resume=True (--resume) to continue it, or remove "
                    f"the directory to start over"
                )
            journal._load()
        elif resume:
            # Resuming nothing is fine (first run of a resumable
            # campaign) — start empty.
            pass
        return journal

    def _load(self) -> None:
        raw = self.path.read_bytes()
        lines = [line for line in raw.split(b"\n")]
        # Drop the trailing empty element a well-formed final newline
        # produces; keep interior blanks so they count as damage.
        if lines and lines[-1] == b"":
            lines.pop()
        header = _decode_line(lines[0]) if lines else None
        if header is None or "version" not in header:
            self._refuse_legacy_or_quarantine(raw, lines)
            return
        if header.get("version") != JOURNAL_VERSION:
            raise ValueError(
                f"checkpoint journal {self.path} has version "
                f"{header.get('version')!r}, expected {JOURNAL_VERSION}"
            )
        if header.get("key") != self.key:
            raise ValueError(
                f"checkpoint journal {self.path} belongs to stream key "
                f"{header.get('key')} but this run uses key {self.key} "
                f"(different --seed?); refusing to mix streams"
            )
        kept = 0
        damaged = False
        for line in lines[1:]:
            record = _decode_line(line)
            if record is None or not self._adopt(record):
                damaged = True
                break
            kept += 1
        self._header_written = True
        if damaged:
            self._quarantine_and_rewrite(kept, len(lines) - 1 - kept)

    def _adopt(self, record: dict) -> bool:
        """Fold one decoded record into memory; ``False`` if malformed
        or inconsistent (treated as damage by the loader)."""
        try:
            group_key = record["group"]
            start = record["start"]
            size = record["size"]
            spec = record["spec"]
            counts = record["counts"]
            tally = MsedTally(**{name: counts[name] for name in _TALLY_FIELDS})
        except (KeyError, TypeError):
            return False
        if not isinstance(group_key, str) or not isinstance(spec, str):
            return False
        known = self._fingerprints.get(group_key)
        if known is not None and known != spec:
            return False
        self._fingerprints[group_key] = spec
        self._entries[(group_key, start, size)] = tally
        return True

    def _refuse_legacy_or_quarantine(
        self, raw: bytes, lines: list[bytes]
    ) -> None:
        """First line isn't a valid v2 header: either a legacy v1
        whole-document journal (refuse with the version story) or
        damage so early nothing is salvageable (quarantine, start
        empty)."""
        try:
            legacy = json.loads(raw)
        except (ValueError, UnicodeDecodeError):
            legacy = None
        if isinstance(legacy, dict) and "version" in legacy:
            raise ValueError(
                f"checkpoint journal {self.path} has version "
                f"{legacy.get('version')!r}, expected {JOURNAL_VERSION}"
            )
        self._quarantine_and_rewrite(0, len(lines))

    def _quarantine_and_rewrite(self, kept: int, dropped: int) -> None:
        """Move the damaged original aside and atomically rewrite the
        valid prefix, so the healed journal is complete on disk before
        the run continues appending to it."""
        corrupt_path = self.path.with_name(self.path.name + CORRUPT_SUFFIX)
        os.replace(self.path, corrupt_path)
        self._rewrite()
        self.salvage = SalvageReport(
            records_kept=kept,
            lines_dropped=dropped,
            corrupt_path=corrupt_path,
        )

    def _rewrite(self) -> None:
        """Atomically write header + every in-memory record."""
        chunks = [self._header_line().decode()]
        for (group_key, start, size), tally in sorted(self._entries.items()):
            chunks.append(
                _encode_line(
                    self._record_dict(group_key, start, size, tally)
                ).decode()
            )
        atomic_write_text(self.path, "".join(chunks))
        self._header_written = True

    def _header_line(self) -> bytes:
        return _encode_line({"version": JOURNAL_VERSION, "key": self.key})

    def _record_dict(
        self, group_key: str, start: int, size: int, tally: MsedTally
    ) -> dict:
        return {
            "group": group_key,
            "start": start,
            "size": size,
            "spec": self._fingerprints.get(group_key, ""),
            "counts": {name: getattr(tally, name) for name in _TALLY_FIELDS},
        }

    # -- queries --------------------------------------------------------

    def lookup(
        self, group: Any, chunk: Chunk, fingerprint: str
    ) -> MsedTally | None:
        """The journalled tally for one chunk, or ``None`` (a *copy*:
        callers fold it into mutable accumulators)."""
        group_key = _group_key(group)
        self._check_fingerprint(group_key, fingerprint)
        held = self._entries.get((group_key, chunk.start, chunk.size))
        if held is None:
            return None
        return MsedTally().merge(held)

    def _check_fingerprint(self, group_key: str, fingerprint: str) -> None:
        known = self._fingerprints.get(group_key)
        if known is not None and known != fingerprint:
            raise ValueError(
                f"checkpoint journal {self.path} recorded group {group_key} "
                f"for a different simulator configuration\n"
                f"  journal: {known}\n"
                f"  this run: {fingerprint}\n"
                f"resume with the original settings or start a fresh "
                f"checkpoint directory"
            )

    def __len__(self) -> int:
        return len(self._entries)

    def folded(self) -> dict[str, dict]:
        """Per-group folded totals (+ chunk counts) of everything held —
        what the partial-results report publishes."""
        out: dict[str, dict] = {}
        for (group_key, _start, _size), tally in sorted(self._entries.items()):
            entry = out.setdefault(
                group_key, {"chunks": 0, **dict.fromkeys(_TALLY_FIELDS, 0)}
            )
            entry["chunks"] += 1
            for name in _TALLY_FIELDS:
                entry[name] += getattr(tally, name)
        return out

    # -- updates --------------------------------------------------------

    def record(
        self, group: Any, chunk: Chunk, tally: MsedTally, fingerprint: str
    ) -> None:
        """Journal one completed chunk and (by default) persist now."""
        group_key = _group_key(group)
        self._check_fingerprint(group_key, fingerprint)
        self._fingerprints[group_key] = fingerprint
        self._entries[(group_key, chunk.start, chunk.size)] = (
            MsedTally().merge(tally)
        )
        self._pending.append(
            self._record_dict(group_key, chunk.start, chunk.size, tally)
        )
        self._unsaved += 1
        if (
            self._unsaved >= self.save_every
            and time.monotonic() - self._last_save >= self.min_save_interval
        ):
            self.save()

    def flush(self) -> None:
        """Persist any entries the rate limit is still holding back."""
        if self._unsaved:
            self.save()

    def save(self) -> None:
        """Append every pending record (fsync'd)."""
        if self._torn:
            # A chaos journal fault already "crashed" the journal: the
            # run continues, but disk state stays frozen at the tear.
            self._pending.clear()
            self._unsaved = 0
            return
        payload = b""
        if not self._header_written and not self.path.exists():
            payload += self._header_line()
        for record in self._pending:
            line = _encode_line(record)
            if self.chaos is not None and self.chaos.should("journal"):
                # Tear this record mid-line — what a crash between
                # write and fsync leaves — and go silent.
                payload += line[: max(1, len(line) * 2 // 3)].rstrip(b"\n")
                self._torn = True
                break
            payload += line
        durable_append(self.path, payload)
        self._header_written = True
        self._pending.clear()
        self._unsaved = 0
        self._last_save = time.monotonic()
