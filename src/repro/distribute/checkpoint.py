"""Persistent tally checkpoints: journal every folded chunk, resume any
interrupted run byte-identically.

The journal records one entry per completed :class:`ChunkTask` —
``(group, chunk range, chunk tally)`` — plus the run's stream ``key``.
Per-*chunk* tallies (not just a folded total per group) are what make
resume exact under **any** batch structure: an adaptive run submits
rounds of chunk ranges, a resumed coordinator replays the same
deterministic rounds, and every chunk the journal already holds is
answered from disk while the rest recompute — the fold is the same
integer sums either way, so the resumed tally (and every adaptive
stopping decision derived from it) is byte-identical to an
uninterrupted run.  A chunk plan that *doesn't* match the journal
(different ``chunk_size``) simply misses and recomputes — still
correct, just unsaved work.

Every save is an atomic temp-file + rename
(:func:`repro.orchestrate.persist.atomic_write_json`), so a run killed
mid-write leaves either the previous complete journal or the new one,
never a truncated file.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Any

from repro.orchestrate.persist import atomic_write_json
from repro.orchestrate.plan import Chunk
from repro.reliability.metrics import MsedTally

JOURNAL_VERSION = 1
JOURNAL_NAME = "checkpoint.json"

_TALLY_FIELDS = (
    "trials",
    "detected_no_match",
    "detected_confinement",
    "miscorrected",
    "silent",
)


def _group_key(group: Any) -> str:
    """A stable string key for a task group (JSON round-trippable)."""
    return json.dumps(group, sort_keys=True)


def spec_fingerprint(spec: Any) -> str:
    """What must match for a journalled chunk to be reusable.

    The spec's structural repr, minus the decode backend: scalar and
    numpy tally byte-identically (the PR-1/PR-2 contract), so a
    checkpoint taken on one backend resumes on any other — but a
    changed code, ``k_symbols`` or decode policy must refuse, not
    silently fold chunks of a different experiment.
    """
    if dataclasses.is_dataclass(spec) and hasattr(spec, "backend"):
        spec = dataclasses.replace(spec, backend="any")
    return repr(spec)


class CheckpointJournal:
    """All completed chunks of one run, persisted atomically.

    In memory: ``(group key, start, size) -> MsedTally``.  On disk: one
    JSON document, rewritten atomically.  By default every
    :meth:`record` persists immediately; for long runs the rewrite is
    O(entries), so ``min_save_interval`` (seconds) rate-limits the hot
    path — the coordinator flushes pending entries at every batch
    barrier, on interrupt, and at session close, so a hard kill loses
    at most an interval's worth of *re-computable* chunks, never
    correctness.
    """

    def __init__(
        self,
        path: str | Path,
        key: int,
        save_every: int = 1,
        min_save_interval: float = 0.0,
    ):
        self.path = Path(path)
        self.key = key
        self.save_every = max(1, save_every)
        self.min_save_interval = min_save_interval
        self._last_save = -float("inf")
        self._entries: dict[tuple[str, int, int], MsedTally] = {}
        self._fingerprints: dict[str, str] = {}
        self._unsaved = 0

    # -- construction ---------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str | Path,
        key: int,
        resume: bool = False,
        save_every: int = 1,
        min_save_interval: float = 0.0,
    ) -> "CheckpointJournal":
        """Start (or resume) the journal under ``directory``.

        A fresh run refuses to clobber an existing journal — passing
        ``resume=True`` is the explicit opt-in that loads it instead.
        A resumed journal must match this run's stream ``key`` (seed):
        folding chunks of a different stream would silently corrupt the
        tally.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        journal = cls(
            directory / JOURNAL_NAME,
            key,
            save_every=save_every,
            min_save_interval=min_save_interval,
        )
        if journal.path.exists():
            if not resume:
                raise FileExistsError(
                    f"{journal.path} already holds a checkpoint journal; "
                    f"pass resume=True (--resume) to continue it, or remove "
                    f"the directory to start over"
                )
            journal._load()
        elif resume:
            # Resuming nothing is fine (first run of a resumable
            # campaign) — start empty.
            pass
        return journal

    def _load(self) -> None:
        payload = json.loads(self.path.read_text())
        if payload.get("version") != JOURNAL_VERSION:
            raise ValueError(
                f"checkpoint journal {self.path} has version "
                f"{payload.get('version')!r}, expected {JOURNAL_VERSION}"
            )
        if payload.get("key") != self.key:
            raise ValueError(
                f"checkpoint journal {self.path} belongs to stream key "
                f"{payload.get('key')} but this run uses key {self.key} "
                f"(different --seed?); refusing to mix streams"
            )
        for group_key, entry in payload.get("groups", {}).items():
            self._fingerprints[group_key] = entry["spec"]
            for start, size, counts in entry["chunks"]:
                self._entries[(group_key, start, size)] = MsedTally(
                    **{name: counts[name] for name in _TALLY_FIELDS}
                )

    # -- queries --------------------------------------------------------

    def lookup(
        self, group: Any, chunk: Chunk, fingerprint: str
    ) -> MsedTally | None:
        """The journalled tally for one chunk, or ``None`` (a *copy*:
        callers fold it into mutable accumulators)."""
        group_key = _group_key(group)
        self._check_fingerprint(group_key, fingerprint)
        held = self._entries.get((group_key, chunk.start, chunk.size))
        if held is None:
            return None
        return MsedTally().merge(held)

    def _check_fingerprint(self, group_key: str, fingerprint: str) -> None:
        known = self._fingerprints.get(group_key)
        if known is not None and known != fingerprint:
            raise ValueError(
                f"checkpoint journal {self.path} recorded group {group_key} "
                f"for a different simulator configuration\n"
                f"  journal: {known}\n"
                f"  this run: {fingerprint}\n"
                f"resume with the original settings or start a fresh "
                f"checkpoint directory"
            )

    def __len__(self) -> int:
        return len(self._entries)

    # -- updates --------------------------------------------------------

    def record(
        self, group: Any, chunk: Chunk, tally: MsedTally, fingerprint: str
    ) -> None:
        """Journal one completed chunk and (by default) persist now."""
        group_key = _group_key(group)
        self._check_fingerprint(group_key, fingerprint)
        self._fingerprints[group_key] = fingerprint
        self._entries[(group_key, chunk.start, chunk.size)] = (
            MsedTally().merge(tally)
        )
        self._unsaved += 1
        if (
            self._unsaved >= self.save_every
            and time.monotonic() - self._last_save >= self.min_save_interval
        ):
            self.save()

    def flush(self) -> None:
        """Persist any entries the rate limit is still holding back."""
        if self._unsaved:
            self.save()

    def save(self) -> None:
        """Atomically rewrite the journal file."""
        groups: dict[str, dict] = {}
        for (group_key, start, size), tally in sorted(self._entries.items()):
            entry = groups.setdefault(
                group_key,
                {
                    "spec": self._fingerprints.get(group_key, ""),
                    "chunks": [],
                    "folded": dict.fromkeys(_TALLY_FIELDS, 0),
                },
            )
            counts = {name: getattr(tally, name) for name in _TALLY_FIELDS}
            entry["chunks"].append([start, size, counts])
            for name in _TALLY_FIELDS:
                entry["folded"][name] += counts[name]
        atomic_write_json(
            self.path,
            {"version": JOURNAL_VERSION, "key": self.key, "groups": groups},
        )
        self._unsaved = 0
        self._last_save = time.monotonic()
