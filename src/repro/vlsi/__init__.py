"""Analytic VLSI cost model (Table V substitute for Synopsys synthesis).

* :mod:`repro.vlsi.cells` — calibrated 15nm cell constants + the
  2400 MHz cycle computation.
* :mod:`repro.vlsi.cost_model` — MUSE encoder/corrector costs built from
  Booth/Wallace/ELC structure; ``PAPER_TABLE_V`` holds the published
  numbers for comparison.
* :mod:`repro.vlsi.rs_cost` — XOR-tree / GF-LUT costs for the RS
  baseline.
"""

from repro.vlsi.cells import CLOCK_PERIOD_NS, NANGATE15, CellLibrary, cycles_for
from repro.vlsi.cost_model import (
    PAPER_GEM5_CYCLES,
    PAPER_TABLE_V,
    BlockCost,
    CodeCost,
    ConstantMultiplierCost,
    FastModuloCost,
    muse_code_cost,
    muse_corrector_cost,
    muse_encoder_cost,
)
from repro.vlsi.rs_cost import rs_corrector_cost, rs_encoder_cost

__all__ = [
    "BlockCost",
    "CLOCK_PERIOD_NS",
    "CellLibrary",
    "CodeCost",
    "ConstantMultiplierCost",
    "FastModuloCost",
    "NANGATE15",
    "PAPER_GEM5_CYCLES",
    "PAPER_TABLE_V",
    "cycles_for",
    "muse_code_cost",
    "muse_corrector_cost",
    "muse_encoder_cost",
    "rs_corrector_cost",
    "rs_encoder_cost",
]
