"""Analytic latency/area/power model for MUSE hardware (Table V).

Every estimate is derived from the *structure* of the circuit the paper
describes, priced with the calibrated constants in
:mod:`repro.vlsi.cells`:

* a **constant multiplier** (Figure 5a) is Booth PP generation, a
  Wallace tree over the nonzero partial products (the paper's
  specialization removes always-zero rows), and a final prefix adder;
* the **fast modulo** (Figure 5b) chains the big by-inverse multiplier
  with the small by-m multiplier;
* the **encoder** (Figure 3b) is the fast modulo plus the ``m - X``
  subtractor;
* the **error corrector** (Figure 2) is the fast modulo, the ELC match,
  and the correction adder.

The returned objects carry enough breakdown to audit which stage
dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.arith.booth import BoothEncoding
from repro.arith.fastdiv import ConstantDivider
from repro.arith.wallace import WallaceTree
from repro.core.codec import MuseCode
from repro.vlsi.cells import CLOCK_PERIOD_NS, NANGATE15, CellLibrary, cycles_for


@dataclass(frozen=True)
class BlockCost:
    """Latency/area/power of one synthesized block."""

    name: str
    latency_ns: float
    cells: int
    area_um2: float
    power_mw: float

    @property
    def cycles(self) -> int:
        return cycles_for(self.latency_ns)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.latency_ns:.3f} ns, {self.cells} cells, "
            f"{self.area_um2:.0f} um^2, {self.power_mw:.2f} mW "
            f"({self.cycles} cycles @2400MHz)"
        )


@dataclass(frozen=True)
class ConstantMultiplierCost:
    """Structural cost of one Booth/Wallace constant multiplier."""

    constant: int
    input_bits: int
    output_bits: int
    library: CellLibrary = NANGATE15

    @cached_property
    def booth(self) -> BoothEncoding:
        return BoothEncoding(self.constant)

    @cached_property
    def tree(self) -> WallaceTree:
        return WallaceTree(
            rows=self.booth.nonzero_partial_products, width=self.output_bits
        )

    @property
    def latency_ns(self) -> float:
        lib = self.library
        pp_gen = 2.0 * lib.xor2_delay  # booth decode + row mux
        reduction = self.tree.depth * lib.fa_delay()
        final_add = lib.cpa_delay(self.output_bits)
        return pp_gen + reduction + final_add

    @property
    def cells(self) -> int:
        lib = self.library
        pp_cells = (
            self.booth.nonzero_partial_products
            * self.output_bits
            * lib.booth_mux_cells
        )
        fa_cells = self.tree.full_adders * lib.fa_cells
        cpa_cells = self.output_bits * lib.cpa_cells_per_bit
        return int(pp_cells + fa_cells + cpa_cells)


@dataclass(frozen=True)
class FastModuloCost:
    """Figure 5(b): by-inverse multiplier chained with by-m multiplier."""

    code: MuseCode
    library: CellLibrary = NANGATE15

    @cached_property
    def divider(self) -> ConstantDivider:
        return ConstantDivider(self.code.m, self.code.n)

    @cached_property
    def first_multiplier(self) -> ConstantMultiplierCost:
        # Only the low `shift` fractional bits are kept downstream.
        return ConstantMultiplierCost(
            constant=self.divider.inverse,
            input_bits=self.code.n,
            output_bits=self.divider.shift,
            library=self.library,
        )

    @cached_property
    def second_multiplier(self) -> ConstantMultiplierCost:
        # frac (shift bits) times m; only the top r bits are the result.
        return ConstantMultiplierCost(
            constant=self.code.m,
            input_bits=self.divider.shift,
            output_bits=self.divider.shift + self.code.r,
            library=self.library,
        )

    @property
    def latency_ns(self) -> float:
        return self.first_multiplier.latency_ns + self.second_multiplier.latency_ns

    @property
    def cells(self) -> int:
        return self.first_multiplier.cells + self.second_multiplier.cells


def muse_encoder_cost(code: MuseCode, library: CellLibrary = NANGATE15) -> BlockCost:
    """Figure 3(b): fast modulo + the ``m - X`` check-bit subtractor."""
    modulo = FastModuloCost(code, library)
    subtractor_delay = library.cpa_delay(code.r)
    latency = modulo.latency_ns + subtractor_delay
    cells = modulo.cells + int(code.r * library.adder_cells_per_bit)
    area = cells * library.cell_area_mult
    power = cells * library.power_per_cell_muse
    return BlockCost(
        name=f"{code.name} encoder",
        latency_ns=latency,
        cells=cells,
        area_um2=area,
        power_mw=power,
    )


def muse_corrector_cost(code: MuseCode, library: CellLibrary = NANGATE15) -> BlockCost:
    """Figure 2's error correction unit: fast modulo + ELC + adder.

    The ELC match overlaps the end of the remainder computation in a
    real pipeline; the paper's corrector latencies come out at or below
    its encoder latencies, which the overlap term reflects.
    """
    modulo = FastModuloCost(code, library)
    elc = code.elc
    # The CAM match consumes remainder bits as the modulo's final adder
    # produces them, and the correction adder overlaps the match; only
    # `corrector_overlap` of the modulo path stays serial before the
    # match resolves.
    latency = modulo.latency_ns * library.corrector_overlap + library.cam_match_delay
    output_encode_bits = max(1, (code.n - 1).bit_length())
    elc_cells = int(
        elc.entry_count
        * library.elc_cells_per_entry_factor
        * (elc.remainder_bits + output_encode_bits)
    )
    adder_cells = int(code.n * library.adder_cells_per_bit)
    cells = modulo.cells + elc_cells + adder_cells
    area = cells * library.cell_area_mult
    power = cells * library.power_per_cell_muse
    return BlockCost(
        name=f"{code.name} corrector",
        latency_ns=latency,
        cells=cells,
        area_um2=area,
        power_mw=power,
    )


@dataclass(frozen=True)
class CodeCost:
    """Both Table V blocks of one code plus the gem5 latency columns."""

    code_name: str
    encoder: BlockCost
    corrector: BlockCost

    @property
    def gem5_encode_cycles(self) -> int:
        return self.encoder.cycles

    @property
    def gem5_decode_cycles(self) -> int:
        """Systematic codes read data with zero added latency."""
        return 0

    @property
    def correction_cycles(self) -> int:
        return self.corrector.cycles


def muse_code_cost(code: MuseCode, library: CellLibrary = NANGATE15) -> CodeCost:
    return CodeCost(
        code_name=code.name,
        encoder=muse_encoder_cost(code, library),
        corrector=muse_corrector_cost(code, library),
    )


#: Table V verbatim (latency ns, cells, area um^2, power mW) for the
#: encoder and corrector of each design, plus gem5 cycles — used by the
#: calibration tests and the experiment report.
PAPER_TABLE_V: dict[str, dict[str, tuple[float, int, float, float]]] = {
    "MUSE(144,132)": {
        "encoder": (1.129, 33312, 10999, 5.11),
        "corrector": (1.048, 45493, 13648, 8.56),
    },
    "MUSE(80,69)": {
        "encoder": (1.177, 11953, 4166, 5.22),
        "corrector": (1.179, 18422, 5593, 5.64),
    },
    "MUSE(80,67)": {
        "encoder": (1.154, 14655, 4896, 4.14),
        "corrector": (1.018, 24043, 7092, 6.22),
    },
    "MUSE(80,70)": {
        "encoder": (1.181, 13775, 4772, 4.15),
        "corrector": (0.859, 18937, 5719, 5.80),
    },
    "RS(144,128)": {
        "encoder": (0.219, 1158, 737, 2.67),
        "corrector": (0.376, 2884, 1053, 2.70),
    },
    "RS(80,64)": {
        "encoder": (0.124, 542, 359, 1.31),
        "corrector": (0.381, 2540, 617, 1.99),
    },
}

PAPER_GEM5_CYCLES: dict[str, tuple[int, int]] = {
    "MUSE(144,132)": (3, 0),
    "MUSE(80,69)": (3, 0),
    "MUSE(80,67)": (3, 0),
    "MUSE(80,70)": (3, 0),
    "RS(144,128)": (1, 0),
    "RS(80,64)": (1, 0),
}
