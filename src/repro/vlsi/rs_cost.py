"""Analytic cost model for the Reed-Solomon baseline hardware (Table V).

The paper's RS implementation (Section VII-B):

* **encoder** — the generator matrix over GF(2) reduces to plain XOR
  trees: each check bit XORs roughly half the data bits, so the depth is
  ``log2(k/2)`` XOR stages and the area ``2b`` trees of ``~k/2`` XOR2s;
* **corrector** — syndrome XOR trees feeding GF log/antilog lookup
  tables (the PGZ single-error data path), a locator compare, and the
  correction XOR.

Both are far shallower than MUSE's multiplier trees, which is why RS
wins latency and area while MUSE wins storage — the trade the paper's
Section VII-B quantifies.
"""

from __future__ import annotations

from repro.rs.reed_solomon import RSCode
from repro.vlsi.cells import NANGATE15, CellLibrary
from repro.vlsi.cost_model import BlockCost


def rs_encoder_cost(code: RSCode, library: CellLibrary = NANGATE15) -> BlockCost:
    """Binary-matrix XOR-tree encoder."""
    k = code.k_bits
    check_bits = code.check_bits
    # Each check bit is the XOR of ~half of the k data bits, plus input
    # and output staging buffers.
    inputs_per_tree = max(2, k // 2)
    depth = max(1, (inputs_per_tree - 1).bit_length())
    latency = (depth + 2) * library.xor2_delay
    cells = int(check_bits * (inputs_per_tree - 1) * 1.0)
    area = cells * library.cell_area_rs
    power = cells * library.power_per_cell_rs
    return BlockCost(
        name=f"RS({code.n_bits},{k}) encoder",
        latency_ns=latency,
        cells=cells,
        area_um2=area,
        power_mw=power,
    )


def rs_corrector_cost(code: RSCode, library: CellLibrary = NANGATE15) -> BlockCost:
    """Syndrome trees + GF LUTs + locator compare + correction XOR."""
    b = code.symbol_bits
    n_bits = code.n_bits
    # Two syndromes, each an XOR tree over the whole codeword after
    # per-symbol constant GF scaling (wired XORs).
    syndrome_inputs = max(2, n_bits)
    syndrome_depth = max(1, (syndrome_inputs - 1).bit_length())
    syndrome_latency = syndrome_depth * library.xor2_delay
    # PGZ single-error chain: log LUT (division S2/S1 via log subtract),
    # locator range compare (2 XOR stages), antilog LUT for the magnitude.
    pgz_latency = 2 * library.lut_delay + 2 * library.xor2_delay
    latency = syndrome_latency + pgz_latency
    syndrome_cells = 2 * (n_bits - 1)
    # Each GF LUT is a 2^b x b ROM; NAND-equivalent cells ~ 0.5/entry-bit.
    lut_cells = int(3 * (1 << b) * b * 0.5)
    compare_cells = 4 * b
    correction_cells = n_bits
    cells = syndrome_cells + lut_cells + compare_cells + correction_cells
    area = cells * library.cell_area_rs * 0.6  # ROM cells pack denser
    power = cells * library.power_per_cell_rs * 0.35
    return BlockCost(
        name=f"RS({code.n_bits},{code.k_bits}) corrector",
        latency_ns=latency,
        cells=cells,
        area_um2=area,
        power_mw=power,
    )
