"""15nm-class standard-cell constants for the analytic cost model.

The paper synthesizes with Synopsys DC on the NanGate/Si2 15nm
open-source library; we cannot run proprietary tools, so Table V is
regenerated from *structural* circuit descriptions (partial-product
counts, tree depths, CAM sizes) priced with the constants below.

Calibration: the delay unit is chosen so that the paper's own
structural statement — "removing one Wallace level saves three XOR
delays", with MUSE(144,132)'s 50-partial-product tree landing at
~1.1 ns — holds; area/power densities are fit to the same table's
cells-to-um^2 and area-to-power ratios.  All constants live here, in one
place, so the calibration is auditable; EXPERIMENTS.md reports the
residual error per Table V cell.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CellLibrary:
    """Delay / area / power atoms used by the cost model."""

    # --- delays, nanoseconds -------------------------------------------------
    xor2_delay: float = 0.0225  # one XOR2 stage incl. local wire
    #: full-adder sum path = 2 XOR stages (the classic CSA cell)
    #: (exposed as a method below)
    cam_match_delay: float = 0.090  # ELC CAM match + priority encode
    lut_delay: float = 0.075  # one GF log/antilog ROM lookup
    #: carry-propagate adder: parallel-prefix, ~1.5 XOR-equivalents/level
    cpa_level_factor: float = 1.5

    # --- areas, square micrometres per cell instance -------------------------
    nand2_area: float = 0.20  # 15nm NAND2-equivalent footprint
    cell_area_mult: float = 0.33  # um^2 per synthesized std cell (MUSE blocks)
    cell_area_rs: float = 0.40  # um^2 per std cell (RS blocks; ROM-heavy)

    # --- cell-count equivalents ----------------------------------------------
    fa_cells: float = 3.4  # std cells per full adder after mapping
    booth_mux_cells: float = 0.55  # per product-column bit of one PP row
    cpa_cells_per_bit: float = 3.0
    #: post-optimization ELC logic per entry scales with the match width
    #: (remainder bits) plus the output-encode fan-in (log2 n), not with
    #: the full stored error value: synthesis collapses the value field
    #: into shared output networks.
    elc_cells_per_entry_factor: float = 0.60
    adder_cells_per_bit: float = 3.0

    # --- pipeline overlap ------------------------------------------------
    #: fraction of the fast-modulo critical path that the corrector
    #: cannot overlap with the ELC match + correction add.  The paper's
    #: correctors come in at 0.73-1.00x of their encoders because the
    #: CAM compares remainder bits as the final adder produces them.
    corrector_overlap: float = 0.80

    # --- power, milliwatts ---------------------------------------------------
    #: synthesis-reported total power per cell at the paper's default
    #: activity; separate factors per family absorb the very different
    #: toggle profiles of Wallace trees vs XOR/LUT logic.
    power_per_cell_muse: float = 0.000155
    power_per_cell_rs: float = 0.0025

    def fa_delay(self) -> float:
        """Full-adder (3:2 compressor) stage delay."""
        return 2.0 * self.xor2_delay

    def cpa_delay(self, width: int) -> float:
        """Parallel-prefix carry-propagate adder delay."""
        if width <= 1:
            return self.xor2_delay
        levels = max(1, (width - 1).bit_length())
        return self.cpa_level_factor * self.xor2_delay * levels


#: The default library used by every Table V computation.
NANGATE15 = CellLibrary()

#: The paper's clock: 2400 MHz -> 416.7 ps per cycle (Section VII-B).
CLOCK_PERIOD_NS = 1000.0 / 2400.0


def cycles_for(latency_ns: float, clock_period_ns: float = CLOCK_PERIOD_NS) -> int:
    """Pipeline stages needed at the paper's 2400 MHz memory clock."""
    if latency_ns <= 0:
        return 0
    cycles = int(latency_ns / clock_period_ns)
    if latency_ns - cycles * clock_period_ns > 1e-12:
        cycles += 1
    return cycles
