"""Closed-form MSED approximation — why Table IV scales the way it does.

A multi-symbol error leaves an (approximately) uniform random remainder
in ``[1, m)``.  The decoder miscorrects only when

1. the remainder hits one of the ``R`` ELC entries — probability
   ``R / (m - 1)`` — **and**
2. the implied correction survives the ripple check, i.e. the
   add/subtract happens not to carry beyond the claimed symbol —
   empirically (and by a symmetry argument over carry directions)
   probability ``~1/2``.

Hence ``MSED ~= 1 - R / (2 (m - 1))``.  Plugging in the Table IV design
points reproduces the paper's MUSE row almost exactly (99.18, 98.35,
96.70, 93.39, 86.71, 85.03 predicted vs 99.17, 98.35, 96.70, 93.39,
86.71, 85.03 published), which is strong evidence this is the mechanism
behind the published numbers.  The Monte Carlo measures the same
quantity without assuming remainder uniformity or the 1/2 factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.codec import MuseCode

#: Empirical survival probability of a miscorrection against the
#: Figure-4 ripple (overflow/underflow) check.
RIPPLE_SURVIVAL = 0.5


@dataclass(frozen=True)
class AnalyticMsed:
    """Closed-form MSED prediction for one MUSE design point."""

    m: int
    elc_entries: int
    ripple_survival: float = RIPPLE_SURVIVAL

    @property
    def miscorrection_rate(self) -> float:
        return self.elc_entries / (self.m - 1) * self.ripple_survival

    @property
    def msed_rate(self) -> float:
        return 1.0 - self.miscorrection_rate

    @property
    def msed_percent(self) -> float:
        return 100.0 * self.msed_rate

    @property
    def msed_percent_without_ripple(self) -> float:
        """The prediction with the ripple detector disabled."""
        return 100.0 * (1.0 - self.elc_entries / (self.m - 1))


def predict(code: MuseCode, ripple_survival: float = RIPPLE_SURVIVAL) -> AnalyticMsed:
    """Closed-form MSED for a constructed code."""
    return AnalyticMsed(
        m=code.m,
        elc_entries=code.elc.entry_count,
        ripple_survival=ripple_survival,
    )


def predict_table_iv_muse_row() -> dict[int, float]:
    """The paper's Table IV MUSE row, predicted without simulation."""
    from repro.reliability.monte_carlo import muse_design_point

    return {
        extra_bits: predict(muse_design_point(extra_bits)).msed_percent
        for extra_bits in range(6)
    }
