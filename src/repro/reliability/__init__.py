"""Reliability evaluation: the Table IV Monte-Carlo machinery.

* :class:`MuseMsedSimulator` / :class:`RsMsedSimulator` — k-symbol
  error injection and outcome classification for each code family.
* :func:`build_table_iv` — the full MUSE-vs-RS design-point sweep.
* :class:`MsedResult` — detected / miscorrected / silent accounting.
"""

from repro.reliability.analytic import (
    AnalyticMsed,
    predict,
    predict_table_iv_muse_row,
)
from repro.reliability.metrics import (
    DesignPoint,
    MsedResult,
    MsedTally,
    TableIV,
)
from repro.reliability.monte_carlo import (
    MuseMsedSimulator,
    RsMsedSimulator,
    build_table_iv,
    largest_144_multiplier,
    muse_design_point,
    rs_design_point,
)

__all__ = [
    "AnalyticMsed",
    "DesignPoint",
    "MsedResult",
    "MsedTally",
    "MuseMsedSimulator",
    "RsMsedSimulator",
    "TableIV",
    "build_table_iv",
    "largest_144_multiplier",
    "muse_design_point",
    "predict",
    "predict_table_iv_muse_row",
    "rs_design_point",
]
