"""Reliability evaluation: the Table IV Monte-Carlo machinery.

* :class:`MuseMsedSimulator` / :class:`RsMsedSimulator` — k-symbol
  error injection and outcome classification for each code family.
* :func:`build_table_iv` — the full MUSE-vs-RS design-point sweep,
  fixed-budget or adaptive.
* :class:`MsedResult` — detected / miscorrected / silent accounting,
  every rate with a Wilson / Clopper-Pearson interval.
* :mod:`~repro.reliability.sampling` — adaptive sequential stopping
  (:class:`AdaptivePolicy` / :class:`AdaptiveRunner`) and importance
  splitting for the silent / miscorrection tails.
"""

from repro.reliability.analytic import (
    AnalyticMsed,
    predict,
    predict_table_iv_muse_row,
)
from repro.reliability.metrics import (
    DesignPoint,
    MsedResult,
    MsedTally,
    TableIV,
)
from repro.reliability.monte_carlo import (
    MuseMsedSimulator,
    RsMsedSimulator,
    build_table_iv,
    largest_144_multiplier,
    muse_design_point,
    rs_design_point,
    run_design_points,
    run_design_points_adaptive,
    run_design_points_with_outcomes,
)
from repro.reliability.sampling import (
    AdaptiveOutcome,
    AdaptivePolicy,
    AdaptiveRunner,
    Interval,
    MuseSplittingEstimator,
    RsSplittingEstimator,
    SplitResult,
    binomial_interval,
    clopper_pearson_interval,
    wilson_interval,
)

__all__ = [
    "AdaptiveOutcome",
    "AdaptivePolicy",
    "AdaptiveRunner",
    "AnalyticMsed",
    "DesignPoint",
    "Interval",
    "MsedResult",
    "MsedTally",
    "MuseMsedSimulator",
    "MuseSplittingEstimator",
    "RsMsedSimulator",
    "RsSplittingEstimator",
    "SplitResult",
    "TableIV",
    "binomial_interval",
    "build_table_iv",
    "clopper_pearson_interval",
    "largest_144_multiplier",
    "muse_design_point",
    "predict",
    "predict_table_iv_muse_row",
    "rs_design_point",
    "run_design_points",
    "run_design_points_adaptive",
    "run_design_points_with_outcomes",
    "wilson_interval",
]
