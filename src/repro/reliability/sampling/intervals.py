"""Binomial confidence intervals for Monte-Carlo event counts.

The Table-IV Monte-Carlo reports event *rates* — detected, miscorrected,
silent fractions of the sampled trials — and a bare rate with no error
bar is meaningless for the rare cells ("0 events in N trials").  This
module provides the two standard binomial intervals, in pure stdlib
Python (no scipy in the container):

* **Wilson score** — the score-test inversion.  Near-nominal coverage
  at every ``n`` and well-behaved at the 0/``n`` boundaries, which is
  why it drives the adaptive stopping rule
  (:mod:`repro.reliability.sampling.sequential`).
* **Clopper-Pearson** — the exact (beta-quantile) interval.  Coverage
  is *guaranteed* at least nominal for every ``(n, p)`` — conservative,
  never anti-conservative — making it the right choice for headline
  numbers on rare events.

Both are pure functions of ``(successes, trials, confidence)``; the
beta quantiles come from a regularised-incomplete-beta continued
fraction (Numerical Recipes 6.4) inverted by bisection, accurate to
~1e-12 — far below Monte-Carlo noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist

__all__ = [
    "INTERVAL_KINDS",
    "Interval",
    "binomial_interval",
    "clopper_pearson_interval",
    "wilson_interval",
]


@dataclass(frozen=True)
class Interval:
    """A two-sided confidence interval ``[lo, hi]`` on a proportion."""

    lo: float
    hi: float
    kind: str
    confidence: float

    @property
    def half_width(self) -> float:
        return (self.hi - self.lo) / 2.0

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def contains(self, p: float) -> bool:
        return self.lo <= p <= self.hi

    def format(self, scale: float = 1.0, digits: int = 4) -> str:
        """``[lo, hi]`` rendering, optionally scaled (100.0 -> percent)."""
        return (
            f"[{self.lo * scale:.{digits}g}, {self.hi * scale:.{digits}g}]"
        )

    def __str__(self) -> str:
        return self.format()


def _validate(successes: int, trials: int, confidence: float) -> None:
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes must be in [0, trials={trials}], got {successes}"
        )
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Interval:
    """Wilson score interval for ``successes`` out of ``trials``.

    The inversion of the normal score test: the interval is centred on
    ``(k + z^2/2) / (n + z^2)``, never escapes ``[0, 1]``, and stays
    informative at ``k = 0`` / ``k = n`` (unlike the Wald interval,
    which collapses to a point there).
    """
    _validate(successes, trials, confidence)
    if trials == 0:
        return Interval(0.0, 1.0, "wilson", confidence)
    z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
    n = float(trials)
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    centre = (p + z2 / (2.0 * n)) / denom
    half = (
        z * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom
    )
    # The boundary cases are exactly 0 / 1 algebraically; pin them so
    # float roundoff can't leave hi at 0.9999999... for k = n.
    lo = 0.0 if successes == 0 else max(0.0, centre - half)
    hi = 1.0 if successes == trials else min(1.0, centre + half)
    return Interval(lo, hi, "wilson", confidence)


# ----------------------------------------------------------------------
# Regularised incomplete beta (Numerical Recipes 6.4) and its inverse —
# all Clopper-Pearson needs, in stdlib floats.
# ----------------------------------------------------------------------

_BETACF_MAX_ITER = 300
_BETACF_EPS = 3e-16
_BETACF_FPMIN = 1e-300


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (modified Lentz)."""
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _BETACF_FPMIN:
        d = _BETACF_FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, _BETACF_MAX_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _BETACF_FPMIN:
            d = _BETACF_FPMIN
        c = 1.0 + aa / c
        if abs(c) < _BETACF_FPMIN:
            c = _BETACF_FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _BETACF_FPMIN:
            d = _BETACF_FPMIN
        c = 1.0 + aa / c
        if abs(c) < _BETACF_FPMIN:
            c = _BETACF_FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _BETACF_EPS:
            return h
    return h  # pragma: no cover - the fraction converges in < 100 steps


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)``, the CDF of the Beta(a, b) distribution at ``x``."""
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    # The continued fraction converges fast for x < (a+1)/(a+b+2); use
    # the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) on the other side.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def beta_quantile(q: float, a: float, b: float) -> float:
    """Inverse Beta(a, b) CDF by bisection (monotone, 100 halvings)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if q == 0.0:
        return 0.0
    if q == 1.0:
        return 1.0
    lo, hi = 0.0, 1.0
    for _ in range(100):
        mid = (lo + hi) / 2.0
        if regularized_incomplete_beta(a, b, mid) < q:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def clopper_pearson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Interval:
    """Clopper-Pearson exact interval for ``successes`` out of ``trials``.

    ``lo = BetaInv(alpha/2; k, n-k+1)``, ``hi = BetaInv(1-alpha/2; k+1,
    n-k)``, with the conventional closed endpoints at ``k = 0`` (lo = 0)
    and ``k = n`` (hi = 1).  Coverage >= nominal for every ``(n, p)``.
    """
    _validate(successes, trials, confidence)
    if trials == 0:
        return Interval(0.0, 1.0, "clopper-pearson", confidence)
    alpha = 1.0 - confidence
    k, n = successes, trials
    lo = 0.0 if k == 0 else beta_quantile(alpha / 2.0, k, n - k + 1)
    hi = 1.0 if k == n else beta_quantile(1.0 - alpha / 2.0, k + 1, n - k)
    return Interval(lo, hi, "clopper-pearson", confidence)


#: Registry of interval constructors by kind name.
INTERVAL_KINDS = {
    "wilson": wilson_interval,
    "clopper-pearson": clopper_pearson_interval,
}


def binomial_interval(
    successes: int,
    trials: int,
    kind: str = "wilson",
    confidence: float = 0.95,
) -> Interval:
    """Dispatch to one of :data:`INTERVAL_KINDS` by name."""
    try:
        build = INTERVAL_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown interval kind {kind!r}; choose from "
            f"{sorted(INTERVAL_KINDS)}"
        ) from None
    return build(successes, trials, confidence)
