"""Fleet-wide campaign scheduling for adaptive Monte-Carlo sweeps.

The PR-4 :class:`~repro.reliability.sampling.sequential.AdaptiveRunner`
stops each design point independently: every point follows its own
geometric look schedule, so a sweep's wall-clock is the *sum* of
per-point overshoots and already-converged points keep no context for
their neighbours.  The campaign scheduler closes that loop.  Each
round it looks at the folded tallies of **all** points and spends the
next batch of trials where they shrink confidence intervals fastest:

* the *priority* of a point is ``half_width / goal_half_width`` — how
  far its current interval is from the stopping rule of the base
  :class:`AdaptivePolicy` (largest first, bandit-style);
* the *allocation* for a point is the projected number of trials that
  closes the gap (binomial half-widths shrink like ``1/sqrt(n)``, so
  ``n_goal ≈ n · (half/goal)² · safety``), capped per round at a
  doubling so noisy early projections are re-examined at the next
  barrier;
* a per-campaign ``trial_budget`` is drained greedily in priority
  order, so a fixed fleet spends a fixed budget where it buys the most
  certainty;
* a point whose plain stream has seen zero events after
  ``escalate_after`` trials is *escalated*: the campaign stops feeding
  it plain trials and hands it to the importance-splitting estimator
  (:mod:`~repro.reliability.sampling.splitting`), which bounds the
  tail without needing events in the plain stream.

Determinism contract (same as every other runner in this repo): the
allocation is a **pure function of the folded tallies** — never of
wall-clock, worker count, or chunk arrival order.  Trials are
allocated in trial units and chunked with
:func:`~repro.orchestrate.plan.plan_chunk_range` *after* allocation,
so ``trials_used`` and every tally are byte-identical across
``(chunk_size, jobs, workers)`` and backends at a fixed seed.

This module deliberately imports nothing from ``repro.distribute``:
the optional result cache and progress heartbeat are duck-typed
(``lookup``/``record`` and ``allocation`` respectively) so the
scheduler stays importable from the bottom of the package graph.
(:mod:`repro.telemetry` sits below ``repro.distribute`` in that graph
— it only imports ``repro.orchestrate.persist`` — so the campaign
events emitted here keep that property.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from repro import telemetry
from repro.orchestrate.plan import plan_chunk_range
from repro.orchestrate.pool import map_unordered, run_sharded
from repro.orchestrate.rng import derive_key
from repro.orchestrate.worker import ChunkTask, group_labels, run_chunk_task
from repro.reliability.metrics import MsedResult, MsedTally
from repro.reliability.sampling.intervals import Interval
from repro.reliability.sampling.sequential import AdaptivePolicy

__all__ = [
    "Allocation",
    "CampaignOutcome",
    "CampaignPolicy",
    "CampaignRunner",
    "CampaignScheduler",
    "PointView",
]


@dataclass(frozen=True)
class CampaignPolicy:
    """How a campaign spends trials across a whole sweep.

    Wraps the per-point stopping rule (``base``) with fleet-level
    knobs: a campaign-wide trial budget, zero-event escalation to
    importance splitting, and the safety factor applied to the
    1/sqrt(n) half-width projection.
    """

    base: AdaptivePolicy = field(default_factory=AdaptivePolicy)
    trial_budget: int | None = None
    escalate_after: int | None = None
    escalation_trials: int = 20_000
    safety: float = 1.15

    def __post_init__(self) -> None:
        if self.trial_budget is not None and self.trial_budget < 1:
            raise ValueError("trial_budget must be at least 1")
        if self.escalate_after is not None and self.escalate_after < 1:
            raise ValueError("escalate_after must be at least 1")
        if self.escalation_trials < 1:
            raise ValueError("escalation_trials must be at least 1")
        if self.safety < 1.0:
            raise ValueError("safety must be at least 1.0")


@dataclass(frozen=True)
class PointView:
    """Everything the scheduler may see of one design point.

    A deliberately thin snapshot — folded trial count, frozen result,
    and whether the point still wants trials — so the allocator is
    trivially a pure function of fold state.
    """

    trials: int
    result: MsedResult | None
    active: bool = True


@dataclass(frozen=True)
class Allocation:
    """One point's share of a round: ``trials`` more for ``index``."""

    index: int
    trials: int
    priority: float
    half_width: float


@dataclass(frozen=True)
class CampaignScheduler:
    """Pure allocator: folded tallies in, next round's trials out."""

    policy: CampaignPolicy

    def goal_half_width(self, result: MsedResult) -> float:
        """The half-width at which ``base.satisfied`` would stop.

        Mirrors :meth:`AdaptivePolicy.satisfied`: the absolute
        tolerance if set, or the relative tolerance scaled by the
        observed rate.  A zero-event cell has no rate to be relative
        to, so aim at ``ci_target·hi`` — the optimistic upper bound —
        which keeps the projection growing until events appear (or
        escalation takes the point away).
        """
        base = self.policy.base
        goals = []
        if base.ci_abs > 0:
            goals.append(base.ci_abs)
        if base.ci_target > 0:
            rate = result.rate(base.metric)
            if rate > 0:
                goals.append(base.ci_target * rate)
            else:
                goals.append(base.ci_target * base.interval_of(result).hi)
        return max(goals, default=0.0)

    def priority(self, view: PointView) -> float:
        """How far ``view`` is from stopping (larger = more urgent)."""
        if view.trials == 0 or view.result is None or view.result.trials == 0:
            return math.inf
        goal = self.goal_half_width(view.result)
        if goal <= 0:
            return math.inf
        return self.policy.base.interval_of(view.result).half_width / goal

    def desired_total(self, view: PointView) -> int:
        """Projected total trials that would satisfy the base policy."""
        base = self.policy.base
        if view.trials == 0 or view.result is None or view.result.trials == 0:
            return min(base.initial_trials, base.max_trials)
        goal = self.goal_half_width(view.result)
        if goal <= 0:
            return base.max_trials
        half = base.interval_of(view.result).half_width
        if half <= goal:
            return view.trials
        projected = math.ceil(view.trials * (half / goal) ** 2 * self.policy.safety)
        return max(view.trials + 1, min(base.max_trials, projected))

    def allocate(
        self, views: Sequence[PointView], budget_left: int | None = None
    ) -> list[Allocation]:
        """Split the next round's trials across ``views``.

        Returns allocations sorted by ``(-priority, index)``; the
        budget is drained greedily in that order and the last grant is
        truncated to fit.  Empty when every point is done or the
        budget is exhausted.
        """
        base = self.policy.base
        requests: list[Allocation] = []
        for index, view in enumerate(views):
            if not view.active or view.trials >= base.max_trials:
                continue
            want = self.desired_total(view) - view.trials
            if want <= 0:
                continue
            # Never more than double a point in one round: projections
            # from a handful of events are noisy, and the next barrier
            # re-projects from the fresher tally anyway.
            want = min(want, max(base.initial_trials, view.trials))
            if view.result is not None and view.result.trials > 0:
                half = base.interval_of(view.result).half_width
            else:
                half = 0.5  # a-priori binomial uncertainty
            requests.append(
                Allocation(
                    index=index,
                    trials=want,
                    priority=self.priority(view),
                    half_width=half,
                )
            )
        requests.sort(key=lambda alloc: (-alloc.priority, alloc.index))
        if budget_left is None:
            return requests
        granted: list[Allocation] = []
        remaining = budget_left
        for alloc in requests:
            if remaining <= 0:
                break
            take = min(alloc.trials, remaining)
            granted.append(replace(alloc, trials=take))
            remaining -= take
        return granted


@dataclass(frozen=True)
class CampaignOutcome:
    """What the campaign decided for one design point.

    Duck-types :class:`AdaptiveOutcome` (``result``, ``converged``,
    ``rounds``, ``policy``, ``trials_used``, ``interval()``,
    ``describe()``) so every report renderer keeps working, and adds
    the campaign-level story: the governing :class:`CampaignPolicy`,
    whether the point was escalated to importance splitting (and the
    resulting ``tail_bound``), and how many of its trials were served
    from a result cache instead of being re-simulated.
    """

    result: MsedResult
    converged: bool
    rounds: int
    policy: AdaptivePolicy
    campaign: CampaignPolicy
    escalated: bool = False
    tail_bound: Any | None = None
    trials_cached: int = 0
    #: How the zero-event tail was handled when ``escalated``:
    #: "importance splitting" where the estimator supports the
    #: scenario, "Clopper-Pearson tail bound" otherwise.
    escalation: str = "importance splitting"

    @property
    def trials_used(self) -> int:
        return self.result.trials

    def interval(self) -> Interval:
        return self.policy.interval_of(self.result)

    def describe(self) -> str:
        if self.escalated:
            reason = f"escalated to {self.escalation}"
        elif self.converged:
            reason = "converged"
        elif self.result.trials >= self.policy.max_trials:
            reason = "hit trial ceiling"
        else:
            reason = "budget exhausted"
        cached = (
            f", {self.trials_cached} cached" if self.trials_cached else ""
        )
        return (
            f"{reason} after {self.result.trials} trials"
            f" ({self.rounds} rounds{cached})"
        )


def _execute_chunk_task(task: ChunkTask) -> tuple[ChunkTask, MsedTally]:
    """Picklable shard body returning the task alongside its tally.

    The campaign needs per-chunk tallies back (to record them into the
    result cache), so it cannot use :func:`run_sharded`'s per-group
    fold for the process-pool path.
    """
    _, tally = run_chunk_task(task)
    return task, tally


def _splitting_estimator(simulator: Any) -> Any | None:
    """Build the splitting twin of ``simulator``, or None if unknown.

    Imported lazily: splitting needs numpy, and campaigns that never
    escalate must not.  Returns None for fault scenarios the splitting
    estimator does not support — the prefix stream it branches over is
    the plain msed one — so the campaign reports a Clopper-Pearson
    bound for those points instead.
    """
    from repro.scenarios import resolve_scenario

    name = getattr(simulator, "scenario", "msed")
    if not resolve_scenario(name).supports_splitting:
        return None

    from repro.reliability.sampling.splitting import (
        MuseSplittingEstimator,
        RsSplittingEstimator,
    )

    if hasattr(simulator, "ripple_check"):
        return MuseSplittingEstimator(
            simulator.code,
            k_symbols=simulator.k_symbols,
            ripple_check=simulator.ripple_check,
            backend=simulator.backend,
            code_ref=simulator.code_ref,
        )
    if hasattr(simulator, "device_bits"):
        return RsSplittingEstimator(
            simulator.code,
            k_symbols=simulator.k_symbols,
            device_bits=simulator.device_bits if simulator.device_bits else 4,
            backend=simulator.backend,
            code_ref=simulator.code_ref,
        )
    return None


@dataclass
class CampaignRunner:
    """Run a whole sweep under one :class:`CampaignPolicy`.

    ``cache`` is any object with ``lookup(key, spec, chunk) ->
    MsedTally | None`` and ``record(key, spec, chunk, tally)`` (the
    distribute layer's ``ResultCache``); ``heartbeat`` is any object
    with ``allocation(round_no, entries)`` (the distribute layer's
    ``Heartbeat``).  Both are optional and duck-typed so this module
    never imports ``repro.distribute``.
    """

    policy: CampaignPolicy = field(default_factory=CampaignPolicy)
    cache: Any | None = None
    heartbeat: Any | None = None

    def run(
        self,
        simulators: Sequence[Any],
        seed: int,
        jobs: int = 1,
        chunk_size: int | None = None,
        progress: Callable[[int, int], None] | None = None,
        executor: Any | None = None,
        group_ns: str | None = None,
    ) -> list[CampaignOutcome]:
        base = self.policy.base
        scheduler = CampaignScheduler(self.policy)
        key = derive_key(seed)
        count = len(simulators)
        groups = group_labels(count, group_ns)
        tallies = [MsedTally() for _ in range(count)]
        trials = [0] * count
        rounds = [0] * count
        converged = [False] * count
        escalated = [False] * count
        cached_trials = [0] * count
        budget_left = self.policy.trial_budget

        # Specs are needed whenever chunks leave this process (sharded
        # or distributed) and whenever the cache needs fingerprints.
        sharded = jobs > 1 or executor is not None
        specs = (
            [sim._task_spec() for sim in simulators]
            if sharded or self.cache is not None
            else None
        )

        done_chunks = 0
        scheduled_chunks = 0
        round_no = 0
        while True:
            views = [
                PointView(
                    trials=trials[i],
                    result=tallies[i].freeze() if trials[i] else None,
                    active=not (converged[i] or escalated[i]),
                )
                for i in range(count)
            ]
            allocations = scheduler.allocate(views, budget_left)
            if not allocations:
                break
            round_no += 1
            telemetry.counter("campaign.rounds")
            telemetry.event(
                "campaign.round",
                round=round_no,
                budget_left=budget_left,
                allocations=[
                    {
                        "point": str(groups[alloc.index]),
                        "trials": alloc.trials,
                        "total": trials[alloc.index] + alloc.trials,
                        "half_width": alloc.half_width,
                        "priority": (
                            alloc.priority
                            if math.isfinite(alloc.priority)
                            else None
                        ),
                    }
                    for alloc in allocations
                ],
            )
            if self.heartbeat is not None:
                beat = getattr(self.heartbeat, "allocation", None)
                if beat is not None:
                    beat(
                        round_no,
                        [
                            (
                                groups[alloc.index],
                                alloc.trials,
                                trials[alloc.index] + alloc.trials,
                                alloc.half_width,
                                alloc.priority,
                            )
                            for alloc in allocations
                        ],
                    )

            pending: list[tuple[int, ChunkTask]] = []
            for alloc in allocations:
                i = alloc.index
                chunks = plan_chunk_range(
                    trials[i], trials[i] + alloc.trials, chunk_size
                )
                for chunk in chunks:
                    spec = specs[i] if specs is not None else None
                    held = (
                        self.cache.lookup(key, spec, chunk)
                        if self.cache is not None
                        else None
                    )
                    if held is not None:
                        tallies[i].merge(held)
                        cached_trials[i] += held.trials
                    elif spec is not None:
                        pending.append((i, ChunkTask(groups[i], spec, chunk, key)))
                    else:
                        with telemetry.span(
                            "decode_chunk", point=str(groups[i])
                        ):
                            tallies[i].merge(
                                simulators[i].run_chunk(chunk, key)
                            )
                        done_chunks += 1
                trials[i] += alloc.trials
                rounds[i] += 1
                if budget_left is not None:
                    budget_left -= alloc.trials

            if pending:
                scheduled_chunks = done_chunks + len(pending)
                base_done = done_chunks

                def tick(done: int, total: int) -> None:
                    if progress is not None:
                        progress(base_done + done, scheduled_chunks)

                if executor is not None:
                    folded = run_sharded(
                        [task for _, task in pending],
                        jobs,
                        tick if progress is not None else None,
                        executor,
                    )
                    for i in sorted({i for i, _ in pending}):
                        tallies[i].merge(folded.get(groups[i], MsedTally()))
                else:
                    by_group = {task.group: i for i, task in pending}

                    def fold(pair: tuple[ChunkTask, MsedTally]) -> None:
                        task, tally = pair
                        tallies[by_group[task.group]].merge(tally)
                        if self.cache is not None:
                            self.cache.record(
                                task.key, task.spec, task.chunk, tally
                            )

                    map_unordered(
                        _execute_chunk_task,
                        [task for _, task in pending],
                        jobs=jobs,
                        progress=tick if progress is not None else None,
                        on_result=fold,
                    )
                done_chunks += len(pending)
            if progress is not None and scheduled_chunks:
                progress(done_chunks, max(scheduled_chunks, done_chunks))

            for alloc in allocations:
                i = alloc.index
                frozen = tallies[i].freeze()
                if base.satisfied(frozen):
                    converged[i] = True
                elif (
                    self.policy.escalate_after is not None
                    and trials[i] >= self.policy.escalate_after
                    and frozen.count(base.metric) == 0
                ):
                    escalated[i] = True
                    telemetry.counter("campaign.escalations")
                    telemetry.event(
                        "campaign.escalated",
                        point=str(groups[i]),
                        round=round_no,
                        trials=trials[i],
                    )

            if self.cache is not None:
                self.cache.flush()

        tail_bounds: list[Any | None] = [None] * count
        escalations = ["importance splitting"] * count
        for i in range(count):
            if not escalated[i]:
                continue
            estimator = _splitting_estimator(simulators[i])
            if estimator is None:
                # No splitting twin (unsupported scenario or family):
                # bound the zero-event tail with the exact
                # Clopper-Pearson interval of the plain stream instead.
                escalations[i] = "Clopper-Pearson tail bound"
                tail_bounds[i] = tallies[i].freeze().interval(
                    kind="clopper-pearson",
                    confidence=base.confidence,
                    metric=base.metric,
                )
                continue
            try:
                tail_bounds[i] = estimator.run(
                    self.policy.escalation_trials, seed=seed
                )
            except Exception:
                # Splitting needs numpy (BackendUnavailableError when
                # absent); an escalated point then simply keeps its
                # zero-event plain interval.
                tail_bounds[i] = None

        return [
            CampaignOutcome(
                result=tallies[i].freeze(),
                converged=converged[i],
                rounds=rounds[i],
                policy=base,
                campaign=self.policy,
                escalated=escalated[i],
                tail_bound=tail_bounds[i],
                trials_cached=cached_trials[i],
                escalation=escalations[i],
            )
            for i in range(count)
        ]
