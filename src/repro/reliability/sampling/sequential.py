"""Sequential adaptive sampling: run each design point until its CI is
tight, not until a fixed trial budget is spent.

A fixed-trial Monte-Carlo spends the same 10^4 (or 10^6) trials on a
design point whose failure rate is 46% as on one whose rate is 0.6% —
wildly over-sampling the first and under-sampling the second.  The
:class:`AdaptiveRunner` instead grows every point's run through a
deterministic, geometric *round schedule* (``initial_trials``, then
``growth`` times that, ... capped at ``max_trials``) and stops a point
at the first round where the confidence interval of its target rate is
narrow enough (:meth:`AdaptivePolicy.satisfied`).

Determinism is inherited wholesale from the PR-3 streaming contract:

* each round extends the *same* counter-hashed trial stream — round
  ``k`` covers global trials ``[n_{k-1}, n_k)`` via
  :func:`~repro.orchestrate.plan.plan_chunk_range` — so after any round
  the folded tally is **byte-identical** to a fixed ``n_k``-trial run
  at the same seed (the prefix property);
* round boundaries are a pure function of the policy, never of
  ``chunk_size``/``jobs``/backend, so the *stopping decision* — and
  therefore ``trials_used`` — is identical across every execution
  shape too.

The statistical caveat baked into the design: evaluating a confidence
interval repeatedly and stopping at the first success is *optional
stopping*, which inflates the error rate of naive fixed-n intervals.
Checking on a geometric schedule (a handful of looks, not one per
trial) keeps the inflation small — the standard practical compromise —
and the Clopper-Pearson option stays conservative per look.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

from repro.orchestrate.plan import plan_chunk_range
from repro.orchestrate.pool import ProgressCallback, run_sharded
from repro.orchestrate.rng import derive_key
from repro.orchestrate.worker import ChunkTask, group_labels
from repro.reliability.metrics import METRICS, MsedResult, MsedTally
from repro.reliability.sampling.intervals import INTERVAL_KINDS, Interval

__all__ = [
    "AdaptiveOutcome",
    "AdaptivePolicy",
    "AdaptiveRunner",
    "policy_from_cli",
]


@dataclass(frozen=True)
class AdaptivePolicy:
    """When to stop sampling one design point.

    A point stops at the first scheduled look where either bound holds
    for the ``metric`` rate's two-sided ``confidence`` interval:

    * half-width <= ``ci_abs`` (absolute tolerance, skipped when 0), or
    * half-width <= ``ci_target`` x the point estimate (relative
      tolerance, skipped when 0 — and unsatisfiable while the estimate
      is 0, which is exactly right: "0 events" has not resolved the
      rate to any relative precision);

    or unconditionally once ``max_trials`` have been spent (the
    ceiling; :attr:`AdaptiveOutcome.converged` records which exit won).
    """

    ci_target: float = 0.1
    ci_abs: float = 0.0
    confidence: float = 0.95
    kind: str = "wilson"
    metric: str = "failure"
    initial_trials: int = 1_000
    growth: float = 2.0
    max_trials: int = 1_000_000

    def __post_init__(self) -> None:
        if self.ci_target < 0 or self.ci_abs < 0:
            raise ValueError("ci_target and ci_abs must be >= 0")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.kind not in INTERVAL_KINDS:
            raise ValueError(
                f"unknown interval kind {self.kind!r}; choose from "
                f"{sorted(INTERVAL_KINDS)}"
            )
        if self.metric not in METRICS:
            raise ValueError(
                f"unknown metric {self.metric!r}; choose from {sorted(METRICS)}"
            )
        if self.initial_trials < 1:
            raise ValueError("initial_trials must be >= 1")
        if self.growth <= 1.0:
            raise ValueError("growth must be > 1")
        if self.max_trials < 1:
            raise ValueError("max_trials must be >= 1")

    def schedule(self) -> Iterator[int]:
        """Cumulative trial targets per round, ending at ``max_trials``.

        A pure function of the policy — the looks land at the same
        global trial indices whatever the chunking or job count, which
        is what makes the stopping decision execution-shape-invariant.
        """
        target = min(self.initial_trials, self.max_trials)
        while True:
            yield target
            if target >= self.max_trials:
                return
            target = min(self.max_trials, int(target * self.growth) + 1)

    def interval_of(self, result: MsedResult) -> Interval:
        return result.interval(
            kind=self.kind, confidence=self.confidence, metric=self.metric
        )

    def satisfied(self, result: MsedResult) -> bool:
        """Is ``result``'s target-rate interval tight enough to stop?"""
        if result.trials == 0:
            return False
        half = self.interval_of(result).half_width
        if self.ci_abs > 0 and half <= self.ci_abs:
            return True
        if self.ci_target > 0:
            rate = result.rate(self.metric)
            return rate > 0 and half <= self.ci_target * rate
        return False


@dataclass(frozen=True)
class AdaptiveOutcome:
    """One design point's adaptive run: final tally plus how it ended."""

    result: MsedResult
    converged: bool
    rounds: int
    policy: AdaptivePolicy

    @property
    def trials_used(self) -> int:
        return self.result.trials

    def interval(self) -> Interval:
        """The stopping rule's own interval (policy metric/kind/level)."""
        return self.policy.interval_of(self.result)

    def describe(self) -> str:
        exit_ = "converged" if self.converged else "hit trial ceiling"
        return (
            f"{self.policy.metric} rate {self.result.rate(self.policy.metric):.6g} "
            f"{self.interval().format()} @{self.policy.confidence:.0%}, "
            f"{self.trials_used} trials over {self.rounds} rounds ({exit_})"
        )


@dataclass
class AdaptiveRunner:
    """Drive a set of MSED simulators by statistical need.

    Each round extends only the still-unconverged points' trial streams
    — with ``jobs > 1`` the round's (point x chunk) grid fans over one
    process pool, exactly like the fixed-budget
    :func:`~repro.reliability.monte_carlo.run_design_points` — then
    folds the new chunk tallies (:meth:`MsedTally.merge`) and re-checks
    the policy at the round boundary.
    """

    policy: AdaptivePolicy = field(default_factory=AdaptivePolicy)

    def run(
        self,
        simulators: Sequence,
        seed: int,
        jobs: int = 1,
        chunk_size: int | None = None,
        progress: ProgressCallback | None = None,
        executor=None,
        group_ns: str | None = None,
    ) -> list[AdaptiveOutcome]:
        policy = self.policy
        key = derive_key(seed)
        count = len(simulators)
        tallies = [MsedTally() for _ in range(count)]
        rounds = [0] * count
        converged = [False] * count
        active = list(range(count))
        sharded = jobs > 1 or executor is not None
        # One spec per simulator, hoisted out of the round loop (each
        # _task_spec() rebuilds its code for the consistency check).
        specs = (
            [simulator._task_spec() for simulator in simulators]
            if sharded
            else None
        )
        groups = group_labels(count, group_ns)
        done_chunks = 0
        previous = 0
        for target in policy.schedule():
            chunks = plan_chunk_range(previous, target, chunk_size)
            previous = target
            if sharded:
                # With a distributed executor each round is one batch:
                # run_tasks is the round barrier, so the coordinator —
                # this process — holds the only copy of the folded
                # tallies and alone decides stop/continue per look.
                scheduled = done_chunks + len(active) * len(chunks)

                def tick(done: int, total: int, base: int = done_chunks) -> None:
                    if progress is not None:
                        progress(base + done, scheduled)

                tasks = [
                    ChunkTask(groups[index], specs[index], chunk, key)
                    for index in active
                    for chunk in chunks
                ]
                folded = run_sharded(tasks, jobs, tick, executor)
                for index in active:
                    tallies[index].merge(
                        folded.get(groups[index], MsedTally())
                    )
                done_chunks = scheduled
            else:
                scheduled = done_chunks + len(active) * len(chunks)
                for index in active:
                    for chunk in chunks:
                        tallies[index].merge(
                            simulators[index].run_chunk(chunk, key)
                        )
                        done_chunks += 1
                        if progress is not None:
                            progress(done_chunks, scheduled)
            still_active = []
            for index in active:
                rounds[index] += 1
                if policy.satisfied(tallies[index].freeze()):
                    converged[index] = True
                else:
                    still_active.append(index)
            active = still_active
            if not active:
                break
        return [
            AdaptiveOutcome(
                result=tallies[index].freeze(),
                converged=converged[index],
                rounds=rounds[index],
                policy=policy,
            )
            for index in range(count)
        ]

    def run_one(
        self,
        simulator,
        seed: int,
        jobs: int = 1,
        chunk_size: int | None = None,
        progress: ProgressCallback | None = None,
        executor=None,
        group_ns: str | None = None,
    ) -> AdaptiveOutcome:
        """Single-simulator convenience wrapper over :meth:`run`."""
        return self.run(
            [simulator], seed, jobs, chunk_size, progress, executor, group_ns
        )[0]


def policy_from_cli(
    ci_target: float | None,
    max_trials: int | None,
    metric: str | None = None,
    initial_trials: int | None = None,
) -> AdaptivePolicy:
    """An :class:`AdaptivePolicy` from the CLI's optional overrides."""
    policy = AdaptivePolicy()
    overrides = {}
    if ci_target is not None:
        overrides["ci_target"] = ci_target
    if max_trials is not None:
        overrides["max_trials"] = max_trials
    if metric is not None:
        overrides["metric"] = metric
    if initial_trials is not None:
        overrides["initial_trials"] = initial_trials
    return replace(policy, **overrides) if overrides else policy
