"""Importance splitting for the silent / miscorrection tails.

The problem: for the strong design points, "decoder did not flag" is so
rare that a plain Monte-Carlo run reports 0 silent events in 10^4 (or
10^6) trials — a point estimate of 0 with nothing but the rule-of-three
bound as an error bar.

The estimator here splits every sampled trial at the last corruption
step.  A trial of the plain stream is (data word, ``k`` chosen symbols,
``k`` replacement values); the *prefix* — everything except the final
replacement value — is sampled exactly as in the plain stream
(:func:`repro.orchestrate.corruption.muse_split_chunk` /
:func:`~repro.orchestrate.corruption.rs_split_chunk` reuse its DATA,
CHOICE and VALUE draws), and the final value is then **branched over
exhaustively**: all ``2^w - 1`` values the held-out ``w``-bit symbol
could take (never the original — the plain stream's final draw is
uniform over exactly that set).  Each branch is decoded by the ordinary
batch engine and classified; the prefix's contribution to the silent
(or miscorrection) rate is its branch count divided by ``2^w - 1``.

This is a conditional (Rao-Blackwellised) form of importance splitting:
the prefix plays the role of the trajectory reaching the intermediate
level, the branch set is the uniformly-weighted split into
continuations, and because every continuation's weight is its exact
sampling probability the estimator is **unbiased** for the plain-stream
rate (pinned against brute force in ``tests/reliability/
test_splitting.py``).  The variance win is the usual splitting one: a
prefix whose continuation set contains aliasing values contributes the
exact conditional probability instead of a noisy 0/1 indicator, so
near-100% detection cells accumulate fractional events long before a
plain run would see its first whole one.

Counts are kept as exact integers per held-out-symbol *width stratum*
(prefix count, branch-event sums and sums of squares), so chunk tallies
fold associatively — the same byte-identical ``(chunk_size, jobs)``
invariance as the plain tallies — and the estimate and its normal-
approximation interval are derived from the folded integers with
:class:`fractions.Fraction` arithmetic, floats appearing only at the
edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import sqrt
from statistics import NormalDist

from repro.engine import BackendUnavailableError, get_engine
from repro.engine.base import STATUS_CLEAN, STATUS_CORRECTED
from repro.orchestrate.corruption import muse_split_chunk, rs_split_chunk
from repro.orchestrate.plan import plan_chunks
from repro.orchestrate.pool import ProgressCallback, run_sharded
from repro.orchestrate.rng import derive_key
from repro.orchestrate.worker import (
    ChunkTask,
    CodeRef,
    checked_code_ref,
    muse_signature,
    rs_signature,
)
from repro.reliability.sampling.intervals import (
    Interval,
    clopper_pearson_interval,
)

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

__all__ = [
    "DEFAULT_SPLIT_CHUNK_SIZE",
    "MuseSplitSpec",
    "MuseSplittingEstimator",
    "RsSplitSpec",
    "RsSplittingEstimator",
    "SplitResult",
    "SplitTally",
]

#: Branching multiplies per-chunk memory by up to ``2^w`` (256 for
#: 8-bit RS symbols), so the splitting default chunk is much smaller
#: than the plain stream's 65536.
DEFAULT_SPLIT_CHUNK_SIZE = 2_048

#: The two tail metrics the splitting estimator measures.
SPLIT_METRICS = ("silent", "miscorrection")


@dataclass
class StratumTally:
    """Integer counters for one held-out-symbol width stratum."""

    prefixes: int = 0
    silent: int = 0
    silent_sq: int = 0
    miscorrected: int = 0
    miscorrected_sq: int = 0

    def merge(self, other: "StratumTally") -> "StratumTally":
        self.prefixes += other.prefixes
        self.silent += other.silent
        self.silent_sq += other.silent_sq
        self.miscorrected += other.miscorrected
        self.miscorrected_sq += other.miscorrected_sq
        return self


@dataclass
class SplitTally:
    """Mergeable fold term of a splitting run: counters per stratum.

    Strata are keyed by the held-out symbol's bit width ``w`` (branch
    factor ``2^w - 1``); all fields are plain integers, so ``merge`` is
    associative and commutative and a chunked run's tally is
    byte-identical for every ``(chunk_size, jobs)`` split.
    """

    strata: dict[int, StratumTally] = field(default_factory=dict)

    def record(
        self,
        width: int,
        prefixes: int,
        silent: int,
        silent_sq: int,
        miscorrected: int,
        miscorrected_sq: int,
    ) -> None:
        stratum = self.strata.setdefault(width, StratumTally())
        stratum.merge(
            StratumTally(prefixes, silent, silent_sq, miscorrected, miscorrected_sq)
        )

    def merge(self, other: "SplitTally") -> "SplitTally":
        for width, stratum in other.strata.items():
            self.strata.setdefault(width, StratumTally()).merge(stratum)
        return self

    def __iadd__(self, other: "SplitTally") -> "SplitTally":
        return self.merge(other)

    def freeze(self) -> "SplitResult":
        return SplitResult(
            strata=tuple(
                (
                    width,
                    s.prefixes,
                    s.silent,
                    s.silent_sq,
                    s.miscorrected,
                    s.miscorrected_sq,
                )
                for width, s in sorted(self.strata.items())
            )
        )


def _metric_columns(metric: str) -> tuple[int, int]:
    """(count, sum-of-squares) column indices of one stratum row."""
    if metric == "silent":
        return 2, 3
    if metric == "miscorrection":
        return 4, 5
    raise ValueError(
        f"unknown splitting metric {metric!r}; choose from {SPLIT_METRICS}"
    )


@dataclass(frozen=True)
class SplitResult:
    """Frozen summary of a splitting run.

    ``strata`` rows are ``(width, prefixes, silent, silent_sq,
    miscorrected, miscorrected_sq)``, sorted by width — integers only,
    so equality is exact across execution shapes.
    """

    strata: tuple[tuple[int, int, int, int, int, int], ...]

    @property
    def prefixes(self) -> int:
        return sum(row[1] for row in self.strata)

    @property
    def branches(self) -> int:
        """Total decoded continuations across all prefixes."""
        return sum(row[1] * ((1 << row[0]) - 1) for row in self.strata)

    def events(self, metric: str = "silent") -> int:
        column = _metric_columns(metric)[0]
        return sum(row[column] for row in self.strata)

    def _moments(self, metric: str) -> tuple[Fraction, Fraction]:
        """Exact (mean, second moment) of the per-prefix fractions."""
        count_col, sq_col = _metric_columns(metric)
        n = self.prefixes
        if n == 0:
            return Fraction(0), Fraction(0)
        mean = Fraction(0)
        second = Fraction(0)
        for row in self.strata:
            branch_count = (1 << row[0]) - 1
            mean += Fraction(row[count_col], branch_count)
            second += Fraction(row[sq_col], branch_count * branch_count)
        return mean / n, second / n

    def rate(self, metric: str = "silent") -> float:
        """The unbiased plain-stream rate estimate for ``metric``."""
        return float(self._moments(metric)[0])

    def interval(
        self, metric: str = "silent", confidence: float = 0.95
    ) -> Interval:
        """CI on the rate from the per-prefix fraction variance.

        Normal approximation over ``prefixes`` iid bounded summands
        (each in ``[0, 1]``).  With zero observed events the normal CI
        collapses to a point, so the upper bound falls back to the
        Clopper-Pearson bound on "prefix has any such continuation" —
        valid because the per-prefix fraction never exceeds that
        indicator, and strictly tighter than the plain-stream
        rule-of-three only through the splitting evidence itself.
        """
        n = self.prefixes
        if n == 0:
            return Interval(0.0, 1.0, "split-normal", confidence)
        if self.events(metric) == 0:
            hi = clopper_pearson_interval(0, n, confidence).hi
            return Interval(0.0, hi, "split-clopper-pearson", confidence)
        mean, second = self._moments(metric)
        variance = second - mean * mean
        if n > 1:  # unbiased sample variance
            variance = variance * Fraction(n, n - 1)
        z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
        half = z * sqrt(max(0.0, float(variance)) / n)
        centre = float(mean)
        return Interval(
            max(0.0, centre - half),
            min(1.0, centre + half),
            "split-normal",
            confidence,
        )

    def describe(self, metric: str = "silent", confidence: float = 0.95) -> str:
        interval = self.interval(metric, confidence)
        return (
            f"{metric} rate {self.rate(metric):.3e} "
            f"{interval.format()} @{confidence:.0%} "
            f"({self.events(metric)} branch events over {self.prefixes} "
            f"prefixes, {self.branches} continuations)"
        )


class _SplittingEstimator:
    """Shared run/fold skeleton of the two family estimators.

    Subclasses implement :meth:`run_chunk` (generate prefix chunk,
    branch, decode, tally) and :meth:`_task_spec` (picklable worker
    recipe); ``run`` streams the plan exactly like the plain
    simulators, in process or across a pool.
    """

    def run(
        self,
        trials: int = 10_000,
        seed: int = 2022,
        *,
        jobs: int = 1,
        chunk_size: int | None = None,
        progress: ProgressCallback | None = None,
    ) -> SplitResult:
        if chunk_size is None:
            chunk_size = min(trials, DEFAULT_SPLIT_CHUNK_SIZE) or 1
        chunks = plan_chunks(trials, chunk_size)
        key = derive_key(seed)
        if jobs > 1:
            spec = self._task_spec()
            tasks = [ChunkTask(0, spec, chunk, key) for chunk in chunks]
            folded = run_sharded(tasks, jobs, progress)
            return folded.get(0, SplitTally()).freeze()
        tally = SplitTally()
        for done, chunk in enumerate(chunks, start=1):
            tally.merge(self.run_chunk(chunk, key))
            if progress is not None:
                progress(done, len(chunks))
        return tally.freeze()

    def _branch_tally(
        self, widths, last, decode, read_original, branch_batch
    ) -> SplitTally:
        """The per-chunk branch-and-classify loop both families share.

        For each held-out symbol index: gather its rows, expand every
        row into the full ``2^w`` value fan with ``branch_batch``,
        decode, and count silent / miscorrected continuations per
        prefix — masking out each row's original-value branch, which
        belongs to the ``k-1``-error prefix, not the stream.
        """
        tally = SplitTally()
        for index, width in enumerate(widths):
            rows = np.flatnonzero(last == index)
            if rows.size == 0:
                continue
            space = 1 << width
            originals = read_original(rows, index).astype(np.uint64)
            words, values = branch_batch(rows, index, space)
            statuses = np.asarray(decode(words)).reshape(rows.size, space)
            valid = values.reshape(rows.size, space) != originals[:, None]
            silent = ((statuses == STATUS_CLEAN) & valid).sum(axis=1)
            miscorrected = ((statuses == STATUS_CORRECTED) & valid).sum(axis=1)
            tally.record(
                width,
                prefixes=int(rows.size),
                silent=int(silent.sum()),
                silent_sq=int((silent.astype(np.int64) ** 2).sum()),
                miscorrected=int(miscorrected.sum()),
                miscorrected_sq=int((miscorrected.astype(np.int64) ** 2).sum()),
            )
        return tally


@dataclass
class MuseSplittingEstimator(_SplittingEstimator):
    """Importance-splitting rate estimator for a MUSE code.

    Requires numpy (the branch fan is inherently batched); ``backend``
    still selects the decode engine, and because both engines classify
    identically the tally is byte-identical across them.
    """

    code: object
    k_symbols: int = 2
    ripple_check: bool = True
    backend: str = "auto"
    code_ref: CodeRef | str | None = None

    def run_chunk(self, chunk, key: int) -> SplitTally:
        if np is None:
            raise BackendUnavailableError(
                "importance splitting requires numpy"
            )
        from repro.engine.numpy_backend import (
            extract_symbol_batch,
            insert_symbol_batch,
        )

        code = self.code
        layout = code.layout
        words, last = muse_split_chunk(code, chunk, key, self.k_symbols)
        engine = get_engine(code, self.backend, ripple_check=self.ripple_check)

        def read_original(rows, index):
            return extract_symbol_batch(words[rows], layout, index)

        def branch_batch(rows, index, space):
            branch_words = np.repeat(words[rows], space, axis=0)
            values = np.tile(np.arange(space, dtype=np.uint64), rows.size)
            insert_symbol_batch(branch_words, layout, index, values)
            return branch_words, values

        return self._branch_tally(
            [len(symbol) for symbol in layout.symbols],
            last,
            lambda batch: engine.decode_batch(batch).statuses,
            read_original,
            branch_batch,
        )

    def _task_spec(self) -> "MuseSplitSpec":
        return MuseSplitSpec(
            code=checked_code_ref(self.code_ref, self.code, muse_signature),
            k_symbols=self.k_symbols,
            ripple_check=self.ripple_check,
            backend=self.backend,
        )


@dataclass
class RsSplittingEstimator(_SplittingEstimator):
    """Importance-splitting rate estimator for an RS code."""

    code: object
    k_symbols: int = 2
    device_bits: int | None = 4
    backend: str = "auto"
    code_ref: CodeRef | str | None = None

    def run_chunk(self, chunk, key: int) -> SplitTally:
        if np is None:
            raise BackendUnavailableError(
                "importance splitting requires numpy"
            )
        from repro.rs.engine import get_rs_engine

        code = self.code
        words, last = rs_split_chunk(code, chunk, key, self.k_symbols)
        engine = get_rs_engine(code, self.backend, device_bits=self.device_bits)

        def read_original(rows, index):
            return words[rows, index].astype(np.uint64)

        def branch_batch(rows, index, space):
            branch_words = np.repeat(words[rows], space, axis=0)
            values = np.tile(np.arange(space, dtype=np.uint64), rows.size)
            branch_words[:, index] = values.astype(np.uint32)
            return branch_words, values

        return self._branch_tally(
            code.symbol_widths,
            last,
            lambda batch: engine.decode_batch(batch).statuses,
            read_original,
            branch_batch,
        )

    def _task_spec(self) -> "RsSplitSpec":
        return RsSplitSpec(
            code=checked_code_ref(self.code_ref, self.code, rs_signature),
            k_symbols=self.k_symbols,
            device_bits=self.device_bits,
            backend=self.backend,
        )


@dataclass(frozen=True)
class MuseSplitSpec:
    """Rebuild a :class:`MuseSplittingEstimator` inside a worker."""

    code: CodeRef
    k_symbols: int = 2
    ripple_check: bool = True
    backend: str = "auto"

    def build(self) -> MuseSplittingEstimator:
        return MuseSplittingEstimator(
            self.code.build(),
            k_symbols=self.k_symbols,
            ripple_check=self.ripple_check,
            backend=self.backend,
        )


@dataclass(frozen=True)
class RsSplitSpec:
    """Rebuild an :class:`RsSplittingEstimator` inside a worker."""

    code: CodeRef
    k_symbols: int = 2
    device_bits: int | None = 4
    backend: str = "auto"

    def build(self) -> RsSplittingEstimator:
        return RsSplittingEstimator(
            self.code.build(),
            k_symbols=self.k_symbols,
            device_bits=self.device_bits,
            backend=self.backend,
        )
