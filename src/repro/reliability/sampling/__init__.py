"""Adaptive rare-event sampling for the reliability Monte-Carlo.

Three layers over the PR-3 streaming orchestrator:

* :mod:`~repro.reliability.sampling.intervals` — Wilson-score and
  Clopper-Pearson binomial confidence intervals (stdlib-only), the
  error bars every reported rate now carries;
* :mod:`~repro.reliability.sampling.sequential` —
  :class:`AdaptiveRunner`: grow each design point's counter-hashed
  trial stream through a geometric round schedule and stop at the
  first round whose target-rate CI is tight enough
  (:class:`AdaptivePolicy`) or at the trial ceiling.  The tally after
  stopping is byte-identical to a fixed-trial run of the same length —
  the prefix property — for every ``(chunk_size, jobs)`` split and
  backend;
* :mod:`~repro.reliability.sampling.splitting` — importance splitting
  for the silent / miscorrection tails: sample corruption *prefixes*
  from the plain stream, branch the final corrupted symbol over all
  its values, and fold exact per-stratum integer counts into an
  unbiased, lower-variance rate estimate with real error bars even
  where the plain stream sees zero events.
"""

from repro.reliability.sampling.intervals import (
    INTERVAL_KINDS,
    Interval,
    binomial_interval,
    clopper_pearson_interval,
    wilson_interval,
)
from repro.reliability.sampling.sequential import (
    AdaptiveOutcome,
    AdaptivePolicy,
    AdaptiveRunner,
    policy_from_cli,
)
from repro.reliability.sampling.splitting import (
    DEFAULT_SPLIT_CHUNK_SIZE,
    MuseSplitSpec,
    MuseSplittingEstimator,
    RsSplitSpec,
    RsSplittingEstimator,
    SplitResult,
    SplitTally,
)

__all__ = [
    "AdaptiveOutcome",
    "AdaptivePolicy",
    "AdaptiveRunner",
    "DEFAULT_SPLIT_CHUNK_SIZE",
    "INTERVAL_KINDS",
    "Interval",
    "MuseSplitSpec",
    "MuseSplittingEstimator",
    "RsSplitSpec",
    "RsSplittingEstimator",
    "SplitResult",
    "SplitTally",
    "binomial_interval",
    "clopper_pearson_interval",
    "policy_from_cli",
    "wilson_interval",
]
