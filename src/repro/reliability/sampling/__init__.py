"""Adaptive rare-event sampling for the reliability Monte-Carlo.

Four layers over the PR-3 streaming orchestrator:

* :mod:`~repro.reliability.sampling.intervals` — Wilson-score and
  Clopper-Pearson binomial confidence intervals (stdlib-only), the
  error bars every reported rate now carries;
* :mod:`~repro.reliability.sampling.sequential` —
  :class:`AdaptiveRunner`: grow each design point's counter-hashed
  trial stream through a geometric round schedule and stop at the
  first round whose target-rate CI is tight enough
  (:class:`AdaptivePolicy`) or at the trial ceiling.  The tally after
  stopping is byte-identical to a fixed-trial run of the same length —
  the prefix property — for every ``(chunk_size, jobs)`` split and
  backend;
* :mod:`~repro.reliability.sampling.splitting` — importance splitting
  for the silent / miscorrection tails: sample corruption *prefixes*
  from the plain stream, branch the final corrupted symbol over all
  its values, and fold exact per-stratum integer counts into an
  unbiased, lower-variance rate estimate with real error bars even
  where the plain stream sees zero events;
* :mod:`~repro.reliability.sampling.scheduler` —
  :class:`CampaignRunner`: fleet-wide budget allocation across a whole
  sweep.  Each round it spends the next batch of trials on the points
  furthest from their CI target (priority = half-width / goal), honours
  a campaign-wide trial budget, escalates zero-event cells to the
  splitting estimator, and folds completed cells from the cross-run
  result cache — while keeping every allocation a pure function of the
  folded tallies, so ``trials_used`` stays byte-identical across
  ``(chunk_size, jobs, workers)`` and backends.
"""

from repro.reliability.sampling.intervals import (
    INTERVAL_KINDS,
    Interval,
    binomial_interval,
    clopper_pearson_interval,
    wilson_interval,
)
from repro.reliability.sampling.sequential import (
    AdaptiveOutcome,
    AdaptivePolicy,
    AdaptiveRunner,
    policy_from_cli,
)

# scheduler builds on sequential's policy types; keep it after.
from repro.reliability.sampling.scheduler import (
    CampaignOutcome,
    CampaignPolicy,
    CampaignRunner,
    CampaignScheduler,
)
from repro.reliability.sampling.splitting import (
    DEFAULT_SPLIT_CHUNK_SIZE,
    MuseSplitSpec,
    MuseSplittingEstimator,
    RsSplitSpec,
    RsSplittingEstimator,
    SplitResult,
    SplitTally,
)

__all__ = [
    "AdaptiveOutcome",
    "AdaptivePolicy",
    "AdaptiveRunner",
    "CampaignOutcome",
    "CampaignPolicy",
    "CampaignRunner",
    "CampaignScheduler",
    "DEFAULT_SPLIT_CHUNK_SIZE",
    "INTERVAL_KINDS",
    "Interval",
    "MuseSplitSpec",
    "MuseSplittingEstimator",
    "RsSplitSpec",
    "RsSplittingEstimator",
    "SplitResult",
    "SplitTally",
    "binomial_interval",
    "clopper_pearson_interval",
    "policy_from_cli",
    "wilson_interval",
]
