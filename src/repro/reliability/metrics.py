"""Outcome accounting for the reliability Monte Carlo (Table IV).

Each injected multi-symbol error lands in exactly one bucket:

* ``detected`` — the decoder declared the word uncorrectable (the good
  outcome for an error beyond the correction guarantee); split by which
  detector fired.
* ``miscorrected`` — the decoder "corrected" to the wrong word (the bad
  outcome Table IV's MSED rate penalizes).
* ``silent`` — the corrupted word aliased to a valid codeword
  (remainder / syndrome of zero) and read back as clean.  The paper's
  syndrome-comparison method folds these into "detectable"; we count
  them separately and honestly, and report both rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.reliability.sampling.intervals import Interval
    from repro.reliability.sampling.sequential import AdaptiveOutcome


@dataclass
class MsedTally:
    """Mutable counters filled by a Monte-Carlo run."""

    trials: int = 0
    detected_no_match: int = 0
    detected_confinement: int = 0
    miscorrected: int = 0
    silent: int = 0

    def record_detected_no_match(self) -> None:
        self.trials += 1
        self.detected_no_match += 1

    def record_detected_confinement(self) -> None:
        self.trials += 1
        self.detected_confinement += 1

    def record_miscorrected(self) -> None:
        self.trials += 1
        self.miscorrected += 1

    def record_silent(self) -> None:
        self.trials += 1
        self.silent += 1

    def record_counts(
        self,
        *,
        detected_no_match: int = 0,
        detected_confinement: int = 0,
        miscorrected: int = 0,
        silent: int = 0,
    ) -> None:
        """Fold a whole batch of classified outcomes in at once (the
        batch decode engines tally per-status counts, not per-trial)."""
        self.trials += detected_no_match + detected_confinement + miscorrected + silent
        self.detected_no_match += detected_no_match
        self.detected_confinement += detected_confinement
        self.miscorrected += miscorrected
        self.silent += silent

    def merge(self, other: "MsedTally | MsedResult") -> "MsedTally":
        """Fold another tally (or frozen result) into this one.

        Associative and commutative — plain integer addition — so a
        chunked run's tally is a pure fold of its chunk tallies, in any
        order, without ever materialising per-trial arrays.  Returns
        ``self`` for chaining.
        """
        self.trials += other.trials
        self.detected_no_match += other.detected_no_match
        self.detected_confinement += other.detected_confinement
        self.miscorrected += other.miscorrected
        self.silent += other.silent
        return self

    def __iadd__(self, other: "MsedTally | MsedResult") -> "MsedTally":
        return self.merge(other)

    def freeze(self) -> "MsedResult":
        return MsedResult(
            trials=self.trials,
            detected_no_match=self.detected_no_match,
            detected_confinement=self.detected_confinement,
            miscorrected=self.miscorrected,
            silent=self.silent,
        )


@dataclass(frozen=True)
class MsedResult:
    """Immutable summary of one design point's Monte-Carlo run."""

    trials: int
    detected_no_match: int
    detected_confinement: int
    miscorrected: int
    silent: int

    @property
    def detected(self) -> int:
        return self.detected_no_match + self.detected_confinement

    # The named-rate properties all delegate to rate()/:data:`METRICS`
    # so each rate is defined exactly once — the stopping rule
    # (which looks rates up by name) and the reports (which use the
    # properties) can never disagree about what a rate counts.

    @property
    def msed_rate(self) -> float:
        """Fraction of sampled multi-symbol errors that were detected."""
        return self.rate("msed")

    @property
    def miscorrection_rate(self) -> float:
        return self.rate("miscorrection")

    @property
    def silent_rate(self) -> float:
        return self.rate("silent")

    @property
    def failure_rate(self) -> float:
        """Fraction the decoder failed to flag: miscorrected + silent.

        The complement of :attr:`msed_rate` — the rare-event tail the
        adaptive sampler drives its stopping rule on.
        """
        return self.rate("failure")

    @property
    def msed_percent(self) -> float:
        return 100.0 * self.msed_rate

    def count(self, metric: str = "msed") -> int:
        """Event count behind one named rate (see :data:`METRICS`)."""
        try:
            return METRICS[metric](self)
        except KeyError:
            raise ValueError(
                f"unknown metric {metric!r}; choose from {sorted(METRICS)}"
            ) from None

    def rate(self, metric: str = "msed") -> float:
        """One named rate as a bare float (prefer :meth:`interval` for
        anything user-facing — a rate without an error bar hides how
        little a rare-event run actually learned)."""
        if self.trials == 0:
            return 0.0
        return self.count(metric) / self.trials

    def interval(
        self,
        kind: str = "wilson",
        confidence: float = 0.95,
        metric: str = "msed",
    ) -> "Interval":
        """Confidence interval on one named rate over this run's trials.

        ``kind`` is ``"wilson"`` or ``"clopper-pearson"``
        (:mod:`repro.reliability.sampling.intervals`).
        """
        # Runtime import: sampling.sequential folds MsedTally objects,
        # so a module-level import here would be circular.
        from repro.reliability.sampling.intervals import binomial_interval

        return binomial_interval(
            self.count(metric), self.trials, kind=kind, confidence=confidence
        )

    def describe(self, confidence: float = 0.95) -> str:
        interval = self.interval(confidence=confidence)
        return (
            f"MSED {self.msed_percent:.2f}% "
            f"{interval.format(scale=100.0)}% @{confidence:.0%} "
            f"over {self.trials} trials "
            f"(miscorrected {self.miscorrected}, silent {self.silent}, "
            f"no-match {self.detected_no_match}, "
            f"confinement {self.detected_confinement})"
        )


#: The named rates a Monte-Carlo run reports: metric -> event count.
METRICS = {
    "msed": lambda r: r.detected,
    "failure": lambda r: r.miscorrected + r.silent,
    "miscorrection": lambda r: r.miscorrected,
    "silent": lambda r: r.silent,
}


@dataclass(frozen=True)
class DesignPoint:
    """One column of Table IV for one code family."""

    family: str  # "MUSE" or "RS"
    extra_bits: int
    label: str
    chipkill: bool
    result: MsedResult | None
    note: str = ""
    #: Set when the point was run adaptively: convergence flag, rounds,
    #: and the policy the stopping decision used.
    sampling: "AdaptiveOutcome | None" = None


@dataclass
class TableIV:
    """The assembled table: family -> extra bits -> design point."""

    points: list[DesignPoint] = field(default_factory=list)

    def add(self, point: DesignPoint) -> None:
        self.points.append(point)

    def row(self, family: str) -> dict[int, DesignPoint]:
        return {p.extra_bits: p for p in self.points if p.family == family}

    def render(self) -> str:
        """Text rendering shaped like the paper's Table IV."""
        columns = sorted({p.extra_bits for p in self.points})
        lines = ["Code  " + "".join(f"{c:>10}" for c in columns)]
        for family in ("RS", "MUSE"):
            row = self.row(family)
            cells = []
            for column in columns:
                point = row.get(column)
                if point is None or point.result is None:
                    cells.append(f"{'-':>10}")
                else:
                    flag = "" if point.chipkill else "*"
                    cells.append(f"{point.result.msed_percent:>9.2f}{flag or ' '}")
            lines.append(f"{family:<6}" + "".join(cells))
        lines.append("(*) code exists but does not guarantee ChipKill")
        return "\n".join(lines)
