"""Outcome accounting for the reliability Monte Carlo (Table IV).

Each injected multi-symbol error lands in exactly one bucket:

* ``detected`` — the decoder declared the word uncorrectable (the good
  outcome for an error beyond the correction guarantee); split by which
  detector fired.
* ``miscorrected`` — the decoder "corrected" to the wrong word (the bad
  outcome Table IV's MSED rate penalizes).
* ``silent`` — the corrupted word aliased to a valid codeword
  (remainder / syndrome of zero) and read back as clean.  The paper's
  syndrome-comparison method folds these into "detectable"; we count
  them separately and honestly, and report both rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MsedTally:
    """Mutable counters filled by a Monte-Carlo run."""

    trials: int = 0
    detected_no_match: int = 0
    detected_confinement: int = 0
    miscorrected: int = 0
    silent: int = 0

    def record_detected_no_match(self) -> None:
        self.trials += 1
        self.detected_no_match += 1

    def record_detected_confinement(self) -> None:
        self.trials += 1
        self.detected_confinement += 1

    def record_miscorrected(self) -> None:
        self.trials += 1
        self.miscorrected += 1

    def record_silent(self) -> None:
        self.trials += 1
        self.silent += 1

    def record_counts(
        self,
        *,
        detected_no_match: int = 0,
        detected_confinement: int = 0,
        miscorrected: int = 0,
        silent: int = 0,
    ) -> None:
        """Fold a whole batch of classified outcomes in at once (the
        batch decode engines tally per-status counts, not per-trial)."""
        self.trials += detected_no_match + detected_confinement + miscorrected + silent
        self.detected_no_match += detected_no_match
        self.detected_confinement += detected_confinement
        self.miscorrected += miscorrected
        self.silent += silent

    def merge(self, other: "MsedTally | MsedResult") -> "MsedTally":
        """Fold another tally (or frozen result) into this one.

        Associative and commutative — plain integer addition — so a
        chunked run's tally is a pure fold of its chunk tallies, in any
        order, without ever materialising per-trial arrays.  Returns
        ``self`` for chaining.
        """
        self.trials += other.trials
        self.detected_no_match += other.detected_no_match
        self.detected_confinement += other.detected_confinement
        self.miscorrected += other.miscorrected
        self.silent += other.silent
        return self

    def __iadd__(self, other: "MsedTally | MsedResult") -> "MsedTally":
        return self.merge(other)

    def freeze(self) -> "MsedResult":
        return MsedResult(
            trials=self.trials,
            detected_no_match=self.detected_no_match,
            detected_confinement=self.detected_confinement,
            miscorrected=self.miscorrected,
            silent=self.silent,
        )


@dataclass(frozen=True)
class MsedResult:
    """Immutable summary of one design point's Monte-Carlo run."""

    trials: int
    detected_no_match: int
    detected_confinement: int
    miscorrected: int
    silent: int

    @property
    def detected(self) -> int:
        return self.detected_no_match + self.detected_confinement

    @property
    def msed_rate(self) -> float:
        """Fraction of sampled multi-symbol errors that were detected."""
        if self.trials == 0:
            return 0.0
        return self.detected / self.trials

    @property
    def miscorrection_rate(self) -> float:
        if self.trials == 0:
            return 0.0
        return self.miscorrected / self.trials

    @property
    def silent_rate(self) -> float:
        if self.trials == 0:
            return 0.0
        return self.silent / self.trials

    @property
    def msed_percent(self) -> float:
        return 100.0 * self.msed_rate

    def describe(self) -> str:
        return (
            f"MSED {self.msed_percent:.2f}% over {self.trials} trials "
            f"(miscorrected {self.miscorrected}, silent {self.silent}, "
            f"no-match {self.detected_no_match}, "
            f"confinement {self.detected_confinement})"
        )


@dataclass(frozen=True)
class DesignPoint:
    """One column of Table IV for one code family."""

    family: str  # "MUSE" or "RS"
    extra_bits: int
    label: str
    chipkill: bool
    result: MsedResult | None
    note: str = ""


@dataclass
class TableIV:
    """The assembled table: family -> extra bits -> design point."""

    points: list[DesignPoint] = field(default_factory=list)

    def add(self, point: DesignPoint) -> None:
        self.points.append(point)

    def row(self, family: str) -> dict[int, DesignPoint]:
        return {p.extra_bits: p for p in self.points if p.family == family}

    def render(self) -> str:
        """Text rendering shaped like the paper's Table IV."""
        columns = sorted({p.extra_bits for p in self.points})
        lines = ["Code  " + "".join(f"{c:>10}" for c in columns)]
        for family in ("RS", "MUSE"):
            row = self.row(family)
            cells = []
            for column in columns:
                point = row.get(column)
                if point is None or point.result is None:
                    cells.append(f"{'-':>10}")
                else:
                    flag = "" if point.chipkill else "*"
                    cells.append(f"{point.result.msed_percent:>9.2f}{flag or ' '}")
            lines.append(f"{family:<6}" + "".join(cells))
        lines.append("(*) code exists but does not guarantee ChipKill")
        return "\n".join(lines)
