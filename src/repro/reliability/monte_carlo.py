"""Monte-Carlo multi-symbol error detection simulator (Table IV).

Methodology (paper Section VII-A): for each design point, sample
``trials`` random k-symbol error patterns (k = 2 by default), corrupt a
random encoded codeword, run the decoder, and classify the outcome.
The multi-symbol error detection (MSED) rate is the detected fraction.

Two decoders participate:

* **MUSE** — the Figure-4 flow: ELC miss and correction-ripple
  (overflow/underflow) both detect; an ELC hit whose correction stays
  symbol-confined is a miscorrection.
* **Reed-Solomon** — bounded-distance PGZ.  By default the decoder also
  enforces *device confinement*: a corrected magnitude must fall inside
  a single x4 device's bit positions, as a commercial x4 ChipKill
  decoder would require (a real single-device failure can never span
  two devices).  Without this policy RS MSED drops by roughly its
  locator-validity factor; the ablation flag lets you measure both.

Execution is *streamed*: a run is split into fixed-size chunks
(:mod:`repro.orchestrate.plan`) whose corruption streams are counter
hashes of the global trial index, so every chunk's tally is a pure
fold term and memory stays flat however many trials the run totals.
``run(..., jobs=N)`` fans the chunks over a process pool; for a fixed
master seed the folded tally is byte-identical for every
``(chunk_size, jobs)`` combination and across decode backends.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from functools import lru_cache

from repro import telemetry
from repro.core.codec import DecodeStatus, DetectionReason, MuseCode
from repro.core.error_model import SymbolErrorModel
from repro.core.search import MultiplierSearch
from repro.core.symbols import SymbolLayout
from repro.engine import BackendUnavailableError, get_engine
from repro.orchestrate.corruption import (
    muse_corruption_chunk,
    muse_scenario_chunk,
    muse_scenario_word,
    rs_corruption_chunk,
    rs_scenario_chunk,
    rs_scenario_word,
)
from repro.orchestrate.plan import Chunk, plan_chunks
from repro.orchestrate.pool import ProgressCallback, run_sharded
from repro.orchestrate.rng import derive_key, trial_seed
from repro.orchestrate.worker import (
    ChunkTask,
    CodeRef,
    MuseSimSpec,
    RsSimSpec,
    checked_code_ref,
    group_labels,
    muse_signature,
    rs_signature,
)
from repro.reliability.metrics import (
    DesignPoint,
    MsedResult,
    MsedTally,
    TableIV,
)
from repro.reliability.sampling.scheduler import (
    CampaignOutcome,
    CampaignPolicy,
    CampaignRunner,
)
from repro.reliability.sampling.sequential import (
    AdaptiveOutcome,
    AdaptivePolicy,
    AdaptiveRunner,
)
from repro.rs.chipkill import assess
from repro.rs.engine import device_confined, get_rs_engine
from repro.rs.reed_solomon import RSCode, RSDecodeStatus, rs_for_channel


def _streamed_run(
    simulator,
    trials: int,
    seed: int,
    jobs: int,
    chunk_size: int | None,
    progress: ProgressCallback | None,
    executor=None,
) -> MsedResult:
    """One simulator's run is the single-point case of the shared
    design-point grid runner — one skeleton, never two to keep in sync.
    """
    return run_design_points(
        [simulator], trials, seed, jobs, chunk_size, progress, executor
    )[0]


def _adaptive_run(
    simulator,
    policy: AdaptivePolicy | None,
    seed: int,
    jobs: int,
    chunk_size: int | None,
    progress: ProgressCallback | None,
    executor=None,
) -> AdaptiveOutcome:
    """Shared ``run_adaptive`` body of both simulator classes."""
    runner = AdaptiveRunner(policy if policy is not None else AdaptivePolicy())
    return runner.run_one(simulator, seed, jobs, chunk_size, progress, executor)


@dataclass
class MuseMsedSimulator:
    """Inject k-symbol errors into a MUSE code and classify outcomes.

    Corruptions are generated chunk by chunk by
    :func:`repro.orchestrate.corruption.muse_corruption_chunk` and
    classified by vectorised batch decodes.  ``backend`` selects the
    decode engine ("scalar", "numpy" or "auto"); the counter-hashed
    trial stream depends on neither the backend nor the chunking, so
    the tally of a fixed ``(trials, seed)`` run is byte-identical
    across backends and across every ``(chunk_size, jobs)`` split.

    ``code_ref`` (a :class:`~repro.orchestrate.worker.CodeRef` or a
    ``"module:callable"`` string) is only needed for ``jobs > 1``: it
    lets worker processes rebuild the code instead of pickling it.

    Without numpy the simulator transparently falls back to the
    sequential big-int path, whose per-trial :class:`random.Random`
    streams are seeded from the same counter hash — still
    split-invariant, though distinct from the vectorised generator's
    stream.
    """

    code: MuseCode
    k_symbols: int = 2
    ripple_check: bool = True
    backend: str = "auto"
    code_ref: CodeRef | str | None = None
    #: Which registered fault scenario to inject (:mod:`repro.scenarios`).
    #: The default "msed" is the paper's transient model and keeps the
    #: historical stream (fused kernels included); every other scenario
    #: runs generate-then-decode with a byte-identical scalar reference.
    scenario: str = "msed"

    def run(
        self,
        trials: int = 10_000,
        seed: int = 2022,
        *,
        jobs: int = 1,
        chunk_size: int | None = None,
        progress: ProgressCallback | None = None,
        executor=None,
    ) -> MsedResult:
        return _streamed_run(
            self, trials, seed, jobs, chunk_size, progress, executor
        )

    def run_adaptive(
        self,
        policy: AdaptivePolicy | None = None,
        seed: int = 2022,
        *,
        jobs: int = 1,
        chunk_size: int | None = None,
        progress: ProgressCallback | None = None,
        executor=None,
    ) -> AdaptiveOutcome:
        """Grow this simulator's trial stream until ``policy`` is met.

        The returned outcome's tally is the byte-identical prefix of
        the fixed-trial stream at the same seed (see
        :mod:`repro.reliability.sampling.sequential`).
        """
        return _adaptive_run(
            self, policy, seed, jobs, chunk_size, progress, executor
        )

    def run_chunk(self, chunk: Chunk, key: int) -> MsedTally:
        """Classify one chunk of the stream keyed by ``key``.

        The unit of work the shard runner executes; folding the
        returned tallies over a run's chunks reproduces ``run``.

        Engines exposing ``fused_chunk_counts`` (the numba and native
        backends) run corruption draw, decode, and tally in one
        compiled pass — byte-identical counts, no intermediate batch
        arrays; every other engine decodes the generated chunk.
        Non-default scenarios bypass the fused kernels (those compile
        the msed stream only) and generate-then-decode instead.
        """
        if self.scenario != "msed":
            return self._scenario_chunk(chunk, key)
        try:
            engine = get_engine(
                self.code, self.backend, ripple_check=self.ripple_check
            )
            fused = getattr(engine, "fused_chunk_counts", None)
            counts = (
                fused(chunk, key, self.k_symbols) if fused is not None else None
            )
            if counts is None:
                words = muse_corruption_chunk(
                    self.code, chunk, key, self.k_symbols
                )
                counts = engine.decode_batch(words).counts()
        except BackendUnavailableError:
            if self.backend != "auto":
                raise  # an explicit request must not silently degrade
            return self._sequential_chunk(chunk, key)
        clean, corrected, no_match, ripple = counts
        tally = MsedTally()
        # k >= 2 symbols were corrupted, so a delivered word is never
        # the original: CLEAN means the corruption aliased to a valid
        # codeword (silent), CORRECTED means a single-symbol
        # miscorrection.
        tally.record_counts(
            silent=clean,
            miscorrected=corrected,
            detected_no_match=no_match,
            detected_confinement=ripple,
        )
        return tally

    def _task_spec(self) -> MuseSimSpec:
        return MuseSimSpec(
            code=checked_code_ref(self.code_ref, self.code, muse_signature),
            k_symbols=self.k_symbols,
            ripple_check=self.ripple_check,
            backend=self.backend,
            scenario=self.scenario,
        )

    def _scenario_chunk(self, chunk: Chunk, key: int) -> MsedTally:
        """One chunk of a registered (non-msed) scenario stream.

        Generate-then-decode on whatever engine ``backend`` resolves
        to; scenarios carry a byte-identical scalar reference, so the
        numpy-free fallback tallies the *same* stream (unlike the msed
        sequential path) and even an explicit ``backend="scalar"``
        request may take it without degrading.
        """
        from repro.scenarios import resolve_scenario

        scenario = resolve_scenario(self.scenario)
        try:
            engine = get_engine(
                self.code, self.backend, ripple_check=self.ripple_check
            )
            words = muse_scenario_chunk(
                scenario, self.code, chunk, key, self.k_symbols
            )
            counts = engine.decode_batch(words).counts()
        except BackendUnavailableError:
            if self.backend not in ("auto", "scalar"):
                raise  # an explicit request must not silently degrade
            return self._scenario_sequential(scenario, chunk, key)
        clean, corrected, no_match, ripple = counts
        tally = MsedTally()
        # Tallies classify the delivered word: CLEAN means the
        # scenario's disturbance aliased to a valid codeword (silent),
        # CORRECTED a symbol-confined miscorrection.
        tally.record_counts(
            silent=clean,
            miscorrected=corrected,
            detected_no_match=no_match,
            detected_confinement=ripple,
        )
        return tally

    def _scenario_sequential(self, scenario, chunk: Chunk, key: int) -> MsedTally:
        """Numpy-free scenario chunk: the scalar reference stream."""
        code = self.code
        tally = MsedTally()
        for trial in range(chunk.start, chunk.stop):
            corrupted = muse_scenario_word(
                scenario, code, trial, key, self.k_symbols
            )
            if self.ripple_check:
                result = code.decode(corrupted)
            else:
                result = code.decode_without_ripple_check(corrupted)
            if result.status is DecodeStatus.CLEAN:
                tally.record_silent()
            elif result.status is DecodeStatus.CORRECTED:
                tally.record_miscorrected()
            elif result.reason is DetectionReason.REMAINDER_NOT_FOUND:
                tally.record_detected_no_match()
            else:
                tally.record_detected_confinement()
        return tally

    def _run_sequential(self, trials: int, seed: int) -> MsedResult:
        """Numpy-free fallback: the per-trial big-int loop."""
        return self._sequential_chunk(Chunk(0, trials), derive_key(seed)).freeze()

    def _sequential_chunk(self, chunk: Chunk, key: int) -> MsedTally:
        """One-word-at-a-time chunk, per-trial counter-seeded RNGs."""
        code = self.code
        layout = code.layout
        tally = MsedTally()
        for trial in range(chunk.start, chunk.stop):
            rng = random.Random(trial_seed(key, trial))
            data = rng.randrange(1 << code.k)
            codeword = code.encode(data)
            corrupted = self._corrupt(codeword, layout, rng)
            if self.ripple_check:
                result = code.decode(corrupted)
            else:
                result = code.decode_without_ripple_check(corrupted)
            if result.status is DecodeStatus.CLEAN:
                tally.record_silent()
            elif result.status is DecodeStatus.CORRECTED:
                tally.record_miscorrected()
            elif result.reason is DetectionReason.REMAINDER_NOT_FOUND:
                tally.record_detected_no_match()
            else:
                tally.record_detected_confinement()
        return tally

    def _corrupt(
        self, codeword: int, layout: SymbolLayout, rng: random.Random
    ) -> int:
        symbols = rng.sample(range(layout.symbol_count), self.k_symbols)
        corrupted = codeword
        for index in symbols:
            width = len(layout.symbols[index])
            original = layout.extract_symbol(corrupted, index)
            value = rng.randrange(1 << width)
            while value == original:
                value = rng.randrange(1 << width)
            corrupted = layout.insert_symbol(corrupted, index, value)
        return corrupted


@dataclass
class RsMsedSimulator:
    """Inject k-symbol errors into an RS code and classify outcomes.

    ``device_bits`` enables the device-confinement decode policy
    (defaults to x4, matching the paper's DIMMs); ``None`` disables it.
    Like :class:`MuseMsedSimulator`, corruptions come from the shared
    counter-hashed chunk generator
    (:func:`repro.orchestrate.corruption.rs_corruption_chunk`), so the
    tally of a fixed ``(trials, seed)`` run is byte-identical across
    backends and every ``(chunk_size, jobs)`` split.  ``code_ref``
    names a factory for worker processes (``jobs > 1``).  Without
    numpy the simulator falls back to the sequential path (per-trial
    counter-seeded RNGs, split-invariant but a distinct stream).
    """

    code: RSCode
    k_symbols: int = 2
    device_bits: int | None = 4
    backend: str = "auto"
    code_ref: CodeRef | str | None = None
    #: Registered fault scenario to inject (:mod:`repro.scenarios`);
    #: see :class:`MuseMsedSimulator`.
    scenario: str = "msed"

    def run(
        self,
        trials: int = 10_000,
        seed: int = 2022,
        *,
        jobs: int = 1,
        chunk_size: int | None = None,
        progress: ProgressCallback | None = None,
        executor=None,
    ) -> MsedResult:
        return _streamed_run(
            self, trials, seed, jobs, chunk_size, progress, executor
        )

    def run_adaptive(
        self,
        policy: AdaptivePolicy | None = None,
        seed: int = 2022,
        *,
        jobs: int = 1,
        chunk_size: int | None = None,
        progress: ProgressCallback | None = None,
        executor=None,
    ) -> AdaptiveOutcome:
        """Grow this simulator's trial stream until ``policy`` is met."""
        return _adaptive_run(
            self, policy, seed, jobs, chunk_size, progress, executor
        )

    def run_chunk(self, chunk: Chunk, key: int) -> MsedTally:
        """Classify one chunk of the stream keyed by ``key``.

        Like the MUSE simulator, engines exposing
        ``fused_chunk_counts`` tally the chunk in one compiled
        draw->decode pass; other engines decode the generated batch,
        and non-default scenarios always generate-then-decode.
        """
        if self.scenario != "msed":
            return self._scenario_chunk(chunk, key)
        try:
            engine = get_rs_engine(
                self.code, self.backend, device_bits=self.device_bits
            )
            fused = getattr(engine, "fused_chunk_counts", None)
            counts = (
                fused(chunk, key, self.k_symbols) if fused is not None else None
            )
            if counts is None:
                words = rs_corruption_chunk(
                    self.code, chunk, key, self.k_symbols
                )
                counts = engine.decode_batch(words).counts()
        except BackendUnavailableError:
            if self.backend != "auto":
                raise  # an explicit request must not silently degrade
            return self._sequential_chunk(chunk, key)
        clean, corrected, no_match, confinement = counts
        tally = MsedTally()
        # k >= 2 corrupted symbols: CLEAN means the corruption aliased
        # to a valid codeword (silent), CORRECTED is a miscorrection the
        # device policy failed to veto.
        tally.record_counts(
            silent=clean,
            miscorrected=corrected,
            detected_no_match=no_match,
            detected_confinement=confinement,
        )
        return tally

    def _task_spec(self) -> RsSimSpec:
        return RsSimSpec(
            code=checked_code_ref(self.code_ref, self.code, rs_signature),
            k_symbols=self.k_symbols,
            device_bits=self.device_bits,
            backend=self.backend,
            scenario=self.scenario,
        )

    def _scenario_chunk(self, chunk: Chunk, key: int) -> MsedTally:
        """One chunk of a registered (non-msed) scenario stream.

        See :meth:`MuseMsedSimulator._scenario_chunk` — same
        generate-then-decode shape, same byte-identical scalar
        fallback.
        """
        from repro.scenarios import resolve_scenario

        scenario = resolve_scenario(self.scenario)
        try:
            engine = get_rs_engine(
                self.code, self.backend, device_bits=self.device_bits
            )
            words = rs_scenario_chunk(
                scenario, self.code, chunk, key, self.k_symbols
            )
            counts = engine.decode_batch(words).counts()
        except BackendUnavailableError:
            if self.backend not in ("auto", "scalar"):
                raise  # an explicit request must not silently degrade
            return self._scenario_sequential(scenario, chunk, key)
        clean, corrected, no_match, confinement = counts
        tally = MsedTally()
        tally.record_counts(
            silent=clean,
            miscorrected=corrected,
            detected_no_match=no_match,
            detected_confinement=confinement,
        )
        return tally

    def _scenario_sequential(self, scenario, chunk: Chunk, key: int) -> MsedTally:
        """Numpy-free scenario chunk: the scalar reference stream."""
        code = self.code
        tally = MsedTally()
        for trial in range(chunk.start, chunk.stop):
            codeword = rs_scenario_word(
                scenario, code, trial, key, self.k_symbols
            )
            result = code.decode(codeword)
            if result.status is RSDecodeStatus.CLEAN:
                tally.record_silent()
            elif result.status is RSDecodeStatus.DETECTED:
                tally.record_detected_no_match()
            elif self.device_bits is not None and not device_confined(
                code, result.error_position, result.error_magnitude,
                self.device_bits,
            ):
                tally.record_detected_confinement()
            else:
                tally.record_miscorrected()
        return tally

    def _run_sequential(self, trials: int, seed: int) -> MsedResult:
        """Numpy-free fallback: the per-trial loop."""
        return self._sequential_chunk(Chunk(0, trials), derive_key(seed)).freeze()

    def _sequential_chunk(self, chunk: Chunk, key: int) -> MsedTally:
        """One-word-at-a-time chunk, per-trial counter-seeded RNGs."""
        code = self.code
        tally = MsedTally()
        for trial in range(chunk.start, chunk.stop):
            rng = random.Random(trial_seed(key, trial))
            data = self._random_data(rng)
            codeword = list(code.encode(data))
            self._corrupt(codeword, rng)
            result = code.decode(codeword)
            if result.status is RSDecodeStatus.CLEAN:
                tally.record_silent()
            elif result.status is RSDecodeStatus.DETECTED:
                tally.record_detected_no_match()
            elif self.device_bits is not None and not device_confined(
                code, result.error_position, result.error_magnitude,
                self.device_bits,
            ):
                tally.record_detected_confinement()
            else:
                tally.record_miscorrected()
        return tally

    def _random_data(self, rng: random.Random) -> list[int]:
        code = self.code
        return [
            rng.randrange(1 << code.symbol_widths[index])
            for index in range(code.data_symbols)
        ]

    def _corrupt(self, codeword: list[int], rng: random.Random) -> None:
        code = self.code
        symbols = rng.sample(range(code.n_symbols), self.k_symbols)
        for index in symbols:
            width = code.symbol_widths[index]
            value = rng.randrange(1 << width)
            while value == codeword[index]:
                value = rng.randrange(1 << width)
            codeword[index] = value


# ----------------------------------------------------------------------
# Table IV assembly
# ----------------------------------------------------------------------

#: Largest valid multipliers for the 144-bit C4B model at the two
#: redundancies the paper publishes (verified in tests).  Immutable:
#: lazily-discovered values live in the lru_cache below, never here, so
#: concurrent or batched callers can't observe a half-filled table.
PAPER_144_MULTIPLIERS = {
    16: 65519,  # the paper's MUSE(144,128) pick
    12: 4065,   # the paper's MUSE(144,132) pick
}


@lru_cache(maxsize=None)
def largest_144_multiplier(r: int) -> int:
    """Largest valid multiplier for the 144-bit C4B model at budget r.

    Memoised because the r=15/16 descending searches cost a few
    seconds; the published picks short-circuit the search entirely.
    """
    known = PAPER_144_MULTIPLIERS.get(r)
    if known is not None:
        return known
    model = SymbolErrorModel(SymbolLayout.sequential(144, 4))
    result = MultiplierSearch(model, r).run_descending(stop_after=1)
    if not result.found:
        raise LookupError(f"no valid multiplier for r={r}")
    return result.multipliers[-1]


def muse_design_point(extra_bits: int) -> MuseCode:
    """The MUSE code giving ``extra_bits`` spare bits (Table IV row).

    Extra bits 0..4 shrink the 144-bit code's redundancy from 16 to 12;
    extra bits 5 is the 80-bit MUSE(80,69) code (the paper's footnote).
    """
    if extra_bits == 5:
        from repro.core.codes import muse_80_69

        return muse_80_69()
    if not 0 <= extra_bits <= 4:
        raise ValueError("MUSE design points exist for 0..5 extra bits")
    r = 16 - extra_bits
    m = largest_144_multiplier(r)
    layout = SymbolLayout.sequential(144, 4)
    return MuseCode(layout, m, name=f"MUSE(144,{144 - r})")


def rs_design_point(extra_bits: int) -> RSCode:
    """The RS code giving ``extra_bits`` spare bits over 144 bits.

    RS redundancy comes in two-symbol steps, so only even extra-bit
    counts exist: b = 8 - extra/2.
    """
    if extra_bits % 2 or not 0 <= extra_bits <= 6:
        raise ValueError("RS design points exist for extra bits 0, 2, 4, 6")
    return rs_for_channel(8 - extra_bits // 2, 144)


_SELF = "repro.reliability.monte_carlo"


def run_design_points(
    simulators: "list[MuseMsedSimulator | RsMsedSimulator]",
    trials: int,
    seed: int,
    jobs: int = 1,
    chunk_size: int | None = None,
    progress: ProgressCallback | None = None,
    executor=None,
    group_ns: str | None = None,
) -> list[MsedResult]:
    """Run every simulator over the same chunk plan and master seed.

    ``jobs > 1`` fans the full design-points x chunks grid over **one**
    process pool (no per-point barriers, one worker spin-up for the
    whole grid); ``jobs = 1`` streams the same chunks in process.
    ``executor`` (a :class:`repro.distribute.DistributedSession`)
    replaces the pool with remote workers pulling from the
    coordinator's queue.  Every path folds the identical chunk tallies,
    so results are positionally aligned with ``simulators`` and
    independent of ``jobs``/``chunk_size``/transport.
    """
    chunks = plan_chunks(trials, chunk_size)
    key = derive_key(seed)
    if jobs > 1 or executor is not None:
        # One spec per simulator, hoisted out of the chunk loop: each
        # _task_spec() rebuilds the code for its consistency check, and
        # a large run has thousands of chunks per point.
        specs = [simulator._task_spec() for simulator in simulators]
        groups = group_labels(len(simulators), group_ns)
        tasks = [
            ChunkTask(groups[index], spec, chunk, key)
            for index, spec in enumerate(specs)
            for chunk in chunks
        ]
        folded = run_sharded(tasks, jobs, progress, executor)
        return [
            folded.get(group, MsedTally()).freeze() for group in groups
        ]
    results = []
    groups = group_labels(len(simulators), group_ns)
    total = len(simulators) * len(chunks)
    done = 0
    for index, simulator in enumerate(simulators):
        tally = MsedTally()
        for chunk in chunks:
            with telemetry.span("decode_chunk", point=str(groups[index])):
                tally.merge(simulator.run_chunk(chunk, key))
            done += 1
            if progress is not None:
                progress(done, total)
        results.append(tally.freeze())
    return results


def run_design_points_adaptive(
    simulators: "list[MuseMsedSimulator | RsMsedSimulator]",
    policy: "AdaptivePolicy | CampaignPolicy",
    seed: int,
    jobs: int = 1,
    chunk_size: int | None = None,
    progress: ProgressCallback | None = None,
    executor=None,
    group_ns: str | None = None,
    trial_budget: int | None = None,
    cache_dir: str | None = None,
) -> list[CampaignOutcome]:
    """Adaptive sibling of :func:`run_design_points`.

    Every simulator consumes the same counter-hashed stream, but the
    sweep is now scheduled as one *campaign*
    (:class:`~repro.reliability.sampling.scheduler.CampaignRunner`):
    each round spends the next batch of trials on the points furthest
    from the policy's CI target instead of finishing points one at a
    time, optionally under a campaign-wide ``trial_budget`` and backed
    by a ``cache_dir`` result cache.  Results are positionally aligned
    with ``simulators`` and, like the fixed-budget runner, independent
    of ``jobs``/``chunk_size``/backend at a fixed seed (including each
    point's ``trials_used``) — allocation is a pure function of the
    folded tallies.
    """
    if isinstance(policy, CampaignPolicy):
        campaign = policy
    else:
        campaign = CampaignPolicy(base=policy)
    if trial_budget is not None:
        campaign = dataclasses.replace(campaign, trial_budget=trial_budget)
    cache = None
    if cache_dir is not None and executor is None:
        # Distributed runs attach the cache to the session (the
        # coordinator owns all folds there); in-process runs own it
        # here.
        from repro.distribute.cache import ResultCache

        cache = ResultCache(cache_dir)
    runner = CampaignRunner(
        campaign,
        cache=cache,
        heartbeat=getattr(executor, "heartbeat", None),
    )
    outcomes = runner.run(
        simulators, seed, jobs, chunk_size, progress, executor, group_ns
    )
    if cache is not None:
        cache.flush()
    return outcomes


def run_design_points_with_outcomes(
    simulators: "list[MuseMsedSimulator | RsMsedSimulator]",
    trials: int,
    seed: int,
    jobs: int = 1,
    chunk_size: int | None = None,
    progress: ProgressCallback | None = None,
    adaptive: AdaptivePolicy | None = None,
    executor=None,
    group_ns: str | None = None,
    trial_budget: int | None = None,
    cache_dir: str | None = None,
) -> "tuple[list[MsedResult], list[CampaignOutcome | None]]":
    """The one fixed-vs-adaptive dispatch every experiment shares.

    Returns ``(results, outcomes)`` positionally aligned with
    ``simulators``; ``outcomes`` is all ``None`` for fixed-budget runs
    (``adaptive is None``), so callers render trial counts and
    convergence flags from one shape.  ``trial_budget`` and
    ``cache_dir`` only apply to adaptive (campaign) runs.
    """
    if adaptive is not None:
        outcomes = run_design_points_adaptive(
            simulators, adaptive, seed, jobs, chunk_size, progress, executor,
            group_ns, trial_budget, cache_dir,
        )
        return [outcome.result for outcome in outcomes], list(outcomes)
    results = run_design_points(
        simulators, trials, seed, jobs, chunk_size, progress, executor,
        group_ns,
    )
    return results, [None] * len(results)


def build_table_iv(
    trials: int = 10_000,
    seed: int = 2022,
    k_symbols: int = 2,
    rs_device_policy: bool = True,
    backend: str = "auto",
    jobs: int = 1,
    chunk_size: int | None = None,
    progress: ProgressCallback | None = None,
    adaptive: AdaptivePolicy | None = None,
    executor=None,
    trial_budget: int | None = None,
    cache_dir: str | None = None,
    scenario: str = "msed",
) -> TableIV:
    """Run every design point and assemble the paper's Table IV.

    ``backend`` selects the decode engine for *both* families (MUSE and
    RS batch engines); ``jobs`` fans design points x chunks over a
    process pool, ``chunk_size`` bounds per-chunk memory, and
    ``executor`` ships the same chunk grid to distributed workers
    (:class:`repro.distribute.DistributedSession`).  None of them
    changes the tallies of a fixed ``(trials, seed)`` table — one flag
    set accelerates the whole table without altering it.

    With ``adaptive`` set, ``trials`` is ignored: the whole table runs
    as one campaign (trials flow to the points furthest from the CI
    target each round), optionally capped by ``trial_budget`` and
    served from the ``cache_dir`` result cache, and every
    :class:`DesignPoint` carries its campaign outcome in ``.sampling``.

    ``scenario`` swaps the injected corruption stream for any
    registered fault scenario (:mod:`repro.scenarios`) — same grid,
    same determinism contract, per-scenario result-cache cells.
    """
    entries: list[tuple[str, int, object]] = []
    simulators: list[MuseMsedSimulator | RsMsedSimulator] = []
    for extra_bits in range(0, 6):
        code = muse_design_point(extra_bits)
        simulators.append(
            MuseMsedSimulator(
                code,
                k_symbols=k_symbols,
                backend=backend,
                code_ref=CodeRef(f"{_SELF}:muse_design_point", (extra_bits,)),
                scenario=scenario,
            )
        )
        entries.append(("MUSE", extra_bits, code))
    for extra_bits in (0, 2, 4, 6):
        code = rs_design_point(extra_bits)
        simulators.append(
            RsMsedSimulator(
                code,
                k_symbols=k_symbols,
                device_bits=4 if rs_device_policy else None,
                backend=backend,
                code_ref=CodeRef(f"{_SELF}:rs_design_point", (extra_bits,)),
                scenario=scenario,
            )
        )
        entries.append(("RS", extra_bits, code))

    results, outcomes = run_design_points_with_outcomes(
        simulators, trials, seed, jobs, chunk_size, progress, adaptive,
        executor, trial_budget=trial_budget, cache_dir=cache_dir,
    )

    table = TableIV()
    for (family, extra_bits, code), result, outcome in zip(
        entries, results, outcomes
    ):
        if family == "MUSE":
            table.add(
                DesignPoint(
                    family="MUSE",
                    extra_bits=extra_bits,
                    label=f"{code.name} m={code.m}",
                    chipkill=True,
                    result=result,
                    sampling=outcome,
                )
            )
        else:
            verdict = assess(code.symbol_bits, 4, 144)
            table.add(
                DesignPoint(
                    family="RS",
                    extra_bits=extra_bits,
                    label=repr(code),
                    chipkill=verdict.chipkill,
                    result=result,
                    note="" if verdict.chipkill else verdict.explain(),
                    sampling=outcome,
                )
            )
    return table
