"""Monte-Carlo multi-symbol error detection simulator (Table IV).

Methodology (paper Section VII-A): for each design point, sample
``trials`` random k-symbol error patterns (k = 2 by default), corrupt a
random encoded codeword, run the decoder, and classify the outcome.
The multi-symbol error detection (MSED) rate is the detected fraction.

Two decoders participate:

* **MUSE** — the Figure-4 flow: ELC miss and correction-ripple
  (overflow/underflow) both detect; an ELC hit whose correction stays
  symbol-confined is a miscorrection.
* **Reed-Solomon** — bounded-distance PGZ.  By default the decoder also
  enforces *device confinement*: a corrected magnitude must fall inside
  a single x4 device's bit positions, as a commercial x4 ChipKill
  decoder would require (a real single-device failure can never span
  two devices).  Without this policy RS MSED drops by roughly its
  locator-validity factor; the ablation flag lets you measure both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.core.codec import DecodeStatus, DetectionReason, MuseCode
from repro.core.error_model import SymbolErrorModel
from repro.core.search import MultiplierSearch
from repro.core.symbols import SymbolLayout
from repro.engine import (
    BackendUnavailableError,
    get_engine,
    msed_corruption_batch,
)
from repro.reliability.metrics import (
    DesignPoint,
    MsedResult,
    MsedTally,
    TableIV,
)
from repro.rs.chipkill import assess
from repro.rs.engine import (
    device_confined,
    get_rs_engine,
    rs_msed_corruption_batch,
)
from repro.rs.reed_solomon import RSCode, RSDecodeStatus, rs_for_channel


@dataclass
class MuseMsedSimulator:
    """Inject k-symbol errors into a MUSE code and classify outcomes.

    Corruptions are generated in bulk by
    :func:`repro.engine.msed_corruption_batch` and classified from one
    vectorised batch decode.  ``backend`` selects the decode engine
    ("scalar", "numpy" or "auto"); the sampled trial stream does not
    depend on it, so the tallies of a fixed ``(trials, seed)`` run are
    byte-identical across backends — the cross-backend equivalence the
    engine tests and benchmarks pin.

    Without numpy the simulator transparently falls back to the
    sequential big-int path (whose :class:`random.Random` stream
    differs from the vectorised generator's).
    """

    code: MuseCode
    k_symbols: int = 2
    ripple_check: bool = True
    backend: str = "auto"

    def run(self, trials: int = 10_000, seed: int = 2022) -> MsedResult:
        try:
            words = msed_corruption_batch(self.code, trials, seed, self.k_symbols)
            engine = get_engine(
                self.code, self.backend, ripple_check=self.ripple_check
            )
        except BackendUnavailableError:
            if self.backend == "numpy":
                raise  # an explicit request must not silently degrade
            return self._run_sequential(trials, seed)
        clean, corrected, no_match, ripple = engine.decode_batch(words).counts()
        tally = MsedTally()
        # k >= 2 symbols were corrupted, so a delivered word is never
        # the original: CLEAN means the corruption aliased to a valid
        # codeword (silent), CORRECTED means a single-symbol
        # miscorrection.
        tally.record_counts(
            silent=clean,
            miscorrected=corrected,
            detected_no_match=no_match,
            detected_confinement=ripple,
        )
        return tally.freeze()

    def _run_sequential(self, trials: int, seed: int) -> MsedResult:
        """Numpy-free fallback: the original one-word-at-a-time loop."""
        rng = random.Random(seed)
        code = self.code
        layout = code.layout
        tally = MsedTally()
        for _ in range(trials):
            data = rng.randrange(1 << code.k)
            codeword = code.encode(data)
            corrupted = self._corrupt(codeword, layout, rng)
            if self.ripple_check:
                result = code.decode(corrupted)
            else:
                result = code.decode_without_ripple_check(corrupted)
            if result.status is DecodeStatus.CLEAN:
                tally.record_silent()
            elif result.status is DecodeStatus.CORRECTED:
                tally.record_miscorrected()
            elif result.reason is DetectionReason.REMAINDER_NOT_FOUND:
                tally.record_detected_no_match()
            else:
                tally.record_detected_confinement()
        return tally.freeze()

    def _corrupt(
        self, codeword: int, layout: SymbolLayout, rng: random.Random
    ) -> int:
        symbols = rng.sample(range(layout.symbol_count), self.k_symbols)
        corrupted = codeword
        for index in symbols:
            width = len(layout.symbols[index])
            original = layout.extract_symbol(corrupted, index)
            value = rng.randrange(1 << width)
            while value == original:
                value = rng.randrange(1 << width)
            corrupted = layout.insert_symbol(corrupted, index, value)
        return corrupted


@dataclass
class RsMsedSimulator:
    """Inject k-symbol errors into an RS code and classify outcomes.

    ``device_bits`` enables the device-confinement decode policy
    (defaults to x4, matching the paper's DIMMs); ``None`` disables it.
    Like :class:`MuseMsedSimulator`, corruptions come from one shared
    vectorised generator (:func:`repro.rs.engine.rs_msed_corruption_batch`)
    and ``backend`` only selects the decode engine, so the tallies of a
    fixed ``(trials, seed)`` run are byte-identical across backends.
    Without numpy the simulator falls back to the sequential path
    (whose :class:`random.Random` stream differs from the vectorised
    generator's).
    """

    code: RSCode
    k_symbols: int = 2
    device_bits: int | None = 4
    backend: str = "auto"

    def run(self, trials: int = 10_000, seed: int = 2022) -> MsedResult:
        try:
            words = rs_msed_corruption_batch(
                self.code, trials, seed, self.k_symbols
            )
            engine = get_rs_engine(
                self.code, self.backend, device_bits=self.device_bits
            )
        except BackendUnavailableError:
            if self.backend == "numpy":
                raise  # an explicit request must not silently degrade
            return self._run_sequential(trials, seed)
        clean, corrected, no_match, confinement = engine.decode_batch(
            words
        ).counts()
        tally = MsedTally()
        # k >= 2 corrupted symbols: CLEAN means the corruption aliased
        # to a valid codeword (silent), CORRECTED is a miscorrection the
        # device policy failed to veto.
        tally.record_counts(
            silent=clean,
            miscorrected=corrected,
            detected_no_match=no_match,
            detected_confinement=confinement,
        )
        return tally.freeze()

    def _run_sequential(self, trials: int, seed: int) -> MsedResult:
        """Numpy-free fallback: the original one-word-at-a-time loop."""
        rng = random.Random(seed)
        code = self.code
        tally = MsedTally()
        for _ in range(trials):
            data = self._random_data(rng)
            codeword = list(code.encode(data))
            self._corrupt(codeword, rng)
            result = code.decode(codeword)
            if result.status is RSDecodeStatus.CLEAN:
                tally.record_silent()
            elif result.status is RSDecodeStatus.DETECTED:
                tally.record_detected_no_match()
            elif self.device_bits is not None and not device_confined(
                code, result.error_position, result.error_magnitude,
                self.device_bits,
            ):
                tally.record_detected_confinement()
            else:
                tally.record_miscorrected()
        return tally.freeze()

    def _random_data(self, rng: random.Random) -> list[int]:
        code = self.code
        return [
            rng.randrange(1 << code.symbol_widths[index])
            for index in range(code.data_symbols)
        ]

    def _corrupt(self, codeword: list[int], rng: random.Random) -> None:
        code = self.code
        symbols = rng.sample(range(code.n_symbols), self.k_symbols)
        for index in symbols:
            width = code.symbol_widths[index]
            value = rng.randrange(1 << width)
            while value == codeword[index]:
                value = rng.randrange(1 << width)
            codeword[index] = value


# ----------------------------------------------------------------------
# Table IV assembly
# ----------------------------------------------------------------------

#: Largest valid multipliers for the 144-bit C4B model at the two
#: redundancies the paper publishes (verified in tests).  Immutable:
#: lazily-discovered values live in the lru_cache below, never here, so
#: concurrent or batched callers can't observe a half-filled table.
PAPER_144_MULTIPLIERS = {
    16: 65519,  # the paper's MUSE(144,128) pick
    12: 4065,   # the paper's MUSE(144,132) pick
}


@lru_cache(maxsize=None)
def largest_144_multiplier(r: int) -> int:
    """Largest valid multiplier for the 144-bit C4B model at budget r.

    Memoised because the r=15/16 descending searches cost a few
    seconds; the published picks short-circuit the search entirely.
    """
    known = PAPER_144_MULTIPLIERS.get(r)
    if known is not None:
        return known
    model = SymbolErrorModel(SymbolLayout.sequential(144, 4))
    result = MultiplierSearch(model, r).run_descending(stop_after=1)
    if not result.found:
        raise LookupError(f"no valid multiplier for r={r}")
    return result.multipliers[-1]


def muse_design_point(extra_bits: int) -> MuseCode:
    """The MUSE code giving ``extra_bits`` spare bits (Table IV row).

    Extra bits 0..4 shrink the 144-bit code's redundancy from 16 to 12;
    extra bits 5 is the 80-bit MUSE(80,69) code (the paper's footnote).
    """
    if extra_bits == 5:
        from repro.core.codes import muse_80_69

        return muse_80_69()
    if not 0 <= extra_bits <= 4:
        raise ValueError("MUSE design points exist for 0..5 extra bits")
    r = 16 - extra_bits
    m = largest_144_multiplier(r)
    layout = SymbolLayout.sequential(144, 4)
    return MuseCode(layout, m, name=f"MUSE(144,{144 - r})")


def rs_design_point(extra_bits: int) -> RSCode:
    """The RS code giving ``extra_bits`` spare bits over 144 bits.

    RS redundancy comes in two-symbol steps, so only even extra-bit
    counts exist: b = 8 - extra/2.
    """
    if extra_bits % 2 or not 0 <= extra_bits <= 6:
        raise ValueError("RS design points exist for extra bits 0, 2, 4, 6")
    return rs_for_channel(8 - extra_bits // 2, 144)


def build_table_iv(
    trials: int = 10_000,
    seed: int = 2022,
    k_symbols: int = 2,
    rs_device_policy: bool = True,
    backend: str = "auto",
) -> TableIV:
    """Run every design point and assemble the paper's Table IV.

    ``backend`` selects the decode engine for *both* families (MUSE and
    RS batch engines); the tallies are backend-independent for a fixed
    seed, so one flag accelerates the whole table without changing it.
    """
    table = TableIV()
    for extra_bits in range(0, 6):
        code = muse_design_point(extra_bits)
        simulator = MuseMsedSimulator(code, k_symbols=k_symbols, backend=backend)
        result = simulator.run(trials, seed)
        table.add(
            DesignPoint(
                family="MUSE",
                extra_bits=extra_bits,
                label=f"{code.name} m={code.m}",
                chipkill=True,
                result=result,
            )
        )
    for extra_bits in (0, 2, 4, 6):
        code = rs_design_point(extra_bits)
        simulator = RsMsedSimulator(
            code,
            k_symbols=k_symbols,
            device_bits=4 if rs_device_policy else None,
            backend=backend,
        )
        result = simulator.run(trials, seed)
        verdict = assess(code.symbol_bits, 4, 144)
        table.add(
            DesignPoint(
                family="RS",
                extra_bits=extra_bits,
                label=repr(code),
                chipkill=verdict.chipkill,
                result=result,
                note="" if verdict.chipkill else verdict.explain(),
            )
        )
    return table
