"""Self-compiled C kernels backing the ``native`` backend.

The third rung of the backend ladder: the same four kernels as the
numba backend (MUSE decode, MUSE fused chunk, RS PGZ decode, RS fused
chunk) written once in portable C99 over the identical table layouts,
compiled at first use with the system compiler (``cc -O3 -shared
-fPIC``) into a content-addressed cache under the temp directory, and
loaded with ctypes.  uint64 arithmetic wraps natively in C, so the
kernels are line-for-line the numba ones with no casting discipline
needed — and the backend works on any host with a C compiler, no
package installs required (which is exactly the environment the
acceptance benchmarks run in when numba is absent).

Availability is probed by actually compiling (cached across processes
by the content hash), so ``available_backends()`` never advertises a
backend that cannot run.  Any failure — no compiler, no numpy, a
read-only temp dir — just reports unavailable; ``auto`` then falls
back down the ladder.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile

_SOURCE = r"""
#include <stdint.h>

#define GOLDEN 0x9E3779B97F4A7C15ULL

static inline uint64_t mix64(uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/* word % m via precomputed 32-bit chunk weights; m < 2^28 keeps the
 * accumulator below 2^64 (see repro/engine/limbs.py). */
static inline uint64_t residue_row(const uint64_t *word, int64_t limbs,
                                   const uint64_t *weights, uint64_t m) {
    uint64_t acc = 0;
    for (int64_t j = 0; j < limbs; j++) {
        acc += (word[j] & 0xFFFFFFFFULL) * weights[2 * j];
        acc += (word[j] >> 32) * weights[2 * j + 1];
    }
    return acc % m;
}

/* Figure-4 decode of one codeword; returns the status code and writes
 * the delivered word into fixed[] (== word[] unless accepted). */
static int muse_decode_row(const uint64_t *word, uint64_t *fixed,
        int64_t limbs, uint64_t m, const uint64_t *weights,
        const uint8_t *hit, const uint64_t *addend,
        const uint64_t *low_mask, const uint64_t *above_mask,
        const int64_t *bit_symbol, const uint64_t *outside,
        int ripple, uint64_t *rem_out) {
    uint64_t rem = residue_row(word, limbs, weights, m);
    *rem_out = rem;
    for (int64_t j = 0; j < limbs; j++) fixed[j] = word[j];
    if (rem == 0) return 0;
    if (!hit[rem]) return 2;
    const uint64_t *row = addend + (int64_t)rem * limbs;
    uint64_t carry = 0;
    for (int64_t j = 0; j < limbs; j++) {
        uint64_t a = word[j];
        uint64_t partial = a + row[j];
        uint64_t total = partial + carry;
        fixed[j] = total;
        carry = (partial < a) || (total < carry);
    }
    if (!ripple) {
        for (int64_t j = 0; j < limbs; j++) fixed[j] &= low_mask[j];
        return 1;
    }
    int out_of_range = 0;
    for (int64_t j = 0; j < limbs; j++)
        if (fixed[j] & above_mask[j]) out_of_range = 1;
    int64_t lowest = 0;
    for (int64_t j = 0; j < limbs; j++) {
        uint64_t changed = fixed[j] ^ word[j];
        if (changed) {
            lowest = 64 * j + __builtin_ctzll(changed);
            break;
        }
    }
    const uint64_t *outside_row = outside + bit_symbol[lowest] * limbs;
    int confined = 1;
    for (int64_t j = 0; j < limbs; j++)
        if ((fixed[j] ^ word[j]) & outside_row[j]) confined = 0;
    if (confined && !out_of_range) return 1;
    for (int64_t j = 0; j < limbs; j++) fixed[j] = word[j];
    return 3;
}

void muse_decode_batch(const uint64_t *words, int64_t batch, int64_t limbs,
        uint64_t *corrected, uint8_t *statuses, uint64_t *rems,
        uint64_t m, const uint64_t *weights, const uint8_t *hit,
        const uint64_t *addend, const uint64_t *low_mask,
        const uint64_t *above_mask, const int64_t *bit_symbol,
        const uint64_t *outside, int32_t ripple) {
    for (int64_t i = 0; i < batch; i++)
        statuses[i] = muse_decode_row(words + i * limbs,
            corrected + i * limbs, limbs, m, weights, hit, addend,
            low_mask, above_mask, bit_symbol, outside, ripple, rems + i);
}

/* Fused corruption draw -> encode -> corrupt -> decode -> tally; the
 * compiled twin of repro/orchestrate/corruption.py for k <= 2. */
void muse_fused_chunk(int64_t start, int64_t size, int64_t k_symbols,
        int64_t limbs, int64_t r_shift, uint64_t m,
        const uint64_t *weights, const uint64_t *k_mask,
        const uint8_t *hit, const uint64_t *addend,
        const uint64_t *low_mask, const uint64_t *above_mask,
        const int64_t *bit_symbol, const uint64_t *outside,
        const int64_t *sym_bits, const int64_t *sym_widths,
        int64_t max_width, int64_t symbol_count,
        const uint64_t *data_keys, const uint64_t *choice_keys,
        const uint64_t *value_keys, int32_t ripple, int64_t *counts) {
    uint64_t word[8], fixed[8];
    for (int64_t i = 0; i < size; i++) {
        uint64_t counter = ((uint64_t)(start + i) + 1) * GOLDEN;
        /* data draws masked to k bits, then systematic encode */
        for (int64_t j = 0; j < limbs; j++)
            word[j] = mix64(data_keys[j] + counter) & k_mask[j];
        uint64_t previous = 0;
        for (int64_t j = 0; j < limbs; j++) {
            uint64_t data_limb = word[j];
            word[j] = (data_limb << r_shift) | (previous >> (64 - r_shift));
            previous = data_limb;
        }
        uint64_t carry = (m - residue_row(word, limbs, weights, m)) % m;
        for (int64_t j = 0; j < limbs; j++) {
            uint64_t total = word[j] + carry;
            carry = total < carry;
            word[j] = total;
        }
        /* k smallest of S iid scores == argpartition slot order */
        uint64_t best = mix64(choice_keys[0] + counter);
        uint64_t second = ~0ULL;
        int64_t best_index = 0, second_index = -1;
        for (int64_t s = 1; s < symbol_count; s++) {
            uint64_t score = mix64(choice_keys[s] + counter);
            if (score < best) {
                second = best; second_index = best_index;
                best = score; best_index = s;
            } else if (score < second) {
                second = score; second_index = s;
            }
        }
        if (second_index < 0) second_index = best_index == 0 ? 1 : 0;
        /* replace each chosen symbol, never with its original value */
        for (int64_t slot = 0; slot < k_symbols; slot++) {
            int64_t symbol = slot == 0 ? best_index : second_index;
            int64_t width = sym_widths[symbol];
            const int64_t *bits = sym_bits + symbol * max_width;
            uint64_t original = 0;
            for (int64_t b = 0; b < width; b++)
                original |= ((word[bits[b] >> 6] >> (bits[b] & 63)) & 1ULL) << b;
            uint64_t draw = mix64(value_keys[slot] + counter)
                            % ((1ULL << width) - 1ULL);
            if (draw >= original) draw += 1;
            for (int64_t b = 0; b < width; b++) {
                int64_t limb = bits[b] >> 6, offset = bits[b] & 63;
                word[limb] = (word[limb] & ~(1ULL << offset))
                             | (((draw >> b) & 1ULL) << offset);
            }
        }
        uint64_t rem;
        counts[muse_decode_row(word, fixed, limbs, m, weights, hit,
            addend, low_mask, above_mask, bit_symbol, outside, ripple,
            &rem)] += 1;
    }
}

/* ---------------- Reed-Solomon (t = 1 PGZ) ---------------- */

static inline int64_t gf_mul(int64_t a, int64_t b,
        const uint32_t *exp2, const int64_t *logt) {
    if (a == 0 || b == 0) return 0;
    return exp2[logt[a] + logt[b]];
}

static inline int64_t gf_div(int64_t a, int64_t b,
        const uint32_t *exp2, const int64_t *logt, int64_t order) {
    if (a == 0) return 0;
    return exp2[logt[a] - logt[b] + order];
}

static int rs_decode_row(const uint32_t *word, uint32_t *fixed,
        const uint32_t *exp2, const int64_t *logt, int64_t order,
        int64_t n_symbols, int64_t pad_mask, int64_t partial_position,
        const uint8_t *confined, int has_policy, int64_t conf_stride,
        int64_t *pos_out, int64_t *mag_out) {
    int64_t s1 = 0, s2 = 0;
    for (int64_t i = 0; i < n_symbols; i++) {
        int64_t value = word[i];
        fixed[i] = word[i];
        if (value) {
            int64_t lv = logt[value];
            s1 ^= exp2[lv + i];
            s2 ^= exp2[lv + ((2 * i) % order)];
        }
    }
    *pos_out = -1;
    *mag_out = 0;
    if (s1 == 0 && s2 == 0) return 0;
    if (s1 == 0 || s2 == 0) return 2;
    /* locator X = S2/S1 == alpha^position; C's % is signed, so fold
     * the (negative-capable) log difference back into [0, order) */
    int64_t position = (logt[s2] - logt[s1]) % order;
    if (position < 0) position += order;
    if (position >= n_symbols) return 2;
    int64_t magnitude = exp2[logt[s1] - position + order];
    int64_t corrected = (int64_t)word[position] ^ magnitude;
    if (pad_mask && position == partial_position && (corrected & pad_mask))
        return 2;
    fixed[position] = (uint32_t)corrected;
    *pos_out = position;
    *mag_out = magnitude;
    if (has_policy && !confined[position * conf_stride + magnitude])
        return 3;
    return 1;
}

void rs_decode_batch(const uint32_t *words, int64_t batch,
        uint32_t *corrected, uint8_t *statuses, int64_t *positions,
        uint32_t *magnitudes, const uint32_t *exp2, const int64_t *logt,
        int64_t order, int64_t n_symbols, int64_t pad_mask,
        int64_t partial_position, const uint8_t *confined,
        int32_t has_policy, int64_t conf_stride) {
    for (int64_t i = 0; i < batch; i++) {
        int64_t position, magnitude;
        statuses[i] = rs_decode_row(words + i * n_symbols,
            corrected + i * n_symbols, exp2, logt, order, n_symbols,
            pad_mask, partial_position, confined, has_policy,
            conf_stride, &position, &magnitude);
        positions[i] = position;
        magnitudes[i] = (uint32_t)magnitude;
    }
}

void rs_fused_chunk(int64_t start, int64_t size, int64_t k_symbols,
        const uint32_t *exp2, const int64_t *logt, int64_t order,
        int64_t n_symbols, int64_t data_symbols, const int64_t *widths,
        int64_t pad_mask, int64_t partial_position,
        const uint8_t *confined, int32_t has_policy, int64_t conf_stride,
        int64_t aq, int64_t aq2, int64_t ap, int64_t ap2, int64_t det,
        const uint64_t *data_keys, const uint64_t *choice_keys,
        const uint64_t *value_keys, int64_t *counts) {
    uint32_t word[64], fixed[64];
    for (int64_t i = 0; i < size; i++) {
        uint64_t counter = ((uint64_t)(start + i) + 1) * GOLDEN;
        /* data draws + GF check-symbol solve (rs_clean_chunk) */
        int64_t s1 = 0, s2 = 0;
        for (int64_t j = 0; j < data_symbols; j++) {
            int64_t value = (int64_t)(mix64(data_keys[j] + counter)
                                      & ((1ULL << widths[j]) - 1ULL));
            word[j] = (uint32_t)value;
            if (value) {
                int64_t lv = logt[value];
                s1 ^= exp2[lv + j];
                s2 ^= exp2[lv + ((2 * j) % order)];
            }
        }
        word[data_symbols] = (uint32_t)gf_div(
            gf_mul(s1, aq2, exp2, logt) ^ gf_mul(s2, aq, exp2, logt),
            det, exp2, logt, order);
        word[data_symbols + 1] = (uint32_t)gf_div(
            gf_mul(s2, ap, exp2, logt) ^ gf_mul(s1, ap2, exp2, logt),
            det, exp2, logt, order);
        /* choose + replace (shared recipe, see the MUSE kernel) */
        uint64_t best = mix64(choice_keys[0] + counter);
        uint64_t second = ~0ULL;
        int64_t best_index = 0, second_index = -1;
        for (int64_t s = 1; s < n_symbols; s++) {
            uint64_t score = mix64(choice_keys[s] + counter);
            if (score < best) {
                second = best; second_index = best_index;
                best = score; best_index = s;
            } else if (score < second) {
                second = score; second_index = s;
            }
        }
        if (second_index < 0) second_index = best_index == 0 ? 1 : 0;
        for (int64_t slot = 0; slot < k_symbols; slot++) {
            int64_t symbol = slot == 0 ? best_index : second_index;
            uint64_t original = word[symbol];
            uint64_t draw = mix64(value_keys[slot] + counter)
                            % ((1ULL << widths[symbol]) - 1ULL);
            if (draw >= original) draw += 1;
            word[symbol] = (uint32_t)draw;
        }
        int64_t position, magnitude;
        counts[rs_decode_row(word, fixed, exp2, logt, order, n_symbols,
            pad_mask, partial_position, confined, has_policy,
            conf_stride, &position, &magnitude)] += 1;
    }
}
"""

_COMPILER = os.environ.get("CC", "cc")
_lib: "ctypes.CDLL | None" = None
_load_failed = False


def _cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    tag = getattr(os, "getuid", lambda: "any")()
    return os.path.join(tempfile.gettempdir(), f"repro-native-{tag}")


def _declare(lib: "ctypes.CDLL") -> None:
    """Fix the scalar argtypes so >2^63 uint64s cross the FFI intact."""
    p = ctypes.c_void_p
    i64 = ctypes.c_int64
    u64 = ctypes.c_uint64
    i32 = ctypes.c_int32
    lib.muse_decode_batch.restype = None
    lib.muse_decode_batch.argtypes = [
        p, i64, i64, p, p, p, u64, p, p, p, p, p, p, p, i32,
    ]
    lib.muse_fused_chunk.restype = None
    lib.muse_fused_chunk.argtypes = [
        i64, i64, i64, i64, i64, u64, p, p, p, p, p, p, p, p, p, p,
        i64, i64, p, p, p, i32, p,
    ]
    lib.rs_decode_batch.restype = None
    lib.rs_decode_batch.argtypes = [
        p, i64, p, p, p, p, p, p, i64, i64, i64, i64, p, i32, i64,
    ]
    lib.rs_fused_chunk.restype = None
    lib.rs_fused_chunk.argtypes = [
        i64, i64, i64, p, p, i64, i64, i64, p, i64, i64, p, i32, i64,
        i64, i64, i64, i64, i64, p, p, p, p,
    ]


def load_library() -> "ctypes.CDLL | None":
    """Compile (once, content-addressed) and load the kernel library.

    Returns ``None`` on any failure — the registry probe then reports
    the native backend unavailable instead of erroring.
    """
    global _lib, _load_failed
    if _lib is not None:
        return _lib
    if _load_failed:
        return None
    try:
        digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
        cache = _cache_dir()
        os.makedirs(cache, exist_ok=True)
        shared = os.path.join(cache, f"repro_kernels_{digest}.so")
        if not os.path.exists(shared):
            source = os.path.join(cache, f"repro_kernels_{digest}.c")
            with open(source, "w") as handle:
                handle.write(_SOURCE)
            building = f"{shared}.build{os.getpid()}"
            subprocess.run(
                [_COMPILER, "-O3", "-fPIC", "-shared", "-o", building, source],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(building, shared)  # atomic: racing procs both win
        lib = ctypes.CDLL(shared)
        _declare(lib)
        _lib = lib
    except Exception:
        _load_failed = True
        return None
    return _lib


def native_kernels_available() -> bool:
    """Probe for the registry: can the C kernels compile and load here?"""
    return load_library() is not None


__all__ = ["load_library", "native_kernels_available"]
