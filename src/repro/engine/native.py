"""The native backend: self-compiled C kernels behind the numba tables.

:class:`NativeDecodeEngine` subclasses the numba engine purely for its
table construction (chunk weights, dense ELC, confinement masks, the
rectangular symbol-bit table) and swaps the kernel dispatch for the
ctypes library built by :mod:`repro.engine.cc` — the same four kernels,
compiled ahead of time by the system C compiler instead of by numba.
Tallies are byte-identical to every other backend at a fixed seed; the
point is speed on hosts that have ``cc`` but not numba (such as the
acceptance environment for this repo).

Only registered as available when the probe's trial compile+load
succeeds, so ``auto`` resolution never lands here on a compiler-less
host.
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro.engine.base import BackendUnavailableError
from repro.engine.numba_backend import NumbaDecodeEngine
from repro.engine.numpy_backend import NumpyBatchResult

#: The C kernels use fixed stack scratch ``uint64_t word[8]``.
MAX_NATIVE_LIMBS = 8


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


class NativeDecodeEngine(NumbaDecodeEngine):
    """C-kernel MUSE backend; numba's tables, ``cc``'s code."""

    name = "native"

    def __init__(self, code, ripple_check: bool = True):
        super().__init__(code, ripple_check)
        from repro.engine.cc import load_library

        library = load_library()
        if library is None:
            raise BackendUnavailableError(
                "native kernels unavailable (no working C compiler?)"
            )
        if self.limbs > MAX_NATIVE_LIMBS:
            raise BackendUnavailableError(
                f"native kernels support up to {MAX_NATIVE_LIMBS} limbs, "
                f"code needs {self.limbs}"
            )
        self._lib = library

    def decode_limbs(self, words: np.ndarray) -> NumpyBatchResult:
        words = np.ascontiguousarray(words, dtype=np.uint64)
        batch = words.shape[0]
        corrected = np.empty_like(words)
        statuses = np.empty(batch, dtype=np.uint8)
        rems = np.empty(batch, dtype=np.uint64)
        self._lib.muse_decode_batch(
            _ptr(words), batch, self.limbs, _ptr(corrected), _ptr(statuses),
            _ptr(rems), int(self._m_u64), _ptr(self._weights),
            _ptr(self._hit_u8), _ptr(self._elc_addend), _ptr(self._low_mask),
            _ptr(self._above_mask), _ptr(self._bit_symbol),
            _ptr(self._symbol_outside_masks), int(self.ripple_check),
        )
        return NumpyBatchResult(self.code, statuses, words, corrected, rems)

    def fused_chunk_counts(self, chunk, key: int, k_symbols: int):
        """Fused corruption->decode->tally in C; ``None`` outside k<=2."""
        layout = self.code.layout
        if not 1 <= k_symbols <= min(2, layout.symbol_count):
            return None
        from repro.orchestrate.corruption import (
            STREAM_CHOICE,
            STREAM_DATA,
            STREAM_VALUE,
        )
        from repro.orchestrate.rng import derive_key

        data_keys = np.array(
            [derive_key(key, STREAM_DATA, j) for j in range(self.limbs)],
            dtype=np.uint64,
        )
        choice_keys = np.array(
            [
                derive_key(key, STREAM_CHOICE, s)
                for s in range(layout.symbol_count)
            ],
            dtype=np.uint64,
        )
        value_keys = np.array(
            [derive_key(key, STREAM_VALUE, slot) for slot in range(k_symbols)],
            dtype=np.uint64,
        )
        counts = np.zeros(4, dtype=np.int64)
        self._lib.muse_fused_chunk(
            chunk.start, chunk.size, k_symbols, self.limbs, self.code.r,
            int(self._m_u64), _ptr(self._weights), _ptr(self._k_mask),
            _ptr(self._hit_u8), _ptr(self._elc_addend), _ptr(self._low_mask),
            _ptr(self._above_mask), _ptr(self._bit_symbol),
            _ptr(self._symbol_outside_masks), _ptr(self._sym_bits),
            _ptr(self._sym_widths), self._sym_bits.shape[1],
            layout.symbol_count, _ptr(data_keys), _ptr(choice_keys),
            _ptr(value_keys), int(self.ripple_check), _ptr(counts),
        )
        return tuple(int(count) for count in counts)

    def warmup(self) -> None:
        """Nothing to JIT — compilation happened at import probe time."""


__all__ = ["MAX_NATIVE_LIMBS", "NativeDecodeEngine"]
