"""Vectorised known-location (erasure) decoding over limb batches.

The scalar :class:`~repro.core.erasure.ErasureDecoder` solves
``d * 2^offset == remainder (mod m)`` one word at a time.  For a batch
of words that share one erasure window the whole flow vectorises:

1. limb-wise residue (:func:`repro.engine.limbs.residue`);
2. one modular multiply by the precomputed ``(2^offset)^-1 mod m``
   recovers the centered error magnitude ``d`` per word;
3. the correction ``codeword - d * 2^offset`` is a wrapping multi-limb
   add/sub whose over- and underflow surface as set bits above ``n``
   (the same headroom trick the MUSE decode engine uses);
4. the residue-of-corrected, window-leak, and magnitude-bound checks
   are elementwise mask tests.

Words with *different* windows are grouped by the caller
(:meth:`ErasureDecoder.decode_batch`); a Table-IV-scale double-device
sweep has at most ``symbol_count - 1`` distinct windows, so grouping
costs nothing against the per-word decode it replaces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.engine.limbs import (
    add,
    int_to_limb_row,
    ints_to_limbs,
    limb_count,
    limbs_to_ints,
    residue,
    sub,
)

if TYPE_CHECKING:
    from repro.core.codec import DecodeResult, MuseCode
    from repro.core.erasure import ErasureWindow


def erasure_decode_window_batch(
    code: "MuseCode", codewords: Sequence[int], window: "ErasureWindow"
) -> list["DecodeResult"]:
    """Erasure-decode many words sharing one window; scalar-identical.

    Returns one :class:`DecodeResult` per word, equal to what
    :meth:`ErasureDecoder.decode` produces (the caller validates the
    window and the multiplier floor).
    """
    from repro.core.codec import DecodeResult, DecodeStatus

    m = code.m
    limbs = limb_count(code.n)
    width_bits = 64 * limbs
    batch = ints_to_limbs(list(codewords), limbs)
    rem = residue(batch, m)

    # Solve d * 2^offset == remainder (mod m) for the centered d.
    inv_shift = pow(1 << window.offset, -1, m)
    d = ((rem * np.uint64(inv_shift)) % np.uint64(m)).astype(np.int64)
    d = np.where(d > m - d, d - m, d)
    feasible = np.abs(d) <= window.max_magnitude

    # Correction value |d| << offset as limb rows (at most two limbs).
    magnitude = np.abs(d).astype(np.uint64)
    limb_index, bit = divmod(window.offset, 64)
    correction = np.zeros_like(batch)
    correction[:, limb_index] = magnitude << np.uint64(bit)
    if bit and limb_index + 1 < limbs:
        correction[:, limb_index + 1] = magnitude >> np.uint64(64 - bit)
    negative = (d < 0)[:, None]
    fixed = np.where(negative, add(batch, correction), sub(batch, correction))

    # The three scalar checks, vectorised: range (over/underflow bits
    # land above n), residue of the corrected word, and window leakage.
    above_mask = int_to_limb_row(
        ((1 << width_bits) - 1) ^ ((1 << code.n) - 1), limbs
    )
    out_of_range = np.any((fixed & above_mask) != 0, axis=1)
    bad_residue = residue(fixed, m) != 0
    window_mask = ((1 << window.width) - 1) << window.offset
    outside_mask = int_to_limb_row(
        ((1 << width_bits) - 1) ^ window_mask, limbs
    )
    changed = fixed ^ batch
    leaked = np.any((changed & outside_mask) != 0, axis=1)

    clean = rem == 0
    corrected_ok = ~clean & feasible & ~out_of_range & ~bad_residue & ~leaked

    received = list(codewords)
    corrected_ints = limbs_to_ints(fixed)
    d_list = d.tolist()
    results: list[DecodeResult] = []
    for i in range(len(received)):
        if clean[i]:
            results.append(
                DecodeResult(
                    status=DecodeStatus.CLEAN,
                    data=received[i] >> code.r,
                    codeword=received[i],
                )
            )
        elif corrected_ok[i]:
            results.append(
                DecodeResult(
                    status=DecodeStatus.CORRECTED,
                    data=corrected_ints[i] >> code.r,
                    codeword=corrected_ints[i],
                    error_value=d_list[i] << window.offset,
                )
            )
        else:
            results.append(
                DecodeResult(
                    status=DecodeStatus.DETECTED,
                    data=None,
                    codeword=received[i],
                )
            )
    return results
