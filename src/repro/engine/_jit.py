"""numba shim: the JIT kernels run pure-Python when numba is absent.

The numba backends (:mod:`repro.engine.numba_backend`,
:mod:`repro.rs.engine_numba`) are written as ``@njit(...)`` functions
over typed numpy arrays.  When numba is installed they compile to
native code; when it is not, this module substitutes a transparent
fallback so the *same* kernel source runs as ordinary Python — which is
what lets the byte-identical-tally parity suites pin the kernel logic
on hosts without numba, while CI's numba leg exercises the compiled
form of the exact same functions.

The fallback ``njit`` wraps the function in ``np.errstate(over=
"ignore")`` because the kernels rely on uint64 wraparound (splitmix64
mixing, limb adds): compiled numba and C both wrap silently, but numpy
scalars warn on overflow.  Kernels therefore keep **all** 64-bit state
as ``np.uint64`` (loop counters cast immediately, module-level
constants pre-cast) so the arithmetic is identical in both modes.

``prange`` degrades to ``range``; the kernels only use it for
reductions over independent trials, so serial execution changes
nothing but speed.
"""

from __future__ import annotations

import functools

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        """Fallback decorator: run the kernel as plain Python.

        Mirrors the numba call forms ``@njit`` and ``@njit(cache=True,
        parallel=True)`` and exposes ``py_func`` like a real dispatcher.
        """

        def wrap(func):
            @functools.wraps(func)
            def runner(*a, **kw):
                with np.errstate(over="ignore"):
                    return func(*a, **kw)

            runner.py_func = func
            return runner

        if len(args) == 1 and callable(args[0]) and not kwargs:
            return wrap(args[0])
        return wrap

    prange = range

__all__ = ["NUMBA_AVAILABLE", "njit", "prange"]
