"""Pluggable batch decode engines behind an open backend registry.

Entry points:

* :func:`register_backend` — add a backend (name, availability probe,
  engine factories) to the registry; the built-in ``scalar``, ``numpy``,
  ``numba`` and ``native`` backends register themselves below, and a
  future ``cupy`` backend slots in the same way without touching any
  call site.
* :func:`get_engine` — resolve a backend name ("scalar", "numpy",
  "numba", "native" or "auto") into a cached
  :class:`DecodeEngine` for one code.
* :func:`msed_corruption_batch` — vectorised Monte-Carlo corruption
  generation shared by all backends (:mod:`repro.engine.trials`).
* :func:`registered_backends` / :func:`available_backends` /
  :func:`numpy_available` — capability probes for callers that build
  CLI choices, gate features or skip tests.

The scalar backend is always available; every other backend degrades
gracefully when its dependency is absent: ``auto`` falls through to the
fastest available backend, while an *explicit* request for a missing
backend raises :class:`BackendUnavailableError` rather than silently
running something else.  Setting ``REPRO_DISABLE_BACKENDS`` (a comma
list, e.g. ``"numba,native"``) force-disables backends, which is how
the degradation paths are exercised even on hosts that have everything
installed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro import telemetry
from repro.engine.base import (
    BackendUnavailableError,
    BatchDecodeResult,
    DecodeEngine,
    STATUS_CLEAN,
    STATUS_CORRECTED,
    STATUS_DETECTED_NO_MATCH,
    STATUS_DETECTED_RIPPLE,
    STATUS_NAMES,
    status_of,
)
from repro.engine.trials import msed_corruption_batch

if TYPE_CHECKING:
    from repro.core.codec import MuseCode


@dataclass(frozen=True)
class RegisteredBackend:
    """One registry entry: how to detect and build a backend.

    ``factory(code, ripple_check)`` builds the MUSE decode engine;
    ``rs_factory(code, device_bits)`` builds the Reed-Solomon engine
    (``None`` for MUSE-only backends).  ``probe`` must be cheap — it
    runs on every :func:`available_backends` call — and must not raise.
    ``priority`` orders ``auto`` resolution: the highest-priority
    available backend wins.
    """

    name: str
    probe: Callable[[], bool]
    factory: Callable[..., DecodeEngine]
    rs_factory: Callable[..., object] | None
    priority: int


_REGISTRY: dict[str, RegisteredBackend] = {}

#: Environment switch that force-disables backends ("numba,native").
DISABLE_ENV = "REPRO_DISABLE_BACKENDS"


def register_backend(
    name: str,
    probe: Callable[[], bool],
    factory: Callable[..., DecodeEngine],
    *,
    rs_factory: Callable[..., object] | None = None,
    priority: int = 0,
) -> None:
    """Register (or replace) a decode backend.

    ``name`` becomes selectable everywhere a backend can be chosen —
    ``get_engine``/``get_rs_engine``, the simulators, CLI ``--backend``
    choices, the distributed worker override — with no further wiring.
    """
    if not name or name == "auto":
        raise ValueError(f"invalid backend name {name!r}")
    _REGISTRY[name] = RegisteredBackend(
        name=name,
        probe=probe,
        factory=factory,
        rs_factory=rs_factory,
        priority=priority,
    )


def _disabled() -> frozenset[str]:
    raw = os.environ.get(DISABLE_ENV, "")
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


def _entries() -> list[RegisteredBackend]:
    """Registry entries, lowest priority first (auto picks the last)."""
    order = list(_REGISTRY)
    return sorted(
        _REGISTRY.values(), key=lambda e: (e.priority, order.index(e.name))
    )


def registered_backends() -> tuple[str, ...]:
    """Every registered backend name, whether or not it can run here."""
    return tuple(entry.name for entry in _entries())


def _is_available(entry: RegisteredBackend) -> bool:
    if entry.name in _disabled():
        return False
    try:
        return bool(entry.probe())
    except Exception:  # a broken probe means "not available", not a crash
        return False


def available_backends() -> tuple[str, ...]:
    """The backends that can actually run in this environment."""
    return tuple(
        entry.name for entry in _entries() if _is_available(entry)
    )


def numpy_available() -> bool:
    """True when the vectorised backend's dependency is importable."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def numba_available() -> bool:
    """True when the numba JIT backend can run (numba + numpy import)."""
    if not numpy_available():
        return False
    try:
        from repro.engine._jit import NUMBA_AVAILABLE
    except ImportError:  # pragma: no cover - _jit only needs stdlib
        return False
    return NUMBA_AVAILABLE


def native_available() -> bool:
    """True when the C kernels compiled+loaded (cc + ctypes + numpy)."""
    if not numpy_available():
        return False
    try:
        from repro.engine.cc import native_kernels_available
    except ImportError:  # pragma: no cover
        return False
    return native_kernels_available()


def resolve_backend(backend: str = "auto") -> str:
    """Normalise a backend request.

    ``auto`` picks the highest-priority available backend (numba >
    native > numpy > scalar for the built-ins); an explicit name must
    be registered (else ``ValueError``) *and* available (else
    :class:`BackendUnavailableError` — an explicit request never
    silently degrades).
    """
    if backend == "auto":
        return available_backends()[-1]
    entry = _REGISTRY.get(backend)
    if entry is None:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {registered_backends()}"
        )
    if not _is_available(entry):
        raise BackendUnavailableError(
            f"{backend} backend requested but its dependencies are not "
            f"available here (available: {available_backends()})"
        )
    return backend


def backend_entry(backend: str) -> RegisteredBackend:
    """Resolve ``backend`` and return its registry entry."""
    return _REGISTRY[resolve_backend(backend)]


def rs_engine_factory(backend: str) -> Callable[..., object]:
    """The Reed-Solomon engine factory of a resolved backend.

    Raises :class:`BackendUnavailableError` for MUSE-only backends, so
    ``get_rs_engine`` shares the same degradation semantics.
    """
    entry = backend_entry(backend)
    if entry.rs_factory is None:
        raise BackendUnavailableError(
            f"backend {entry.name!r} has no Reed-Solomon engine"
        )
    return entry.rs_factory


def get_engine(
    code: "MuseCode", backend: str = "auto", ripple_check: bool = True
) -> DecodeEngine:
    """Build (or fetch the cached) engine binding ``code`` to a backend.

    Engines precompute dense lookup tables from the code's ELC and
    layout (and, for the JIT backends, hold the compiled kernels), so
    they are cached per ``(backend, ripple_check)`` on the code
    instance — a worker process pays table construction and kernel
    compilation once per code, not once per chunk.
    """
    entry = backend_entry(backend)
    telemetry.counter("engine.resolve", backend=entry.name)
    cache = code.__dict__.setdefault("_engine_cache", {})
    key = (entry.name, ripple_check)
    engine = cache.get(key)
    if engine is None:
        # Table construction + (for JIT backends) kernel compilation:
        # the classic hidden startup cost, now a visible span.
        with telemetry.span("engine_build", backend=entry.name):
            engine = entry.factory(code, ripple_check)
        cache[key] = engine
    return engine


# ----------------------------------------------------------------------
# Built-in backends
# ----------------------------------------------------------------------
#
# Factories import lazily so that registering a backend costs nothing
# until it is actually selected (numba import alone is ~1s).

def _scalar_factory(code, ripple_check=True):
    from repro.engine.scalar import ScalarDecodeEngine

    return ScalarDecodeEngine(code, ripple_check)


def _scalar_rs_factory(code, device_bits=4):
    from repro.rs.engine import ScalarRsEngine

    return ScalarRsEngine(code, device_bits)


def _numpy_factory(code, ripple_check=True):
    from repro.engine.numpy_backend import NumpyDecodeEngine

    return NumpyDecodeEngine(code, ripple_check)


def _numpy_rs_factory(code, device_bits=4):
    from repro.rs.engine import NumpyRsEngine

    return NumpyRsEngine(code, device_bits)


def _numba_factory(code, ripple_check=True):
    from repro.engine.numba_backend import NumbaDecodeEngine

    return NumbaDecodeEngine(code, ripple_check)


def _numba_rs_factory(code, device_bits=4):
    from repro.rs.engine_numba import NumbaRsEngine

    return NumbaRsEngine(code, device_bits)


def _native_factory(code, ripple_check=True):
    from repro.engine.native import NativeDecodeEngine

    return NativeDecodeEngine(code, ripple_check)


def _native_rs_factory(code, device_bits=4):
    from repro.rs.engine_native import NativeRsEngine

    return NativeRsEngine(code, device_bits)


register_backend(
    "scalar",
    probe=lambda: True,
    factory=_scalar_factory,
    rs_factory=_scalar_rs_factory,
    priority=0,
)
register_backend(
    "numpy",
    # Call through the module attribute so tests can monkeypatch
    # ``numpy_available`` and exercise the degradation paths.
    probe=lambda: numpy_available(),
    factory=_numpy_factory,
    rs_factory=_numpy_rs_factory,
    priority=10,
)
register_backend(
    "native",
    probe=lambda: native_available(),
    factory=_native_factory,
    rs_factory=_native_rs_factory,
    priority=20,
)
register_backend(
    "numba",
    probe=lambda: numba_available(),
    factory=_numba_factory,
    rs_factory=_numba_rs_factory,
    priority=30,
)


__all__ = [
    "BackendUnavailableError",
    "BatchDecodeResult",
    "DecodeEngine",
    "RegisteredBackend",
    "STATUS_CLEAN",
    "STATUS_CORRECTED",
    "STATUS_DETECTED_NO_MATCH",
    "STATUS_DETECTED_RIPPLE",
    "STATUS_NAMES",
    "available_backends",
    "backend_entry",
    "get_engine",
    "msed_corruption_batch",
    "native_available",
    "numba_available",
    "numpy_available",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "rs_engine_factory",
    "status_of",
]
