"""Pluggable batch decode engines (scalar big-int vs vectorised numpy).

Entry points:

* :func:`get_engine` — resolve a backend name ("scalar", "numpy" or
  "auto") into a cached :class:`DecodeEngine` for one code.
* :func:`msed_corruption_batch` — vectorised Monte-Carlo corruption
  generation shared by both backends (:mod:`repro.engine.trials`).
* :func:`numpy_available` / :func:`available_backends` — capability
  probes for callers that gate features or skip tests.

The scalar backend is always available; the numpy backend (and the bulk
trial generator) degrade gracefully when numpy is not installed by
raising :class:`BackendUnavailableError`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.base import (
    BackendUnavailableError,
    BatchDecodeResult,
    DecodeEngine,
    STATUS_CLEAN,
    STATUS_CORRECTED,
    STATUS_DETECTED_NO_MATCH,
    STATUS_DETECTED_RIPPLE,
    STATUS_NAMES,
    status_of,
)
from repro.engine.trials import msed_corruption_batch

if TYPE_CHECKING:
    from repro.core.codec import MuseCode

BACKENDS = ("scalar", "numpy")


def numpy_available() -> bool:
    """True when the vectorised backend's dependency is importable."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def available_backends() -> tuple[str, ...]:
    """The backends that can actually run in this environment."""
    return BACKENDS if numpy_available() else ("scalar",)


def resolve_backend(backend: str = "auto") -> str:
    """Normalise a backend request; "auto" prefers numpy when present."""
    if backend == "auto":
        return "numpy" if numpy_available() else "scalar"
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if backend == "numpy" and not numpy_available():
        raise BackendUnavailableError("numpy backend requested but numpy is missing")
    return backend


def get_engine(
    code: "MuseCode", backend: str = "auto", ripple_check: bool = True
) -> DecodeEngine:
    """Build (or fetch the cached) engine binding ``code`` to a backend.

    Engines precompute dense lookup tables from the code's ELC and
    layout, so they are cached per ``(backend, ripple_check)`` on the
    code instance.
    """
    name = resolve_backend(backend)
    cache = code.__dict__.setdefault("_engine_cache", {})
    key = (name, ripple_check)
    engine = cache.get(key)
    if engine is None:
        if name == "numpy":
            from repro.engine.numpy_backend import NumpyDecodeEngine

            engine = NumpyDecodeEngine(code, ripple_check)
        else:
            from repro.engine.scalar import ScalarDecodeEngine

            engine = ScalarDecodeEngine(code, ripple_check)
        cache[key] = engine
    return engine


__all__ = [
    "BACKENDS",
    "BackendUnavailableError",
    "BatchDecodeResult",
    "DecodeEngine",
    "STATUS_CLEAN",
    "STATUS_CORRECTED",
    "STATUS_DETECTED_NO_MATCH",
    "STATUS_DETECTED_RIPPLE",
    "STATUS_NAMES",
    "available_backends",
    "get_engine",
    "msed_corruption_batch",
    "numpy_available",
    "resolve_backend",
    "status_of",
]
