"""The numpy backend: the whole Figure-4 flow, vectorised over a batch.

Codewords live in ``(batch, limbs)`` uint64 arrays
(:mod:`repro.engine.limbs`); one decode_batch call runs:

1. **Residue** — limb-wise accumulation against precomputed
   ``2^(32 j) mod m`` chunk weights, one final ``% m``.
2. **ELC lookup** — the remainder indexes two dense tables built from
   the code's Error Lookup Circuit: a hit mask and, per remainder, the
   *addend* ``(-error_value) mod 2^W`` so the correction is a single
   wrapping multi-limb add.
3. **Ripple check** — underflow and overflow of the true correction
   both surface as set bits at positions >= n (the limb width W
   exceeds n by construction), one mask test; symbol confinement is a
   vectorised XOR against the layout's per-symbol masks, evaluated
   only on the ELC-hit rows.

Per-word outcomes are uint8 status codes; nothing on the hot path
touches a Python integer.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.engine.base import (
    BackendUnavailableError,
    BatchDecodeResult,
    DecodeEngine,
    STATUS_CLEAN,
    STATUS_CORRECTED,
    STATUS_DETECTED_NO_MATCH,
    STATUS_DETECTED_RIPPLE,
)
from repro.engine.limbs import (
    LIMB_BITS,
    MAX_MULTIPLIER_BITS,
    add,
    int_to_limb_row,
    ints_to_limbs,
    limb_count,
    limbs_to_ints,
    lshift,
    residue,
)


def _lowest_set_bit(batch: np.ndarray) -> np.ndarray:
    """Position of the lowest set bit of each (nonzero) word.

    ``x & -x`` isolates the bit; its float64 log2 is exact because the
    isolated value is a power of two (<= 2^63, within float64's exact
    range for powers of two).
    """
    positions = np.zeros(batch.shape[0], dtype=np.int64)
    found = np.zeros(batch.shape[0], dtype=bool)
    one = np.uint64(1)
    for j in range(batch.shape[1]):
        limb = batch[:, j]
        take = ~found & (limb != 0)
        if take.any():
            isolated = limb[take]
            isolated &= ~isolated + one
            positions[take] = LIMB_BITS * j + np.log2(
                isolated.astype(np.float64)
            ).astype(np.int64)
            found |= take
    return positions


# ----------------------------------------------------------------------
# Vectorised symbol access (used by the trial generator and tests)
# ----------------------------------------------------------------------

def extract_symbol_batch(words: np.ndarray, layout, index: int) -> np.ndarray:
    """Read symbol ``index`` of every word — vectorised bit gather.

    Bit ``j`` of each result is codeword bit ``layout.symbols[index][j]``
    (device-local order), exactly like
    :meth:`SymbolLayout.extract_symbol`.
    """
    values = np.zeros(words.shape[0], dtype=np.uint64)
    one = np.uint64(1)
    for j, bit in enumerate(layout.symbols[index]):
        limb, offset = divmod(bit, LIMB_BITS)
        values |= ((words[:, limb] >> np.uint64(offset)) & one) << np.uint64(j)
    return values


def insert_symbol_batch(
    words: np.ndarray,
    layout,
    index: int,
    values: np.ndarray,
    rows: np.ndarray | None = None,
) -> None:
    """Replace symbol ``index`` with ``values``, in place — bit scatter.

    ``rows`` optionally restricts the write to a subset of the batch
    (``values`` then aligns with ``rows``).
    """
    limbs = words.shape[1]
    clear = ~int_to_limb_row(layout.masks[index], limbs)
    one = np.uint64(1)
    if rows is None:
        words &= clear
        for j, bit in enumerate(layout.symbols[index]):
            limb, offset = divmod(bit, LIMB_BITS)
            words[:, limb] |= ((values >> np.uint64(j)) & one) << np.uint64(offset)
    else:
        words[rows] &= clear
        for j, bit in enumerate(layout.symbols[index]):
            limb, offset = divmod(bit, LIMB_BITS)
            words[rows, limb] |= ((values >> np.uint64(j)) & one) << np.uint64(offset)


# ----------------------------------------------------------------------
# Batch result
# ----------------------------------------------------------------------

class NumpyBatchResult(BatchDecodeResult):
    """Batch result backed by limb arrays; ints materialise lazily."""

    def __init__(self, code, statuses, words, corrected, remainders):
        self.code = code
        self._statuses = statuses
        self._words = words
        self._corrected = corrected
        self._remainders = remainders

    @property
    def statuses(self) -> Sequence[int]:
        return self._statuses

    def counts(self) -> tuple[int, int, int, int]:
        return tuple(int(c) for c in np.bincount(self._statuses, minlength=4)[:4])

    def results(self):
        from repro.core.codec import DecodeResult, DecodeStatus, DetectionReason

        code = self.code
        received = limbs_to_ints(self._words)
        corrected = limbs_to_ints(self._corrected)
        out = []
        for i, status in enumerate(self._statuses.tolist()):
            if status == STATUS_CLEAN:
                out.append(
                    DecodeResult(
                        DecodeStatus.CLEAN, received[i] >> code.r, received[i]
                    )
                )
            elif status == STATUS_CORRECTED:
                entry = code.elc.lookup(int(self._remainders[i]))
                out.append(
                    DecodeResult(
                        DecodeStatus.CORRECTED,
                        corrected[i] >> code.r,
                        corrected[i],
                        error_value=entry.error_value,
                    )
                )
            elif status == STATUS_DETECTED_NO_MATCH:
                out.append(
                    DecodeResult(
                        DecodeStatus.DETECTED,
                        None,
                        received[i],
                        reason=DetectionReason.REMAINDER_NOT_FOUND,
                    )
                )
            else:
                out.append(
                    DecodeResult(
                        DecodeStatus.DETECTED,
                        None,
                        received[i],
                        reason=DetectionReason.SYMBOL_OVERFLOW,
                    )
                )
        return out


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------

class NumpyDecodeEngine(DecodeEngine):
    """Vectorised backend over ``(batch, limbs)`` uint64 codewords."""

    name = "numpy"

    def __init__(self, code, ripple_check: bool = True):
        super().__init__(code, ripple_check)
        if code.m.bit_length() > MAX_MULTIPLIER_BITS:
            raise BackendUnavailableError(
                f"multiplier {code.m} too wide for the chunked residue "
                f"accumulator (> {MAX_MULTIPLIER_BITS} bits)"
            )
        self.limbs = limb_count(code.n)
        width = LIMB_BITS * self.limbs
        low_mask_int = (1 << code.n) - 1
        self._low_mask = int_to_limb_row(low_mask_int, self.limbs)
        self._above_mask = int_to_limb_row(
            ((1 << width) - 1) ^ low_mask_int, self.limbs
        )
        # Dense remainder-indexed ELC: hit mask + wrapping addend.
        hit = np.zeros(code.m, dtype=bool)
        addend = np.zeros((code.m, self.limbs), dtype=np.uint64)
        modulus = 1 << width
        for entry in code.elc.entries():
            hit[entry.remainder] = True
            addend[entry.remainder] = int_to_limb_row(
                (-entry.error_value) % modulus, self.limbs
            )
        self._elc_hit = hit
        self._elc_addend = addend
        # Confinement tables: bit position -> owning symbol (positions at
        # or above n map to a sentinel row whose "outside" mask is all
        # ones, so out-of-range changed bits can never look confined),
        # and per symbol the complement of its mask.
        sentinel = code.layout.symbol_count
        bit_symbol = np.full(width, sentinel, dtype=np.int64)
        bit_symbol[: code.n] = code.layout.bit_to_symbol
        self._bit_symbol = bit_symbol
        outside = np.stack(
            [~int_to_limb_row(mask, self.limbs) for mask in code.layout.masks]
            + [np.full(self.limbs, ~np.uint64(0), dtype=np.uint64)]
        )
        self._symbol_outside_masks = outside

    # -- batches -------------------------------------------------------

    def as_batch(self, words) -> np.ndarray:
        """Coerce ints or a limb array into this engine's batch layout."""
        if isinstance(words, np.ndarray):
            if words.ndim != 2 or words.shape[1] != self.limbs:
                raise ValueError(
                    f"expected a (batch, {self.limbs}) limb array, "
                    f"got shape {words.shape}"
                )
            return words
        return ints_to_limbs(list(words), self.limbs)

    # -- encode --------------------------------------------------------

    def encode_limbs(self, data: np.ndarray) -> np.ndarray:
        """Systematic encode of a data batch already in limb form."""
        code = self.code
        shifted = lshift(data, code.r)
        rem = residue(shifted, code.m)
        check = (np.uint64(code.m) - rem) % np.uint64(code.m)
        carrier = np.zeros_like(shifted)
        carrier[:, 0] = check
        return add(shifted, carrier)

    def encode_batch(self, data: Sequence[int]) -> list[int]:
        k = self.code.k
        for word in data:
            if not 0 <= word < (1 << k):
                raise ValueError(f"data must fit in {k} bits")
        return limbs_to_ints(self.encode_limbs(ints_to_limbs(list(data), self.limbs)))

    # -- decode --------------------------------------------------------

    def decode_limbs(self, words: np.ndarray) -> NumpyBatchResult:
        """Figure-4 over a limb batch; the whole hot path lives here."""
        code = self.code
        rem = residue(words, code.m)
        statuses = np.full(words.shape[0], STATUS_DETECTED_NO_MATCH, dtype=np.uint8)
        statuses[rem == 0] = STATUS_CLEAN
        corrected = words.copy()
        candidates = np.flatnonzero(self._elc_hit[rem])
        if candidates.size:
            received = words[candidates]
            fixed = add(received, self._elc_addend[rem[candidates]])
            if self.ripple_check:
                # Bits at/above n flag both underflow and overflow of
                # the true (unwrapped) correction; then the changed bits
                # must sit inside a single symbol's mask.  Confinement
                # to *some* symbol equals confinement to the symbol
                # owning the lowest changed bit, so one gathered mask
                # test per row replaces a sweep over every symbol.
                out_of_range = np.any((fixed & self._above_mask) != 0, axis=1)
                changed = fixed ^ received
                symbol = self._bit_symbol[_lowest_set_bit(changed)]
                outside = self._symbol_outside_masks[symbol]
                confined = ~np.any((changed & outside) != 0, axis=1)
                accepted = ~out_of_range & confined
            else:
                # The ablation decoder wraps the adder result into the
                # n-bit word and always delivers, like the scalar path.
                fixed &= self._low_mask
                accepted = np.ones(candidates.size, dtype=bool)
            statuses[candidates[accepted]] = STATUS_CORRECTED
            statuses[candidates[~accepted]] = STATUS_DETECTED_RIPPLE
            corrected[candidates[accepted]] = fixed[accepted]
        return NumpyBatchResult(code, statuses, words, corrected, rem)

    def decode_batch(self, words) -> NumpyBatchResult:
        return self.decode_limbs(self.as_batch(words))
