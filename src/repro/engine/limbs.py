"""Fixed-width limb arrays for batches of wide codewords.

A batch of ``B`` codewords of up to ``n`` bits is stored as a
``(B, L)`` ``uint64`` array of little-endian 64-bit *limbs*, the same
word-array representation hardware ECC simulators use instead of
arbitrary-precision integers.  ``L`` is chosen so the limb width
``W = 64 * L`` strictly exceeds ``n``: the decoder's correction adder
then wraps modulo ``2^W``, and both an underflow (``corrected < 0``)
and an overflow (``corrected >= 2^n``) of the true integer result leave
set bits at positions ``>= n`` — a single vectorised mask test replaces
the scalar decoder's two range checks.

All helpers are elementwise over the batch dimension and loop only over
the (tiny, <= 3) limb dimension, so every operation is O(limbs) numpy
kernels regardless of batch size.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

LIMB_BITS = 64
_LIMB_MASK = (1 << LIMB_BITS) - 1

#: Residues are accumulated as ``32-bit chunk x multiplier`` products in
#: uint64; keeping the multiplier under 28 bits bounds the sum of the
#: (at most 6) partial products safely below 2^64.  Every multiplier in
#: the paper is at most 16 bits, far inside the limit.
MAX_MULTIPLIER_BITS = 28


def limb_count(n_bits: int) -> int:
    """Limbs needed for ``n_bits``-wide words with headroom above bit n-1.

    Always at least one spare bit above the codeword (``W > n``), so the
    wrapping adder keeps over/underflow visible — see the module note.
    """
    if n_bits <= 0:
        raise ValueError(f"word width must be positive, got {n_bits}")
    return n_bits // LIMB_BITS + 1


def int_to_limb_row(value: int, limbs: int) -> np.ndarray:
    """One Python int -> ``(limbs,)`` uint64 row (little-endian)."""
    if value < 0 or value >> (LIMB_BITS * limbs):
        raise ValueError(f"value does not fit in {limbs} limbs")
    return np.array(
        [(value >> (LIMB_BITS * j)) & _LIMB_MASK for j in range(limbs)],
        dtype=np.uint64,
    )


def ints_to_limbs(values: Sequence[int], limbs: int) -> np.ndarray:
    """Python ints -> ``(len(values), limbs)`` uint64 batch."""
    out = np.zeros((len(values), limbs), dtype=np.uint64)
    for j in range(limbs):
        shift = LIMB_BITS * j
        out[:, j] = [(v >> shift) & _LIMB_MASK for v in values]
    return out


def limbs_to_ints(batch: np.ndarray) -> list[int]:
    """``(B, L)`` uint64 batch -> list of Python ints."""
    totals = [0] * batch.shape[0]
    for j in range(batch.shape[1] - 1, -1, -1):
        column = batch[:, j].tolist()
        totals = [(t << LIMB_BITS) | c for t, c in zip(totals, column)]
    return totals


def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise multi-limb add, wrapping modulo ``2^(64 * L)``."""
    out = np.empty_like(a)
    carry = np.zeros(a.shape[0], dtype=np.uint64)
    for j in range(a.shape[1]):
        partial = a[:, j] + b[:, j]
        overflow_ab = partial < a[:, j]
        total = partial + carry
        overflow_carry = total < carry
        out[:, j] = total
        carry = (overflow_ab | overflow_carry).astype(np.uint64)
    return out


def sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise multi-limb subtract, wrapping modulo ``2^(64 * L)``.

    An underflow of the true integer result (``a < b``) wraps and
    leaves set bits in the headroom above bit ``n`` — detectable by the
    same mask test the decoders use for the wrapping adder.
    """
    out = np.empty_like(a)
    borrow = np.zeros(a.shape[0], dtype=np.uint64)
    for j in range(a.shape[1]):
        diff = a[:, j] - b[:, j]
        underflow_ab = a[:, j] < b[:, j]
        total = diff - borrow
        underflow_borrow = diff < borrow
        out[:, j] = total
        borrow = (underflow_ab | underflow_borrow).astype(np.uint64)
    return out


def lshift(a: np.ndarray, bits: int) -> np.ndarray:
    """Shift every word left by ``bits`` (< 64); drops bits past the top limb."""
    if not 0 <= bits < LIMB_BITS:
        raise ValueError(f"shift must be in [0, {LIMB_BITS}), got {bits}")
    if bits == 0:
        return a.copy()
    shift = np.uint64(bits)
    fill = np.uint64(LIMB_BITS - bits)
    out = a << shift
    out[:, 1:] |= a[:, :-1] >> fill
    return out


def rshift(a: np.ndarray, bits: int) -> np.ndarray:
    """Shift every word right by ``bits`` (< 64)."""
    if not 0 <= bits < LIMB_BITS:
        raise ValueError(f"shift must be in [0, {LIMB_BITS}), got {bits}")
    if bits == 0:
        return a.copy()
    shift = np.uint64(bits)
    fill = np.uint64(LIMB_BITS - bits)
    out = a >> shift
    out[:, :-1] |= a[:, 1:] << fill
    return out


def residue(a: np.ndarray, m: int) -> np.ndarray:
    """``word % m`` for every word, via precomputable chunk weights.

    Splits each limb into 32-bit chunks and accumulates
    ``chunk * (2^(32 j) mod m)``; with ``m`` under
    :data:`MAX_MULTIPLIER_BITS` bits the uint64 accumulator cannot
    overflow (see the module note), so one final ``% m`` finishes the
    reduction.
    """
    if m.bit_length() > MAX_MULTIPLIER_BITS:
        raise ValueError(
            f"multiplier {m} exceeds {MAX_MULTIPLIER_BITS} bits; "
            "the chunked residue accumulator would overflow"
        )
    half = np.uint64(32)
    low32 = np.uint64(0xFFFFFFFF)
    acc = np.zeros(a.shape[0], dtype=np.uint64)
    weight = 1
    for j in range(a.shape[1]):
        limb = a[:, j]
        acc += (limb & low32) * np.uint64(weight)
        weight = (weight << 32) % m
        acc += (limb >> half) * np.uint64(weight)
        weight = (weight << 32) % m
    return acc % np.uint64(m)
