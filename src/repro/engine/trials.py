"""Bulk Monte-Carlo trial generation for the MSED studies.

The corruption stream is generated *once*, vectorised, independent of
which backend later decodes it; both backends classify the *same*
corrupted words, which is what makes scalar-vs-numpy tallies
byte-identical under a fixed seed.

Since the streaming orchestrator landed, the stream itself lives in
:mod:`repro.orchestrate.corruption` in chunk-addressable form (every
draw a counter hash of the global trial index); this module's
whole-run entry point is a thin wrapper over one full-run chunk, so
the monolithic and chunked generators can never diverge.

Requires numpy (it is the generator, not a decoder); callers fall back
to the sequential :class:`random.Random` path when it is absent.
"""

from __future__ import annotations


def msed_corruption_batch(code, trials: int, seed: int, k_symbols: int = 2):
    """Encode ``trials`` random words and corrupt ``k_symbols`` each.

    Returns a ``(trials, limbs)`` uint64 batch of corrupted codewords,
    consumable by any :class:`~repro.engine.base.DecodeEngine` —
    exactly chunk ``[0, trials)`` of the counter-hashed stream keyed by
    ``derive_key(seed)``.
    """
    from repro.orchestrate.corruption import muse_corruption_chunk
    from repro.orchestrate.plan import Chunk
    from repro.orchestrate.rng import derive_key

    return muse_corruption_chunk(
        code, Chunk(0, trials), derive_key(seed), k_symbols
    )
