"""Bulk Monte-Carlo trial generation for the MSED studies.

The corruption stream is generated *once*, vectorised, independent of
which backend later decodes it: random data words are encoded in limb
form, ``k`` distinct symbols per word are chosen, and each chosen
symbol is overwritten with a uniform value different from its original.
Both backends then classify the *same* corrupted words, which is what
makes scalar-vs-numpy tallies byte-identical under a fixed seed.

Requires numpy (it is the generator, not a decoder); callers fall back
to the sequential :class:`random.Random` path when it is absent.
"""

from __future__ import annotations

from repro.engine.base import BackendUnavailableError

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None


def msed_corruption_batch(code, trials: int, seed: int, k_symbols: int = 2):
    """Encode ``trials`` random words and corrupt ``k_symbols`` each.

    Returns a ``(trials, limbs)`` uint64 batch of corrupted codewords,
    consumable by any :class:`~repro.engine.base.DecodeEngine`.
    """
    if np is None:
        raise BackendUnavailableError("numpy is required for bulk trial generation")
    from repro.engine import get_engine
    from repro.engine.numpy_backend import extract_symbol_batch, insert_symbol_batch

    layout = code.layout
    if not 1 <= k_symbols <= layout.symbol_count:
        raise ValueError(
            f"k_symbols must be in [1, {layout.symbol_count}], got {k_symbols}"
        )
    engine = get_engine(code, "numpy")
    rng = np.random.default_rng(seed)
    words = engine.encode_limbs(engine.random_data_batch(rng, trials))

    # k distinct symbols per row: the k smallest of S iid uniforms.
    scores = rng.random((trials, layout.symbol_count))
    chosen = np.argpartition(scores, k_symbols - 1, axis=1)[:, :k_symbols]

    for slot in range(k_symbols):
        slot_symbols = chosen[:, slot]
        for index in range(layout.symbol_count):
            rows = np.flatnonzero(slot_symbols == index)
            if rows.size == 0:
                continue
            width = len(layout.symbols[index])
            original = extract_symbol_batch(words[rows], layout, index)
            # Uniform over the 2^w - 1 values != original: draw from a
            # range one short and step over the original.
            draw = rng.integers(0, (1 << width) - 1, size=rows.size, dtype=np.uint64)
            value = draw + (draw >= original).astype(np.uint64)
            insert_symbol_batch(words, layout, index, value, rows)
    return words
