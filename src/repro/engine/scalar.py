"""The scalar reference backend: one big-int decode per word.

This wraps the original :meth:`MuseCode.decode` /
:meth:`MuseCode.decode_without_ripple_check` loop behind the
:class:`DecodeEngine` interface.  It is the semantics oracle the numpy
backend is tested against, and the fallback when numpy is absent.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.base import (
    BatchDecodeResult,
    DecodeEngine,
    STATUS_CLEAN,
    STATUS_CORRECTED,
    STATUS_DETECTED_NO_MATCH,
    STATUS_DETECTED_RIPPLE,
    status_of,
)


def _as_int_list(words) -> list[int]:
    """Accept a Python-int sequence or a limb batch from the numpy side."""
    if hasattr(words, "dtype"):  # (B, L) uint64 limb array
        from repro.engine.limbs import limbs_to_ints

        return limbs_to_ints(words)
    return list(words)


class ScalarBatchResult(BatchDecodeResult):
    """Batch result backed by a plain list of scalar decode results."""

    def __init__(self, code, results):
        self.code = code
        self._results = results
        self._statuses: list[int] | None = None

    @property
    def statuses(self) -> Sequence[int]:
        if self._statuses is None:
            self._statuses = [status_of(r) for r in self._results]
        return self._statuses

    def counts(self) -> tuple[int, int, int, int]:
        buckets = [0, 0, 0, 0]
        for status in self.statuses:
            buckets[status] += 1
        return tuple(buckets)

    def results(self):
        return list(self._results)


class ScalarDecodeEngine(DecodeEngine):
    """Reference backend: arbitrary-precision ints, one word at a time."""

    name = "scalar"

    def encode_batch(self, data: Sequence[int]) -> list[int]:
        encode = self.code.encode
        return [encode(word) for word in data]

    def decode_batch(self, words) -> ScalarBatchResult:
        code = self.code
        decode = code.decode if self.ripple_check else code.decode_without_ripple_check
        return ScalarBatchResult(code, [decode(w) for w in _as_int_list(words)])


# re-export for callers that classify scalar results themselves
__all__ = [
    "ScalarBatchResult",
    "ScalarDecodeEngine",
    "STATUS_CLEAN",
    "STATUS_CORRECTED",
    "STATUS_DETECTED_NO_MATCH",
    "STATUS_DETECTED_RIPPLE",
]
