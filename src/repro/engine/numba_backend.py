"""The numba backend: JIT-compiled MUSE decode over bit-packed limbs.

The same Figure-4 flow as :mod:`repro.engine.numpy_backend`, but as a
single ``@njit(parallel=True)`` kernel over the ``(batch, limbs)``
uint64 storage: per-limb modular reduction against precomputed
``2^(32 j) mod m`` chunk weights, a dense remainder-indexed ELC
hit/addend lookup, the wrapping multi-limb correction add, and the
ripple (headroom-mask + symbol-confinement) check — all per trial, with
no intermediate batch arrays.

On top of plain decode the engine exposes :meth:`fused_chunk_counts`:
one compiled pass that *generates* a chunk of the counter-hashed
corruption stream (splitmix64 data draws, score-based symbol choice,
never-the-original replacement — the in-kernel twin of
:mod:`repro.orchestrate.corruption`), decodes each word, and
accumulates the 4-status tally.  Nothing the size of the batch is ever
materialised, which removes the memory traffic that bounds the numpy
backend.  The fused path is exact for ``k_symbols <= 2`` — there the
generator's ``argpartition(scores, k-1)[:, :k]`` provably yields
``(argmin, arg-2nd-min)``, which the kernel reproduces with a two-
minimum scan; for larger ``k`` the partial order of the remaining slots
is an implementation detail of introselect, so ``fused_chunk_counts``
returns ``None`` and the caller falls back to generate-then-decode.

Every kernel runs compiled when numba is installed and as pure Python
via :mod:`repro.engine._jit` when it is not — byte-identical tallies
either way, which is how the parity suites pin the kernel logic on
numba-free hosts.  All 64-bit state stays ``np.uint64`` end to end
(loop counters cast on entry, module-level constants pre-cast): numba
would otherwise promote mixed int64/uint64 arithmetic to float64, and
the pure-Python fallback would overflow-warn.
"""

from __future__ import annotations

import numpy as np

from repro.engine._jit import NUMBA_AVAILABLE, njit, prange
from repro.engine.base import BackendUnavailableError
from repro.engine.limbs import LIMB_BITS, int_to_limb_row
from repro.engine.numpy_backend import NumpyBatchResult, NumpyDecodeEngine

#: splitmix64 constants, pre-cast so kernel arithmetic never mixes
#: signed and unsigned (see repro.orchestrate.rng for the Python twin).
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U0 = np.uint64(0)
_U1 = np.uint64(1)
_LOW32 = np.uint64(0xFFFFFFFF)
_UMAX = np.uint64(0xFFFFFFFFFFFFFFFF)

_CLEAN = 0
_CORRECTED = 1
_NO_MATCH = 2
_RIPPLE = 3


@njit(cache=True)
def _mix64(x):
    """splitmix64 output function over one uint64 (wrapping)."""
    x ^= x >> np.uint64(30)
    x *= _MIX1
    x ^= x >> np.uint64(27)
    x *= _MIX2
    return x ^ (x >> np.uint64(31))


@njit(cache=True)
def _residue_row(word, weights, m):
    """``word % m`` via 32-bit chunk weights (one codeword row).

    ``weights[2j] = 2^(64j) mod m`` and ``weights[2j+1] = 2^(64j+32)
    mod m``; with m under 28 bits the uint64 accumulator cannot
    overflow (see repro.engine.limbs.residue, this kernel's batch twin).
    """
    acc = _U0
    for j in range(word.shape[0]):
        limb = word[j]
        acc += (limb & _LOW32) * weights[2 * j]
        acc += (limb >> np.uint64(32)) * weights[2 * j + 1]
    return acc % m


@njit(cache=True)
def _decode_row(
    word, fixed, m, weights, hit, addend, low_mask, above_mask,
    bit_symbol, outside, ripple,
):
    """Figure-4 for one codeword row; returns ``(status, remainder)``.

    Writes the delivered word into ``fixed`` (the received word unless
    a correction is accepted), mirroring the numpy backend's
    ``corrected`` array row for row.
    """
    limbs = word.shape[0]
    rem = _residue_row(word, weights, m)
    for j in range(limbs):
        fixed[j] = word[j]
    if rem == _U0:
        return _CLEAN, rem
    index = np.int64(rem)
    if hit[index] == 0:
        return _NO_MATCH, rem
    carry = _U0
    for j in range(limbs):
        received = word[j]
        partial = received + addend[index, j]
        total = partial + carry
        fixed[j] = total
        carry = _U1 if (partial < received or total < carry) else _U0
    if not ripple:
        # Ablation decoder: wrap into the n-bit word, always deliver.
        for j in range(limbs):
            fixed[j] &= low_mask[j]
        return _CORRECTED, rem
    out_of_range = False
    for j in range(limbs):
        if (fixed[j] & above_mask[j]) != _U0:
            out_of_range = True
    # Confinement to *some* symbol == confinement to the symbol owning
    # the lowest changed bit (changed is nonzero: the addend never is).
    lowest = 0
    for j in range(limbs):
        changed = fixed[j] ^ word[j]
        if changed != _U0:
            bit = 0
            while (changed & _U1) == _U0:
                changed >>= _U1
                bit += 1
            lowest = LIMB_BITS * j + bit
            break
    symbol = bit_symbol[lowest]
    confined = True
    for j in range(limbs):
        if ((fixed[j] ^ word[j]) & outside[symbol, j]) != _U0:
            confined = False
    if confined and not out_of_range:
        return _CORRECTED, rem
    for j in range(limbs):
        fixed[j] = word[j]
    return _RIPPLE, rem


@njit(cache=True, parallel=True)
def _decode_batch_kernel(
    words, corrected, statuses, rems, m, weights, hit, addend,
    low_mask, above_mask, bit_symbol, outside, ripple,
):
    for i in prange(words.shape[0]):
        status, rem = _decode_row(
            words[i], corrected[i], m, weights, hit, addend,
            low_mask, above_mask, bit_symbol, outside, ripple,
        )
        statuses[i] = status
        rems[i] = rem


@njit(cache=True, parallel=True)
def _fused_chunk_kernel(
    start, size, k_symbols, limbs, r_shift, m, weights, k_mask,
    hit, addend, low_mask, above_mask, bit_symbol, outside,
    sym_bits, sym_widths, data_keys, choice_keys, value_keys, ripple,
):
    """Corruption draw -> decode -> tally, one fused pass over a chunk.

    Per global trial ``start + i`` this replays, draw for draw, the
    vectorised generator chain ``muse_clean_chunk`` ->
    ``_choose_symbols`` -> ``_replace_chosen_symbols`` (all keyed by
    the splitmix64 counter hash of the trial index), then decodes in
    place — so the returned 4-status counts are byte-identical to
    generate-then-decode at any chunk split.  ``k_symbols`` must be 1
    or 2 (see the module note).
    """
    shift = np.uint64(r_shift)
    fill = np.uint64(LIMB_BITS - r_shift)
    symbol_count = sym_widths.shape[0]
    n_clean = 0
    n_corrected = 0
    n_no_match = 0
    n_ripple = 0
    for i in prange(size):
        counter = (np.uint64(start + i) + _U1) * _GOLDEN
        word = np.empty(limbs, np.uint64)
        fixed = np.empty(limbs, np.uint64)
        # -- data draws, masked to k bits (muse_clean_chunk) ----------
        for j in range(limbs):
            word[j] = _mix64(data_keys[j] + counter) & k_mask[j]
        # -- systematic encode: shift in r check bits, add the residue
        #    complement at the bottom limb (NumpyDecodeEngine.encode) --
        previous = _U0
        for j in range(limbs):
            data_limb = word[j]
            word[j] = (data_limb << shift) | (previous >> fill)
            previous = data_limb
        rem = _residue_row(word, weights, m)
        carry = (m - rem) % m
        for j in range(limbs):
            total = word[j] + carry
            carry = _U1 if total < carry else _U0
            word[j] = total
        # -- choose the k smallest of S iid scores (_choose_symbols):
        #    a two-minimum scan with strict <, matching argpartition's
        #    slot order for kth = k - 1 ------------------------------
        best = _mix64(choice_keys[0] + counter)
        best_index = 0
        second = _UMAX
        second_index = -1
        for s in range(1, symbol_count):
            score = _mix64(choice_keys[s] + counter)
            if score < best:
                second = best
                second_index = best_index
                best = score
                best_index = s
            elif score < second:
                second = score
                second_index = s
        if second_index < 0:  # all-ties-at-max; probability ~ S * 2^-64
            second_index = 1 if best_index == 0 else 0
        # -- replace each chosen symbol, never with its original value
        #    (_replace_chosen_symbols, slot order preserved) ----------
        for slot in range(k_symbols):
            symbol = best_index if slot == 0 else second_index
            width = sym_widths[symbol]
            original = _U0
            for b in range(width):
                bit = sym_bits[symbol, b]
                original |= (
                    (word[bit >> 6] >> np.uint64(bit & 63)) & _U1
                ) << np.uint64(b)
            draw = _mix64(value_keys[slot] + counter) % (
                (_U1 << np.uint64(width)) - _U1
            )
            if draw >= original:
                draw += _U1
            for b in range(width):
                bit = sym_bits[symbol, b]
                limb = bit >> 6
                offset = np.uint64(bit & 63)
                word[limb] = (word[limb] & ~(_U1 << offset)) | (
                    ((draw >> np.uint64(b)) & _U1) << offset
                )
        # -- decode + tally -------------------------------------------
        status, _ = _decode_row(
            word, fixed, m, weights, hit, addend, low_mask, above_mask,
            bit_symbol, outside, ripple,
        )
        if status == _CLEAN:
            n_clean += 1
        elif status == _CORRECTED:
            n_corrected += 1
        elif status == _NO_MATCH:
            n_no_match += 1
        else:
            n_ripple += 1
    return n_clean, n_corrected, n_no_match, n_ripple


class NumbaDecodeEngine(NumpyDecodeEngine):
    """JIT backend: numpy's tables, numba's kernels.

    Subclasses the numpy engine for table construction (ELC addends,
    confinement masks — identical by construction) and overrides the
    hot paths with the compiled kernels.  Instances are cached per
    ``(code, ripple_check)`` by ``repro.engine.get_engine``, so a
    worker process compiles once, not once per chunk.
    """

    name = "numba"

    def __init__(self, code, ripple_check: bool = True):
        super().__init__(code, ripple_check)
        if not 0 < code.r < LIMB_BITS:
            raise BackendUnavailableError(
                f"fused encode needs 0 < r < {LIMB_BITS}, got {code.r}"
            )
        # 2^(32 j) mod m chunk weights, one pair per limb.
        weights = np.empty(2 * self.limbs, dtype=np.uint64)
        weight = 1
        for j in range(2 * self.limbs):
            weights[j] = weight
            weight = (weight << 32) % code.m
        self._weights = weights
        self._m_u64 = np.uint64(code.m)
        self._hit_u8 = self._elc_hit.astype(np.uint8)
        self._k_mask = int_to_limb_row((1 << code.k) - 1, self.limbs)
        # Per-symbol bit positions as a rectangular table for in-kernel
        # extract/insert (device-local bit order, like the layout).
        layout = code.layout
        max_width = max(len(bits) for bits in layout.symbols)
        sym_bits = np.zeros(
            (layout.symbol_count, max_width), dtype=np.int64
        )
        sym_widths = np.zeros(layout.symbol_count, dtype=np.int64)
        for index, bits in enumerate(layout.symbols):
            sym_widths[index] = len(bits)
            for b, bit in enumerate(bits):
                sym_bits[index, b] = bit
        self._sym_bits = sym_bits
        self._sym_widths = sym_widths

    def decode_limbs(self, words: np.ndarray) -> NumpyBatchResult:
        words = np.ascontiguousarray(words, dtype=np.uint64)
        corrected = np.empty_like(words)
        statuses = np.empty(words.shape[0], dtype=np.uint8)
        rems = np.empty(words.shape[0], dtype=np.uint64)
        _decode_batch_kernel(
            words, corrected, statuses, rems, self._m_u64, self._weights,
            self._hit_u8, self._elc_addend, self._low_mask,
            self._above_mask, self._bit_symbol, self._symbol_outside_masks,
            self.ripple_check,
        )
        return NumpyBatchResult(self.code, statuses, words, corrected, rems)

    def fused_chunk_counts(self, chunk, key: int, k_symbols: int):
        """The 4-status counts of one fused corruption->decode chunk.

        Returns ``(clean, corrected, no_match, ripple)`` —
        byte-identical to decoding ``muse_corruption_chunk`` — or
        ``None`` when ``k_symbols`` is outside the exactly-replayable
        1..2 range, telling the caller to take the unfused path.
        """
        layout = self.code.layout
        if not 1 <= k_symbols <= min(2, layout.symbol_count):
            return None
        from repro.orchestrate.corruption import (
            STREAM_CHOICE,
            STREAM_DATA,
            STREAM_VALUE,
        )
        from repro.orchestrate.rng import derive_key

        data_keys = np.array(
            [derive_key(key, STREAM_DATA, j) for j in range(self.limbs)],
            dtype=np.uint64,
        )
        choice_keys = np.array(
            [
                derive_key(key, STREAM_CHOICE, s)
                for s in range(layout.symbol_count)
            ],
            dtype=np.uint64,
        )
        value_keys = np.array(
            [derive_key(key, STREAM_VALUE, slot) for slot in range(k_symbols)],
            dtype=np.uint64,
        )
        counts = _fused_chunk_kernel(
            chunk.start, chunk.size, k_symbols, self.limbs, self.code.r,
            self._m_u64, self._weights, self._k_mask, self._hit_u8,
            self._elc_addend, self._low_mask, self._above_mask,
            self._bit_symbol, self._symbol_outside_masks, self._sym_bits,
            self._sym_widths, data_keys, choice_keys, value_keys,
            self.ripple_check,
        )
        return tuple(int(count) for count in counts)

    def warmup(self) -> None:
        """Compile every kernel on a one-trial input.

        Benchmarks call this before timing so JIT compilation never
        pollutes a measurement; a no-op (beyond the tiny run) when
        numba is absent or the kernels are already compiled.
        """
        from repro.orchestrate.plan import Chunk

        self.decode_limbs(np.zeros((1, self.limbs), dtype=np.uint64))
        self.fused_chunk_counts(Chunk(0, 1), key=0, k_symbols=1)
        self.fused_chunk_counts(Chunk(0, 1), key=0, k_symbols=2)


__all__ = ["NUMBA_AVAILABLE", "NumbaDecodeEngine"]
