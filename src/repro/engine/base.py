"""Backend-neutral decode-engine interface.

A :class:`DecodeEngine` turns one :class:`~repro.core.codec.MuseCode`
into a *batch* encoder/decoder.  Two interchangeable backends exist:

* ``scalar`` — the big-int reference path, one
  :meth:`MuseCode.decode` call per word (always available);
* ``numpy`` — fixed-width limb arrays with the whole Figure-4 flow
  vectorised (:mod:`repro.engine.numpy_backend`).

Both classify every word into one of four :data:`STATUS_*` codes, which
deliberately mirror the Monte-Carlo tally buckets: the reliability
simulators consume :meth:`BatchDecodeResult.counts` directly, and the
cross-backend equivalence tests compare the per-word codes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.core.codec import DecodeResult, MuseCode

#: Per-word outcome codes (uint8-friendly, bincount-friendly).
STATUS_CLEAN = 0
STATUS_CORRECTED = 1
STATUS_DETECTED_NO_MATCH = 2
STATUS_DETECTED_RIPPLE = 3

STATUS_NAMES = ("clean", "corrected", "detected_no_match", "detected_ripple")


class BackendUnavailableError(RuntimeError):
    """The requested backend cannot run here (e.g. numpy not installed)."""


def status_of(result: "DecodeResult") -> int:
    """Map one scalar :class:`DecodeResult` to its batch status code."""
    from repro.core.codec import DecodeStatus, DetectionReason

    if result.status is DecodeStatus.CLEAN:
        return STATUS_CLEAN
    if result.status is DecodeStatus.CORRECTED:
        return STATUS_CORRECTED
    if result.reason is DetectionReason.REMAINDER_NOT_FOUND:
        return STATUS_DETECTED_NO_MATCH
    return STATUS_DETECTED_RIPPLE


class BatchDecodeResult(ABC):
    """Outcome of decoding one batch of codewords.

    Cheap views (:attr:`statuses`, :meth:`counts`) never materialise
    Python integers; :meth:`results` reconstructs full per-word
    :class:`DecodeResult` objects and is intended for interop and
    tests, not hot loops.
    """

    code: "MuseCode"

    @property
    @abstractmethod
    def statuses(self) -> Sequence[int]:
        """Per-word :data:`STATUS_*` codes (list or uint8 ndarray)."""

    @abstractmethod
    def counts(self) -> tuple[int, int, int, int]:
        """``(clean, corrected, detected_no_match, detected_ripple)``."""

    @abstractmethod
    def results(self) -> list["DecodeResult"]:
        """Materialise scalar-identical :class:`DecodeResult` objects."""

    def __len__(self) -> int:
        return len(self.statuses)


class DecodeEngine(ABC):
    """One code bound to one batch-execution strategy.

    Parameters
    ----------
    code:
        The :class:`MuseCode` whose arithmetic this engine runs.
    ripple_check:
        When False the engine reproduces
        :meth:`MuseCode.decode_without_ripple_check` (the Figure-4 flow
        minus the confinement/overflow detector) — the ablation the
        frontier experiment measures.
    """

    #: registry name of the backend ("scalar" or "numpy")
    name: str

    def __init__(self, code: "MuseCode", ripple_check: bool = True):
        self.code = code
        self.ripple_check = ripple_check

    def __repr__(self) -> str:
        flavour = "" if self.ripple_check else ", no ripple check"
        return f"{type(self).__name__}({self.code.name}{flavour})"

    @abstractmethod
    def encode_batch(self, data: Sequence[int]) -> list[int]:
        """Systematically encode a batch of data words."""

    @abstractmethod
    def decode_batch(self, words) -> BatchDecodeResult:
        """Run the Figure-4 flow over a batch of received words.

        ``words`` may be a sequence of Python ints or (for the numpy
        backend, zero-copy) a ``(B, L)`` uint64 limb array from
        :mod:`repro.engine.limbs`.
        """
