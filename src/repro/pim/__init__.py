"""Processing-in-memory case study (paper Section VI-B).

* :mod:`repro.pim.mac` — residue-checked multiply-accumulate with fault
  injection (the e(f(x,y)) == f(e(x), e(y)) homomorphism, executable).
* :mod:`repro.pim.hbm` — HBM2-PIM redundancy accounting (2.6x claim)
  and the storage+compute device model built on MUSE(268,256).
"""

from repro.pim.hbm import (
    HBM_PROVISIONED_ECC_BITS_PER_WORD,
    WORD_BITS,
    PimRedundancyBudget,
    ReliablePimDevice,
)
from repro.pim.mac import (
    CheckedValue,
    ComputeFaultError,
    MacFaultSite,
    ResidueCheckedMac,
    dot_product_with_faults,
    fault_coverage,
)

__all__ = [
    "CheckedValue",
    "ComputeFaultError",
    "HBM_PROVISIONED_ECC_BITS_PER_WORD",
    "MacFaultSite",
    "PimRedundancyBudget",
    "ReliablePimDevice",
    "ResidueCheckedMac",
    "WORD_BITS",
    "dot_product_with_faults",
    "fault_coverage",
]
