"""Residue-checked multiply-accumulate for PIM (paper Section VI-B).

The property that makes residue codes uniquely suited to
processing-in-memory: the check information *commutes with arithmetic*.
For the AN/residue view, with residues modulo the code multiplier m,

    residue(x + y) == (residue(x) + residue(y)) mod m
    residue(x * y) == (residue(x) * residue(y)) mod m

so a MAC unit can maintain an m-residue of its accumulator using only
small mod-m arithmetic, in parallel with the wide datapath.  Any fault
that corrupts the datapath (or the accumulator register) breaks the
congruence and is caught by one compare — no re-encoding between a
storage code and a compute code, which is the paper's argument against
parity-style ECC in PIM devices.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field


class MacFaultSite(enum.Enum):
    """Where a compute fault can strike in the MAC datapath."""

    NONE = "no fault"
    MULTIPLIER = "multiplier output"
    ACCUMULATOR = "accumulator register"


class ComputeFaultError(Exception):
    """Raised when the residue check catches a datapath fault."""


@dataclass
class CheckedValue:
    """A value paired with its mod-m residue (the PIM word format)."""

    value: int
    residue: int

    @classmethod
    def of(cls, value: int, m: int) -> "CheckedValue":
        return cls(value=value, residue=value % m)

    def consistent(self, m: int) -> bool:
        return self.value % m == self.residue


@dataclass
class ResidueCheckedMac:
    """A MAC unit with a shadow residue channel.

    ``accumulate(a, b)`` computes ``acc += a*b`` on the wide datapath
    while the residue channel computes the same thing mod m.  ``check``
    compares the two; ``verify_and_read`` is the checked output path.

    ``fault_site`` lets tests and the experiment inject a single bit
    flip into the chosen datapath element during the *next* operation.
    """

    m: int
    accumulator: CheckedValue = field(init=False)
    fault_site: MacFaultSite = MacFaultSite.NONE
    fault_bit: int = 0
    checks_passed: int = 0
    faults_caught: int = 0

    def __post_init__(self) -> None:
        if self.m < 3:
            raise ValueError("residue modulus must be >= 3")
        self.accumulator = CheckedValue.of(0, self.m)

    def reset(self) -> None:
        self.accumulator = CheckedValue.of(0, self.m)

    def accumulate(self, a: CheckedValue, b: CheckedValue) -> None:
        """acc += a*b, with the residue channel tracking mod m."""
        product = a.value * b.value
        if self.fault_site is MacFaultSite.MULTIPLIER:
            product ^= 1 << self.fault_bit
            self.fault_site = MacFaultSite.NONE
        self.accumulator.value += product
        if self.fault_site is MacFaultSite.ACCUMULATOR:
            self.accumulator.value ^= 1 << self.fault_bit
            self.fault_site = MacFaultSite.NONE
        # Shadow channel: small mod-m arithmetic only.
        self.accumulator.residue = (
            self.accumulator.residue + a.residue * b.residue
        ) % self.m

    def check(self) -> bool:
        """Does the wide accumulator still match its shadow residue?"""
        ok = self.accumulator.consistent(self.m)
        if ok:
            self.checks_passed += 1
        else:
            self.faults_caught += 1
        return ok

    def verify_and_read(self) -> int:
        if not self.check():
            raise ComputeFaultError(
                f"accumulator {self.accumulator.value} inconsistent with "
                f"residue {self.accumulator.residue} (mod {self.m})"
            )
        return self.accumulator.value

    def inject_fault(self, site: MacFaultSite, bit: int) -> None:
        """Arm a single-bit fault for the next accumulate call."""
        self.fault_site = site
        self.fault_bit = bit


def dot_product_with_faults(
    m: int,
    vector_a: list[int],
    vector_b: list[int],
    fault_at: int | None = None,
    fault_site: MacFaultSite = MacFaultSite.MULTIPLIER,
    fault_bit: int = 7,
) -> tuple[int | None, bool]:
    """Run a residue-checked dot product, optionally injecting a fault.

    Returns ``(result_or_None, fault_detected)``; the result is None
    when the final check rejects the accumulator.
    """
    if len(vector_a) != len(vector_b):
        raise ValueError("vectors must have equal length")
    mac = ResidueCheckedMac(m)
    for index, (a, b) in enumerate(zip(vector_a, vector_b)):
        if fault_at is not None and index == fault_at:
            mac.inject_fault(fault_site, fault_bit)
        mac.accumulate(CheckedValue.of(a, m), CheckedValue.of(b, m))
    try:
        return mac.verify_and_read(), False
    except ComputeFaultError:
        return None, True


def fault_coverage(
    m: int,
    trials: int = 2000,
    seed: int = 11,
    value_bits: int = 16,
    vector_length: int = 8,
) -> float:
    """Fraction of injected single-bit compute faults the residue catches.

    A fault escapes only when the flipped bit changes the accumulator by
    a multiple of m — impossible for single-bit flips when m is odd and
    larger than 1 (2^k mod m != 0), so the expected coverage is 1.0.
    """
    rng = random.Random(seed)
    caught = 0
    for _ in range(trials):
        vector_a = [rng.randrange(1 << value_bits) for _ in range(vector_length)]
        vector_b = [rng.randrange(1 << value_bits) for _ in range(vector_length)]
        site = rng.choice((MacFaultSite.MULTIPLIER, MacFaultSite.ACCUMULATOR))
        bit = rng.randrange(2 * value_bits + 3)
        _, detected = dot_product_with_faults(
            m,
            vector_a,
            vector_b,
            fault_at=rng.randrange(vector_length),
            fault_site=site,
            fault_bit=bit,
        )
        caught += detected
    return caught / trials
