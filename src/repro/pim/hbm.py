"""HBM2-PIM redundancy accounting and the reliable-PIM device model
(paper Section VI-B).

The setup follows the commercial HBM2-PIM part the paper cites: data is
read in 256-bit words and fed to in-memory MAC units.  The HBM standard
provisions 64 ECC bits per 64 data bytes — 32 bits per 256-bit word.
MUSE(268,256) protects the same word with 12 bits, a 2.67x reduction,
and because it is a residue code the *same* check information also
verifies the MAC arithmetic (see :mod:`repro.pim.mac`); the ~20 saved
bits per word are available for authentication codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.codec import DecodeStatus, MuseCode
from repro.core.codes import muse_268_256
from repro.pim.mac import CheckedValue, ComputeFaultError, ResidueCheckedMac

#: HBM ECC provision: 64 bits per 64 bytes = 32 bits per 256-bit word.
HBM_PROVISIONED_ECC_BITS_PER_WORD = 32
WORD_BITS = 256


@dataclass(frozen=True)
class PimRedundancyBudget:
    """The Section VI-B arithmetic, as data."""

    provisioned_bits: int = HBM_PROVISIONED_ECC_BITS_PER_WORD
    muse_bits: int = 12  # MUSE(268,256) redundancy

    @property
    def reduction_factor(self) -> float:
        """The paper's "2.6x fewer redundancy bits"."""
        return self.provisioned_bits / self.muse_bits

    @property
    def saved_bits_per_word(self) -> int:
        """Freed provision available for authentication codes (~20b)."""
        return self.provisioned_bits - self.muse_bits


@dataclass
class ReliablePimDevice:
    """An HBM2-PIM bank: MUSE-protected storage + residue-checked MACs.

    One code covers both halves of the device's life:

    * **storage** — words live as MUSE(268,256) codewords; reads run the
      Figure-4 decoder, so a chip failure inside the bank is corrected;
    * **compute** — the MAC keeps a mod-m shadow of its accumulator and
      every readout is congruence-checked.
    """

    code: MuseCode = field(default_factory=muse_268_256)
    _store: dict[int, int] = field(default_factory=dict)

    def write_word(self, address: int, value: int) -> None:
        if not 0 <= value < (1 << WORD_BITS):
            raise ValueError(f"PIM words are {WORD_BITS} bits")
        self._store[address] = self.code.encode(value)

    def read_word(self, address: int) -> int:
        result = self.code.decode(self._store[address])
        if result.status is DecodeStatus.DETECTED:
            raise RuntimeError(f"uncorrectable storage error at {address:#x}")
        return result.data

    def corrupt_device(self, address: int, symbol: int, value: int) -> None:
        """Inject a chip failure into one stored word."""
        codeword = self._store[address]
        self._store[address] = self.code.layout.insert_symbol(
            codeword, symbol, value
        )

    def dot_product(self, addresses_a: list[int], addresses_b: list[int]) -> int:
        """Residue-checked MAC over stored (possibly corrected) words."""
        if len(addresses_a) != len(addresses_b):
            raise ValueError("operand address lists must match in length")
        m = self.code.m
        mac = ResidueCheckedMac(m)
        for addr_a, addr_b in zip(addresses_a, addresses_b):
            a = CheckedValue.of(self.read_word(addr_a), m)
            b = CheckedValue.of(self.read_word(addr_b), m)
            mac.accumulate(a, b)
        try:
            return mac.verify_and_read()
        except ComputeFaultError:
            raise RuntimeError("PIM compute fault detected by residue check")
