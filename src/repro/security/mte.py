"""ARM-MTE-like memory tagging semantics (paper Sections VI-A, VII-D).

The scheme: every 16-byte granule of memory carries a 4-bit *allocation
tag*; every pointer carries a 4-bit *logical tag* in its unused high
bits.  A load/store whose pointer tag mismatches the granule tag faults
— catching use-after-free and adjacent-overflow bugs.

:class:`MuseTaggedMemory` stores the allocation tags in the spare bits
of MUSE(80,69) codewords, so the tags are (a) free — no extra DRAM
traffic, the Figure-7 result — and (b) ECC-protected: a DRAM device
failure corrupts tag and data together and the MUSE decoder corrects
both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.codec import DecodeStatus, MuseCode
from repro.core.codes import muse_80_69

TAG_BITS = 4
GRANULE_BYTES = 16
_TAG_SHIFT = 56  # tags ride in pointer bits [56, 60) (ARM TBI range)


def tag_pointer(address: int, tag: int) -> int:
    """Place a logical tag in the pointer's unused high bits."""
    if not 0 <= tag < (1 << TAG_BITS):
        raise ValueError(f"tag must be a {TAG_BITS}-bit value")
    cleared = address & ~(((1 << TAG_BITS) - 1) << _TAG_SHIFT)
    return cleared | (tag << _TAG_SHIFT)


def pointer_tag(pointer: int) -> int:
    return (pointer >> _TAG_SHIFT) & ((1 << TAG_BITS) - 1)


def pointer_address(pointer: int) -> int:
    return pointer & ~(((1 << TAG_BITS) - 1) << _TAG_SHIFT)


class TagMismatchError(Exception):
    """The MTE fault: pointer tag != allocation tag."""


@dataclass
class MuseTaggedMemory:
    """64-bit words + 4-bit tags packed into MUSE(80,69) codewords.

    Each codeword carries ``64 data bits | 4 tag bits | 1 unused spare``
    in its 69-bit payload.  Loads check the pointer's tag against the
    stored allocation tag after ECC decoding, so a corrected chip
    failure never produces a spurious tag fault.
    """

    code: MuseCode = field(default_factory=muse_80_69)
    _store: dict[int, int] = field(default_factory=dict)
    _rng: random.Random = field(default_factory=lambda: random.Random(0x7A6))

    def __post_init__(self) -> None:
        if self.code.spare_bits(64) < TAG_BITS:
            raise ValueError(
                f"{self.code.name} lacks room for {TAG_BITS}-bit tags"
            )

    # ------------------------------------------------------------------
    # Allocation interface
    # ------------------------------------------------------------------

    def allocate(self, address: int, words: int) -> int:
        """Color a region with a fresh random tag; returns tagged pointer."""
        tag = self._rng.randrange(1 << TAG_BITS)
        for index in range(words):
            self._write_raw(address + 8 * index, data=0, tag=tag)
        return tag_pointer(address, tag)

    def free(self, pointer: int, words: int) -> None:
        """Retag the region so stale pointers fault (use-after-free)."""
        address = pointer_address(pointer)
        old_tag = pointer_tag(pointer)
        new_tag = (old_tag + 1 + self._rng.randrange((1 << TAG_BITS) - 1)) % (
            1 << TAG_BITS
        )
        for index in range(words):
            stored = self._read_raw(address + 8 * index)
            self._write_raw(address + 8 * index, data=stored[0], tag=new_tag)

    # ------------------------------------------------------------------
    # Tag-checked access
    # ------------------------------------------------------------------

    def store(self, pointer: int, value: int) -> None:
        address = pointer_address(pointer)
        data, tag = self._read_raw(address)
        self._check(pointer, tag)
        self._write_raw(address, data=value, tag=tag)

    def load(self, pointer: int) -> int:
        address = pointer_address(pointer)
        data, tag = self._read_raw(address)
        self._check(pointer, tag)
        return data

    def _check(self, pointer: int, allocation_tag: int) -> None:
        if pointer_tag(pointer) != allocation_tag:
            raise TagMismatchError(
                f"pointer tag {pointer_tag(pointer):#x} != allocation tag "
                f"{allocation_tag:#x} at {pointer_address(pointer):#x}"
            )

    # ------------------------------------------------------------------
    # ECC-protected backing store
    # ------------------------------------------------------------------

    def _write_raw(self, address: int, data: int, tag: int) -> None:
        payload = (tag << 64) | (data & ((1 << 64) - 1))
        self._store[address] = self.code.encode(payload)

    def _read_raw(self, address: int) -> tuple[int, int]:
        codeword = self._store[address]
        result = self.code.decode(codeword)
        if result.status is DecodeStatus.DETECTED:
            raise RuntimeError(f"uncorrectable memory error at {address:#x}")
        payload = result.data
        return payload & ((1 << 64) - 1), (payload >> 64) & ((1 << TAG_BITS) - 1)

    # ------------------------------------------------------------------
    # Fault hook for tests / demos
    # ------------------------------------------------------------------

    def corrupt_device(self, address: int, device: int, value: int) -> None:
        """Overwrite one DRAM device's slice of the codeword at address."""
        codeword = self._store[address]
        self._store[address] = self.code.layout.insert_symbol(
            codeword, device, value
        )
