"""Keyed cache-line hashes for Rowhammer detection (paper Section VI-A).

MUSE(80,69) leaves 5 spare bits per 64-bit word — 40 bits per 64-byte
cache line — which the paper fills with a keyed hash of the line.  An
attacker flipping bits via Rowhammer must also produce the matching
hash, or the corruption is detected; with a 40-bit hash the attack
succeeds with probability 2^-40.

The hash here is a multiply-mix construction over 64-bit lanes
(xorshift-multiply rounds, truncated to the requested width).  It is a
*detection* hash with near-uniform avalanche — exactly the collision
behaviour the 2^-w argument requires — not a cryptographic MAC; the
paper's argument likewise only relies on the attacker not being able to
predict the digest without the key.
"""

from __future__ import annotations

from dataclasses import dataclass

_MASK64 = (1 << 64) - 1
_MULT1 = 0xFF51AFD7ED558CCD
_MULT2 = 0xC4CEB9FE1A85EC53


def _mix64(value: int) -> int:
    """Murmur3-style 64-bit finalizer (full avalanche)."""
    value &= _MASK64
    value ^= value >> 33
    value = (value * _MULT1) & _MASK64
    value ^= value >> 33
    value = (value * _MULT2) & _MASK64
    value ^= value >> 33
    return value


@dataclass(frozen=True)
class LineHasher:
    """Keyed w-bit hash over 512-bit cache lines.

    Parameters
    ----------
    width_bits:
        Digest width; the paper uses 40 (5 spare bits x 8 words).
    key:
        Secret key; without it the attacker cannot precompute digests.
    """

    width_bits: int = 40
    key: int = 0x5EED_C0DE_F00D

    def __post_init__(self) -> None:
        if not 1 <= self.width_bits <= 64:
            raise ValueError("hash width must be within [1, 64] bits")

    def digest(self, line: int) -> int:
        """Hash a 512-bit line (given as an integer) to ``width_bits``."""
        if line < 0:
            raise ValueError("line value must be non-negative")
        state = _mix64(self.key)
        remaining = line
        for lane_index in range(8):  # 8 x 64-bit lanes of a 64-byte line
            lane = remaining & _MASK64
            remaining >>= 64
            state = _mix64(state ^ _mix64(lane + lane_index + 1))
        if remaining:
            # Lines wider than 512 bits keep folding, 64 bits at a time.
            while remaining:
                state = _mix64(state ^ (remaining & _MASK64))
                remaining >>= 64
        return state & ((1 << self.width_bits) - 1)

    def matches(self, line: int, stored_digest: int) -> bool:
        """Integrity check on read."""
        return self.digest(line) == stored_digest
