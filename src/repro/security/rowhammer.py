"""Rowhammer attack/detection simulation (paper Section VI-A).

The scenario: a 64-byte cache line is stored as eight MUSE(80,69)
codewords whose 5 spare bits per word hold a 40-bit keyed hash of the
line.  A Rowhammer attacker flips bits in the victim line (and possibly
in the stored hash); on the next read the memory controller recomputes
the hash.  Unless the attacker lands on a colliding (line, digest) pair
— probability 2^-40 for a keyed hash they cannot predict — the attack
is detected.

2^-40 cannot be measured by direct Monte Carlo, so the experiment
verifies the *law*: for truncated hashes of width w = 4..16 the escape
(undetected-corruption) rate measured by simulation tracks 2^-w, and the
law extrapolates to the paper's 2^-40 at the deployed width.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.security.hashing import LineHasher

LINE_BITS = 512


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one simulated Rowhammer attempt."""

    flipped_line_bits: tuple[int, ...]
    flipped_digest_bits: tuple[int, ...]
    detected: bool

    @property
    def corrupted(self) -> bool:
        return bool(self.flipped_line_bits) or bool(self.flipped_digest_bits)


@dataclass
class HashedLine:
    """A cache line plus its stored digest (the spare-bit payload)."""

    hasher: LineHasher
    data: int
    digest: int = field(init=False)

    def __post_init__(self) -> None:
        self.digest = self.hasher.digest(self.data)

    def verify(self) -> bool:
        return self.hasher.matches(self.data, self.digest)


@dataclass
class RowhammerAttacker:
    """Flips random bits across the victim line and its stored digest.

    ``line_flips`` bits flip in the data; with probability
    ``digest_flip_probability`` per attempt, one stored-digest bit flips
    too (the hash lives in the same DRAM row and is equally hammerable).
    """

    line_flips: int = 3
    digest_flip_probability: float = 0.5

    def attack(self, line: HashedLine, rng: random.Random) -> AttackOutcome:
        line_bits = tuple(
            sorted(rng.sample(range(LINE_BITS), self.line_flips))
        )
        for bit in line_bits:
            line.data ^= 1 << bit
        digest_bits: tuple[int, ...] = ()
        if rng.random() < self.digest_flip_probability:
            bit = rng.randrange(line.hasher.width_bits)
            line.digest ^= 1 << bit
            digest_bits = (bit,)
        detected = not line.verify()
        return AttackOutcome(
            flipped_line_bits=line_bits,
            flipped_digest_bits=digest_bits,
            detected=detected,
        )


@dataclass(frozen=True)
class EscapeRatePoint:
    """Measured escape rate at one hash width."""

    width_bits: int
    attempts: int
    escapes: int

    @property
    def escape_rate(self) -> float:
        return self.escapes / self.attempts if self.attempts else 0.0

    @property
    def expected_rate(self) -> float:
        """The 2^-w law the paper's claim instantiates at w = 40."""
        return 2.0 ** -self.width_bits


def measure_escape_rate(
    width_bits: int,
    attempts: int,
    seed: int = 7,
    line_flips: int = 3,
) -> EscapeRatePoint:
    """Monte-Carlo escape rate for one truncated hash width.

    An *escape* is a corrupted line whose recomputed hash still matches
    the stored digest — the attacker wins.  The attacker model flips
    ``line_flips`` random data bits and sometimes a digest bit, i.e.
    they cannot aim (the keyed hash denies them a predictable target).
    """
    rng = random.Random(seed)
    hasher = LineHasher(width_bits=width_bits)
    attacker = RowhammerAttacker(line_flips=line_flips)
    escapes = 0
    for _ in range(attempts):
        line = HashedLine(hasher, rng.getrandbits(LINE_BITS))
        outcome = attacker.attack(line, rng)
        if outcome.corrupted and not outcome.detected:
            escapes += 1
    return EscapeRatePoint(width_bits=width_bits, attempts=attempts, escapes=escapes)


def escape_rate_sweep(
    widths: tuple[int, ...] = (4, 6, 8, 10, 12),
    attempts_per_width: int = 200_000,
    seed: int = 7,
) -> list[EscapeRatePoint]:
    """The width sweep behind the extrapolated 1 - 2^-40 claim."""
    return [
        measure_escape_rate(width, attempts_per_width, seed=seed)
        for width in widths
    ]


def deployed_detection_probability(width_bits: int = 40) -> float:
    """The paper's headline number: 1 - 2^-width for the deployed hash."""
    return 1.0 - 2.0 ** -width_bits
