"""Security co-design case studies (paper Section VI-A).

* :mod:`repro.security.hashing` — keyed 40-bit line hashes.
* :mod:`repro.security.rowhammer` — attack/detection simulation and the
  2^-w escape-rate law behind the paper's 1 - 2^-40 claim.
* :mod:`repro.security.mte` — ARM-MTE-like tagging with tags stored in
  MUSE spare bits (ECC-protected, traffic-free).
"""

from repro.security.hashing import LineHasher
from repro.security.mte import (
    GRANULE_BYTES,
    TAG_BITS,
    MuseTaggedMemory,
    TagMismatchError,
    pointer_address,
    pointer_tag,
    tag_pointer,
)
from repro.security.rowhammer import (
    AttackOutcome,
    EscapeRatePoint,
    HashedLine,
    RowhammerAttacker,
    deployed_detection_probability,
    escape_rate_sweep,
    measure_escape_rate,
)

__all__ = [
    "AttackOutcome",
    "EscapeRatePoint",
    "GRANULE_BYTES",
    "HashedLine",
    "LineHasher",
    "MuseTaggedMemory",
    "RowhammerAttacker",
    "TAG_BITS",
    "TagMismatchError",
    "deployed_detection_probability",
    "escape_rate_sweep",
    "measure_escape_rate",
    "pointer_address",
    "pointer_tag",
    "tag_pointer",
]
