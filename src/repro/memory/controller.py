"""Memory controller with integrated ECC (paper Figure 2).

The controller owns the write path (encode, stripe, store) and the read
path (gather, decode, correct-or-flag).  ECC schemes plug in through the
small :class:`EccScheme` protocol, so the same controller runs MUSE,
Reed-Solomon, or no ECC at all — which is exactly the comparison the
paper's evaluation needs.

The backing store is sparse (a dict of codeword-address -> codeword
integer), with per-device fault state layered on top: a failed device
corrupts *every* read touching it until the device is replaced, which
models a permanent chip failure (the ChipKill scenario) rather than a
single transient.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Protocol

from repro.core.codec import DecodeStatus, MuseCode
from repro.memory.striping import DeviceStriping
from repro.rs.reed_solomon import RSCode, RSDecodeStatus


class ReadStatus(enum.Enum):
    OK = "clean"
    CORRECTED = "corrected"
    UNCORRECTABLE = "uncorrectable"


@dataclass(frozen=True)
class ReadResult:
    status: ReadStatus
    data: int | None
    address: int


class EccScheme(Protocol):
    """What the controller needs from an ECC implementation."""

    @property
    def data_bits(self) -> int: ...

    @property
    def codeword_bits(self) -> int: ...

    def encode(self, data: int) -> int: ...

    def decode(self, codeword: int) -> tuple[ReadStatus, int | None]: ...


@dataclass(frozen=True)
class MuseEcc:
    """Adapter: MUSE codec -> controller protocol."""

    code: MuseCode

    @property
    def data_bits(self) -> int:
        return self.code.k

    @property
    def codeword_bits(self) -> int:
        return self.code.n

    def encode(self, data: int) -> int:
        return self.code.encode(data)

    def decode(self, codeword: int) -> tuple[ReadStatus, int | None]:
        result = self.code.decode(codeword)
        if result.status is DecodeStatus.CLEAN:
            return ReadStatus.OK, result.data
        if result.status is DecodeStatus.CORRECTED:
            return ReadStatus.CORRECTED, result.data
        return ReadStatus.UNCORRECTABLE, None


@dataclass(frozen=True)
class ReedSolomonEcc:
    """Adapter: RS codec -> controller protocol."""

    code: RSCode

    @property
    def data_bits(self) -> int:
        return self.code.k_bits

    @property
    def codeword_bits(self) -> int:
        return self.code.n_bits

    def encode(self, data: int) -> int:
        return self.code.encode_bits(data)

    def decode(self, codeword: int) -> tuple[ReadStatus, int | None]:
        status, data = self.code.decode_bits(codeword)
        if status is RSDecodeStatus.CLEAN:
            return ReadStatus.OK, data
        if status is RSDecodeStatus.CORRECTED:
            return ReadStatus.CORRECTED, data
        return ReadStatus.UNCORRECTABLE, None


@dataclass(frozen=True)
class NoEcc:
    """Raw storage baseline (the paper's metadata-in-ECC-bits strawman)."""

    width: int

    @property
    def data_bits(self) -> int:
        return self.width

    @property
    def codeword_bits(self) -> int:
        return self.width

    def encode(self, data: int) -> int:
        return data

    def decode(self, codeword: int) -> tuple[ReadStatus, int | None]:
        return ReadStatus.OK, codeword


@dataclass
class ControllerStats:
    reads: int = 0
    writes: int = 0
    corrected: int = 0
    uncorrectable: int = 0


class MemoryController:
    """Figure 2: encoder/decoder pair around a striped DRAM channel.

    Parameters
    ----------
    ecc:
        Any :class:`EccScheme`.
    striping:
        Optional device striping.  Required for device-level fault
        injection; when present, its layout width must equal the ECC
        codeword width.
    """

    def __init__(self, ecc: EccScheme, striping: DeviceStriping | None = None):
        if striping is not None and striping.layout.n != ecc.codeword_bits:
            raise ValueError(
                f"striping covers {striping.layout.n} bits but the ECC "
                f"produces {ecc.codeword_bits}-bit codewords"
            )
        self.ecc = ecc
        self.striping = striping
        self.stats = ControllerStats()
        self._store: dict[int, int] = {}
        self._failed_devices: dict[int, int] = {}  # device -> stuck value
        self._rng = random.Random(0xECC)

    # ------------------------------------------------------------------
    # Write / read paths
    # ------------------------------------------------------------------

    def write(self, address: int, data: int) -> None:
        """Encode and store one payload word."""
        self.stats.writes += 1
        self._store[address] = self.ecc.encode(data)

    def read(self, address: int) -> ReadResult:
        """Fetch, apply device faults, decode."""
        self.stats.reads += 1
        if address not in self._store:
            raise KeyError(f"address {address} was never written")
        codeword = self._apply_device_faults(self._store[address])
        status, data = self.ecc.decode(codeword)
        if status is ReadStatus.CORRECTED:
            self.stats.corrected += 1
        elif status is ReadStatus.UNCORRECTABLE:
            self.stats.uncorrectable += 1
        return ReadResult(status=status, data=data, address=address)

    # ------------------------------------------------------------------
    # Fault state
    # ------------------------------------------------------------------

    def fail_device(self, device: int, stuck_value: int | None = None) -> None:
        """Permanently fail one DRAM device.

        Every subsequent read sees the device's bits replaced by
        ``stuck_value`` (random garbage if None) — the ChipKill event.
        """
        if self.striping is None:
            raise RuntimeError("device faults need a striping configuration")
        width = len(self.striping.layout.symbols[device])
        if stuck_value is None:
            stuck_value = self._rng.randrange(1 << width)
        if stuck_value >> width:
            raise ValueError(f"stuck value wider than the {width}-bit device")
        self._failed_devices[device] = stuck_value

    def repair_device(self, device: int) -> None:
        """Replace a failed device (field service swap)."""
        self._failed_devices.pop(device, None)

    def scrub(self, address: int) -> ReadResult:
        """Read-correct-writeback, re-encoding the corrected data.

        After repairing a failed device, scrubbing restores codewords to
        a clean state so future single-device failures stay correctable.
        """
        result = self.read(address)
        if result.status is not ReadStatus.UNCORRECTABLE:
            self._store[address] = self.ecc.encode(result.data)
        return result

    @property
    def failed_devices(self) -> tuple[int, ...]:
        return tuple(sorted(self._failed_devices))

    def _apply_device_faults(self, codeword: int) -> int:
        if not self._failed_devices or self.striping is None:
            return codeword
        for device, stuck_value in self._failed_devices.items():
            codeword = self.striping.replace_device_slice(
                codeword, device, stuck_value
            )
        return codeword
