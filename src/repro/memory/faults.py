"""Fault injection models for DRAM codewords.

Every fault is a small object with ``inject(codeword, rng) ->
(corrupted, FaultRecord)``; the record says what physically happened so
tests and the Monte-Carlo can classify outcomes against ground truth.

Models cover the paper's evaluation space:

* :class:`DeviceFailure` — one chip returns arbitrary garbage (the
  ChipKill event; single-symbol bidirectional error).
* :class:`StuckDevice` — one chip reads all-zeros / all-ones (a common
  permanent-failure signature; still single-symbol).
* :class:`MultiDeviceFailure` — k chips fail at once (the Table IV
  multi-symbol detection workload).
* :class:`RetentionFault` — refresh-starvation 1->0 flips, possibly
  across the whole word (the asymmetric model of Section III-C).
* :class:`RandomBitFlips` — k independent bidirectional flips anywhere
  (Rowhammer-flavoured disturbance).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.symbols import SymbolLayout


@dataclass(frozen=True)
class FaultRecord:
    """Ground truth about one injection."""

    kind: str
    flipped_bits: tuple[int, ...]
    devices: tuple[int, ...]

    @property
    def bit_count(self) -> int:
        return len(self.flipped_bits)


def _diff_bits(before: int, after: int) -> tuple[int, ...]:
    diff = before ^ after
    bits = []
    position = 0
    while diff:
        if diff & 1:
            bits.append(position)
        diff >>= 1
        position += 1
    return tuple(bits)


@dataclass(frozen=True)
class DeviceFailure:
    """Replace one device's slice with a random *different* value."""

    layout: SymbolLayout
    device: int | None = None  # None -> pick uniformly at injection time

    def inject(self, codeword: int, rng: random.Random) -> tuple[int, FaultRecord]:
        device = (
            self.device
            if self.device is not None
            else rng.randrange(self.layout.symbol_count)
        )
        width = len(self.layout.symbols[device])
        original = self.layout.extract_symbol(codeword, device)
        corrupted_value = rng.randrange(1 << width)
        while corrupted_value == original:
            corrupted_value = rng.randrange(1 << width)
        corrupted = self.layout.insert_symbol(codeword, device, corrupted_value)
        return corrupted, FaultRecord(
            kind="device_failure",
            flipped_bits=_diff_bits(codeword, corrupted),
            devices=(device,),
        )


@dataclass(frozen=True)
class StuckDevice:
    """One device reads a constant (all zeros or all ones)."""

    layout: SymbolLayout
    device: int
    stuck_to_ones: bool = False

    def inject(self, codeword: int, rng: random.Random) -> tuple[int, FaultRecord]:
        width = len(self.layout.symbols[self.device])
        value = (1 << width) - 1 if self.stuck_to_ones else 0
        corrupted = self.layout.insert_symbol(codeword, self.device, value)
        return corrupted, FaultRecord(
            kind="stuck_device",
            flipped_bits=_diff_bits(codeword, corrupted),
            devices=(self.device,),
        )


@dataclass(frozen=True)
class MultiDeviceFailure:
    """k distinct devices return random different values simultaneously."""

    layout: SymbolLayout
    device_count: int = 2

    def __post_init__(self) -> None:
        if not 2 <= self.device_count <= self.layout.symbol_count:
            raise ValueError(
                f"device_count must be in [2, {self.layout.symbol_count}]"
            )

    def inject(self, codeword: int, rng: random.Random) -> tuple[int, FaultRecord]:
        devices = tuple(
            sorted(rng.sample(range(self.layout.symbol_count), self.device_count))
        )
        corrupted = codeword
        for device in devices:
            width = len(self.layout.symbols[device])
            original = self.layout.extract_symbol(corrupted, device)
            value = rng.randrange(1 << width)
            while value == original:
                value = rng.randrange(1 << width)
            corrupted = self.layout.insert_symbol(corrupted, device, value)
        return corrupted, FaultRecord(
            kind="multi_device_failure",
            flipped_bits=_diff_bits(codeword, corrupted),
            devices=devices,
        )


@dataclass(frozen=True)
class RetentionFault:
    """Asymmetric 1->0 decay of up to ``max_bits`` set bits.

    Confined to one device when ``device`` is given (the Section III-C /
    MUSE(80,67) model); otherwise decays set bits anywhere.
    """

    layout: SymbolLayout
    max_bits: int = 4
    device: int | None = None

    def inject(self, codeword: int, rng: random.Random) -> tuple[int, FaultRecord]:
        if self.device is not None:
            candidate_bits = [
                bit
                for bit in self.layout.symbols[self.device]
                if codeword >> bit & 1
            ]
            devices: tuple[int, ...] = (self.device,)
        else:
            candidate_bits = [
                bit for bit in range(self.layout.n) if codeword >> bit & 1
            ]
            devices = ()
        if not candidate_bits:
            return codeword, FaultRecord("retention", (), devices)
        count = rng.randint(1, min(self.max_bits, len(candidate_bits)))
        chosen = tuple(sorted(rng.sample(candidate_bits, count)))
        corrupted = codeword
        for bit in chosen:
            corrupted &= ~(1 << bit)
        if self.device is None:
            devices = tuple(
                sorted({self.layout.symbol_of_bit(bit) for bit in chosen})
            )
        return corrupted, FaultRecord("retention", chosen, devices)


@dataclass(frozen=True)
class RandomBitFlips:
    """k independent bidirectional bit flips anywhere in the word."""

    layout: SymbolLayout
    flips: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.flips <= self.layout.n:
            raise ValueError(f"flips must be in [1, {self.layout.n}]")

    def inject(self, codeword: int, rng: random.Random) -> tuple[int, FaultRecord]:
        bits = tuple(sorted(rng.sample(range(self.layout.n), self.flips)))
        corrupted = codeword
        for bit in bits:
            corrupted ^= 1 << bit
        devices = tuple(sorted({self.layout.symbol_of_bit(bit) for bit in bits}))
        return corrupted, FaultRecord("bit_flips", bits, devices)


@dataclass
class FaultCampaign:
    """Run a fault model against many codewords, collecting records."""

    model: DeviceFailure | StuckDevice | MultiDeviceFailure | RetentionFault | RandomBitFlips
    seed: int = 0
    records: list[FaultRecord] = field(default_factory=list)

    def run(self, codewords: list[int]) -> list[int]:
        """Inject into every codeword; returns corrupted copies."""
        rng = random.Random(self.seed)
        corrupted_words = []
        for codeword in codewords:
            corrupted, record = self.model.inject(codeword, rng)
            corrupted_words.append(corrupted)
            self.records.append(record)
        return corrupted_words
