"""Codeword striping: symbols onto DRAM devices (paper Figure 1a).

The paper implements shuffling as "routing the signals between the
memory controller and DRAM interface in a shuffled manner" — zero-cost
wiring.  Here the same statement is executable: a
:class:`DeviceStriping` binds a :class:`~repro.core.symbols.SymbolLayout`
to a :class:`~repro.memory.dram.ChannelGeometry` so that symbol ``i`` of
the layout is exactly the slice of the codeword stored in device ``i``.

The striping is the fault-injection surface: killing device ``i``
corrupts precisely ``layout.symbols[i]``'s bit positions — which is the
single-symbol error model the MUSE multiplier was searched for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.symbols import SymbolLayout
from repro.memory.dram import ChannelGeometry


@dataclass(frozen=True)
class DeviceStriping:
    """Binding between a symbol layout and a physical channel."""

    layout: SymbolLayout
    geometry: ChannelGeometry

    def __post_init__(self) -> None:
        if self.layout.symbol_count != self.geometry.devices:
            raise ValueError(
                f"layout has {self.layout.symbol_count} symbols but the "
                f"channel has {self.geometry.devices} devices"
            )
        if self.layout.n != self.geometry.codeword_bits:
            raise ValueError(
                f"layout covers {self.layout.n} bits but the channel "
                f"transfers {self.geometry.codeword_bits}-bit codewords"
            )

    # ------------------------------------------------------------------
    # Device views
    # ------------------------------------------------------------------

    def device_slice(self, codeword: int, device: int) -> int:
        """Bits of ``codeword`` physically stored in ``device``."""
        return self.layout.extract_symbol(codeword, device)

    def replace_device_slice(self, codeword: int, device: int, value: int) -> int:
        """Codeword with ``device``'s stored bits replaced by ``value``."""
        return self.layout.insert_symbol(codeword, device, value)

    def to_device_slices(self, codeword: int) -> tuple[int, ...]:
        """Split a codeword into the per-device write values."""
        return tuple(
            self.layout.extract_symbol(codeword, device)
            for device in range(self.geometry.devices)
        )

    def from_device_slices(self, slices: tuple[int, ...] | list[int]) -> int:
        """Reassemble a codeword from per-device read values."""
        if len(slices) != self.geometry.devices:
            raise ValueError(
                f"expected {self.geometry.devices} device slices, "
                f"got {len(slices)}"
            )
        codeword = 0
        for device, value in enumerate(slices):
            codeword = self.layout.insert_symbol(codeword, device, value)
        return codeword

    # ------------------------------------------------------------------
    # Bus-beat view (the MUSE(80,67) half-symbol transfer, Section IV)
    # ------------------------------------------------------------------

    def beat_slices(self, codeword: int) -> tuple[tuple[int, ...], ...]:
        """Per-beat, per-device wire values.

        Beat ``b`` carries bits ``[b*w, (b+1)*w)`` of each device's
        slice, where ``w = device_bits / beats`` wires per device per
        beat.  For single-beat channels this is just
        :meth:`to_device_slices` wrapped in one tuple.
        """
        beats = self.geometry.beats
        wires = self.geometry.device_bits // beats
        slices = self.to_device_slices(codeword)
        mask = (1 << wires) - 1
        return tuple(
            tuple((value >> (beat * wires)) & mask for value in slices)
            for beat in range(beats)
        )

    def from_beat_slices(
        self, beats: tuple[tuple[int, ...], ...] | list[tuple[int, ...]]
    ) -> int:
        """Reassemble a codeword from beat-level wire values."""
        wires = self.geometry.device_bits // self.geometry.beats
        slices = [0] * self.geometry.devices
        for beat_index, beat in enumerate(beats):
            for device, value in enumerate(beat):
                slices[device] |= value << (beat_index * wires)
        return self.from_device_slices(slices)


def muse_striping(layout: SymbolLayout, geometry: ChannelGeometry) -> DeviceStriping:
    """Validated constructor with a friendlier error for shape mismatch."""
    return DeviceStriping(layout, geometry)
