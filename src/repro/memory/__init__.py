"""DRAM substrate: geometry, striping, fault injection, controller.

* :mod:`repro.memory.dram` — channel shapes (DDR4 144-bit, DDR5 80-bit,
  HBM2-PIM) the paper's codes are sized for.
* :mod:`repro.memory.striping` — symbol-to-device routing incl. the
  shuffles of Figure 1(a) and the two-beat bus split of MUSE(80,67).
* :mod:`repro.memory.faults` — device failures, retention decay, random
  flips, with ground-truth records.
* :mod:`repro.memory.controller` — the Figure-2 read/write paths with a
  pluggable ECC scheme (MUSE / Reed-Solomon / none).
"""

from repro.memory.controller import (
    ControllerStats,
    EccScheme,
    MemoryController,
    MuseEcc,
    NoEcc,
    ReadResult,
    ReadStatus,
    ReedSolomonEcc,
)
from repro.memory.dram import (
    ChannelGeometry,
    MemoryConfig,
    ddr4_144bit,
    ddr5_40bit_x8_two_beats,
    ddr5_80bit_x4,
    hbm2_pim_256bit,
)
from repro.memory.faults import (
    DeviceFailure,
    FaultCampaign,
    FaultRecord,
    MultiDeviceFailure,
    RandomBitFlips,
    RetentionFault,
    StuckDevice,
)
from repro.memory.striping import DeviceStriping, muse_striping

__all__ = [
    "ChannelGeometry",
    "ControllerStats",
    "DeviceFailure",
    "DeviceStriping",
    "EccScheme",
    "FaultCampaign",
    "FaultRecord",
    "MemoryConfig",
    "MemoryController",
    "MultiDeviceFailure",
    "MuseEcc",
    "NoEcc",
    "RandomBitFlips",
    "ReadResult",
    "ReadStatus",
    "ReedSolomonEcc",
    "RetentionFault",
    "StuckDevice",
    "ddr4_144bit",
    "ddr5_40bit_x8_two_beats",
    "ddr5_80bit_x4",
    "hbm2_pim_256bit",
    "muse_striping",
]
