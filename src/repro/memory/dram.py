"""DRAM channel geometry (paper Sections IV, VII-A).

The paper's codes are sized against concrete DDR4/DDR5 channel shapes:

* **DDR4 ECC pair** — two DIMMs of 18 x4 devices form a 144-bit channel
  (IBM POWER9 / Intel Xeon style); MUSE(144,132) and RS(144,128) live
  here.
* **DDR5 dual channel** — two 40-bit channels of ten x4 devices (or five
  x8 devices) per DIMM; MUSE(80,69)/(80,67)/(80,70) and RS(80,64) live
  here, with 80-bit codewords striped across both channels or split
  into two bus beats.
* **HBM2-PIM** — 256-bit data words with a 32-bit ECC provision
  (Section VI-B).

A geometry knows how many devices it exposes to one codeword and how
wide each device's slice is; the striping layer maps codeword symbols
onto those devices.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChannelGeometry:
    """One logical ECC channel as seen by the memory controller."""

    name: str
    device_bits: int
    devices: int
    beats: int = 1

    def __post_init__(self) -> None:
        if self.device_bits <= 0 or self.devices <= 0 or self.beats <= 0:
            raise ValueError("geometry dimensions must be positive")

    @property
    def bus_bits(self) -> int:
        """Wire width of one bus transfer."""
        return self.device_bits * self.devices // self.beats

    @property
    def codeword_bits(self) -> int:
        """Bits delivered per full codeword transfer (all beats)."""
        return self.device_bits * self.devices

    @property
    def bits_per_device(self) -> int:
        """Bits of one codeword held by a single device (all beats)."""
        return self.codeword_bits // self.devices

    def describe(self) -> str:
        return (
            f"{self.name}: {self.devices} x{self.device_bits} devices, "
            f"{self.beats} beat(s), {self.codeword_bits}-bit codewords"
        )


def ddr4_144bit() -> ChannelGeometry:
    """Two DDR4 ECC DIMMs lockstepped: 36 x4 devices, 144-bit transfers."""
    return ChannelGeometry(name="DDR4-2DIMM-x4", device_bits=4, devices=36)


def ddr5_80bit_x4() -> ChannelGeometry:
    """Both 40-bit DDR5 channels of one DIMM: 20 x4 devices."""
    return ChannelGeometry(name="DDR5-2CH-x4", device_bits=4, devices=20)


def ddr5_40bit_x8_two_beats() -> ChannelGeometry:
    """One 40-bit DDR5 channel of ten x8 devices, codeword in two beats.

    This is the MUSE(80,67) arrangement (Section IV): 80-bit codewords
    split so "every bus transaction carries half of the 8-bit symbol" —
    each device contributes 4 wires per beat, 8 bits per codeword.
    """
    return ChannelGeometry(
        name="DDR5-1CH-x8-2beat", device_bits=8, devices=10, beats=2
    )


def hbm2_pim_256bit() -> ChannelGeometry:
    """HBM2 with in-memory MACs: 256-bit data words (Section VI-B).

    The geometry models the 256-bit read datapath plus the 12 check
    bits of MUSE(268,256); the striping uses 67 virtual x4 slices.
    """
    return ChannelGeometry(name="HBM2-PIM", device_bits=4, devices=67)


@dataclass(frozen=True)
class MemoryConfig:
    """A geometry plus capacity, addressing codewords by index."""

    geometry: ChannelGeometry
    codewords: int

    @property
    def data_bytes_per_codeword(self) -> int:
        """Payload granule (8 bytes for the paper's 64-bit granule)."""
        return 8

    def validate_address(self, address: int) -> None:
        if not 0 <= address < self.codewords:
            raise IndexError(
                f"codeword address {address} out of range [0, {self.codewords})"
            )
