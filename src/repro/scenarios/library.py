"""The built-in fault scenarios.

Every scenario here implements the same stream twice — a vectorised
``corrupt_batch`` over a :class:`~repro.scenarios.BatchSymbolView` and
a pure-Python ``corrupt_word`` over a
:class:`~repro.scenarios.WordSymbolView` — with integer-only
arithmetic, so the two paths agree bit for bit (pinned by
``tests/scenarios``).  All draws come from the scenario stream key via
sub-streams tagged below; ties in the k-smallest symbol selection are
broken by index on the scalar side and are astronomically unlikely to
occur at all with 64-bit scores (the same assumption the MSED
generators make).

Built-ins (``repro-muse table4 --scenario NAME``):

========  ============================================================
msed      the paper's transient model: ``k`` symbols replaced by
          uniform never-the-original values (legacy stream, supports
          importance-splitting escalation)
mbu       correlated multi-bit upset: an adjacent-bit burst (2..4
          bits) XORed *inside* each of the ``k`` chosen symbols
stuck     permanent faults: two stuck-at cells (symbol, bit, forced
          level per trial) layered *under* the transient k-symbol
          replacement — the fault wins after the flips land
rowfail   row failure: one row index per trial; the bit sharing that
          row index flips in **every** symbol (``k`` ignored)
scrub     scrubbing interval: a geometric number of reads (p=1/4,
          capped at 8) accumulates that many distinct single-bit
          upsets between scrubs before the word is decoded
wear      wear profile: every cell's flip probability rises linearly
          with the trial-indexed write count; the most-worn cell of a
          trial fails outright when no cell fired
========  ============================================================

A delivered word can, in rare corners (e.g. a stuck cell forcing a
flipped bit back), equal the original codeword; tallies classify the
delivered word, so such reads count as CLEAN -> silent, exactly like
an aliased corruption.  The XOR-based scenarios (mbu/rowfail/scrub)
never return the original by construction.
"""

from __future__ import annotations

from repro.orchestrate.rng import counter_draws, derive_key, trial_seed
from repro.scenarios import (
    BatchSymbolView,
    Scenario,
    WordSymbolView,
    register_scenario,
)

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

#: Sub-stream tags under the scenario stream key.  Every scenario uses
#: its own key (hashed from its name), so tags may overlap *across*
#: scenarios but must be distinct within one.
S_CHOICE = 1   # per-symbol selection scores (k smallest win)
S_VALUE = 2    # replacement value draws, one per chosen slot
S_LEN = 3      # mbu: burst length draw per slot
S_START = 4    # mbu: burst start draw per slot
S_FSYM = 5     # stuck: fault's symbol index
S_FBIT = 6     # stuck: fault's bit index
S_FVAL = 7     # stuck: fault's forced level
S_ROW = 8      # rowfail: the failing row index
S_SCRUB = 9    # scrub: geometric interval continuation draws
S_POS = 10     # scrub: accumulated upset bit positions
S_WEAR = 11    # wear: per-cell flip draws

_MASK64 = (1 << 64) - 1

#: mbu: burst spans 2..4 adjacent bits (clipped to the symbol width).
MBU_MAX_BURST = 4
#: stuck: permanent faults per trial.
STUCK_FAULTS = 2
#: scrub: reads between scrubs is 1 + Geometric(p); draw < threshold
#: continues the interval.  p = 1/4 -> threshold 2^62.
SCRUB_CONTINUE_THRESHOLD = 1 << 62
SCRUB_MAX_READS = 8
#: wear: per-cell flip threshold BASE + RATE*min(t, TCAP) out of 2^64.
#: BASE = 2^-8 baseline; the rate doubles it every WEAR_HALF writes.
WEAR_BASE = 1 << 56
WEAR_HALF = 50_000
WEAR_RATE = WEAR_BASE // WEAR_HALF
WEAR_TRIAL_CAP = 10_000_000


def _draw(skey: int, tag: int, slot: int, trial: int) -> int:
    """One scalar draw of sub-stream ``(tag, slot)`` at ``trial``."""
    return trial_seed(derive_key(skey, tag, slot), trial)


def _draws(skey: int, tag: int, slot: int, trials) -> "np.ndarray":
    """The batch twin of :func:`_draw` over a counter array."""
    return counter_draws(derive_key(skey, tag, slot), trials)


def _chosen_sorted_word(
    skey: int, trial: int, symbol_count: int, k: int
) -> list[int]:
    """The ``k`` chosen symbols of ``trial``, ascending.

    k smallest of ``symbol_count`` iid uint64 scores — the MSED
    selection trick — but returned *sorted by index* so slot ``j``
    means the same symbol on the scalar and batch paths (argpartition's
    internal order is arbitrary).
    """
    scores = sorted(
        (_draw(skey, S_CHOICE, index, trial), index)
        for index in range(symbol_count)
    )
    return sorted(index for _, index in scores[:k])


def _chosen_sorted_batch(
    skey: int, trials, symbol_count: int, k: int
) -> "np.ndarray":
    scores = np.empty((trials.size, symbol_count), dtype=np.uint64)
    for index in range(symbol_count):
        scores[:, index] = _draws(skey, S_CHOICE, index, trials)
    chosen = np.argpartition(scores, k - 1, axis=1)[:, :k]
    return np.sort(chosen, axis=1)


def _apply_mask_batch(view: BatchSymbolView, masks: "np.ndarray") -> None:
    """XOR per-symbol ``masks`` (rows x symbols, uint64) into the view."""
    for index in range(masks.shape[1]):
        rows = np.flatnonzero(masks[:, index])
        if rows.size:
            view.write(
                rows, index, view.read(rows, index) ^ masks[rows, index]
            )


# ----------------------------------------------------------------------
# mbu — correlated multi-bit upset
# ----------------------------------------------------------------------

def _mbu_mask(width: int, r_len: int, r_start: int) -> int:
    if width < 2:
        return 1
    longest = min(MBU_MAX_BURST, width)
    length = 2 + r_len % (longest - 1)
    start = r_start % (width - length + 1)
    return ((1 << length) - 1) << start


def mbu_word(skey: int, view: WordSymbolView, k_symbols: int) -> None:
    chosen = _chosen_sorted_word(skey, view.trial, len(view.widths), k_symbols)
    for slot, index in enumerate(chosen):
        mask = _mbu_mask(
            view.widths[index],
            _draw(skey, S_LEN, slot, view.trial),
            _draw(skey, S_START, slot, view.trial),
        )
        view.put(index, view.get(index) ^ mask)


def mbu_batch(skey: int, view: BatchSymbolView, k_symbols: int) -> None:
    trials = view.trials
    chosen = _chosen_sorted_batch(skey, trials, len(view.widths), k_symbols)
    for slot in range(k_symbols):
        r_len = _draws(skey, S_LEN, slot, trials)
        r_start = _draws(skey, S_START, slot, trials)
        slot_symbols = chosen[:, slot]
        for index, width in enumerate(view.widths):
            rows = np.flatnonzero(slot_symbols == index)
            if rows.size == 0:
                continue
            if width < 2:
                masks = np.ones(rows.size, dtype=np.uint64)
            else:
                longest = min(MBU_MAX_BURST, width)
                length = np.uint64(2) + r_len[rows] % np.uint64(longest - 1)
                start = r_start[rows] % (
                    np.uint64(width) - length + np.uint64(1)
                )
                masks = ((np.uint64(1) << length) - np.uint64(1)) << start
            view.write(rows, index, view.read(rows, index) ^ masks)


# ----------------------------------------------------------------------
# stuck — permanent stuck-at faults under transient flips
# ----------------------------------------------------------------------

def _replace_word(skey: int, view: WordSymbolView, chosen: list[int]) -> None:
    """Uniform never-the-original replacement of the chosen symbols."""
    for slot, index in enumerate(chosen):
        width = view.widths[index]
        original = view.get(index)
        draw = _draw(skey, S_VALUE, slot, view.trial) % ((1 << width) - 1)
        view.put(index, draw + (1 if draw >= original else 0))


def _replace_batch(
    skey: int, view: BatchSymbolView, chosen: "np.ndarray"
) -> None:
    trials = view.trials
    for slot in range(chosen.shape[1]):
        draws = _draws(skey, S_VALUE, slot, trials)
        slot_symbols = chosen[:, slot]
        for index, width in enumerate(view.widths):
            rows = np.flatnonzero(slot_symbols == index)
            if rows.size == 0:
                continue
            original = view.read(rows, index)
            draw = draws[rows] % np.uint64((1 << width) - 1)
            view.write(
                rows, index, draw + (draw >= original).astype(np.uint64)
            )


def stuck_word(skey: int, view: WordSymbolView, k_symbols: int) -> None:
    chosen = _chosen_sorted_word(skey, view.trial, len(view.widths), k_symbols)
    _replace_word(skey, view, chosen)
    symbol_count = len(view.widths)
    for fault in range(STUCK_FAULTS):
        index = _draw(skey, S_FSYM, fault, view.trial) % symbol_count
        bit = _draw(skey, S_FBIT, fault, view.trial) % view.widths[index]
        value = view.get(index)
        if _draw(skey, S_FVAL, fault, view.trial) & 1:
            value |= 1 << bit
        else:
            value &= ~(1 << bit)
        view.put(index, value)


def stuck_batch(skey: int, view: BatchSymbolView, k_symbols: int) -> None:
    trials = view.trials
    symbol_count = len(view.widths)
    _replace_batch(
        skey, view,
        _chosen_sorted_batch(skey, trials, symbol_count, k_symbols),
    )
    for fault in range(STUCK_FAULTS):
        fault_symbols = _draws(skey, S_FSYM, fault, trials) % np.uint64(
            symbol_count
        )
        fault_bits = _draws(skey, S_FBIT, fault, trials)
        stuck_high = (_draws(skey, S_FVAL, fault, trials) & np.uint64(1)).astype(
            bool
        )
        for index, width in enumerate(view.widths):
            rows = np.flatnonzero(fault_symbols == index)
            if rows.size == 0:
                continue
            bitmask = np.uint64(1) << (fault_bits[rows] % np.uint64(width))
            value = view.read(rows, index)
            view.write(
                rows,
                index,
                np.where(stuck_high[rows], value | bitmask, value & ~bitmask),
            )


# ----------------------------------------------------------------------
# rowfail — one row index fails across every symbol
# ----------------------------------------------------------------------

def rowfail_word(skey: int, view: WordSymbolView, k_symbols: int) -> None:
    row = _draw(skey, S_ROW, 0, view.trial) % max(view.widths)
    for index, width in enumerate(view.widths):
        view.put(index, view.get(index) ^ (1 << (row % width)))


def rowfail_batch(skey: int, view: BatchSymbolView, k_symbols: int) -> None:
    trials = view.trials
    rows_all = np.arange(trials.size, dtype=np.int64)
    row = _draws(skey, S_ROW, 0, trials) % np.uint64(max(view.widths))
    for index, width in enumerate(view.widths):
        masks = np.uint64(1) << (row % np.uint64(width))
        view.write(rows_all, index, view.read(rows_all, index) ^ masks)


# ----------------------------------------------------------------------
# scrub — error accumulation between scrubs
# ----------------------------------------------------------------------

def _symbol_offsets(widths: tuple[int, ...]) -> list[int]:
    offsets = [0]
    for width in widths:
        offsets.append(offsets[-1] + width)
    return offsets


def scrub_word(skey: int, view: WordSymbolView, k_symbols: int) -> None:
    upsets = 1
    for reads in range(SCRUB_MAX_READS - 1):
        if _draw(skey, S_SCRUB, reads, view.trial) < SCRUB_CONTINUE_THRESHOLD:
            break
        upsets += 1
    offsets = _symbol_offsets(view.widths)
    total_bits = offsets[-1]
    chosen: list[int] = []
    for slot in range(upsets):
        candidate = _draw(skey, S_POS, slot, view.trial) % (total_bits - slot)
        for taken in sorted(chosen):
            if candidate >= taken:
                candidate += 1
        chosen.append(candidate)
    for position in chosen:
        index = 0
        while offsets[index + 1] <= position:
            index += 1
        view.put(index, view.get(index) ^ (1 << (position - offsets[index])))


def scrub_batch(skey: int, view: BatchSymbolView, k_symbols: int) -> None:
    trials = view.trials
    size = trials.size
    upsets = np.ones(size, dtype=np.int64)
    alive = np.ones(size, dtype=bool)
    for reads in range(SCRUB_MAX_READS - 1):
        draws = _draws(skey, S_SCRUB, reads, trials)
        alive &= draws >= np.uint64(SCRUB_CONTINUE_THRESHOLD)
        upsets += alive.astype(np.int64)
    offsets = _symbol_offsets(view.widths)
    total_bits = offsets[-1]
    # Distinct bit positions via a vectorised Fisher-Yates: draw slot i
    # into a range shrunk by i, then step over each earlier pick.
    positions = np.zeros((size, SCRUB_MAX_READS), dtype=np.int64)
    for slot in range(SCRUB_MAX_READS):
        candidate = (
            _draws(skey, S_POS, slot, trials) % np.uint64(total_bits - slot)
        ).astype(np.int64)
        if slot:
            taken = np.sort(positions[:, :slot], axis=1)
            for earlier in range(slot):
                candidate += candidate >= taken[:, earlier]
        positions[:, slot] = candidate
    starts = np.asarray(offsets[:-1], dtype=np.int64)
    masks = np.zeros((size, len(view.widths)), dtype=np.uint64)
    for slot in range(SCRUB_MAX_READS):
        active = np.flatnonzero(upsets > slot)
        if active.size == 0:
            continue
        position = positions[active, slot]
        index = np.searchsorted(starts, position, side="right") - 1
        bit = (position - starts[index]).astype(np.uint64)
        np.bitwise_xor.at(masks, (active, index), np.uint64(1) << bit)
    _apply_mask_batch(view, masks)


# ----------------------------------------------------------------------
# wear — flip probability rising with the write count
# ----------------------------------------------------------------------

def wear_word(skey: int, view: WordSymbolView, k_symbols: int) -> None:
    threshold = WEAR_BASE + WEAR_RATE * min(view.trial, WEAR_TRIAL_CAP)
    best = _MASK64
    best_index = 0
    best_bit = 0
    cell = 0
    flipped = False
    for index, width in enumerate(view.widths):
        mask = 0
        for bit in range(width):
            draw = _draw(skey, S_WEAR, cell, view.trial)
            if draw < threshold:
                mask ^= 1 << bit
            if draw < best:
                best = draw
                best_index = index
                best_bit = bit
            cell += 1
        if mask:
            flipped = True
            view.put(index, view.get(index) ^ mask)
    if not flipped:
        # The dominant weak cell fails outright: every trial delivers a
        # disturbed word, so early (low-wear) trials still measure the
        # decoder rather than the no-op read.
        view.put(best_index, view.get(best_index) ^ (1 << best_bit))


def wear_batch(skey: int, view: BatchSymbolView, k_symbols: int) -> None:
    trials = view.trials
    size = trials.size
    threshold = np.uint64(WEAR_BASE) + np.uint64(WEAR_RATE) * np.minimum(
        trials, np.uint64(WEAR_TRIAL_CAP)
    )
    masks = np.zeros((size, len(view.widths)), dtype=np.uint64)
    best = np.full(size, _MASK64, dtype=np.uint64)
    best_index = np.zeros(size, dtype=np.int64)
    best_bit = np.zeros(size, dtype=np.uint64)
    cell = 0
    for index, width in enumerate(view.widths):
        for bit in range(width):
            draws = _draws(skey, S_WEAR, cell, trials)
            masks[:, index] ^= np.where(
                draws < threshold, np.uint64(1 << bit), np.uint64(0)
            )
            better = draws < best
            best[better] = draws[better]
            best_index[better] = index
            best_bit[better] = np.uint64(bit)
            cell += 1
    calm = np.flatnonzero(~masks.any(axis=1))
    if calm.size:
        masks[calm, best_index[calm]] = np.uint64(1) << best_bit[calm]
    _apply_mask_batch(view, masks)


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------

register_scenario(
    "msed",
    lambda: Scenario(
        name="msed",
        summary=(
            "transient k-symbol replacement, the paper's Table IV model "
            "(legacy stream; splitting-capable)"
        ),
        supports_splitting=True,
    ),
)
register_scenario(
    "mbu",
    lambda: Scenario(
        name="mbu",
        summary="correlated multi-bit upset: 2-4 adjacent bits per chosen symbol",
        corrupt_batch=mbu_batch,
        corrupt_word=mbu_word,
    ),
)
register_scenario(
    "stuck",
    lambda: Scenario(
        name="stuck",
        summary="two per-trial stuck-at cells layered under transient flips",
        corrupt_batch=stuck_batch,
        corrupt_word=stuck_word,
    ),
)
register_scenario(
    "rowfail",
    lambda: Scenario(
        name="rowfail",
        summary="row failure: the same row index flips in every symbol",
        corrupt_batch=rowfail_batch,
        corrupt_word=rowfail_word,
    ),
)
register_scenario(
    "scrub",
    lambda: Scenario(
        name="scrub",
        summary="geometric read count between scrubs accumulates distinct upsets",
        corrupt_batch=scrub_batch,
        corrupt_word=scrub_word,
    ),
)
register_scenario(
    "wear",
    lambda: Scenario(
        name="wear",
        summary="per-cell flip probability rising with the trial-indexed writes",
        corrupt_batch=wear_batch,
        corrupt_word=wear_word,
    ),
)
