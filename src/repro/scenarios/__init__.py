"""Pluggable fault-scenario registry for the Monte-Carlo simulators.

A *scenario* is a named corruption recipe: given the clean codeword of
trial ``t`` it decides which symbols/bits to disturb and how.  Every
scenario is a pure function of ``(spec, chunk range, splitmix64 key)``
— the same determinism contract as the MSED stream
(:mod:`repro.orchestrate.corruption`) — so its tallies are
byte-identical across ``(chunk_size, jobs, workers)`` and backends at
a fixed seed.

Unlike the historical MSED generators (whose numpy-free sequential
fallback is a *different* stream), every registered scenario ships two
synchronised implementations of the **same** stream:

* ``corrupt_batch(skey, view, k_symbols)`` — vectorised over a whole
  chunk (:class:`BatchSymbolView`, numpy);
* ``corrupt_word(skey, view, k_symbols)`` — the pure-Python scalar
  reference over one word (:class:`WordSymbolView`).

Both draw from ``skey`` — :func:`scenario_stream_key` of the run key
and the scenario *name* — with integer-only arithmetic, so the scalar
and batch paths agree bit for bit and two scenarios sharing a seed
never share a corruption stream.  The clean data words stay on the
base key's ``DATA`` stream, so every scenario corrupts the *same*
encoded words.

The registry is the single source of scenario names: CLI ``--scenario``
choices, spec fields (and therefore ``spec_fingerprint`` result-cache
cells), and the campaign scheduler's escalation support all derive
from it.  Register your own with::

    from repro.scenarios import Scenario, register_scenario

    register_scenario("mine", lambda: Scenario(
        name="mine", summary="...", corrupt_batch=..., corrupt_word=...,
    ))
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.orchestrate.rng import derive_key

__all__ = [
    "BatchSymbolView",
    "Scenario",
    "STREAM_SCENARIO",
    "WordSymbolView",
    "register_scenario",
    "resolve_scenario",
    "scenario_names",
    "scenario_stream_key",
    "scenario_summaries",
]

#: Stream tag separating every scenario's draws from the base
#: DATA/CHOICE/VALUE streams of :mod:`repro.orchestrate.corruption`.
STREAM_SCENARIO = 3


def scenario_stream_key(key: int, name: str) -> int:
    """The per-scenario draw key under run key ``key``.

    Hashing the *name* in means two scenarios at the same seed can
    never consume each other's draws, while the clean data words
    (drawn from ``key`` itself) stay shared across scenarios.
    """
    return derive_key(key, STREAM_SCENARIO, zlib.crc32(name.encode("utf-8")))


@dataclass
class BatchSymbolView:
    """A chunk of codewords seen as an editable symbol grid.

    ``trials`` is the uint64 *global* trial-counter array of the chunk
    (scenarios key their draws off it, which is what makes them
    split-invariant); ``read(rows, index)`` returns the current uint64
    values of symbol ``index`` for the given row indices and
    ``write(rows, index, values)`` stores them back.  Constructed by
    the chunk drivers in :mod:`repro.orchestrate.corruption` for both
    code families, so one scenario implementation serves MUSE and RS.
    """

    trials: "object"
    widths: tuple[int, ...]
    read: Callable[[object, int], object]
    write: Callable[[object, int, object], None]


@dataclass
class WordSymbolView:
    """One codeword of global trial ``trial`` as an editable symbol row.

    The scalar twin of :class:`BatchSymbolView`: ``get(index)`` /
    ``put(index, value)`` operate on plain Python ints.
    """

    trial: int
    widths: tuple[int, ...]
    get: Callable[[int], int]
    put: Callable[[int, int], None]


@dataclass(frozen=True)
class Scenario:
    """One registered corruption recipe.

    ``corrupt_batch`` / ``corrupt_word`` both receive the scenario
    stream key, a symbol view, and the simulator's ``k_symbols`` (which
    a scenario may ignore — e.g. row failure corrupts every symbol).
    ``None`` marks the built-in ``"msed"`` scenario, whose generators
    predate the registry and live on the base key's streams
    (:func:`repro.orchestrate.corruption.muse_corruption_chunk`).

    ``supports_splitting`` gates the campaign scheduler's zero-event
    escalation: only scenarios sharing the plain MSED prefix stream can
    hand their tail to the importance-splitting estimator; everything
    else reports a Clopper-Pearson bound instead.
    """

    name: str
    summary: str
    corrupt_batch: Optional[Callable] = field(default=None, repr=False)
    corrupt_word: Optional[Callable] = field(default=None, repr=False)
    supports_splitting: bool = False


_FACTORIES: dict[str, Callable[[], Scenario]] = {}
_RESOLVED: dict[str, Scenario] = {}


def register_scenario(name: str, factory: Callable[[], Scenario]) -> None:
    """Register ``factory`` (a zero-arg ``Scenario`` builder) as ``name``.

    Names are registry keys *and* spec-fingerprint material, so
    re-registering one is refused — a silent replacement could make two
    different corruption streams share result-cache cells.
    """
    if not name or not name.replace("-", "").replace("_", "").isalnum():
        raise ValueError(f"scenario name must be a non-empty slug, got {name!r}")
    if name in _FACTORIES:
        raise ValueError(f"scenario {name!r} is already registered")
    _FACTORIES[name] = factory


def resolve_scenario(name: str) -> Scenario:
    """The :class:`Scenario` registered as ``name`` (built once, cached)."""
    scenario = _RESOLVED.get(name)
    if scenario is None:
        factory = _FACTORIES.get(name)
        if factory is None:
            raise ValueError(
                f"unknown scenario {name!r}; registered: "
                f"{', '.join(scenario_names())}"
            )
        scenario = factory()
        if scenario.name != name:
            raise ValueError(
                f"scenario factory for {name!r} built one named "
                f"{scenario.name!r}"
            )
        _RESOLVED[name] = scenario
    return scenario


def scenario_names() -> tuple[str, ...]:
    """Every registered scenario name, in registration order.

    The built-ins register ``"msed"`` first, so it leads CLI choices.
    """
    return tuple(_FACTORIES)


def scenario_summaries() -> dict[str, str]:
    """``name -> one-line summary`` for help text and docs."""
    return {name: resolve_scenario(name).summary for name in _FACTORIES}


# Built-in scenarios register on import; library.py must stay below the
# registry definitions it calls into.
from repro.scenarios import library as _library  # noqa: E402,F401
