"""The shard runner: fan chunk tasks over a process pool, fold tallies.

``run_sharded(tasks, jobs)`` executes every :class:`ChunkTask` — in
process for ``jobs <= 1``, across a :class:`ProcessPoolExecutor`
otherwise — and folds each task's tally into its group via ``merge``.
Because every tally merge is plain integer addition (associative and
commutative) and every chunk's content is a pure function of
``(spec, chunk, key)``, the folded result is byte-identical whichever
path ran and in whatever order futures completed: ``jobs=8`` equals
``jobs=1`` equals any other split.

Memory stays flat in the total trial count: only per-chunk arrays and
per-group counter objects are ever alive, never a ``(trials, ...)``
materialisation.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Iterable, Sequence

from repro.orchestrate.worker import ChunkTask, run_chunk_task

ProgressCallback = Callable[[int, int], None]


def _fold(results: dict, group: Any, tally: Any) -> None:
    held = results.get(group)
    if held is None:
        results[group] = tally
    else:
        held.merge(tally)


def map_unordered(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    jobs: int = 1,
    progress: ProgressCallback | None = None,
    on_result: Callable[[Any], None] | None = None,
) -> None:
    """The one serial-or-pool fan-out skeleton every sweep shares.

    Runs ``fn`` over every task — in process for ``jobs <= 1``, across
    a :class:`ProcessPoolExecutor` otherwise (``fn`` and the tasks must
    then be picklable).  ``on_result(result)`` and
    ``progress(done, total)`` both fire on the parent as each task
    completes, in completion order; callers needing a deterministic
    result order fold commutatively or reorder afterwards.
    """
    task_list: Sequence[Any] = list(tasks)
    total = len(task_list)
    if jobs <= 1 or total <= 1:
        for done, task in enumerate(task_list, start=1):
            result = fn(task)
            if on_result is not None:
                on_result(result)
            if progress is not None:
                progress(done, total)
        return
    with ProcessPoolExecutor(max_workers=min(jobs, total)) as executor:
        futures = [executor.submit(fn, task) for task in task_list]
        try:
            for done, future in enumerate(as_completed(futures), start=1):
                result = future.result()
                if on_result is not None:
                    on_result(result)
                if progress is not None:
                    progress(done, total)
        except BaseException:
            # Surface the failure now: without cancel_futures every
            # queued task would still run before __exit__ returned.
            executor.shutdown(wait=False, cancel_futures=True)
            raise


def run_sharded(
    tasks: Iterable[ChunkTask],
    jobs: int = 1,
    progress: ProgressCallback | None = None,
    executor: Any | None = None,
) -> dict[Any, Any]:
    """Run every chunk task and return ``{group: folded tally}``.

    Folding is plain integer addition, so the result is independent of
    completion order and of ``jobs``.

    ``executor`` overrides the serial/pool paths with any object
    exposing ``run_tasks(tasks, progress) -> {group: tally}`` under the
    same exactly-once fold contract — in practice a
    :class:`repro.distribute.DistributedSession`, which fans the tasks
    over remote worker processes instead of a local pool.
    """
    if executor is not None:
        return executor.run_tasks(list(tasks), progress)
    results: dict[Any, Any] = {}
    map_unordered(
        run_chunk_task,
        tasks,
        jobs,
        progress,
        lambda pair: _fold(results, *pair),
    )
    return results
