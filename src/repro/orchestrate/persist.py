"""Crash-safe file writes: temp file + atomic rename.

A sweep summary or a checkpoint journal is only useful if it can never
be observed half-written: a reader (or a resumed run) that loads a
truncated JSON would crash — or worse, silently resume from garbage.
POSIX gives the needed primitive for free: ``os.replace`` atomically
swaps a fully-written sibling temp file into place, so any concurrent
or subsequent reader sees either the old complete file or the new
complete file, never a prefix.

The temp file lives in the *same directory* as the target (rename is
only atomic within a filesystem) and is fsync'd before the swap, so a
crash between write and rename leaves the target untouched.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from pathlib import Path
from typing import Any


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` so readers never see a partial file."""
    path = Path(path)
    fd, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        # The target is untouched; don't leave the temp file behind.
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def atomic_write_json(path: str | Path, payload: Any, indent: int = 2) -> None:
    """Serialise ``payload`` first, then atomically write it.

    Serialising before opening anything means even a non-JSON-able
    payload can never disturb an existing file at ``path``.
    """
    text = json.dumps(payload, indent=indent) + "\n"
    atomic_write_text(path, text)


def encode_crc_line(record: dict) -> bytes:
    """One append-only line: ``record`` plus a CRC32 of its canonical form.

    The CRC is computed over the compact, key-sorted JSON encoding of
    the record *without* the ``crc`` field, then stored alongside it —
    so :func:`decode_crc_line` can re-canonicalise and verify without
    caring about field order or whitespace on disk.
    """
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode())
    return (
        json.dumps(
            {**record, "crc": crc}, sort_keys=True, separators=(",", ":")
        ).encode()
        + b"\n"
    )


def decode_crc_line(line: bytes) -> dict | None:
    """Parse + CRC-verify one line; ``None`` if torn or corrupt."""
    try:
        record = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or "crc" not in record:
        return None
    crc = record.pop("crc")
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(body.encode()) != crc:
        return None
    return record


def durable_append(path: str | Path, data: bytes) -> None:
    """Append ``data`` to ``path`` and fsync before returning.

    Appends are **not** atomic the way :func:`atomic_write_text` is: a
    crash mid-append can leave a torn tail.  Callers must therefore be
    able to recognise and discard a damaged suffix on load — the
    checkpoint journal does this with per-record CRCs
    (:mod:`repro.distribute.checkpoint`).  What the fsync buys is
    ordering: once this returns, every *previous* record is on disk,
    so at most the final in-flight record can ever be torn.
    """
    with open(path, "ab") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
