"""Streaming, multi-process Monte-Carlo orchestration.

Layered over the PR-1/PR-2 batch engines, this package scales the MSED
studies past one process while keeping memory flat in trial count:

* :mod:`~repro.orchestrate.rng` — counter-based randomness: every draw
  is a pure hash of ``(stream key, global trial index)``, so the trial
  stream is identical under any chunking;
* :mod:`~repro.orchestrate.plan` — :func:`plan_chunks` splits a run
  into :class:`Chunk` ranges (the streaming unit);
* :mod:`~repro.orchestrate.corruption` — chunk-addressable corruption
  generators for both code families;
* :mod:`~repro.orchestrate.worker` / :mod:`~repro.orchestrate.pool` —
  picklable :class:`ChunkTask` specs, the per-worker runner cache, and
  :func:`run_sharded`, which fans design points x chunks over a
  :class:`~concurrent.futures.ProcessPoolExecutor` and folds the
  mergeable tallies;
* :mod:`~repro.orchestrate.sweep` — :func:`run_all`, the concurrent
  ``repro-muse all`` sweep with captured reports and a results
  directory.

The invariant every piece preserves: for a fixed master seed the folded
tally of a run is **byte-identical** for every ``(chunk_size, jobs)``
combination, including ``jobs=1`` vs ``jobs>1``.
"""

from repro.orchestrate.persist import atomic_write_json, atomic_write_text
from repro.orchestrate.plan import (
    Chunk,
    DEFAULT_CHUNK_SIZE,
    plan_chunk_range,
    plan_chunks,
    resolve_chunk_size,
)
from repro.orchestrate.pool import ProgressCallback, map_unordered, run_sharded
from repro.orchestrate.rng import counter_draws, derive_key, mix64, trial_seed
from repro.orchestrate.sweep import (
    EXPERIMENT_TARGETS,
    ExperimentTask,
    SweepOutcome,
    resolve_experiment,
    run_all,
)
from repro.orchestrate.worker import (
    ChunkTask,
    CodeRef,
    MuseSimSpec,
    RsSimSpec,
    group_labels,
    run_chunk_task,
)

__all__ = [
    "Chunk",
    "ChunkTask",
    "CodeRef",
    "DEFAULT_CHUNK_SIZE",
    "EXPERIMENT_TARGETS",
    "ExperimentTask",
    "MuseSimSpec",
    "ProgressCallback",
    "RsSimSpec",
    "SweepOutcome",
    "atomic_write_json",
    "atomic_write_text",
    "counter_draws",
    "derive_key",
    "group_labels",
    "map_unordered",
    "mix64",
    "plan_chunk_range",
    "plan_chunks",
    "resolve_chunk_size",
    "resolve_experiment",
    "run_all",
    "run_chunk_task",
    "run_sharded",
    "trial_seed",
]
