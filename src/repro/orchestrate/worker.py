"""Picklable shard tasks and the worker-side runner cache.

A shard task must cross a process boundary, so it carries *recipes*,
not objects: a :class:`CodeRef` names a zero-argument-cheap factory
("module:callable" plus args) that the worker calls to rebuild the code
— the expensive per-code state (ELC tables, engine lookup tables) is
built once per worker and cached, instead of being pickled per task.

The contract a spec implements:

* it is a frozen (hashable, picklable) dataclass;
* ``spec.build()`` returns a *runner* exposing
  ``run_chunk(chunk, key) -> tally`` where the tally supports
  ``merge`` (associative fold, see :class:`MsedTally`).

:func:`run_chunk_task` is the function the process pool actually
executes; :mod:`repro.orchestrate.pool` folds its results by group.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any

from repro.orchestrate.plan import Chunk


@dataclass(frozen=True)
class CodeRef:
    """A picklable reference to a code factory: ``"module:callable"``.

    Examples: ``CodeRef("repro.core.codes:muse_80_69")``,
    ``CodeRef("repro.reliability.monte_carlo:muse_design_point", (3,))``.
    """

    target: str
    args: tuple = ()

    def build(self) -> Any:
        module_name, sep, attr = self.target.partition(":")
        if not sep or not attr:
            raise ValueError(
                f"CodeRef target must look like 'module:callable', "
                f"got {self.target!r}"
            )
        factory = getattr(importlib.import_module(module_name), attr)
        return factory(*self.args)


def as_code_ref(code_ref: "CodeRef | str | None") -> CodeRef:
    """Normalise a user-supplied ref (``CodeRef`` or string) or fail."""
    if code_ref is None:
        raise ValueError(
            "multi-process runs rebuild the code in each worker and need "
            "a picklable code_ref, e.g. "
            "CodeRef('repro.core.codes:muse_80_69') or the 'module:callable' "
            "string directly"
        )
    if isinstance(code_ref, CodeRef):
        return code_ref
    return CodeRef(code_ref)


def checked_code_ref(code_ref, code, signature) -> CodeRef:
    """Resolve ``code_ref`` and prove it rebuilds *this* code.

    Workers tally whatever the ref's factory returns, so a ref naming a
    different code would silently break the jobs-invariance contract;
    one parent-side rebuild per run catches the mismatch up front.
    """
    ref = as_code_ref(code_ref)
    rebuilt = ref.build()
    if signature(rebuilt) != signature(code):
        raise ValueError(
            f"code_ref {ref.target!r} (args={ref.args!r}) rebuilds "
            f"{rebuilt!r}, which does not match this simulator's code "
            f"{code!r}; workers would tally a different code"
        )
    return ref


def muse_signature(code) -> tuple:
    """What must match for two MUSE codes to tally identically."""
    return (code.n, code.m, code.layout.symbols)


def rs_signature(code) -> tuple:
    """What must match for two RS codes to tally identically."""
    return (code.symbol_bits, code.data_symbols, code.partial_bits)


@dataclass(frozen=True)
class MuseSimSpec:
    """Rebuild a :class:`MuseMsedSimulator` inside a worker."""

    code: CodeRef
    k_symbols: int = 2
    ripple_check: bool = True
    backend: str = "auto"
    #: Registered fault-scenario name (repro.scenarios).  Part of the
    #: spec — and therefore of ``spec_fingerprint`` — so result-cache
    #: and checkpoint cells of two scenarios can never collide.
    scenario: str = "msed"

    def build(self):
        from repro.reliability.monte_carlo import MuseMsedSimulator

        return MuseMsedSimulator(
            self.code.build(),
            k_symbols=self.k_symbols,
            ripple_check=self.ripple_check,
            backend=self.backend,
            scenario=self.scenario,
        )


@dataclass(frozen=True)
class RsSimSpec:
    """Rebuild an :class:`RsMsedSimulator` inside a worker."""

    code: CodeRef
    k_symbols: int = 2
    device_bits: int | None = 4
    backend: str = "auto"
    #: Registered fault-scenario name; see :class:`MuseSimSpec`.
    scenario: str = "msed"

    def build(self):
        from repro.reliability.monte_carlo import RsMsedSimulator

        return RsMsedSimulator(
            self.code.build(),
            k_symbols=self.k_symbols,
            device_bits=self.device_bits,
            backend=self.backend,
            scenario=self.scenario,
        )


def group_labels(count: int, group_ns: "str | None") -> list:
    """Fold-group labels for a design-point grid.

    Bare indices by default; ``group_ns`` prefixes them
    (``"frontier:3"``) so two different grids sharing one distributed
    session — or one checkpoint journal — can never collide.
    """
    if group_ns is None:
        return list(range(count))
    return [f"{group_ns}:{index}" for index in range(count)]


@dataclass(frozen=True)
class ChunkTask:
    """One shard: run ``spec``'s chunk ``chunk`` of stream ``key``.

    ``group`` labels which logical run (design point, experiment row)
    the resulting tally folds into.
    """

    group: Any
    spec: Any
    chunk: Chunk
    key: int


#: Per-process runner cache: spec -> built runner.  Specs are frozen
#: dataclasses, so equality/hash are structural and a forked or spawned
#: worker rebuilds each distinct runner exactly once.
_RUNNERS: dict[Any, Any] = {}


def runner_for(spec: Any) -> Any:
    runner = _RUNNERS.get(spec)
    if runner is None:
        runner = spec.build()
        _RUNNERS[spec] = runner
    return runner


def run_chunk_task(task: ChunkTask) -> tuple[Any, Any]:
    """Execute one shard; the pool's sole entry point into a worker.

    The ``decode_chunk`` span is a no-op in pool children and loopback
    worker subprocesses (no telemetry session there — the coordinator
    observes their chunks instead), but an external ``repro-muse
    worker --telemetry-dir`` run records its own per-chunk trail.
    """
    from repro import telemetry

    runner = runner_for(task.spec)
    with telemetry.span("decode_chunk", point=str(task.group)):
        return task.group, runner.run_chunk(task.chunk, task.key)
