"""Counter-based randomness for chunked Monte-Carlo runs.

The streaming orchestrator needs a property sequential generators
cannot give: trial ``t`` of a ``(trials, seed)`` run must draw the same
random values no matter how the run is chunked or which worker process
executes the chunk.  We get it from a splitmix64 *counter* scheme —
draw ``t`` of stream ``key`` is ``mix64(key + (t + 1) * GOLDEN)``, a
pure function of ``(key, t)`` with no carried state.  Chunk boundaries
then fall wherever they like: a chunk covering trials ``[a, b)`` just
evaluates the hash at counters ``a..b-1``.

Two synchronised implementations:

* :func:`trial_seed` / :func:`derive_key` — pure-Python 64-bit ints,
  used to seed the per-trial :class:`random.Random` of the numpy-free
  sequential paths (the "hash-derived ints" scalar scheme);
* :func:`counter_draws` — the same hash over a uint64 counter ndarray,
  feeding the vectorised corruption generators.

``counter_draws(key, arange(a, b)) == [trial_seed(key, t) for t in
range(a, b)]`` — pinned by the orchestrator tests, and the reason the
scalar and vectorised chunkings agree about which trial is which.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

_MASK64 = (1 << 64) - 1

#: splitmix64 constants (Steele, Lea & Flood; public domain).
GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def mix64(x: int) -> int:
    """The splitmix64 output function over one 64-bit integer."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * _MIX1) & _MASK64
    x ^= x >> 27
    x = (x * _MIX2) & _MASK64
    return x ^ (x >> 31)


def derive_key(seed: int, *path: int) -> int:
    """Derive a 64-bit stream key from a master seed and a path.

    Distinct paths (e.g. ``(DATA, limb)`` vs ``(SCORES, symbol)``) give
    statistically independent streams of :func:`trial_seed` /
    :func:`counter_draws` values under the same master seed.
    """
    key = mix64((seed & _MASK64) + GOLDEN)
    for part in path:
        key = mix64(key ^ mix64((part & _MASK64) + GOLDEN))
    return key


def trial_seed(key: int, trial: int) -> int:
    """Draw ``trial`` of stream ``key`` as a plain 64-bit integer."""
    return mix64((key + ((trial + 1) * GOLDEN)) & _MASK64)


def counter_draws(key: int, trials: "np.ndarray") -> "np.ndarray":
    """Vectorised :func:`trial_seed`: one uint64 draw per counter.

    ``trials`` is a counter array (typically ``arange(start, stop)``,
    any integer dtype — it is coerced to uint64); element ``i`` equals
    ``trial_seed(key, trials[i])``.
    """
    if np is None:  # pragma: no cover - exercised only without numpy
        raise RuntimeError("numpy is required for vectorised counter draws")
    # A default-dtype arange is int64; mixing it with uint64 scalars
    # promotes to float64 and breaks the shift ufuncs.  asarray is a
    # no-copy view when the input is already uint64.
    trials = np.asarray(trials, dtype=np.uint64)
    x = np.uint64(key) + (trials + np.uint64(1)) * np.uint64(GOLDEN)
    x ^= x >> np.uint64(30)
    x *= np.uint64(_MIX1)
    x ^= x >> np.uint64(27)
    x *= np.uint64(_MIX2)
    return x ^ (x >> np.uint64(31))
