"""Chunked trial plans: split a run into fixed-size, seedless pieces.

A :class:`Chunk` names a half-open trial range ``[start, start+size)``
of one logical ``(trials, seed)`` run.  Because every random draw is a
counter hash of the *global* trial index (:mod:`repro.orchestrate.rng`),
a chunk is fully described by its range — no per-chunk seed state — and
a run's tally is a pure fold of its chunks' tallies, byte-identical for
any ``(chunk_size, jobs)`` split.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default trials per chunk: large enough to amortise the vectorised
#: kernels (throughput saturates around 10^4), small enough that peak
#: memory stays a few MB per in-flight chunk however many trials the
#: run totals.
DEFAULT_CHUNK_SIZE = 65_536


@dataclass(frozen=True)
class Chunk:
    """Trials ``[start, start + size)`` of one logical run."""

    start: int
    size: int

    @property
    def stop(self) -> int:
        return self.start + self.size


def resolve_chunk_size(trials: int, chunk_size: int | None) -> int:
    """Normalise a requested chunk size (``None`` -> the default cap)."""
    if chunk_size is None:
        return min(trials, DEFAULT_CHUNK_SIZE) or 1
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return chunk_size


def plan_chunks(trials: int, chunk_size: int | None = None) -> tuple[Chunk, ...]:
    """Split ``trials`` into contiguous chunks of at most ``chunk_size``.

    The last chunk carries the remainder; ``trials == 0`` plans nothing.
    """
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    return plan_chunk_range(0, trials, chunk_size)


def plan_chunk_range(
    start: int, stop: int, chunk_size: int | None = None
) -> tuple[Chunk, ...]:
    """Chunks covering trials ``[start, stop)`` of a logical run.

    The adaptive sampler extends a run round by round: trials
    ``[0, n_0)``, then ``[n_0, n_1)``, ...  Because draws are counter
    hashes of the global trial index, the chunks of a later round are
    planned exactly like a fresh run's — only the range moves — and the
    fold of all rounds equals a single fixed-trial run of ``n_k``
    trials (the prefix property the adaptive tests pin).
    """
    if start < 0 or stop < start:
        raise ValueError(
            f"need 0 <= start <= stop, got start={start} stop={stop}"
        )
    if stop == start:
        return ()
    size = resolve_chunk_size(stop - start, chunk_size)
    return tuple(
        Chunk(begin, min(size, stop - begin))
        for begin in range(start, stop, size)
    )
