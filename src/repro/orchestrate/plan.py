"""Chunked trial plans: split a run into fixed-size, seedless pieces.

A :class:`Chunk` names a half-open trial range ``[start, start+size)``
of one logical ``(trials, seed)`` run.  Because every random draw is a
counter hash of the *global* trial index (:mod:`repro.orchestrate.rng`),
a chunk is fully described by its range — no per-chunk seed state — and
a run's tally is a pure fold of its chunks' tallies, byte-identical for
any ``(chunk_size, jobs)`` split.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default trials per chunk: large enough to amortise the vectorised
#: kernels (throughput saturates around 10^4), small enough that peak
#: memory stays a few MB per in-flight chunk however many trials the
#: run totals.
DEFAULT_CHUNK_SIZE = 65_536


@dataclass(frozen=True)
class Chunk:
    """Trials ``[start, start + size)`` of one logical run."""

    start: int
    size: int

    @property
    def stop(self) -> int:
        return self.start + self.size


def resolve_chunk_size(trials: int, chunk_size: int | None) -> int:
    """Normalise a requested chunk size (``None`` -> the default cap)."""
    if chunk_size is None:
        return min(trials, DEFAULT_CHUNK_SIZE) or 1
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return chunk_size


def plan_chunks(trials: int, chunk_size: int | None = None) -> tuple[Chunk, ...]:
    """Split ``trials`` into contiguous chunks of at most ``chunk_size``.

    The last chunk carries the remainder; ``trials == 0`` plans nothing.
    """
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    if trials == 0:
        return ()
    size = resolve_chunk_size(trials, chunk_size)
    return tuple(
        Chunk(start, min(size, trials - start))
        for start in range(0, trials, size)
    )
