"""Concurrent experiment sweep: the parallel ``repro-muse all``.

Each experiment is an independent process-pool task — a picklable
``(name, kwargs)`` pair resolved against :data:`EXPERIMENT_TARGETS` —
whose stdout is captured in the worker and returned as the rendered
report.  :func:`run_all` fans the tasks out, preserves the requested
presentation order regardless of completion order, and (optionally)
writes each report plus a machine-readable ``summary.json`` to a
results directory.

Experiments parallelise *across*, not within: a sweep task always runs
its experiment single-process (no nested pools).
"""

from __future__ import annotations

import contextlib
import importlib
import io
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.orchestrate.persist import atomic_write_json, atomic_write_text
from repro.orchestrate.pool import ProgressCallback, map_unordered

#: Every CLI experiment, in presentation order: name -> "module:main".
EXPERIMENT_TARGETS: dict[str, str] = {
    "table1": "repro.experiments.table1:main",
    "figure1b": "repro.experiments.figure1b:main",
    "table3": "repro.experiments.table3:main",
    "table4": "repro.experiments.table4:main",
    "table5": "repro.experiments.table5:main",
    "figure6": "repro.experiments.figure6:main",
    "figure7": "repro.experiments.figure7:main",
    "rowhammer": "repro.experiments.rowhammer:main",
    "pim": "repro.experiments.pim:main",
    "ablation-shuffle": "repro.experiments.ablation_shuffle:main",
    "ablation-frontier": "repro.experiments.ablation_frontier:main",
    "extension-double-device": "repro.experiments.extension_double_device:main",
}


@dataclass(frozen=True)
class ExperimentTask:
    """One sweep entry: an experiment name plus frozen kwargs."""

    name: str
    kwargs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, name: str, kwargs: Mapping[str, Any]) -> "ExperimentTask":
        if name not in EXPERIMENT_TARGETS:
            raise ValueError(
                f"unknown experiment {name!r}; choose from "
                f"{sorted(EXPERIMENT_TARGETS)}"
            )
        return cls(name, tuple(sorted(kwargs.items())))


@dataclass(frozen=True)
class SweepOutcome:
    """One experiment's rendered report and wall-clock seconds.

    ``details`` is the experiment's optional machine-readable summary
    (e.g. table4's per-design-point ``trials_used`` and confidence
    intervals); it is folded into the sweep's ``summary.json``.
    """

    name: str
    report: str
    seconds: float
    details: dict | None = None


def resolve_experiment(name: str):
    """The ``main`` callable behind one registry entry.

    Resolved at call time through the module attribute, so the CLI
    dispatch, the sweep workers, and test monkeypatching all see the
    same function.
    """
    module_name, _, attr = EXPERIMENT_TARGETS[name].partition(":")
    return getattr(importlib.import_module(module_name), attr)


def run_experiment_task(task: ExperimentTask) -> SweepOutcome:
    """Worker entry point: run one experiment, capture its report.

    An experiment's ``main`` may return the report string, a
    ``(report, details)`` pair (details: a JSON-ready dict for
    ``summary.json``), or nothing (its printed output is the report).
    """
    main = resolve_experiment(task.name)
    buffer = io.StringIO()
    start = time.perf_counter()
    with contextlib.redirect_stdout(buffer):
        returned = main(**dict(task.kwargs))
    seconds = time.perf_counter() - start
    details = None
    if isinstance(returned, tuple) and len(returned) == 2:
        report, details = returned
    else:
        report = returned
    if not isinstance(report, str):
        report = buffer.getvalue().rstrip("\n")
    return SweepOutcome(
        name=task.name, report=report, seconds=seconds, details=details
    )


def _write_report(directory: Path, outcome: SweepOutcome) -> None:
    """Persist one report the moment it exists, so a mid-sweep failure
    never discards experiments that already completed."""
    atomic_write_text(directory / f"{outcome.name}.txt", outcome.report + "\n")


def _write_summary(
    directory: Path,
    outcomes: Mapping[str, SweepOutcome],
    jobs: int,
    wall_seconds: float,
) -> None:
    """Write ``summary.json`` for a finished sweep.

    ``sum_seconds`` adds up the per-experiment wall spans (what a
    serial sweep would have cost); ``wall_seconds`` is the sweep's
    elapsed time — with ``jobs > 1`` the two diverge and their ratio
    is the realised concurrency.
    """
    summary = {"jobs": jobs, "experiments": {}}
    for name, outcome in outcomes.items():
        entry = {
            "seconds": round(outcome.seconds, 4),
            "report_file": f"{name}.txt",
        }
        if outcome.details is not None:
            entry["details"] = outcome.details
        summary["experiments"][name] = entry
    summary["sum_seconds"] = round(
        sum(outcome.seconds for outcome in outcomes.values()), 4
    )
    summary["wall_seconds"] = round(wall_seconds, 4)
    # Atomic temp-file + rename: a sweep killed mid-write can never
    # leave a truncated summary.json for a reader (or a dashboard
    # polling the results dir) to trip over.
    atomic_write_json(directory / "summary.json", summary)


def run_all(
    tasks: list[ExperimentTask],
    jobs: int = 1,
    results_dir: str | Path | None = None,
    progress: ProgressCallback | None = None,
    on_outcome=None,
) -> dict[str, SweepOutcome]:
    """Run a sweep of experiments, ``jobs`` at a time.

    Returns outcomes keyed by name **in task order** (presentation
    order), regardless of completion order.  ``on_outcome(outcome)``
    fires on the parent as each experiment finishes (completion order)
    so callers can stream reports instead of waiting for the whole
    sweep.  With ``results_dir`` set, each report is written the moment
    its experiment completes (a mid-sweep failure keeps the finished
    ones) and ``summary.json`` (per-experiment, summed-CPU and
    wall-clock seconds) lands once the sweep succeeds.
    """
    names = [task.name for task in tasks]
    if len(set(names)) != len(names):
        # Outcomes (and report files) are keyed by name; a duplicate
        # would silently overwrite its twin's results.
        raise ValueError(f"duplicate experiment names in sweep: {names}")
    directory: Path | None = None
    if results_dir is not None:
        directory = Path(results_dir)
        directory.mkdir(parents=True, exist_ok=True)

    finished: dict[str, SweepOutcome] = {}

    def completed(outcome: SweepOutcome) -> None:
        finished[outcome.name] = outcome
        if directory is not None:
            _write_report(directory, outcome)
        if on_outcome is not None:
            on_outcome(outcome)

    start = time.perf_counter()
    map_unordered(run_experiment_task, tasks, jobs, progress, completed)
    outcomes = {task.name: finished[task.name] for task in tasks}
    if directory is not None:
        _write_summary(
            directory, outcomes, jobs, time.perf_counter() - start
        )
    return outcomes
