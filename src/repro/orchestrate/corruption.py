"""Chunk-addressable Monte-Carlo corruption generation.

The single source of the MSED corruption streams: the encode-then-
corrupt recipe with every random draw a counter hash of the **global
trial index** (:mod:`repro.orchestrate.rng`).  Trial ``t`` therefore
receives the same data word, the same ``k`` corrupted symbols and the
same replacement values whether it is generated inside a monolithic
run, a 65536-trial chunk, or a 1-trial sliver on another process —
which is what makes chunk tallies a pure, split-invariant fold.  The
whole-run generators (:func:`repro.engine.msed_corruption_batch`,
:func:`repro.rs.engine.rs_msed_corruption_batch`) are thin wrappers
over the chunk forms here.

Per trial the draws are fixed-count and stream-separated:

* ``(DATA, column)`` — raw data limbs / symbols
  (:func:`muse_clean_chunk` / :func:`rs_clean_chunk` stop here, which
  is how tests recover the pre-corruption words);
* ``(CHOICE, symbol)`` — one uint64 score per symbol; the corrupted
  set is the ``k`` smallest scores (distinct by construction);
* ``(VALUE, slot)`` — the replacement draw for each corrupted slot,
  reduced mod ``2^w - 1`` and stepped over the original value, so the
  replacement is never the original.  (The mod introduces a bias of
  order ``2^(w-64)`` — vanishing for the <= 16-bit symbols here.)

Requires numpy (these are the generators, not decoders); the numpy-free
sequential simulator paths derive per-trial :class:`random.Random`
seeds from the same counter hash instead.
"""

from __future__ import annotations

from repro.engine.base import BackendUnavailableError
from repro.orchestrate.plan import Chunk
from repro.orchestrate.rng import counter_draws, derive_key, trial_seed

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

#: Stream tags keeping the three per-trial draw families independent.
STREAM_DATA = 0
STREAM_CHOICE = 1
STREAM_VALUE = 2


def _require_numpy() -> None:
    if np is None:
        raise BackendUnavailableError(
            "numpy is required for bulk trial generation"
        )


def _trial_counters(chunk: Chunk) -> "np.ndarray":
    return np.arange(chunk.start, chunk.stop, dtype=np.uint64)


def _choose_symbols(
    key: int, trials: "np.ndarray", symbol_count: int, k_symbols: int
) -> "np.ndarray":
    """The ``k`` distinct corrupted symbols per trial: k smallest of
    ``symbol_count`` iid uint64 scores (per-row, so split-invariant)."""
    scores = np.empty((trials.size, symbol_count), dtype=np.uint64)
    for index in range(symbol_count):
        scores[:, index] = counter_draws(
            derive_key(key, STREAM_CHOICE, index), trials
        )
    return np.argpartition(scores, k_symbols - 1, axis=1)[:, :k_symbols]


def _replace_chosen_symbols(
    key: int,
    trials: "np.ndarray",
    chosen: "np.ndarray",
    widths,
    read,
    write,
) -> None:
    """Overwrite every chosen symbol with a fresh never-the-original
    value — the one replace loop both code families share.

    ``read(rows, index)`` returns the current symbol values as uint64;
    ``write(rows, index, values)`` stores uint64 values back (casting
    to the family's dtype as needed).
    """
    for slot in range(chosen.shape[1]):
        draws = counter_draws(derive_key(key, STREAM_VALUE, slot), trials)
        slot_symbols = chosen[:, slot]
        for index, width in enumerate(widths):
            rows = np.flatnonzero(slot_symbols == index)
            if rows.size == 0:
                continue
            original = read(rows, index)
            # Uniform over the 2^w - 1 values != original: reduce into a
            # range one short and step over the original.
            draw = draws[rows] % np.uint64((1 << width) - 1)
            write(rows, index, draw + (draw >= original).astype(np.uint64))


def muse_clean_chunk(code, chunk: Chunk, key: int):
    """Encode chunk trials of the MUSE data stream (no corruption).

    Returns the ``(chunk.size, limbs)`` uint64 clean-codeword batch the
    corruption stream starts from.
    """
    _require_numpy()
    from repro.engine import get_engine
    from repro.engine.limbs import int_to_limb_row

    engine = get_engine(code, "numpy")
    trials = _trial_counters(chunk)
    data = np.empty((trials.size, engine.limbs), dtype=np.uint64)
    for limb in range(engine.limbs):
        data[:, limb] = counter_draws(derive_key(key, STREAM_DATA, limb), trials)
    data &= int_to_limb_row((1 << code.k) - 1, engine.limbs)
    return engine.encode_limbs(data)


def muse_corruption_chunk(code, chunk: Chunk, key: int, k_symbols: int = 2):
    """Generate chunk trials of the MUSE MSED corruption stream.

    Returns a ``(chunk.size, limbs)`` uint64 batch of corrupted
    codewords, consumable by any :class:`~repro.engine.base.DecodeEngine`.
    ``key`` is :func:`repro.orchestrate.rng.derive_key` of the run's
    master seed.
    """
    _require_numpy()
    from repro.engine.numpy_backend import (
        extract_symbol_batch,
        insert_symbol_batch,
    )

    layout = code.layout
    if not 1 <= k_symbols <= layout.symbol_count:
        raise ValueError(
            f"k_symbols must be in [1, {layout.symbol_count}], got {k_symbols}"
        )
    trials = _trial_counters(chunk)
    words = muse_clean_chunk(code, chunk, key)

    def read(rows, index):
        return extract_symbol_batch(words[rows], layout, index)

    def write(rows, index, values):
        insert_symbol_batch(words, layout, index, values, rows)

    _replace_chosen_symbols(
        key,
        trials,
        _choose_symbols(key, trials, layout.symbol_count, k_symbols),
        [len(symbol) for symbol in layout.symbols],
        read,
        write,
    )
    return words


def muse_split_chunk(code, chunk: Chunk, key: int, k_symbols: int = 2):
    """Generate chunk trials of the MUSE *prefix* corruption stream.

    The importance-splitting front half of :func:`muse_corruption_chunk`:
    the same clean words, the same ``k`` chosen symbols, and the same
    replacement values for the first ``k - 1`` of them — but the last
    chosen symbol is left intact and its index returned instead, so the
    splitting estimator can branch over *every* value it could take.

    Returns ``(words, last_symbols)``: the ``(chunk.size, limbs)``
    uint64 prefix-corrupted batch and the per-trial held-out symbol
    index (int64).  Because the CHOICE and VALUE streams are shared
    with the full generator, the prefix distribution here is exactly
    the full stream's marginal over everything but the final draw.
    """
    _require_numpy()
    from repro.engine.numpy_backend import (
        extract_symbol_batch,
        insert_symbol_batch,
    )

    layout = code.layout
    if not 2 <= k_symbols <= layout.symbol_count:
        raise ValueError(
            f"splitting needs k_symbols in [2, {layout.symbol_count}], "
            f"got {k_symbols}"
        )
    trials = _trial_counters(chunk)
    words = muse_clean_chunk(code, chunk, key)
    chosen = _choose_symbols(key, trials, layout.symbol_count, k_symbols)

    def read(rows, index):
        return extract_symbol_batch(words[rows], layout, index)

    def write(rows, index, values):
        insert_symbol_batch(words, layout, index, values, rows)

    _replace_chosen_symbols(
        key,
        trials,
        chosen[:, : k_symbols - 1],
        [len(symbol) for symbol in layout.symbols],
        read,
        write,
    )
    return words, chosen[:, k_symbols - 1].astype(np.int64)


def rs_split_chunk(code, chunk: Chunk, key: int, k_symbols: int = 2):
    """Generate chunk trials of the RS prefix corruption stream.

    The RS analogue of :func:`muse_split_chunk`: returns
    ``(words, last_symbols)`` with the first ``k - 1`` chosen symbols
    corrupted and the final chosen symbol's index held out per trial.
    """
    _require_numpy()
    if not 2 <= k_symbols <= code.n_symbols:
        raise ValueError(
            f"splitting needs k_symbols in [2, {code.n_symbols}], "
            f"got {k_symbols}"
        )
    trials = _trial_counters(chunk)
    words = rs_clean_chunk(code, chunk, key)
    chosen = _choose_symbols(key, trials, code.n_symbols, k_symbols)

    def read(rows, index):
        return words[rows, index].astype(np.uint64)

    def write(rows, index, values):
        words[rows, index] = values.astype(np.uint32)

    _replace_chosen_symbols(
        key,
        trials,
        chosen[:, : k_symbols - 1],
        code.symbol_widths,
        read,
        write,
    )
    return words, chosen[:, k_symbols - 1].astype(np.int64)


def rs_clean_chunk(code, chunk: Chunk, key: int):
    """Encode chunk trials of the RS data stream (no corruption).

    Returns the ``(chunk.size, n_symbols)`` uint32 clean-codeword batch
    the corruption stream starts from.
    """
    _require_numpy()
    from repro.rs.engine import get_rs_engine

    engine = get_rs_engine(code, "numpy")
    trials = _trial_counters(chunk)
    data = np.empty((trials.size, code.data_symbols), dtype=np.uint32)
    for index in range(code.data_symbols):
        width = code.symbol_widths[index]
        data[:, index] = (
            counter_draws(derive_key(key, STREAM_DATA, index), trials)
            & np.uint64((1 << width) - 1)
        ).astype(np.uint32)
    return engine.encode_arrays(data)


# ----------------------------------------------------------------------
# Scenario drivers (repro.scenarios)
# ----------------------------------------------------------------------
#
# A registered scenario supplies corrupt_batch/corrupt_word callables
# over symbol views; the drivers here bind those views to each code
# family's storage (limb batches for MUSE, symbol arrays for RS) and
# to the single-word scalar forms.  The clean words stay on the base
# key's DATA stream — shared across scenarios — while every corruption
# draw comes from the per-scenario stream key, so the scalar and batch
# paths of one scenario are byte-identical and two scenarios never
# share a corruption stream.


def _check_k(k_symbols: int, symbol_count: int) -> None:
    if not 1 <= k_symbols <= symbol_count:
        raise ValueError(
            f"k_symbols must be in [1, {symbol_count}], got {k_symbols}"
        )


def muse_clean_word(code, trial: int, key: int) -> int:
    """Trial ``trial`` of the MUSE data stream as one clean codeword.

    The scalar twin of :func:`muse_clean_chunk`: the same per-limb
    DATA draws, assembled into a big int and encoded through the code
    itself.  The limb count is ``engine.limbs.limb_count`` inlined
    (``n // 64 + 1``, always a spare headroom limb) — that module
    needs numpy, and this scalar path must run without it.
    """
    data = 0
    for limb in range(code.n // 64 + 1):
        data |= trial_seed(derive_key(key, STREAM_DATA, limb), trial) << (
            64 * limb
        )
    return code.encode(data & ((1 << code.k) - 1))


def rs_clean_word(code, trial: int, key: int) -> list[int]:
    """Trial ``trial`` of the RS data stream as one clean codeword."""
    data = [
        trial_seed(derive_key(key, STREAM_DATA, index), trial)
        & ((1 << code.symbol_widths[index]) - 1)
        for index in range(code.data_symbols)
    ]
    return list(code.encode(data))


def muse_scenario_chunk(scenario, code, chunk: Chunk, key: int,
                        k_symbols: int = 2):
    """Generate chunk trials of ``scenario``'s MUSE corruption stream.

    Returns the ``(chunk.size, limbs)`` uint64 corrupted batch; the
    legacy ``"msed"`` scenario delegates to
    :func:`muse_corruption_chunk` (identical stream, fused-kernel
    compatible).
    """
    _require_numpy()
    if scenario.corrupt_batch is None:
        return muse_corruption_chunk(code, chunk, key, k_symbols)
    from repro.engine.numpy_backend import (
        extract_symbol_batch,
        insert_symbol_batch,
    )
    from repro.scenarios import BatchSymbolView, scenario_stream_key

    layout = code.layout
    _check_k(k_symbols, layout.symbol_count)
    words = muse_clean_chunk(code, chunk, key)
    view = BatchSymbolView(
        trials=_trial_counters(chunk),
        widths=tuple(len(symbol) for symbol in layout.symbols),
        read=lambda rows, index: extract_symbol_batch(
            words[rows], layout, index
        ),
        write=lambda rows, index, values: insert_symbol_batch(
            words, layout, index, values, rows
        ),
    )
    scenario.corrupt_batch(
        scenario_stream_key(key, scenario.name), view, k_symbols
    )
    return words


def rs_scenario_chunk(scenario, code, chunk: Chunk, key: int,
                      k_symbols: int = 2):
    """Generate chunk trials of ``scenario``'s RS corruption stream.

    Returns the ``(chunk.size, n_symbols)`` uint32 corrupted batch;
    ``"msed"`` delegates to :func:`rs_corruption_chunk`.
    """
    _require_numpy()
    if scenario.corrupt_batch is None:
        return rs_corruption_chunk(code, chunk, key, k_symbols)
    from repro.scenarios import BatchSymbolView, scenario_stream_key

    _check_k(k_symbols, code.n_symbols)
    words = rs_clean_chunk(code, chunk, key)

    def write(rows, index, values):
        words[rows, index] = values.astype(np.uint32)

    view = BatchSymbolView(
        trials=_trial_counters(chunk),
        widths=tuple(code.symbol_widths),
        read=lambda rows, index: words[rows, index].astype(np.uint64),
        write=write,
    )
    scenario.corrupt_batch(
        scenario_stream_key(key, scenario.name), view, k_symbols
    )
    return words


def muse_scenario_word(scenario, code, trial: int, key: int,
                       k_symbols: int = 2) -> int:
    """One corrupted MUSE word of ``scenario`` — the scalar reference.

    Byte-identical to row ``trial - chunk.start`` of any
    :func:`muse_scenario_chunk` covering ``trial`` (pinned by the
    scenario test matrix), which is what lets the numpy-free simulator
    path tally the *same* stream instead of a parallel one.
    """
    if scenario.corrupt_word is None:
        raise ValueError(
            f"scenario {scenario.name!r} has no scalar reference stream "
            f"(the legacy msed scalar path lives in the simulators)"
        )
    from repro.scenarios import WordSymbolView, scenario_stream_key

    layout = code.layout
    _check_k(k_symbols, layout.symbol_count)
    state = [muse_clean_word(code, trial, key)]
    view = WordSymbolView(
        trial=trial,
        widths=tuple(len(symbol) for symbol in layout.symbols),
        get=lambda index: layout.extract_symbol(state[0], index),
        put=lambda index, value: state.__setitem__(
            0, layout.insert_symbol(state[0], index, int(value))
        ),
    )
    scenario.corrupt_word(
        scenario_stream_key(key, scenario.name), view, k_symbols
    )
    return state[0]


def rs_scenario_word(scenario, code, trial: int, key: int,
                     k_symbols: int = 2) -> list[int]:
    """One corrupted RS word of ``scenario`` — the scalar reference."""
    if scenario.corrupt_word is None:
        raise ValueError(
            f"scenario {scenario.name!r} has no scalar reference stream "
            f"(the legacy msed scalar path lives in the simulators)"
        )
    from repro.scenarios import WordSymbolView, scenario_stream_key

    _check_k(k_symbols, code.n_symbols)
    word = rs_clean_word(code, trial, key)
    view = WordSymbolView(
        trial=trial,
        widths=tuple(code.symbol_widths),
        get=lambda index: word[index],
        put=lambda index, value: word.__setitem__(index, int(value)),
    )
    scenario.corrupt_word(
        scenario_stream_key(key, scenario.name), view, k_symbols
    )
    return word


def rs_corruption_chunk(code, chunk: Chunk, key: int, k_symbols: int = 2):
    """Generate chunk trials of the RS MSED corruption stream.

    Returns a ``(chunk.size, n_symbols)`` uint32 batch of corrupted
    codewords — the RS analogue of :func:`muse_corruption_chunk`, with
    the same split-invariance.
    """
    _require_numpy()
    if not 1 <= k_symbols <= code.n_symbols:
        raise ValueError(
            f"k_symbols must be in [1, {code.n_symbols}], got {k_symbols}"
        )
    trials = _trial_counters(chunk)
    words = rs_clean_chunk(code, chunk, key)

    def read(rows, index):
        return words[rows, index].astype(np.uint64)

    def write(rows, index, values):
        words[rows, index] = values.astype(np.uint32)

    _replace_chosen_symbols(
        key,
        trials,
        _choose_symbols(key, trials, code.n_symbols, k_symbols),
        code.symbol_widths,
        read,
        write,
    )
    return words
