"""End-of-run manifest: one JSON file answering "what was this run?".

``run-manifest.json`` is the durable, self-contained record a later
reader (or the ROADMAP's always-on service) needs to trust a result
directory: which experiment and spec fingerprints produced it, on what
backend/seed, how many trials, what the tallies were, how the cache
and the fault machinery behaved, and where the wall-clock went — all
without replaying the event log.  It is written atomically at session
close, so a crash mid-run leaves the event log as the (truncated)
source of truth and no half-written manifest.
"""

from __future__ import annotations

import time
from typing import Any

MANIFEST_NAME = "run-manifest.json"
MANIFEST_FORMAT = "repro-telemetry-manifest/1"


def build_manifest(telemetry: Any) -> dict[str, Any]:
    """Assemble the manifest payload from a live telemetry session."""
    snapshot = telemetry.registry.snapshot()
    return {
        "format": MANIFEST_FORMAT,
        **telemetry.meta,
        "started_unix": telemetry.started_unix,
        "wall_seconds": round(time.perf_counter() - telemetry.epoch, 6),
        "events_written": telemetry.events_written,
        "spec_fingerprints": dict(sorted(telemetry.spec_fingerprints.items())),
        "stages": stage_breakdown(snapshot),
        "metrics": snapshot,
        "summary": telemetry.summary,
    }


def stage_breakdown(snapshot: dict[str, Any]) -> dict[str, dict[str, Any]]:
    """Per-stage wall-clock totals, folded across labels.

    Every ``span.<stage>`` histogram collapses to ``{count, seconds,
    max_seconds}`` keyed by stage name — the coarse "where did the
    time go" answer, with the labelled detail still available under
    ``metrics.histograms`` for anyone who wants it.
    """
    stages: dict[str, dict[str, Any]] = {}
    for hist in snapshot.get("histograms", ()):
        name = hist["name"]
        if not name.startswith("span."):
            continue
        stage = stages.setdefault(
            name[len("span.") :],
            {"count": 0, "seconds": 0.0, "max_seconds": 0.0},
        )
        stage["count"] += hist["count"]
        stage["seconds"] = round(stage["seconds"] + hist["sum"], 6)
        stage["max_seconds"] = round(max(stage["max_seconds"], hist["max"]), 6)
    return stages
