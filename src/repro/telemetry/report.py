"""Post-hoc run reports, rebuilt from the event log alone.

``repro-muse report RUNDIR`` must work on whatever a run left behind —
including a crashed run with no manifest — so everything here derives
from ``events.jsonl``: per-stage time totals from span events, a
slowest-points table from ``decode_chunk`` spans, and a fleet-health
section counting joins/rejoins/leaves, lease expiries, requeues,
protocol errors, chaos firings, and cache traffic.  When
``run-manifest.json`` exists it contributes the header (experiment,
backend, seed, trials) but never the numbers — the report is the
independent witness that the coordinator's totals and the event trail
agree.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any, Iterable

from repro.telemetry.manifest import MANIFEST_NAME
from repro.telemetry.sinks import EVENT_LOG_NAME, read_events


def summarize_events(events: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Fold an event stream into the report's source numbers."""
    event_counts: Counter[str] = Counter()
    stages: dict[str, dict[str, float]] = {}
    points: dict[str, dict[str, float]] = {}
    fleet: Counter[str] = Counter()
    chaos: Counter[str] = Counter()
    total = 0
    for event in events:
        total += 1
        kind = event.get("type", "?")
        event_counts[kind] += 1
        if kind == "span":
            name = event.get("name", "?")
            seconds = float(event.get("seconds", 0.0))
            stage = stages.setdefault(name, {"count": 0, "seconds": 0.0, "max": 0.0})
            stage["count"] += 1
            stage["seconds"] += seconds
            stage["max"] = max(stage["max"], seconds)
            if name == "decode_chunk":
                attrs = event.get("attrs", {})
                label = str(attrs.get("point", attrs.get("group", "?")))
                point = points.setdefault(
                    label, {"count": 0, "seconds": 0.0, "max": 0.0}
                )
                point["count"] += 1
                point["seconds"] += seconds
                point["max"] = max(point["max"], seconds)
        elif kind.startswith("worker."):
            fleet[kind] += 1
            fleet["chunks_requeued"] += int(event.get("requeued", 0))
        elif kind in ("protocol.error", "lease.expired", "chunk.failed"):
            fleet[kind] += 1
            fleet["chunks_requeued"] += int(event.get("requeued", 0))
        elif kind == "chaos.fault":
            chaos[str(event.get("kind", "?"))] += 1
        elif kind == "telemetry.worker":
            # Counter deltas a worker shipped over the wire, mirrored
            # into the log by the coordinator.  Chaos fires inside the
            # worker process, so these are the report's only view of
            # fault counts on a distributed run.
            for name, amount in (event.get("counters") or {}).items():
                if name.startswith("worker.chaos."):
                    chaos[name[len("worker.chaos.") :]] += int(amount)
        elif kind == "cache.lookup":
            if event.get("hit"):
                fleet["cache_hits"] += 1
            else:
                fleet["cache_misses"] += 1
    return {
        "total_events": total,
        "event_counts": dict(sorted(event_counts.items())),
        "stages": stages,
        "points": points,
        "fleet": dict(sorted(fleet.items())),
        "chaos": dict(sorted(chaos.items())),
    }


def load_manifest(run_dir: str | Path) -> dict[str, Any] | None:
    path = Path(run_dir) / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except ValueError:
        return None


def render_report(run_dir: str | Path, slowest: int = 5) -> str:
    """The human-readable report for one telemetry run directory."""
    run_dir = Path(run_dir)
    summary = summarize_events(read_events(run_dir / EVENT_LOG_NAME))
    manifest = load_manifest(run_dir)
    lines: list[str] = [f"telemetry report: {run_dir}"]

    if manifest is not None:
        head = [
            f"{key}={manifest[key]}"
            for key in ("experiment", "backend", "seed", "scenario")
            if manifest.get(key) is not None
        ]
        if head:
            lines.append("  run: " + "  ".join(head))
        lines.append(
            f"  wall: {manifest.get('wall_seconds', 0.0):.2f}s"
            f"  events: {manifest.get('events_written', 0)}"
        )
    lines.append(f"  events parsed: {summary['total_events']}")

    stages = summary["stages"]
    if stages:
        lines.append("time in stage:")
        ordered = sorted(stages.items(), key=lambda kv: -kv[1]["seconds"])
        for name, stage in ordered:
            lines.append(
                f"  {name:<24} {stage['seconds']:>9.3f}s"
                f"  n={int(stage['count']):<6} max={stage['max']:.3f}s"
            )

    points = summary["points"]
    if points:
        lines.append(f"slowest points (top {slowest}):")
        ordered = sorted(points.items(), key=lambda kv: -kv[1]["seconds"])
        for label, point in ordered[:slowest]:
            lines.append(
                f"  {label:<24} {point['seconds']:>9.3f}s"
                f"  chunks={int(point['count']):<6} max={point['max']:.3f}s"
            )

    fleet = summary["fleet"]
    if fleet:
        lines.append("fleet health:")
        for key, value in fleet.items():
            lines.append(f"  {key:<24} {int(value)}")

    chaos = summary["chaos"]
    if chaos:
        lines.append("chaos faults:")
        for kind, count in chaos.items():
            lines.append(f"  {kind:<24} {int(count)}")

    if summary["total_events"] == 0 and manifest is None:
        lines.append("  (no event log or manifest found)")
    return "\n".join(lines)
